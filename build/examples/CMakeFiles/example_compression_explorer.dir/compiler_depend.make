# Empty compiler generated dependencies file for example_compression_explorer.
# This may be replaced when dependencies are built.
