file(REMOVE_RECURSE
  "CMakeFiles/example_compression_explorer.dir/compression_explorer.cpp.o"
  "CMakeFiles/example_compression_explorer.dir/compression_explorer.cpp.o.d"
  "example_compression_explorer"
  "example_compression_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compression_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
