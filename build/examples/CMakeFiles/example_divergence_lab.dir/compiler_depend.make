# Empty compiler generated dependencies file for example_divergence_lab.
# This may be replaced when dependencies are built.
