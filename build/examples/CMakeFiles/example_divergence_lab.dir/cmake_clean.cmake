file(REMOVE_RECURSE
  "CMakeFiles/example_divergence_lab.dir/divergence_lab.cpp.o"
  "CMakeFiles/example_divergence_lab.dir/divergence_lab.cpp.o.d"
  "example_divergence_lab"
  "example_divergence_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_divergence_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
