# Empty compiler generated dependencies file for example_inspect.
# This may be replaced when dependencies are built.
