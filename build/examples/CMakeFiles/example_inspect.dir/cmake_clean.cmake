file(REMOVE_RECURSE
  "CMakeFiles/example_inspect.dir/inspect.cpp.o"
  "CMakeFiles/example_inspect.dir/inspect.cpp.o.d"
  "example_inspect"
  "example_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
