file(REMOVE_RECURSE
  "CMakeFiles/fig08_rf_distribution.dir/fig08_rf_distribution.cpp.o"
  "CMakeFiles/fig08_rf_distribution.dir/fig08_rf_distribution.cpp.o.d"
  "fig08_rf_distribution"
  "fig08_rf_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_rf_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
