file(REMOVE_RECURSE
  "CMakeFiles/fig09_scalar_eligibility.dir/fig09_scalar_eligibility.cpp.o"
  "CMakeFiles/fig09_scalar_eligibility.dir/fig09_scalar_eligibility.cpp.o.d"
  "fig09_scalar_eligibility"
  "fig09_scalar_eligibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_scalar_eligibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
