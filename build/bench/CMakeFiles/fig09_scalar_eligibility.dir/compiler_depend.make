# Empty compiler generated dependencies file for fig09_scalar_eligibility.
# This may be replaced when dependencies are built.
