file(REMOVE_RECURSE
  "CMakeFiles/ablation_smov_compiler.dir/ablation_smov_compiler.cpp.o"
  "CMakeFiles/ablation_smov_compiler.dir/ablation_smov_compiler.cpp.o.d"
  "ablation_smov_compiler"
  "ablation_smov_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smov_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
