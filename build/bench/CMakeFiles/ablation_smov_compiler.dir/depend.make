# Empty dependencies file for ablation_smov_compiler.
# This may be replaced when dependencies are built.
