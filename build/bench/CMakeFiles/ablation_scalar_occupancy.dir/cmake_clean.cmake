file(REMOVE_RECURSE
  "CMakeFiles/ablation_scalar_occupancy.dir/ablation_scalar_occupancy.cpp.o"
  "CMakeFiles/ablation_scalar_occupancy.dir/ablation_scalar_occupancy.cpp.o.d"
  "ablation_scalar_occupancy"
  "ablation_scalar_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scalar_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
