
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_scalar_occupancy.cpp" "bench/CMakeFiles/ablation_scalar_occupancy.dir/ablation_scalar_occupancy.cpp.o" "gcc" "bench/CMakeFiles/ablation_scalar_occupancy.dir/ablation_scalar_occupancy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/gscalar_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/gscalar_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gscalar_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gscalar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/scalar/CMakeFiles/gscalar_scalar.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gscalar_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/gscalar_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gscalar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
