# Empty compiler generated dependencies file for ablation_scalar_occupancy.
# This may be replaced when dependencies are built.
