# Empty compiler generated dependencies file for fig12_rf_power.
# This may be replaced when dependencies are built.
