# Empty dependencies file for ablation_scalar_banks.
# This may be replaced when dependencies are built.
