file(REMOVE_RECURSE
  "CMakeFiles/ablation_scalar_banks.dir/ablation_scalar_banks.cpp.o"
  "CMakeFiles/ablation_scalar_banks.dir/ablation_scalar_banks.cpp.o.d"
  "ablation_scalar_banks"
  "ablation_scalar_banks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scalar_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
