file(REMOVE_RECURSE
  "CMakeFiles/stat_affine_opportunity.dir/stat_affine_opportunity.cpp.o"
  "CMakeFiles/stat_affine_opportunity.dir/stat_affine_opportunity.cpp.o.d"
  "stat_affine_opportunity"
  "stat_affine_opportunity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_affine_opportunity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
