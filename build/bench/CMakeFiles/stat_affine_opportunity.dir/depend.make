# Empty dependencies file for stat_affine_opportunity.
# This may be replaced when dependencies are built.
