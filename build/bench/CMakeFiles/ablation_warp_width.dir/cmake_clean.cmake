file(REMOVE_RECURSE
  "CMakeFiles/ablation_warp_width.dir/ablation_warp_width.cpp.o"
  "CMakeFiles/ablation_warp_width.dir/ablation_warp_width.cpp.o.d"
  "ablation_warp_width"
  "ablation_warp_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_warp_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
