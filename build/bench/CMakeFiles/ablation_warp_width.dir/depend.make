# Empty dependencies file for ablation_warp_width.
# This may be replaced when dependencies are built.
