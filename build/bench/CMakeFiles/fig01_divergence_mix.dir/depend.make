# Empty dependencies file for fig01_divergence_mix.
# This may be replaced when dependencies are built.
