file(REMOVE_RECURSE
  "CMakeFiles/stat_special_move_overhead.dir/stat_special_move_overhead.cpp.o"
  "CMakeFiles/stat_special_move_overhead.dir/stat_special_move_overhead.cpp.o.d"
  "stat_special_move_overhead"
  "stat_special_move_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_special_move_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
