# Empty compiler generated dependencies file for stat_special_move_overhead.
# This may be replaced when dependencies are built.
