file(REMOVE_RECURSE
  "CMakeFiles/stat_compiler_scalar.dir/stat_compiler_scalar.cpp.o"
  "CMakeFiles/stat_compiler_scalar.dir/stat_compiler_scalar.cpp.o.d"
  "stat_compiler_scalar"
  "stat_compiler_scalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_compiler_scalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
