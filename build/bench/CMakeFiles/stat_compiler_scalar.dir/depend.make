# Empty dependencies file for stat_compiler_scalar.
# This may be replaced when dependencies are built.
