# Empty compiler generated dependencies file for ablation_half_register.
# This may be replaced when dependencies are built.
