file(REMOVE_RECURSE
  "CMakeFiles/ablation_half_register.dir/ablation_half_register.cpp.o"
  "CMakeFiles/ablation_half_register.dir/ablation_half_register.cpp.o.d"
  "ablation_half_register"
  "ablation_half_register.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_half_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
