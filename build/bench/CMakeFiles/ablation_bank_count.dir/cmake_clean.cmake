file(REMOVE_RECURSE
  "CMakeFiles/ablation_bank_count.dir/ablation_bank_count.cpp.o"
  "CMakeFiles/ablation_bank_count.dir/ablation_bank_count.cpp.o.d"
  "ablation_bank_count"
  "ablation_bank_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bank_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
