# Empty dependencies file for ablation_bank_count.
# This may be replaced when dependencies are built.
