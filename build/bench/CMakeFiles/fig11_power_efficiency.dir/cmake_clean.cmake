file(REMOVE_RECURSE
  "CMakeFiles/fig11_power_efficiency.dir/fig11_power_efficiency.cpp.o"
  "CMakeFiles/fig11_power_efficiency.dir/fig11_power_efficiency.cpp.o.d"
  "fig11_power_efficiency"
  "fig11_power_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_power_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
