# Empty dependencies file for fig10_warp_size.
# This may be replaced when dependencies are built.
