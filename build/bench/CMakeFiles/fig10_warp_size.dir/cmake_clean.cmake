file(REMOVE_RECURSE
  "CMakeFiles/fig10_warp_size.dir/fig10_warp_size.cpp.o"
  "CMakeFiles/fig10_warp_size.dir/fig10_warp_size.cpp.o.d"
  "fig10_warp_size"
  "fig10_warp_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_warp_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
