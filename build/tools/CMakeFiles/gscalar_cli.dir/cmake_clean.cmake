file(REMOVE_RECURSE
  "CMakeFiles/gscalar_cli.dir/gscalar_cli.cpp.o"
  "CMakeFiles/gscalar_cli.dir/gscalar_cli.cpp.o.d"
  "gscalar"
  "gscalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gscalar_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
