# Empty dependencies file for gscalar_cli.
# This may be replaced when dependencies are built.
