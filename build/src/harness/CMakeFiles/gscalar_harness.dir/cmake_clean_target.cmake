file(REMOVE_RECURSE
  "libgscalar_harness.a"
)
