file(REMOVE_RECURSE
  "CMakeFiles/gscalar_harness.dir/experiments.cpp.o"
  "CMakeFiles/gscalar_harness.dir/experiments.cpp.o.d"
  "CMakeFiles/gscalar_harness.dir/report.cpp.o"
  "CMakeFiles/gscalar_harness.dir/report.cpp.o.d"
  "CMakeFiles/gscalar_harness.dir/runner.cpp.o"
  "CMakeFiles/gscalar_harness.dir/runner.cpp.o.d"
  "libgscalar_harness.a"
  "libgscalar_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gscalar_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
