# Empty compiler generated dependencies file for gscalar_harness.
# This may be replaced when dependencies are built.
