file(REMOVE_RECURSE
  "CMakeFiles/gscalar_power.dir/energy_model.cpp.o"
  "CMakeFiles/gscalar_power.dir/energy_model.cpp.o.d"
  "CMakeFiles/gscalar_power.dir/hardware_cost.cpp.o"
  "CMakeFiles/gscalar_power.dir/hardware_cost.cpp.o.d"
  "libgscalar_power.a"
  "libgscalar_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gscalar_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
