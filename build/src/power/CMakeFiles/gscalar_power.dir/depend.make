# Empty dependencies file for gscalar_power.
# This may be replaced when dependencies are built.
