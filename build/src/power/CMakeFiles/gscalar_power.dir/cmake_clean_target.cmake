file(REMOVE_RECURSE
  "libgscalar_power.a"
)
