file(REMOVE_RECURSE
  "CMakeFiles/gscalar_scalar.dir/eligibility.cpp.o"
  "CMakeFiles/gscalar_scalar.dir/eligibility.cpp.o.d"
  "libgscalar_scalar.a"
  "libgscalar_scalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gscalar_scalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
