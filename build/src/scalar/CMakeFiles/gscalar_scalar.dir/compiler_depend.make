# Empty compiler generated dependencies file for gscalar_scalar.
# This may be replaced when dependencies are built.
