file(REMOVE_RECURSE
  "libgscalar_scalar.a"
)
