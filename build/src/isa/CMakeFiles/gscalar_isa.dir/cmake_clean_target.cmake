file(REMOVE_RECURSE
  "libgscalar_isa.a"
)
