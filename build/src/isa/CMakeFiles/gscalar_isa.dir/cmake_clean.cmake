file(REMOVE_RECURSE
  "CMakeFiles/gscalar_isa.dir/analysis.cpp.o"
  "CMakeFiles/gscalar_isa.dir/analysis.cpp.o.d"
  "CMakeFiles/gscalar_isa.dir/disasm.cpp.o"
  "CMakeFiles/gscalar_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/gscalar_isa.dir/kernel.cpp.o"
  "CMakeFiles/gscalar_isa.dir/kernel.cpp.o.d"
  "CMakeFiles/gscalar_isa.dir/kernel_builder.cpp.o"
  "CMakeFiles/gscalar_isa.dir/kernel_builder.cpp.o.d"
  "CMakeFiles/gscalar_isa.dir/opcode.cpp.o"
  "CMakeFiles/gscalar_isa.dir/opcode.cpp.o.d"
  "libgscalar_isa.a"
  "libgscalar_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gscalar_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
