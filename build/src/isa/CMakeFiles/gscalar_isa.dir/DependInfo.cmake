
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/analysis.cpp" "src/isa/CMakeFiles/gscalar_isa.dir/analysis.cpp.o" "gcc" "src/isa/CMakeFiles/gscalar_isa.dir/analysis.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/isa/CMakeFiles/gscalar_isa.dir/disasm.cpp.o" "gcc" "src/isa/CMakeFiles/gscalar_isa.dir/disasm.cpp.o.d"
  "/root/repo/src/isa/kernel.cpp" "src/isa/CMakeFiles/gscalar_isa.dir/kernel.cpp.o" "gcc" "src/isa/CMakeFiles/gscalar_isa.dir/kernel.cpp.o.d"
  "/root/repo/src/isa/kernel_builder.cpp" "src/isa/CMakeFiles/gscalar_isa.dir/kernel_builder.cpp.o" "gcc" "src/isa/CMakeFiles/gscalar_isa.dir/kernel_builder.cpp.o.d"
  "/root/repo/src/isa/opcode.cpp" "src/isa/CMakeFiles/gscalar_isa.dir/opcode.cpp.o" "gcc" "src/isa/CMakeFiles/gscalar_isa.dir/opcode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gscalar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
