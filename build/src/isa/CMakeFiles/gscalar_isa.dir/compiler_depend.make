# Empty compiler generated dependencies file for gscalar_isa.
# This may be replaced when dependencies are built.
