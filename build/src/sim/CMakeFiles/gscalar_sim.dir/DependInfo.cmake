
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/functional.cpp" "src/sim/CMakeFiles/gscalar_sim.dir/functional.cpp.o" "gcc" "src/sim/CMakeFiles/gscalar_sim.dir/functional.cpp.o.d"
  "/root/repo/src/sim/gmem.cpp" "src/sim/CMakeFiles/gscalar_sim.dir/gmem.cpp.o" "gcc" "src/sim/CMakeFiles/gscalar_sim.dir/gmem.cpp.o.d"
  "/root/repo/src/sim/gpu.cpp" "src/sim/CMakeFiles/gscalar_sim.dir/gpu.cpp.o" "gcc" "src/sim/CMakeFiles/gscalar_sim.dir/gpu.cpp.o.d"
  "/root/repo/src/sim/memory/cache.cpp" "src/sim/CMakeFiles/gscalar_sim.dir/memory/cache.cpp.o" "gcc" "src/sim/CMakeFiles/gscalar_sim.dir/memory/cache.cpp.o.d"
  "/root/repo/src/sim/memory/memory_system.cpp" "src/sim/CMakeFiles/gscalar_sim.dir/memory/memory_system.cpp.o" "gcc" "src/sim/CMakeFiles/gscalar_sim.dir/memory/memory_system.cpp.o.d"
  "/root/repo/src/sim/reference.cpp" "src/sim/CMakeFiles/gscalar_sim.dir/reference.cpp.o" "gcc" "src/sim/CMakeFiles/gscalar_sim.dir/reference.cpp.o.d"
  "/root/repo/src/sim/simt_stack.cpp" "src/sim/CMakeFiles/gscalar_sim.dir/simt_stack.cpp.o" "gcc" "src/sim/CMakeFiles/gscalar_sim.dir/simt_stack.cpp.o.d"
  "/root/repo/src/sim/sm.cpp" "src/sim/CMakeFiles/gscalar_sim.dir/sm.cpp.o" "gcc" "src/sim/CMakeFiles/gscalar_sim.dir/sm.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/gscalar_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/gscalar_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/warp_state.cpp" "src/sim/CMakeFiles/gscalar_sim.dir/warp_state.cpp.o" "gcc" "src/sim/CMakeFiles/gscalar_sim.dir/warp_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gscalar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/gscalar_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gscalar_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/scalar/CMakeFiles/gscalar_scalar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
