file(REMOVE_RECURSE
  "CMakeFiles/gscalar_sim.dir/functional.cpp.o"
  "CMakeFiles/gscalar_sim.dir/functional.cpp.o.d"
  "CMakeFiles/gscalar_sim.dir/gmem.cpp.o"
  "CMakeFiles/gscalar_sim.dir/gmem.cpp.o.d"
  "CMakeFiles/gscalar_sim.dir/gpu.cpp.o"
  "CMakeFiles/gscalar_sim.dir/gpu.cpp.o.d"
  "CMakeFiles/gscalar_sim.dir/memory/cache.cpp.o"
  "CMakeFiles/gscalar_sim.dir/memory/cache.cpp.o.d"
  "CMakeFiles/gscalar_sim.dir/memory/memory_system.cpp.o"
  "CMakeFiles/gscalar_sim.dir/memory/memory_system.cpp.o.d"
  "CMakeFiles/gscalar_sim.dir/reference.cpp.o"
  "CMakeFiles/gscalar_sim.dir/reference.cpp.o.d"
  "CMakeFiles/gscalar_sim.dir/simt_stack.cpp.o"
  "CMakeFiles/gscalar_sim.dir/simt_stack.cpp.o.d"
  "CMakeFiles/gscalar_sim.dir/sm.cpp.o"
  "CMakeFiles/gscalar_sim.dir/sm.cpp.o.d"
  "CMakeFiles/gscalar_sim.dir/trace.cpp.o"
  "CMakeFiles/gscalar_sim.dir/trace.cpp.o.d"
  "CMakeFiles/gscalar_sim.dir/warp_state.cpp.o"
  "CMakeFiles/gscalar_sim.dir/warp_state.cpp.o.d"
  "libgscalar_sim.a"
  "libgscalar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gscalar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
