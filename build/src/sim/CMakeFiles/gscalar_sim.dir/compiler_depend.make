# Empty compiler generated dependencies file for gscalar_sim.
# This may be replaced when dependencies are built.
