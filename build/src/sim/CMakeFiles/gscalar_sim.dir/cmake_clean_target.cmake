file(REMOVE_RECURSE
  "libgscalar_sim.a"
)
