file(REMOVE_RECURSE
  "libgscalar_workloads.a"
)
