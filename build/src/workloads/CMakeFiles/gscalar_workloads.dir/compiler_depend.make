# Empty compiler generated dependencies file for gscalar_workloads.
# This may be replaced when dependencies are built.
