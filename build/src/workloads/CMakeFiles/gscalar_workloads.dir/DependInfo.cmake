
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/data_gen.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/data_gen.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/data_gen.cpp.o.d"
  "/root/repo/src/workloads/kernels/acf.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/acf.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/acf.cpp.o.d"
  "/root/repo/src/workloads/kernels/bp.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/bp.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/bp.cpp.o.d"
  "/root/repo/src/workloads/kernels/bt.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/bt.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/bt.cpp.o.d"
  "/root/repo/src/workloads/kernels/cc.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/cc.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/cc.cpp.o.d"
  "/root/repo/src/workloads/kernels/hs.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/hs.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/hs.cpp.o.d"
  "/root/repo/src/workloads/kernels/hw.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/hw.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/hw.cpp.o.d"
  "/root/repo/src/workloads/kernels/lbm.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/lbm.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/lbm.cpp.o.d"
  "/root/repo/src/workloads/kernels/lc.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/lc.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/lc.cpp.o.d"
  "/root/repo/src/workloads/kernels/mg.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/mg.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/mg.cpp.o.d"
  "/root/repo/src/workloads/kernels/mm.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/mm.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/mm.cpp.o.d"
  "/root/repo/src/workloads/kernels/mq.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/mq.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/mq.cpp.o.d"
  "/root/repo/src/workloads/kernels/mv.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/mv.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/mv.cpp.o.d"
  "/root/repo/src/workloads/kernels/pf.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/pf.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/pf.cpp.o.d"
  "/root/repo/src/workloads/kernels/sad.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/sad.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/sad.cpp.o.d"
  "/root/repo/src/workloads/kernels/sr1.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/sr1.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/sr1.cpp.o.d"
  "/root/repo/src/workloads/kernels/sr2.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/sr2.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/sr2.cpp.o.d"
  "/root/repo/src/workloads/kernels/st.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/st.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/kernels/st.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/gscalar_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/gscalar_workloads.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gscalar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gscalar_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gscalar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/scalar/CMakeFiles/gscalar_scalar.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/gscalar_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
