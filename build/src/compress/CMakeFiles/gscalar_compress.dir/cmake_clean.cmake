file(REMOVE_RECURSE
  "CMakeFiles/gscalar_compress.dir/affine.cpp.o"
  "CMakeFiles/gscalar_compress.dir/affine.cpp.o.d"
  "CMakeFiles/gscalar_compress.dir/array_model.cpp.o"
  "CMakeFiles/gscalar_compress.dir/array_model.cpp.o.d"
  "CMakeFiles/gscalar_compress.dir/bdi_codec.cpp.o"
  "CMakeFiles/gscalar_compress.dir/bdi_codec.cpp.o.d"
  "CMakeFiles/gscalar_compress.dir/byte_mask_codec.cpp.o"
  "CMakeFiles/gscalar_compress.dir/byte_mask_codec.cpp.o.d"
  "CMakeFiles/gscalar_compress.dir/reg_meta.cpp.o"
  "CMakeFiles/gscalar_compress.dir/reg_meta.cpp.o.d"
  "libgscalar_compress.a"
  "libgscalar_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gscalar_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
