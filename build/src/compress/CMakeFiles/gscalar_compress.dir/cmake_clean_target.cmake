file(REMOVE_RECURSE
  "libgscalar_compress.a"
)
