# Empty compiler generated dependencies file for gscalar_compress.
# This may be replaced when dependencies are built.
