
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/affine.cpp" "src/compress/CMakeFiles/gscalar_compress.dir/affine.cpp.o" "gcc" "src/compress/CMakeFiles/gscalar_compress.dir/affine.cpp.o.d"
  "/root/repo/src/compress/array_model.cpp" "src/compress/CMakeFiles/gscalar_compress.dir/array_model.cpp.o" "gcc" "src/compress/CMakeFiles/gscalar_compress.dir/array_model.cpp.o.d"
  "/root/repo/src/compress/bdi_codec.cpp" "src/compress/CMakeFiles/gscalar_compress.dir/bdi_codec.cpp.o" "gcc" "src/compress/CMakeFiles/gscalar_compress.dir/bdi_codec.cpp.o.d"
  "/root/repo/src/compress/byte_mask_codec.cpp" "src/compress/CMakeFiles/gscalar_compress.dir/byte_mask_codec.cpp.o" "gcc" "src/compress/CMakeFiles/gscalar_compress.dir/byte_mask_codec.cpp.o.d"
  "/root/repo/src/compress/reg_meta.cpp" "src/compress/CMakeFiles/gscalar_compress.dir/reg_meta.cpp.o" "gcc" "src/compress/CMakeFiles/gscalar_compress.dir/reg_meta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gscalar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
