file(REMOVE_RECURSE
  "libgscalar_common.a"
)
