file(REMOVE_RECURSE
  "CMakeFiles/gscalar_common.dir/config.cpp.o"
  "CMakeFiles/gscalar_common.dir/config.cpp.o.d"
  "CMakeFiles/gscalar_common.dir/events.cpp.o"
  "CMakeFiles/gscalar_common.dir/events.cpp.o.d"
  "CMakeFiles/gscalar_common.dir/log.cpp.o"
  "CMakeFiles/gscalar_common.dir/log.cpp.o.d"
  "CMakeFiles/gscalar_common.dir/table.cpp.o"
  "CMakeFiles/gscalar_common.dir/table.cpp.o.d"
  "libgscalar_common.a"
  "libgscalar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gscalar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
