# Empty compiler generated dependencies file for gscalar_common.
# This may be replaced when dependencies are built.
