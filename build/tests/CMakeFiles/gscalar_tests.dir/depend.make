# Empty dependencies file for gscalar_tests.
# This may be replaced when dependencies are built.
