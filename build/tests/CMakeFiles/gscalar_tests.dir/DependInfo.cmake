
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_affine.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_affine.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_affine.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_array_model.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_array_model.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_array_model.cpp.o.d"
  "/root/repo/tests/test_bdi_codec.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_bdi_codec.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_bdi_codec.cpp.o.d"
  "/root/repo/tests/test_bit_utils.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_bit_utils.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_bit_utils.cpp.o.d"
  "/root/repo/tests/test_byte_mask_codec.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_byte_mask_codec.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_byte_mask_codec.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_differential.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_differential.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_differential.cpp.o.d"
  "/root/repo/tests/test_eligibility.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_eligibility.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_eligibility.cpp.o.d"
  "/root/repo/tests/test_energy_model.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_energy_model.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_energy_model.cpp.o.d"
  "/root/repo/tests/test_events.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_events.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_events.cpp.o.d"
  "/root/repo/tests/test_functional.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_functional.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_functional.cpp.o.d"
  "/root/repo/tests/test_gmem.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_gmem.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_gmem.cpp.o.d"
  "/root/repo/tests/test_gpu_integration.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_gpu_integration.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_gpu_integration.cpp.o.d"
  "/root/repo/tests/test_hardware_cost.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_hardware_cost.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_hardware_cost.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_kernel_builder.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_kernel_builder.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_kernel_builder.cpp.o.d"
  "/root/repo/tests/test_memory_features.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_memory_features.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_memory_features.cpp.o.d"
  "/root/repo/tests/test_memory_system.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_memory_system.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_memory_system.cpp.o.d"
  "/root/repo/tests/test_opcode.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_opcode.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_opcode.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_reg_meta.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_reg_meta.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_reg_meta.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_runner.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_runner.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_runner.cpp.o.d"
  "/root/repo/tests/test_scoreboard.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_scoreboard.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_scoreboard.cpp.o.d"
  "/root/repo/tests/test_simt_stack.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_simt_stack.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_simt_stack.cpp.o.d"
  "/root/repo/tests/test_sm_integration.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_sm_integration.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_sm_integration.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_timing_properties.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_timing_properties.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_timing_properties.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_warp64.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_warp64.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_warp64.cpp.o.d"
  "/root/repo/tests/test_warp_state.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_warp_state.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_warp_state.cpp.o.d"
  "/root/repo/tests/test_workload_structure.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_workload_structure.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_workload_structure.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/gscalar_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/gscalar_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/gscalar_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/gscalar_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gscalar_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gscalar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/scalar/CMakeFiles/gscalar_scalar.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gscalar_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/gscalar_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gscalar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
