/**
 * @file
 * Structural hardware cost model of the compression logic (Table 3) and
 * its comparison against the BDI implementation of Warped-Compression.
 * Gate counts are derived from the circuit structure the paper
 * describes; the per-gate constants model a commercial 40 nm standard
 * cell library (NAND2-equivalent area, FO4-style delay, and dynamic
 * power per gate at 1.4 GHz).
 */

#ifndef GSCALAR_POWER_HARDWARE_COST_HPP
#define GSCALAR_POWER_HARDWARE_COST_HPP

#include <string>

#include "compress/codec.hpp"

namespace gs
{

/** 40 nm standard-cell technology constants. */
struct TechParams
{
    double nand2AreaUm2 = 0.94;   ///< NAND2-equivalent footprint
    double dffNand2Equiv = 5.2;   ///< one flip-flop in NAND2 equivalents
    double gateDelayNs = 0.022;   ///< one NAND2-equivalent logic level
    double dffSetupNs = 0.08;     ///< register setup + clk->q
    /** Dynamic power per NAND2-equivalent at 1.4 GHz, typical activity. */
    double powerPerGateUw = 0.55;
    double clockGhz = 1.4;
};

/** Area/delay/power of one synthesized block (Table 3 row). */
struct BlockCost
{
    double gates = 0;    ///< NAND2 equivalents (including flops)
    double areaUm2 = 0;
    double delayNs = 0;
    double powerMw = 0;
};

/**
 * Structural parameters of the codec datapath: a 32-lane, 4-byte
 * register with one 1024-bit pipeline register per block (§5.1).
 */
struct CodecGeometry
{
    unsigned lanes = 32;
    unsigned bytesPerLane = 4;
    unsigned pipelineBits = 1024;
};

/** Compressor: byte comparators + all-ones reduce + broadcast (Fig. 7). */
BlockCost compressorCost(const CodecGeometry &g = {},
                         const TechParams &t = {});

/** Decompressor: per-byte BVR/array select muxes (Fig. 5). */
BlockCost decompressorCost(const CodecGeometry &g = {},
                           const TechParams &t = {});

/** BDI compressor of [4]: 32 x 32-bit subtractors + packing network. */
BlockCost bdiCompressorCost(const CodecGeometry &g = {},
                            const TechParams &t = {});

/** Per-SM and per-chip overheads (§5.1). */
struct SmOverheads
{
    unsigned decompressorsPerSm = 16; ///< one per operand collector
    unsigned compressorsPerSm = 4;    ///< one per execution pipeline
    double codecPowerPerSmW = 0;
    double codecAreaPerSmMm2 = 0;
    /** RF area growth from the BVR/EBR/flag arrays (~3 %, 7 % with
     *  half-register compression). */
    double rfAreaOverheadSingle = 0.03;
    double rfAreaOverheadHalf = 0.07;
};

SmOverheads smOverheads(const TechParams &t = {});

/** Table 3 blocks priced for one registered codec (area hooks). */
struct CodecHardwareCost
{
    BlockCost compressor;
    BlockCost decompressor;
    /** RF area growth including the codec's extra metadata state. */
    double rfAreaOverheadSingle = 0;
    double rfAreaOverheadHalf = 0;
};

/**
 * The byte-mask block costs scaled by @p codec's areaScale() hook: the
 * codec-shootout bench prices every registered scheme through this.
 * The byte-mask codec scales by 1.0 everywhere and reproduces Table 3.
 */
CodecHardwareCost codecHardwareCost(const compress::Codec &codec,
                                    const CodecGeometry &g = {},
                                    const TechParams &t = {});

/** Render Table 3 plus the BDI comparison. */
std::string describeHardwareCost();

} // namespace gs

#endif // GSCALAR_POWER_HARDWARE_COST_HPP
