#include "hardware_cost.hpp"

#include <sstream>

#include "common/table.hpp"

namespace gs
{

namespace
{

/** Routing/wiring overhead on top of raw standard-cell area. */
constexpr double kRoutingAreaFactor = 1.18;
/** Wire-delay degradation on top of gate delay. */
constexpr double kWireDelayFactor = 1.15;
/** Dynamic power of one flip-flop incl. local clock at 1.4 GHz (uW). */
constexpr double kFlopPowerUw = 13.0;
/** Dynamic power of one logic NAND2-equivalent at full activity (uW). */
constexpr double kLogicPowerUw = 1.4;

struct GateBudget
{
    double flops = 0;      ///< flip-flop count
    double logicGates = 0; ///< NAND2 equivalents excluding flops
    double levels = 0;     ///< logic depth in NAND2-equivalent levels
    double activity = 1.0; ///< switching activity of the logic part
};

BlockCost
price(const GateBudget &b, const TechParams &t)
{
    BlockCost c;
    c.gates = b.logicGates + b.flops * t.dffNand2Equiv;
    c.areaUm2 = c.gates * t.nand2AreaUm2 * kRoutingAreaFactor;
    c.delayNs =
        t.dffSetupNs + b.levels * t.gateDelayNs * kWireDelayFactor;
    const double scale = t.clockGhz / 1.4;
    c.powerMw = (b.flops * kFlopPowerUw +
                 b.logicGates * kLogicPowerUw * b.activity) *
                1e-3 * scale;
    return c;
}

} // namespace

BlockCost
compressorCost(const CodecGeometry &g, const TechParams &t)
{
    const unsigned lanes = g.lanes;
    const unsigned bytes = g.bytesPerLane;

    GateBudget b;
    // (lanes-1) x bytes 8-bit equality comparators: 8 XNOR2 (2 NAND2-eq
    // each) + a 7-gate AND reduce.
    const double comparators = double(lanes - 1) * bytes * (8 * 2 + 7);
    // All-ones detector per byte position: (lanes-2)-gate AND tree.
    const double all_ones = double(bytes) * (lanes - 2);
    // Broadcast network for divergent comparison (Fig. 7 (a)): a 2:1
    // byte mux per lane-byte plus active-lane steering.
    const double broadcast =
        double(lanes) * bytes * 8 * 1.2 + double(lanes) * 6;
    // enc[3:0] priority encoder.
    const double encoder = 40;

    b.logicGates = comparators + all_ones + broadcast + encoder;
    b.flops = double(g.pipelineBits) + 36; // data + base/enc pipeline
    // XNOR (2) + byte AND-tree (3) + broadcast mux (2) + lane AND tree
    // (log2(lanes) ~ 5) + encode (2) + fan-out buffering (8).
    b.levels = 22;
    // Comparator/broadcast outputs toggle far less than the datapath.
    b.activity = 0.5;
    return price(b, t);
}

BlockCost
decompressorCost(const CodecGeometry &g, const TechParams &t)
{
    GateBudget b;
    // One 2:1 byte-select mux per lane-byte (array byte vs BVR byte).
    const double muxes = double(g.lanes) * g.bytesPerLane * 8 * 1.2;
    const double decode = 64; // enc -> per-byte select decode
    b.logicGates = muxes + decode;
    b.flops = double(g.pipelineBits);
    // decode (3) + select (2) + fan-out buffering over 1024 bits (5).
    b.levels = 10;
    b.activity = 1.0;
    return price(b, t);
}

BlockCost
bdiCompressorCost(const CodecGeometry &g, const TechParams &t)
{
    GateBudget b;
    // One 32-bit subtractor per lane (~250 NAND2-eq) plus delta-width
    // detection and a multi-level packing network able to place deltas
    // of diverse sizes (1/2/4 bytes) at arbitrary byte offsets.
    const double subtractors = double(g.lanes) * 250;
    const double detect = 500;
    const double packing = double(g.pipelineBits) * 3.6;
    b.logicGates = subtractors + detect + packing;
    b.flops = double(g.pipelineBits) + 40;
    b.levels = 30; // carry chains + packing levels
    b.activity = 0.5;
    return price(b, t);
}

SmOverheads
smOverheads(const TechParams &t)
{
    SmOverheads o;
    const BlockCost comp = compressorCost({}, t);
    const BlockCost decomp = decompressorCost({}, t);
    o.codecPowerPerSmW = (o.compressorsPerSm * comp.powerMw +
                          o.decompressorsPerSm * decomp.powerMw) *
                         1e-3;
    o.codecAreaPerSmMm2 = (o.compressorsPerSm * comp.areaUm2 +
                           o.decompressorsPerSm * decomp.areaUm2) *
                          1e-6;
    return o;
}

CodecHardwareCost
codecHardwareCost(const compress::Codec &codec, const CodecGeometry &g,
                  const TechParams &t)
{
    const compress::CodecAreaScale as = codec.areaScale();
    // Area, gate count and dynamic power scale with the datapath the
    // codec actually builds; delay is structural (logic depth), which
    // the scale factors do not model.
    const auto scale = [](BlockCost c, double f) {
        c.gates *= f;
        c.areaUm2 *= f;
        c.powerMw *= f;
        return c;
    };
    CodecHardwareCost hc;
    hc.compressor = scale(compressorCost(g, t), as.compressor);
    hc.decompressor = scale(decompressorCost(g, t), as.decompressor);
    const SmOverheads o = smOverheads(t);
    hc.rfAreaOverheadSingle = o.rfAreaOverheadSingle * as.rfOverhead;
    hc.rfAreaOverheadHalf = o.rfAreaOverheadHalf * as.rfOverhead;
    return hc;
}

std::string
describeHardwareCost()
{
    const BlockCost comp = compressorCost();
    const BlockCost decomp = decompressorCost();
    const BlockCost bdi = bdiCompressorCost();
    const SmOverheads o = smOverheads();

    std::ostringstream os;
    Table t3("Table 3: codec area, delay and power at 1.4 GHz (40 nm)");
    t3.row({"", "model", "paper", "", ""});
    t3.row({"block", "area um^2 / delay ns / power mW",
            "area um^2 / delay ns / power mW", "", ""});
    t3.row({"decompressor",
            Table::num(decomp.areaUm2, 0) + " / " +
                Table::num(decomp.delayNs, 2) + " / " +
                Table::num(decomp.powerMw, 2),
            "7332 / 0.35 / 15.86", "", ""});
    t3.row({"compressor",
            Table::num(comp.areaUm2, 0) + " / " +
                Table::num(comp.delayNs, 2) + " / " +
                Table::num(comp.powerMw, 2),
            "11624 / 0.67 / 16.22", "", ""});
    os << t3.str() << "\n";

    Table ov("Per-SM overheads (Section 5.1)");
    ov.row({"metric", "model", "paper"});
    ov.row({"codec power per SM (W)", Table::num(o.codecPowerPerSmW, 2),
            "0.32 (1.6%)"});
    ov.row({"codec area per SM (mm^2)",
            Table::num(o.codecAreaPerSmMm2, 2), "0.16 (0.7%)"});
    ov.row({"our compressor vs BDI area",
            Table::pct(comp.areaUm2 / bdi.areaUm2), "52%"});
    ov.row({"RF area overhead (single/half)",
            Table::pct(o.rfAreaOverheadSingle) + " / " +
                Table::pct(o.rfAreaOverheadHalf),
            "3% / 7%"});
    os << ov.str();
    return os.str();
}

} // namespace gs
