/**
 * @file
 * GPUWattch-style event-based energy model. The timing simulator counts
 * micro-architectural events (EventCounts); this module prices them in
 * joules and produces per-component power and the IPC/W efficiency
 * metric of Fig. 11.
 *
 * Absolute constants are calibrated, not measured: they are chosen so
 * the baseline GTX 480-like GPU reproduces GPUWattch's published
 * component shares (execution units ~24 % and register file ~16 % of
 * chip power on compute-intensive workloads, SFU ops 3-24x an FP op,
 * BVR/EBR access 5.2 % of a full vector-register access).
 */

#ifndef GSCALAR_POWER_ENERGY_MODEL_HPP
#define GSCALAR_POWER_ENERGY_MODEL_HPP

#include <string>

#include "common/arch_mode.hpp"
#include "common/config.hpp"
#include "common/events.hpp"

namespace gs
{

/** Per-event energies (picojoules) and static power (watts). */
struct EnergyParams
{
    // execution units
    double eFpLaneOpPj = 34.0;   ///< one FP32 lane op = 1.0 energy units
    double eMemLanePj = 17.0;    ///< address generation per lane

    // register file
    double eArrayAccessPj = 40.0; ///< one 128-bit SRAM array activation
    /** BVR/EBR/flag array: 5.2 % of a full 1024-bit register access. */
    double eBvrAccessPj = 0.052 * 8 * 40.0;
    double eScalarRfAccessPj = 24.0; ///< prior-work scalar RF [3]
    double eCrossbarPerBytePj = 0.7;
    double eOperandCollectorPj = 10.0;

    // front end
    double eFrontendPerInstPj = 42.0; ///< fetch + decode + schedule

    // codec (Table 3: 16.22 / 15.86 mW at 1.4 GHz)
    double eCompressorUsePj = 11.6;
    double eDecompressorUsePj = 11.3;

    // memory hierarchy
    double eL1AccessPj = 160.0;
    double eL2AccessPj = 420.0;
    double eDramAccessPj = 8000.0;
    double eSharedAccessPj = 90.0;

    // static / background power (watts)
    double staticPerSmW = 0.65;
    double staticChipW = 12.5;        ///< NoC, MCs, L2 background
    /** Codec leakage only: Table 3's mW figures are switching power at
     *  1.4 GHz and are already charged per use. */
    double codecStaticPerSmW = 0.04;
    /** Prior-work scalar architectures add a dedicated scalar pipeline
     *  and scalar RF per SM (§1); G-Scalar reuses existing lanes. */
    double scalarRfStaticPerSmW = 0.21;
    double bdiStaticPerSmW = 0.09;    ///< W-C codec+interconnect (~2x ours)
};

/** Power breakdown of one run (watts). */
struct PowerReport
{
    double frontendW = 0;
    double executeW = 0;  ///< ALU + SFU + MEM lanes
    double sfuW = 0;      ///< SFU share of executeW (reported separately)
    double regFileW = 0;  ///< arrays + BVR + scalar RF + crossbar + OC
    double codecW = 0;    ///< compressor/decompressor dynamic + static
    double memoryW = 0;   ///< L1 + L2 + DRAM + shared
    double staticW = 0;

    double totalW = 0;
    double ipc = 0;
    double seconds = 0;

    /** The paper's efficiency metric (Fig. 11). */
    double ipcPerWatt() const { return totalW > 0 ? ipc / totalW : 0; }

    /** Render as an ASCII table. */
    std::string describe() const;
};

/** Price the events of one run. */
PowerReport computePower(const EventCounts &ev, const ArchConfig &cfg,
                         const EnergyParams &p = {});

/**
 * Register-file-only dynamic energy (joules) under the four RF schemes
 * of Fig. 12, computed from the shadow counters of a single run.
 */
struct RfEnergyBreakdown
{
    double baselineJ = 0;   ///< word-sliced baseline RF
    double scalarOnlyJ = 0; ///< scalar RF technique [3]
    double bdiJ = 0;        ///< Warped-Compression [4]
    double oursJ = 0;       ///< byte-mask compression (this paper)
};

RfEnergyBreakdown computeRfEnergy(const EventCounts &ev,
                                  const EnergyParams &p = {});

} // namespace gs

#endif // GSCALAR_POWER_ENERGY_MODEL_HPP
