#include "energy_model.hpp"

#include "common/table.hpp"
#include "compress/codec.hpp"

namespace gs
{

namespace
{
constexpr double kPjToJ = 1e-12;
} // namespace

PowerReport
computePower(const EventCounts &ev, const ArchConfig &cfg,
             const EnergyParams &p)
{
    PowerReport r;
    r.seconds = double(ev.cycles) / (cfg.coreClockGhz * 1e9);
    r.ipc = ev.ipc();
    if (r.seconds <= 0)
        return r;

    // ---- dynamic energies (joules) -----------------------------------------
    const double alu_j = ev.aluEnergyUnits * p.eFpLaneOpPj * kPjToJ;
    const double sfu_j = ev.sfuEnergyUnits * p.eFpLaneOpPj * kPjToJ;
    const double mem_lane_j = double(ev.memLaneOps) * p.eMemLanePj * kPjToJ;

    // The byte-mask modes run through the configured codec, whose
    // energy hooks scale the calibrated byte-mask constants. The
    // default codec scales by 1.0 everywhere (x * 1.0 == x in IEEE
    // arithmetic, so the default report is bit-identical); the
    // Warped-Compression mode keeps its own calibrated constants.
    const compress::CodecEnergyScale cs =
        usesByteMaskCompression(cfg.mode)
            ? compress::codecFor(cfg.codec).energyScale()
            : compress::CodecEnergyScale{};

    const double rf_j =
        (double(ev.rfArrayReads + ev.rfArrayWrites) * p.eArrayAccessPj +
         double(ev.bvrAccesses) * (p.eBvrAccessPj * cs.metadata) +
         double(ev.scalarRfAccesses) * p.eScalarRfAccessPj +
         double(ev.crossbarBytes) * p.eCrossbarPerBytePj +
         double(ev.ocAllocations) * p.eOperandCollectorPj) *
        kPjToJ;

    const double fe_j =
        double(ev.issuedInsts) * p.eFrontendPerInstPj * kPjToJ;

    const double codec_dyn_j =
        (double(ev.compressorUses) * (p.eCompressorUsePj * cs.compressor) +
         double(ev.decompressorUses) *
             (p.eDecompressorUsePj * cs.decompressor)) *
        kPjToJ;

    const double mem_j =
        (double(ev.l1Accesses) * p.eL1AccessPj +
         double(ev.l2Accesses) * p.eL2AccessPj +
         double(ev.dramAccesses) * p.eDramAccessPj +
         double(ev.sharedAccesses) * p.eSharedAccessPj) *
        kPjToJ;

    // ---- static power --------------------------------------------------------
    double static_w = p.staticPerSmW * cfg.numSms + p.staticChipW;
    double codec_static_w = 0;
    if (usesByteMaskCompression(cfg.mode))
        codec_static_w =
            p.codecStaticPerSmW * cs.staticPower * cfg.numSms;
    else if (usesBdiCompression(cfg.mode))
        codec_static_w = p.bdiStaticPerSmW * cfg.numSms;
    if (usesSingleBankScalarRf(cfg.mode))
        static_w += p.scalarRfStaticPerSmW * cfg.numSms;

    // ---- assemble -------------------------------------------------------------
    r.frontendW = fe_j / r.seconds;
    r.executeW = (alu_j + sfu_j + mem_lane_j) / r.seconds;
    r.sfuW = sfu_j / r.seconds;
    r.regFileW = rf_j / r.seconds;
    r.codecW = codec_dyn_j / r.seconds + codec_static_w;
    r.memoryW = mem_j / r.seconds;
    r.staticW = static_w;
    r.totalW = r.frontendW + r.executeW + r.regFileW + r.codecW +
               r.memoryW + r.staticW;
    return r;
}

RfEnergyBreakdown
computeRfEnergy(const EventCounts &ev, const EnergyParams &p)
{
    RfEnergyBreakdown b;
    b.baselineJ =
        double(ev.shadowBaseArrayReads + ev.shadowBaseArrayWrites) *
        p.eArrayAccessPj * kPjToJ;
    b.scalarOnlyJ =
        (double(ev.shadowScalarArrayReads + ev.shadowScalarArrayWrites) *
             p.eArrayAccessPj +
         double(ev.shadowScalarRfAccesses) * p.eScalarRfAccessPj) *
        kPjToJ;
    b.bdiJ = (double(ev.bdiArrayReads + ev.bdiArrayWrites) *
                  p.eArrayAccessPj +
              double(ev.bdiMetaAccesses) * p.eBvrAccessPj) *
             kPjToJ;
    b.oursJ =
        (double(ev.shadowOursArrayReads + ev.shadowOursArrayWrites) *
             p.eArrayAccessPj +
         double(ev.shadowOursBvrAccesses) * p.eBvrAccessPj) *
        kPjToJ;
    return b;
}

std::string
PowerReport::describe() const
{
    Table t("Power breakdown");
    t.row({"component", "watts", "share"});
    auto add = [&](const char *name, double w) {
        t.row({name, Table::num(w, 2),
               Table::pct(totalW > 0 ? w / totalW : 0)});
    };
    add("front-end", frontendW);
    add("execute", executeW);
    add("  (sfu)", sfuW);
    add("register file", regFileW);
    add("codec", codecW);
    add("memory", memoryW);
    add("static", staticW);
    t.row({"total", Table::num(totalW, 2), "100%"});
    t.row({"IPC", Table::num(ipc, 3), ""});
    t.row({"IPC/W", Table::num(ipcPerWatt(), 4), ""});
    return t.str();
}

} // namespace gs
