/**
 * @file
 * Wire protocol between gscalard and its clients: length-prefixed
 * frames over a unix-domain stream socket. Each frame is a u32
 * little-endian payload length followed by one store/serial.hpp blob
 * (magic + version + kind header, tagged fields, FNV trailer), so
 * framing errors and payload corruption are caught independently.
 *
 * Message kinds:
 *   Ping / Pong      liveness probe, empty payload
 *   Request          run request: workload abbreviation + ArchConfig
 *   Response         status + error string + RunResult on success
 *   StatsRequest     daemon counters probe, empty payload
 *   StatsResponse    uptime, request/cache counters, per-workload
 *                    latency histograms (nested WorkloadStats blobs)
 *
 * The protocol is strictly request/response per connection; a client
 * may pipeline multiple requests sequentially on one socket.
 */

#ifndef GSCALAR_SERVE_PROTOCOL_HPP
#define GSCALAR_SERVE_PROTOCOL_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "obs/stats.hpp"
#include "store/serial.hpp"

namespace gs
{

/** Largest accepted frame payload; bigger frames drop the connection. */
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/** Number of admission-priority bands carried by RunRequest::priority. */
inline constexpr std::uint32_t kNumPriorities = 3;

/** Default request priority (the middle band). */
inline constexpr std::uint32_t kDefaultPriority = 1;

/**
 * Socket path used when none is given: $GS_SOCKET, else
 * $XDG_RUNTIME_DIR/gscalard.sock, else /tmp/gscalard-<uid>.sock.
 */
std::string defaultSocketPath();

/** A parsed "host:port" TCP connect/listen target. */
struct ConnectTarget
{
    std::string host;
    std::uint16_t port = 0;
};

/**
 * Strict-parse a "host:port" target in the --jobs idiom: the last ':'
 * splits host from port, the port must be digits-only in [1, 65535],
 * and the host must be non-empty (IPv6 literals may be bracketed,
 * "[::1]:4242"). Empty optional (with *error) on anything else.
 * @p allowPortZero admits port 0 (listen targets: ephemeral bind).
 */
std::optional<ConnectTarget>
parseConnectTarget(const std::string &spec, std::string *error = nullptr,
                   bool allowPortZero = false);

// A run request on the wire is the harness RunRequest (runner.hpp);
// only the (workload, cfg) pair is serialized — tracer and seed
// override are local-only.

/** Result status of a RunResponse. */
enum class ResponseStatus : std::uint32_t
{
    Ok = 0,
    BadRequest = 1,    ///< malformed blob, unknown workload, bad config
    Timeout = 2,       ///< simulation exceeded the per-request budget
    ShuttingDown = 3,  ///< server is draining; retry elsewhere/later
    InternalError = 4, ///< simulation failed server-side
    Overloaded = 5,    ///< connection cap reached; retry with backoff
};

/** Human-readable name of a status (for logs and CLI errors). */
std::string_view responseStatusName(ResponseStatus s);

/**
 * Whether a client should retry a request that drew this status.
 * ShuttingDown and Overloaded are transient by definition; the rest
 * describe the request (BadRequest) or the work itself.
 */
bool retryableStatus(ResponseStatus s);

struct RunResponse
{
    ResponseStatus status = ResponseStatus::InternalError;
    std::string error;  ///< empty when status == Ok
    RunResult result;   ///< valid only when status == Ok
};

/** Request-latency histogram of one workload, as served by the daemon. */
struct WorkloadLatency
{
    std::string workload;
    LatencyHistogram latency;
};

/**
 * Live daemon counters returned for a StatsRequest: process-level
 * figures (uptime, requests, connections), the embedded engine's
 * snapshot (pool geometry, memo/disk cache counters, simulation
 * throughput), and one request-latency histogram per workload served.
 */
struct DaemonStats
{
    double uptimeSeconds = 0;
    std::uint64_t requestsServed = 0; ///< Ok responses only
    std::uint32_t activeConnections = 0;
    std::uint32_t jobs = 0;
    std::uint64_t queueDepth = 0;
    std::uint64_t peakQueueDepth = 0;
    std::uint64_t cacheHits = 0;   ///< in-memory memo hits
    std::uint64_t cacheMisses = 0; ///< tasks actually scheduled
    std::uint64_t diskCacheHits = 0;
    std::uint64_t diskCacheStores = 0;
    double simWallSeconds = 0; ///< summed simulate wall clock
    std::uint64_t simCycles = 0;
    std::uint64_t warpInsts = 0;
    std::uint64_t overloads = 0;    ///< connections shed at the cap
    std::uint64_t idleCloses = 0;   ///< connections idle-timed-out
    std::uint64_t frameRejects = 0; ///< frames over the size guard

    // Reactor / coalescing tier (appended tags; old daemons leave the
    // in-memory zeros, so mixed-version stats probes keep working).
    std::uint64_t coalesceLeaders = 0;    ///< flights actually computed
    std::uint64_t coalesceFollowers = 0;  ///< submits served by a flight
    std::uint64_t coalescePromotions = 0; ///< leaders replaced after a crash
    std::uint64_t batches = 0;            ///< reactor dispatch batches
    std::uint64_t batchPeak = 0;          ///< largest batch (requests)
    std::uint64_t queueSheds = 0;         ///< requests shed by admission
    /** Current and peak queued flights per priority band (0 = lowest). */
    std::array<std::uint64_t, kNumPriorities> queueDepths{};
    std::array<std::uint64_t, kNumPriorities> queuePeaks{};
    /** Reactor loop iteration latency (epoll wake to quiesce). */
    LatencyHistogram reactorLoop;

    std::vector<WorkloadLatency> workloads; ///< sorted by name
};

// ---- message serialization ----------------------------------------------

std::vector<std::uint8_t> serializeRequest(const RunRequest &req);
std::optional<RunRequest> deserializeRequest(const std::uint8_t *data,
                                             std::size_t size,
                                             std::string *error = nullptr);

std::vector<std::uint8_t> serializeResponse(const RunResponse &resp);
std::optional<RunResponse> deserializeResponse(const std::uint8_t *data,
                                               std::size_t size,
                                               std::string *error = nullptr);

std::vector<std::uint8_t> serializePing();
std::vector<std::uint8_t> serializePong();

std::vector<std::uint8_t> serializeStatsRequest();
std::vector<std::uint8_t> serializeStatsResponse(const DaemonStats &s);
std::optional<DaemonStats>
deserializeStatsResponse(const std::uint8_t *data, std::size_t size,
                         std::string *error = nullptr);

/** Kind byte of a blob whose envelope looks sane; nullopt otherwise. */
std::optional<BlobKind> peekKind(const std::uint8_t *data,
                                 std::size_t size);

// ---- framing over a connected socket ------------------------------------

/** Write one length-prefixed frame; false on any I/O error. */
bool writeFrame(int fd, const std::vector<std::uint8_t> &payload);

/**
 * Read one frame into @p payload. @p maxFrame caps the accepted
 * payload size (never above kMaxFrameBytes).
 * @return 1 on success, 0 on clean EOF before any byte of a frame,
 *         -1 on I/O error or mid-frame EOF, -2 on an oversized frame
 *         (so servers can count guard rejections separately).
 */
int readFrame(int fd, std::vector<std::uint8_t> &payload,
              std::string *error = nullptr,
              std::uint32_t maxFrame = kMaxFrameBytes);

} // namespace gs

#endif // GSCALAR_SERVE_PROTOCOL_HPP
