#include "client.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "fault/health.hpp"

namespace gs
{

ClientOptions
ClientOptions::fromEnv()
{
    ClientOptions opts;
    if (const char *env = std::getenv("GS_CONNECT_TIMEOUT_MS");
        env && *env) {
        char *end = nullptr;
        const double ms = std::strtod(env, &end);
        if (end && *end == '\0' && ms >= 0)
            opts.connectTimeoutSec = ms / 1000.0;
        else
            GS_WARN("ignoring GS_CONNECT_TIMEOUT_MS='", env,
                    "' (want a non-negative number of milliseconds)");
    }
    if (const char *env = std::getenv("GS_RETRIES"); env && *env) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end && *end == '\0' && v >= 1 && v <= 100)
            opts.attempts = unsigned(v);
        else
            GS_WARN("ignoring GS_RETRIES='", env,
                    "' (want an integer in [1, 100])");
    }
    if (const char *env = std::getenv("GS_RETRY_DEADLINE_MS");
        env && *env) {
        char *end = nullptr;
        const double ms = std::strtod(env, &end);
        if (end && *end == '\0' && ms >= 0)
            opts.retryDeadlineSec = ms / 1000.0;
        else
            GS_WARN("ignoring GS_RETRY_DEADLINE_MS='", env,
                    "' (want a non-negative number of milliseconds)");
    }
    return opts;
}

GscalarClient::GscalarClient(std::string socketPath,
                             std::optional<ClientOptions> opts)
    : path_(socketPath.empty() ? defaultSocketPath()
                               : std::move(socketPath)),
      opts_(opts ? *opts : ClientOptions::fromEnv())
{
}

GscalarClient::GscalarClient(ConnectTarget target,
                             std::optional<ClientOptions> opts)
    : path_("tcp://" + target.host + ":" + std::to_string(target.port)),
      target_(std::move(target)),
      opts_(opts ? *opts : ClientOptions::fromEnv())
{
}

GscalarClient::~GscalarClient()
{
    close();
}

void
GscalarClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
GscalarClient::connect(std::string *error)
{
    close();
    return target_ ? connectTcp(error) : connectUnix(error);
}

std::string
GscalarClient::awaitConnect(std::chrono::steady_clock::time_point deadline)
{
    // Connect in flight (e.g. the daemon's backlog is full): poll
    // for writability until the deadline, never forever.
    for (;;) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
        if (left.count() <= 0) {
            healthCounters().clientConnectTimeouts.fetch_add(
                1, std::memory_order_relaxed);
            return "connect timed out after " +
                   std::to_string(opts_.connectTimeoutSec) + "s";
        }
        pollfd pfd{fd_, POLLOUT, 0};
        const int rc = ::poll(&pfd, 1, int(left.count()));
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return std::string("poll: ") + std::strerror(errno);
        }
        if (rc > 0)
            break;
        // rc == 0: poll timed out; loop re-checks the deadline.
    }
    int soErr = 0;
    socklen_t len = sizeof(soErr);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soErr, &len) != 0)
        return std::string("getsockopt: ") + std::strerror(errno);
    if (soErr != 0)
        return std::strerror(soErr);
    return {};
}

bool
GscalarClient::connectUnix(std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + path_;
        return false;
    }
    std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }

    auto fail = [&](const std::string &why) {
        if (error)
            *error = "cannot reach gscalard at " + path_ + ": " + why +
                     " (start one with `gscalar serve`)";
        close();
        return false;
    };

    const bool bounded = opts_.connectTimeoutSec > 0;
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (bounded)
        ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);

    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (!bounded || (errno != EINPROGRESS && errno != EAGAIN))
            return fail(std::strerror(errno));
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(opts_.connectTimeoutSec));
        if (std::string why = awaitConnect(deadline); !why.empty())
            return fail(why);
    }

    if (bounded)
        ::fcntl(fd_, F_SETFL, flags); // back to blocking I/O
    return true;
}

bool
GscalarClient::connectTcp(std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = "cannot reach gscalard at " + path_ + ": " + why +
                     " (start one with `gscalar serve --tcp`)";
        close();
        return false;
    };

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const std::string portStr = std::to_string(target_->port);
    const int rc =
        ::getaddrinfo(target_->host.c_str(), portStr.c_str(), &hints,
                      &res);
    if (rc != 0)
        return fail(std::string("resolve: ") + ::gai_strerror(rc));

    // One deadline bounds the whole connect, across every address the
    // name resolved to — a wedged daemon can never hang a client.
    const bool bounded = opts_.connectTimeoutSec > 0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opts_.connectTimeoutSec));
    std::string lastWhy = "no addresses";
    for (addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        fd_ = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd_ < 0) {
            lastWhy = std::string("socket: ") + std::strerror(errno);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        const int flags = ::fcntl(fd_, F_GETFL, 0);
        if (bounded)
            ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);

        int crc = ::connect(fd_, ai->ai_addr, ai->ai_addrlen);
        if (crc != 0 && bounded &&
            (errno == EINPROGRESS || errno == EAGAIN)) {
            lastWhy = awaitConnect(deadline);
            crc = lastWhy.empty() ? 0 : -1;
        } else if (crc != 0) {
            lastWhy = std::strerror(errno);
        }
        if (crc == 0) {
            if (bounded)
                ::fcntl(fd_, F_SETFL, flags); // back to blocking I/O
            ::freeaddrinfo(res);
            return true;
        }
        ::close(fd_);
        fd_ = -1;
        if (bounded && std::chrono::steady_clock::now() >= deadline)
            break;
    }
    ::freeaddrinfo(res);
    return fail(lastWhy);
}

std::optional<std::chrono::steady_clock::time_point>
GscalarClient::retryDeadline() const
{
    if (opts_.retryDeadlineSec <= 0)
        return std::nullopt;
    return std::chrono::steady_clock::now() +
           std::chrono::duration_cast<
               std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(opts_.retryDeadlineSec));
}

bool
GscalarClient::backoffBeforeRetry(
    unsigned attempt,
    const std::optional<std::chrono::steady_clock::time_point> &deadline)
{
    double delay = opts_.backoffBaseSec;
    for (unsigned i = 0; i < attempt && delay < opts_.backoffMaxSec; ++i)
        delay *= 2;
    if (delay > opts_.backoffMaxSec)
        delay = opts_.backoffMaxSec;
    // Jitter decorrelates clients without losing reproducibility: the
    // factor for retry n is a pure function of (jitterSeed, n).
    Rng rng(opts_.jitterSeed ^ (std::uint64_t(attempt) + 1));
    delay *= 0.5 + 0.5 * rng.uniform();
    if (deadline) {
        // A sleep that would cross the deadline buys nothing: the next
        // attempt could not start in time anyway, so fail fast.
        const auto wake =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(delay));
        if (wake >= *deadline)
            return false;
    }
    healthCounters().clientRetries.fetch_add(1,
                                             std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    return true;
}

bool
GscalarClient::ping(std::string *error)
{
    const auto deadline = retryDeadline();
    for (unsigned attempt = 0;; ++attempt) {
        std::string err;
        bool ok = false;
        if (fd_ >= 0 || connect(&err)) {
            ok = writeFrame(fd_, serializePing());
            if (!ok)
                err = "cannot send ping";
            if (ok) {
                std::vector<std::uint8_t> payload;
                ok = readFrame(fd_, payload, &err) == 1;
                if (ok && peekKind(payload.data(), payload.size()) !=
                              BlobKind::Pong) {
                    err = "unexpected reply to ping";
                    ok = false;
                }
            }
        }
        if (ok)
            return true;
        close(); // the connection state is unknown; start fresh
        if (attempt + 1 >= opts_.attempts) {
            if (error)
                *error = err;
            return false;
        }
        if (!backoffBeforeRetry(attempt, deadline)) {
            if (error)
                *error = err + " (retry deadline exceeded after " +
                         std::to_string(attempt + 1) + " attempts)";
            return false;
        }
    }
}

std::optional<RunResponse>
GscalarClient::exchange(const RunRequest &req, std::string *error)
{
    if (fd_ < 0 && !connect(error))
        return std::nullopt;
    if (!writeFrame(fd_, serializeRequest(req))) {
        if (error)
            *error = "cannot send request (daemon gone?)";
        close();
        return std::nullopt;
    }
    std::vector<std::uint8_t> payload;
    const int rc = readFrame(fd_, payload, error);
    if (rc != 1) {
        if (rc == 0 && error)
            *error = "daemon closed the connection before responding";
        close();
        return std::nullopt;
    }
    return deserializeResponse(payload.data(), payload.size(), error);
}

std::optional<DaemonStats>
GscalarClient::stats(std::string *error)
{
    const auto deadline = retryDeadline();
    for (unsigned attempt = 0;; ++attempt) {
        std::string err;
        std::optional<DaemonStats> out;
        if (fd_ >= 0 || connect(&err)) {
            if (!writeFrame(fd_, serializeStatsRequest())) {
                err = "cannot send stats request (daemon gone?)";
            } else {
                std::vector<std::uint8_t> payload;
                const int rc = readFrame(fd_, payload, &err);
                if (rc == 0)
                    err = "daemon closed the connection before "
                          "responding";
                if (rc == 1) {
                    if (peekKind(payload.data(), payload.size()) !=
                        BlobKind::StatsResponse)
                        err = "unexpected reply to stats request";
                    else
                        out = deserializeStatsResponse(
                            payload.data(), payload.size(), &err);
                }
            }
        }
        if (out)
            return out;
        close();
        if (attempt + 1 >= opts_.attempts) {
            if (error)
                *error = err;
            return std::nullopt;
        }
        if (!backoffBeforeRetry(attempt, deadline)) {
            if (error)
                *error = err + " (retry deadline exceeded after " +
                         std::to_string(attempt + 1) + " attempts)";
            return std::nullopt;
        }
    }
}

std::optional<RunResult>
GscalarClient::run(const std::string &workload, const ArchConfig &cfg,
                   std::string *error, std::uint32_t priority)
{
    RunRequest req;
    req.workload = workload;
    req.cfg = cfg;
    req.priority = priority;

    const auto deadline = retryDeadline();
    for (unsigned attempt = 0;; ++attempt) {
        std::string err;
        const std::optional<RunResponse> resp = exchange(req, &err);
        bool retryable = !resp; // transport failure
        if (resp) {
            if (resp->status == ResponseStatus::Ok)
                return resp->result;
            err = std::string(responseStatusName(resp->status)) + ": " +
                  resp->error;
            retryable = retryableStatus(resp->status);
            // A non-Ok response leaves the stream positioned between
            // frames, but reconnecting is cheaper than reasoning about
            // which statuses also closed the connection server-side.
            close();
        }
        if (!retryable || attempt + 1 >= opts_.attempts) {
            if (error)
                *error = err;
            return std::nullopt;
        }
        if (!backoffBeforeRetry(attempt, deadline)) {
            if (error)
                *error = err + " (retry deadline exceeded after " +
                         std::to_string(attempt + 1) + " attempts)";
            return std::nullopt;
        }
    }
}

} // namespace gs
