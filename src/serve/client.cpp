#include "client.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace gs
{

GscalarClient::GscalarClient(std::string socketPath)
    : path_(socketPath.empty() ? defaultSocketPath()
                               : std::move(socketPath))
{
}

GscalarClient::~GscalarClient()
{
    close();
}

void
GscalarClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
GscalarClient::connect(std::string *error)
{
    close();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + path_;
        return false;
    }
    std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = "cannot reach gscalard at " + path_ + ": " +
                     std::strerror(errno) +
                     " (start one with `gscalar serve`)";
        close();
        return false;
    }
    return true;
}

bool
GscalarClient::ping(std::string *error)
{
    if (fd_ < 0 && !connect(error))
        return false;
    if (!writeFrame(fd_, serializePing())) {
        if (error)
            *error = "cannot send ping";
        return false;
    }
    std::vector<std::uint8_t> payload;
    if (readFrame(fd_, payload, error) != 1)
        return false;
    if (peekKind(payload.data(), payload.size()) != BlobKind::Pong) {
        if (error)
            *error = "unexpected reply to ping";
        return false;
    }
    return true;
}

std::optional<RunResponse>
GscalarClient::exchange(const RunRequest &req, std::string *error)
{
    if (fd_ < 0 && !connect(error))
        return std::nullopt;
    if (!writeFrame(fd_, serializeRequest(req))) {
        if (error)
            *error = "cannot send request (daemon gone?)";
        return std::nullopt;
    }
    std::vector<std::uint8_t> payload;
    const int rc = readFrame(fd_, payload, error);
    if (rc != 1) {
        if (rc == 0 && error)
            *error = "daemon closed the connection before responding";
        return std::nullopt;
    }
    return deserializeResponse(payload.data(), payload.size(), error);
}

std::optional<DaemonStats>
GscalarClient::stats(std::string *error)
{
    if (fd_ < 0 && !connect(error))
        return std::nullopt;
    if (!writeFrame(fd_, serializeStatsRequest())) {
        if (error)
            *error = "cannot send stats request (daemon gone?)";
        return std::nullopt;
    }
    std::vector<std::uint8_t> payload;
    const int rc = readFrame(fd_, payload, error);
    if (rc != 1) {
        if (rc == 0 && error)
            *error = "daemon closed the connection before responding";
        return std::nullopt;
    }
    if (peekKind(payload.data(), payload.size()) !=
        BlobKind::StatsResponse) {
        if (error)
            *error = "unexpected reply to stats request";
        return std::nullopt;
    }
    return deserializeStatsResponse(payload.data(), payload.size(),
                                    error);
}

std::optional<RunResult>
GscalarClient::run(const std::string &workload, const ArchConfig &cfg,
                   std::string *error)
{
    RunRequest req;
    req.workload = workload;
    req.cfg = cfg;
    const std::optional<RunResponse> resp = exchange(req, error);
    if (!resp)
        return std::nullopt;
    if (resp->status != ResponseStatus::Ok) {
        if (error)
            *error = std::string(responseStatusName(resp->status)) +
                     ": " + resp->error;
        return std::nullopt;
    }
    return resp->result;
}

} // namespace gs
