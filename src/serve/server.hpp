/**
 * @file
 * gscalard: a simulation service over unix-domain and TCP sockets. One
 * shared ExperimentEngine (worker pool + in-memory run cache + optional
 * persistent disk cache) answers run requests from any number of
 * concurrent clients, so a fleet of sweep scripts simulates each
 * (workload x config) point exactly once machine-wide.
 *
 * Concurrency model: a single reactor thread owns every fd — the unix
 * listener, the optional TCP listener, a self-wake pipe, and all
 * client connections — in one nonblocking epoll set, with per-
 * connection read/write state machines for the framed protocol. An
 * idle connection costs an epoll slot, not a blocked thread.
 *
 * On top of the reactor:
 *
 *  - In-flight coalescing (singleflight): run requests are keyed on
 *    (workload, ArchConfig::fingerprint()). The first submit creates a
 *    *flight* and becomes its leader; concurrent submits with the same
 *    key park on the flight as followers. The result is computed once,
 *    serialized once, and the identical response bytes fan out to
 *    every waiter. The serve:coalesce-leader-crash fault site kills
 *    the leader's attempt; the flight is then re-dispatched under a
 *    Suppress guard (a promotion), so followers still get answers.
 *
 *  - Request batching: all submits that became readable in one epoll
 *    iteration are admitted as a single batch, so a burst of duplicate
 *    requests coalesces before any of them reaches the engine.
 *
 *  - Admission control with priorities: a submit carries a priority
 *    band (RunRequest::priority, 0..2); flights queue per band in a
 *    bounded admission queue and the service pool dispatches the
 *    highest band first. When the queue is full, the lowest-band
 *    queued flight is shed with ResponseStatus::Overloaded to make
 *    room for a higher-band arrival (or the arrival itself is shed).
 *    A follower with a higher priority than its queued flight raises
 *    the flight's band (priority inheritance).
 *
 * Simulation runs execute on a fixed pool of service threads that
 * bridge flights onto the engine; the reactor thread never blocks on
 * simulation work.
 *
 * Shutdown — stop(), or SIGINT/SIGTERM once installSignalHandlers() is
 * on — closes the listeners, answers new submits with ShuttingDown,
 * lets every flight in the air complete and flush its responses, and
 * only then tears the connections down: a drain, not an abort.
 */

#ifndef GSCALAR_SERVE_SERVER_HPP
#define GSCALAR_SERVE_SERVER_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "harness/engine.hpp"
#include "protocol.hpp"

namespace gs
{

class GscalarServer
{
  public:
    struct Options
    {
        /** Unix socket path; empty selects defaultSocketPath(). */
        std::string socketPath;
        /** TCP listen target ("host:port"); empty disables TCP. Port 0
         *  binds an ephemeral port, readable via tcpPort(). */
        std::string tcpBind;
        /** Per-request budget from admission to response (seconds).
         *  The simulation itself is not cancelled on timeout; the
         *  flight is simply answered with ResponseStatus::Timeout. */
        double requestTimeoutSec = 600.0;
        /** Close a connection after this long without traffic and no
         *  response in flight. <= 0 disables the sweep. */
        double idleTimeoutSec = 300.0;
        /** Connection cap: further accepts are answered with
         *  ResponseStatus::Overloaded and closed. 0 = unlimited. */
        std::uint32_t maxConnections = 64;
        /** Per-frame payload limit (never above kMaxFrameBytes). */
        std::uint32_t maxFrameBytes = kMaxFrameBytes;
        /** Admission bound: queued (undispatched) flights across all
         *  priority bands. 0 = unbounded. */
        std::uint32_t maxQueuedFlights = 256;
        /** Service threads bridging flights onto the engine; 0 sizes
         *  the pool to the engine's worker count + 2, so the engine
         *  stays saturated while one thread waits per flight. */
        unsigned serviceThreads = 0;
    };

    explicit GscalarServer(ExperimentEngine &engine)
        : GscalarServer(engine, Options{})
    {
    }
    GscalarServer(ExperimentEngine &engine, Options opts);

    /** Stops and drains if still running. */
    ~GscalarServer();

    GscalarServer(const GscalarServer &) = delete;
    GscalarServer &operator=(const GscalarServer &) = delete;

    /**
     * Bind, listen and spawn the reactor + service threads. A stale
     * socket file left by a dead server is detected (connect() refused)
     * and replaced; a live one makes start() fail.
     */
    bool start(std::string *error = nullptr);

    /**
     * Block until the server has drained: the reactor has fanned out
     * every in-flight response and exited, and the service threads are
     * joined.
     */
    void wait();

    /**
     * Initiate shutdown without blocking. Async-signal-safe: only
     * atomics and a write() to the self-wake pipe.
     */
    void requestStop() noexcept;

    /** requestStop() + wait(). */
    void stop();

    /**
     * Route SIGINT and SIGTERM to requestStop() for this instance.
     * Previous handlers are restored when the server is destroyed.
     */
    bool installSignalHandlers(std::string *error = nullptr);

    bool running() const { return running_.load(); }
    const std::string &socketPath() const { return path_; }

    /** Bound TCP port after start(), or 0 when TCP is disabled. */
    std::uint16_t tcpPort() const { return tcpPort_.load(); }

    /** Requests answered with status Ok since start(). */
    std::uint64_t requestsServed() const { return served_.load(); }

    /** Currently open client connections. */
    std::uint64_t activeConnections() const
    {
        return activeConns_.load(std::memory_order_relaxed);
    }

    /** Flights created (each computes at most one engine submit). */
    std::uint64_t coalesceLeaders() const
    {
        return coalesceLeaders_.load(std::memory_order_relaxed);
    }

    /** Submits that joined an existing flight instead of computing. */
    std::uint64_t coalesceFollowers() const
    {
        return coalesceFollowers_.load(std::memory_order_relaxed);
    }

    /** Flights re-dispatched after a leader crash. */
    std::uint64_t coalescePromotions() const
    {
        return coalescePromotions_.load(std::memory_order_relaxed);
    }

    /**
     * Live counters for the `stats` protocol message: uptime, requests
     * served, connection count, the engine snapshot, the coalescing /
     * batching / admission tier, and one request latency histogram per
     * workload (sorted by name).
     */
    DaemonStats stats() const;

  private:
    /** One response frame (4-byte length prefix + payload), shared by
     *  every waiter of a flight so fan-out is a pointer copy. */
    struct OutBuf
    {
        std::shared_ptr<const std::vector<std::uint8_t>> frame;
        std::size_t off = 0;
    };

    /** Per-connection state machine owned by the reactor thread. */
    struct Conn
    {
        int fd = -1;
        std::uint64_t id = 0;
        std::vector<std::uint8_t> rbuf; ///< unparsed inbound bytes
        std::size_t rpos = 0;           ///< parse offset into rbuf
        std::deque<OutBuf> wq;          ///< unflushed outbound frames
        bool wantWrite = false;         ///< EPOLLOUT currently armed
        bool closing = false; ///< discard reads, close once wq drains
        bool sawEof = false;
        bool dead = false; ///< reaped at the end of the iteration
        std::uint32_t inFlight = 0; ///< responses owed to this peer
        std::chrono::steady_clock::time_point lastActivity;
    };

    /** One parked submit: who to answer and when it arrived. */
    struct Waiter
    {
        std::uint64_t connId = 0;
        std::chrono::steady_clock::time_point start;
    };

    /** One coalesced computation, keyed on (workload, fingerprint). */
    struct Flight
    {
        RunRequest req;
        std::uint32_t priority = kDefaultPriority;
        bool dispatched = false; ///< picked up by a service thread
        std::chrono::steady_clock::time_point created;
        std::vector<Waiter> waiters; ///< leader first
    };

    /** A flight handed to the service pool. */
    struct PendingJob
    {
        std::string key;
        RunRequest req;
        bool promoted = false; ///< rerun after a leader crash
        std::chrono::steady_clock::time_point created;
    };

    /** A finished (or crashed) flight coming back to the reactor. */
    struct Completion
    {
        std::string key;
        bool leaderCrash = false; ///< re-dispatch instead of fan-out
        ResponseStatus status = ResponseStatus::InternalError;
        std::shared_ptr<const std::vector<std::uint8_t>> frame;
    };

    /** A submit parsed from one reactor iteration (batched admission). */
    struct BatchItem
    {
        std::uint64_t connId = 0;
        RunRequest req;
    };

    // Reactor side (all Conn/Flight state is reactor-thread-only).
    void reactorLoop();
    void acceptReady(int listenFd, bool tcp);
    void readConn(Conn &conn, std::vector<BatchItem> &batch);
    void parseFrames(Conn &conn, std::vector<BatchItem> &batch);
    void handleFrame(Conn &conn, const std::uint8_t *data,
                     std::size_t size, std::vector<BatchItem> &batch);
    void dispatchBatch(std::vector<BatchItem> &batch);
    void shedFlight(const std::string &key, const std::string &why);
    void drainCompletions();
    void fanOut(const std::string &key, const Completion &done);
    void idleSweep(std::chrono::steady_clock::time_point now);
    void enqueueFrame(Conn &conn,
                      std::shared_ptr<const std::vector<std::uint8_t>> f);
    void respond(Conn &conn, const RunResponse &resp);
    void flushConn(Conn &conn);
    void armWrite(Conn &conn, bool on);
    void markDead(Conn &conn);
    void reapDead();
    void closeListeners();
    Conn *findConn(std::uint64_t id);

    // Service-pool side.
    void serviceLoop();
    void runJob(PendingJob job);
    void postCompletion(Completion done);
    void wakeReactor() noexcept;

    ExperimentEngine &engine_;
    Options opts_;
    std::string path_;

    int epollFd_ = -1;
    int listenFd_ = -1;    ///< unix listener
    int tcpListenFd_ = -1; ///< TCP listener (optional)
    int wakeFds_[2] = {-1, -1}; ///< self-pipe: [0] polled, [1] written
    std::atomic<std::uint16_t> tcpPort_{0};

    std::thread reactorThread_;
    std::vector<std::thread> serviceThreads_;

    /** Reactor-owned: id -> connection. Touched only on the reactor. */
    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
    std::uint64_t nextConnId_ = 16; ///< low ids name the static fds

    /** Reactor-owned: flight key -> flight. */
    std::unordered_map<std::string, Flight> flights_;

    /** Admission queue, one band per priority; band 2 pops first. */
    mutable std::mutex pendingMutex_;
    std::condition_variable pendingCv_;
    std::array<std::deque<PendingJob>, kNumPriorities> pending_;
    std::array<std::uint64_t, kNumPriorities> queuePeaks_{};
    bool stopWorkers_ = false;

    /** Completed flights travelling service pool -> reactor. */
    std::mutex completionMutex_;
    std::deque<Completion> completions_;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> served_{0};
    std::atomic<std::uint64_t> activeConns_{0};
    std::atomic<std::uint64_t> overloads_{0};    ///< connections shed
    std::atomic<std::uint64_t> idleCloses_{0};   ///< idle timeouts
    std::atomic<std::uint64_t> frameRejects_{0}; ///< oversized frames
    std::atomic<std::uint64_t> coalesceLeaders_{0};
    std::atomic<std::uint64_t> coalesceFollowers_{0};
    std::atomic<std::uint64_t> coalescePromotions_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> batchPeak_{0};
    std::atomic<std::uint64_t> queueSheds_{0};

    std::chrono::steady_clock::time_point startTime_{};
    mutable std::mutex latencyMutex_;
    /** Request latency per workload (Ok responses only). */
    std::map<std::string, LatencyHistogram> latency_;
    /** Reactor iteration latency (wake to quiesce). */
    LatencyHistogram reactorLoopHist_;

    bool handlersInstalled_ = false;
    struct sigaction oldInt_ = {}, oldTerm_ = {};
};

} // namespace gs

#endif // GSCALAR_SERVE_SERVER_HPP
