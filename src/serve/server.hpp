/**
 * @file
 * gscalard: a simulation service over a unix-domain socket. One shared
 * ExperimentEngine (worker pool + in-memory run cache + optional
 * persistent disk cache) answers run requests from any number of
 * concurrent clients, so a fleet of sweep scripts simulates each
 * (workload x config) point exactly once machine-wide.
 *
 * Concurrency model: an accept thread poll()s the listening socket and
 * a self-wake pipe; each connection gets a reader thread that parses
 * frames and blocks on the engine future (with a per-request timeout).
 * Shutdown — stop(), or SIGINT/SIGTERM once installSignalHandlers() is
 * on — closes the listener, half-closes every connection for reads
 * (SHUT_RD), and then joins the connection threads, so requests already
 * in flight still get their response before wait() returns: a drain,
 * not an abort.
 */

#ifndef GSCALAR_SERVE_SERVER_HPP
#define GSCALAR_SERVE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/engine.hpp"
#include "protocol.hpp"

namespace gs
{

class GscalarServer
{
  public:
    struct Options
    {
        /** Unix socket path; empty selects defaultSocketPath(). */
        std::string socketPath;
        /** Per-request budget waiting on the engine (seconds). The
         *  simulation itself is not cancelled on timeout; the slot is
         *  simply answered with ResponseStatus::Timeout. */
        double requestTimeoutSec = 600.0;
        /** Close a connection after this long without a frame — and
         *  (as SO_RCVTIMEO) after stalling this long mid-frame.
         *  <= 0 disables both. */
        double idleTimeoutSec = 300.0;
        /** Connection cap: further accepts are answered with
         *  ResponseStatus::Overloaded and closed. 0 = unlimited. */
        std::uint32_t maxConnections = 64;
        /** Per-frame payload limit (never above kMaxFrameBytes). */
        std::uint32_t maxFrameBytes = kMaxFrameBytes;
    };

    explicit GscalarServer(ExperimentEngine &engine)
        : GscalarServer(engine, Options{})
    {
    }
    GscalarServer(ExperimentEngine &engine, Options opts);

    /** Stops and drains if still running. */
    ~GscalarServer();

    GscalarServer(const GscalarServer &) = delete;
    GscalarServer &operator=(const GscalarServer &) = delete;

    /**
     * Bind, listen and spawn the accept thread. A stale socket file
     * left by a dead server is detected (connect() refused) and
     * replaced; a live one makes start() fail.
     */
    bool start(std::string *error = nullptr);

    /**
     * Block until the server has stopped and every connection thread —
     * including ones still writing a response — has been joined.
     */
    void wait();

    /**
     * Initiate shutdown without blocking. Async-signal-safe: only
     * atomics and a write() to the self-wake pipe.
     */
    void requestStop() noexcept;

    /** requestStop() + wait(). */
    void stop();

    /**
     * Route SIGINT and SIGTERM to requestStop() for this instance.
     * Previous handlers are restored when the server is destroyed.
     */
    bool installSignalHandlers(std::string *error = nullptr);

    bool running() const { return running_.load(); }
    const std::string &socketPath() const { return path_; }

    /** Requests answered with status Ok since start(). */
    std::uint64_t requestsServed() const { return served_.load(); }

    /** Currently open client connections. */
    std::uint64_t activeConnections() const;

    /**
     * Live counters for the `stats` protocol message: uptime, requests
     * served, connection count, the engine snapshot, and one request
     * latency histogram per workload (sorted by name).
     */
    DaemonStats stats() const;

  private:
    struct Conn
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void acceptLoop();
    void connectionLoop(Conn &conn);
    RunResponse handleRequest(const std::uint8_t *data, std::size_t size);
    void reapFinishedConns(); ///< join threads whose loop has exited

    ExperimentEngine &engine_;
    Options opts_;
    std::string path_;

    int listenFd_ = -1;
    int wakeFds_[2] = {-1, -1}; ///< self-pipe: [0] polled, [1] written

    std::thread acceptThread_;
    mutable std::mutex connMutex_;
    std::vector<std::unique_ptr<Conn>> conns_;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> served_{0};
    std::atomic<std::uint64_t> overloads_{0};    ///< connections shed
    std::atomic<std::uint64_t> idleCloses_{0};   ///< idle timeouts
    std::atomic<std::uint64_t> frameRejects_{0}; ///< oversized frames

    std::chrono::steady_clock::time_point startTime_{};
    mutable std::mutex latencyMutex_;
    /** Request latency per workload (Ok responses only). */
    std::map<std::string, LatencyHistogram> latency_;

    bool handlersInstalled_ = false;
    struct sigaction oldInt_ = {}, oldTerm_ = {};
};

} // namespace gs

#endif // GSCALAR_SERVE_SERVER_HPP
