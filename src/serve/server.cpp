#include "server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hpp"
#include "fault/health.hpp"
#include "workloads/workload.hpp"

namespace gs
{

namespace
{

/** The instance SIGINT/SIGTERM route to (one daemon per process). */
std::atomic<GscalarServer *> g_signal_server{nullptr};

extern "C" void
gscalardSignalHandler(int)
{
    if (GscalarServer *s = g_signal_server.load())
        s->requestStop();
}

bool
bindUnixSocket(int fd, const std::string &path, std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + path;
        return false;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) == 0)
        return true;
    if (errno != EADDRINUSE) {
        if (error)
            *error = "bind(" + path + "): " + std::strerror(errno);
        return false;
    }

    // A socket file exists. If nobody answers it is a stale leftover of
    // a dead server: remove and retry. If a server answers, refuse.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
        const bool alive = ::connect(probe,
                                     reinterpret_cast<sockaddr *>(&addr),
                                     sizeof(addr)) == 0;
        ::close(probe);
        if (alive) {
            if (error)
                *error = "a gscalard is already listening on " + path;
            return false;
        }
    }
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) ==
        0)
        return true;
    if (error)
        *error = "bind(" + path + "): " + std::strerror(errno);
    return false;
}

} // namespace

GscalarServer::GscalarServer(ExperimentEngine &engine, Options opts)
    : engine_(engine), opts_(std::move(opts))
{
    path_ = opts_.socketPath.empty() ? defaultSocketPath()
                                     : opts_.socketPath;
}

GscalarServer::~GscalarServer()
{
    stop();
    if (handlersInstalled_) {
        ::sigaction(SIGINT, &oldInt_, nullptr);
        ::sigaction(SIGTERM, &oldTerm_, nullptr);
        g_signal_server.store(nullptr);
    }
}

bool
GscalarServer::start(std::string *error)
{
    GS_ASSERT(!running_.load(), "start() on a running server");
    stopping_.store(false);

    if (::pipe(wakeFds_) != 0) {
        if (error)
            *error = std::string("pipe: ") + std::strerror(errno);
        return false;
    }

    auto failCleanup = [this] {
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        for (int &fd : wakeFds_) {
            if (fd >= 0) {
                ::close(fd);
                fd = -1;
            }
        }
    };

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        failCleanup();
        return false;
    }
    if (!bindUnixSocket(listenFd_, path_, error)) {
        failCleanup();
        return false;
    }
    if (::listen(listenFd_, 64) != 0) {
        if (error)
            *error = std::string("listen: ") + std::strerror(errno);
        failCleanup();
        ::unlink(path_.c_str());
        return false;
    }

    startTime_ = std::chrono::steady_clock::now();
    running_.store(true);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
GscalarServer::requestStop() noexcept
{
    stopping_.store(true);
    if (wakeFds_[1] >= 0) {
        const char byte = 1;
        // Best effort; the pipe being full still wakes the poller.
        [[maybe_unused]] ssize_t w = ::write(wakeFds_[1], &byte, 1);
    }
}

void
GscalarServer::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0}, {wakeFds_[0], POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (stopping_.load())
            break;
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            GS_WARN("gscalard: poll failed: ", std::strerror(errno));
            break;
        }
        if (!(fds[0].revents & POLLIN))
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            GS_WARN("gscalard: accept failed: ", std::strerror(errno));
            break;
        }
        reapFinishedConns();
        if (opts_.maxConnections > 0 &&
            activeConnections() >= opts_.maxConnections) {
            // Shed load instead of queueing unboundedly: tell the peer
            // why (it retries with backoff) and close. Whatever it was
            // about to send, an Overloaded response frame is a legible
            // answer.
            RunResponse resp;
            resp.status = ResponseStatus::Overloaded;
            resp.error = "connection cap (" +
                         std::to_string(opts_.maxConnections) +
                         ") reached; retry with backoff";
            writeFrame(fd, serializeResponse(resp));
            ::close(fd);
            overloads_.fetch_add(1);
            healthCounters().daemonOverloads.fetch_add(
                1, std::memory_order_relaxed);
            continue;
        }
        if (opts_.idleTimeoutSec > 0) {
            // A peer stalling mid-frame trips this receive timeout;
            // stalls *between* frames are the connection loop's poll.
            timeval tv{};
            tv.tv_sec = long(opts_.idleTimeoutSec);
            tv.tv_usec =
                long((opts_.idleTimeoutSec - double(tv.tv_sec)) * 1e6);
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        Conn &ref = *conn;
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            conns_.push_back(std::move(conn));
        }
        ref.thread = std::thread([this, &ref] { connectionLoop(ref); });
    }

    // Drain phase: no new connections; existing ones are half-closed
    // for reads so their threads finish the request in hand, write the
    // response, see EOF and exit.
    std::lock_guard<std::mutex> lock(connMutex_);
    for (const auto &c : conns_)
        if (c->fd >= 0)
            ::shutdown(c->fd, SHUT_RD);
}

void
GscalarServer::reapFinishedConns()
{
    std::lock_guard<std::mutex> lock(connMutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load()) {
            if ((*it)->thread.joinable())
                (*it)->thread.join();
            if ((*it)->fd >= 0)
                ::close((*it)->fd);
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

RunResponse
GscalarServer::handleRequest(const std::uint8_t *data, std::size_t size)
{
    RunResponse resp;
    const auto begin = std::chrono::steady_clock::now();

    std::string err;
    const std::optional<RunRequest> req =
        deserializeRequest(data, size, &err);
    if (!req) {
        resp.status = ResponseStatus::BadRequest;
        resp.error = "malformed request: " + err;
        return resp;
    }
    const auto &names = workloadNames();
    if (std::find(names.begin(), names.end(), req->workload) ==
        names.end()) {
        resp.status = ResponseStatus::BadRequest;
        resp.error = "unknown workload '" + req->workload + "'";
        return resp;
    }
    if (std::string bad = req->cfg.check(); !bad.empty()) {
        resp.status = ResponseStatus::BadRequest;
        resp.error = "invalid configuration: " + bad;
        return resp;
    }
    if (stopping_.load()) {
        resp.status = ResponseStatus::ShuttingDown;
        resp.error = "server is draining";
        return resp;
    }

    std::shared_future<RunResult> future =
        engine_.submit(req->workload, req->cfg);
    const auto budget = std::chrono::duration<double>(
        opts_.requestTimeoutSec > 0 ? opts_.requestTimeoutSec : 1e9);
    if (future.wait_for(budget) != std::future_status::ready) {
        resp.status = ResponseStatus::Timeout;
        resp.error = "simulation exceeded the request budget";
        return resp;
    }
    try {
        resp.result = future.get();
        if (!resp.result.ok()) {
            // The engine retried and still failed; the error rides the
            // result rather than an exception (engine.cpp), so map it
            // to a status here.
            resp.status = ResponseStatus::InternalError;
            resp.error = resp.result.error;
            resp.result = RunResult{};
            return resp;
        }
        resp.status = ResponseStatus::Ok;
        served_.fetch_add(1);
        const auto dt = std::chrono::steady_clock::now() - begin;
        std::lock_guard<std::mutex> lock(latencyMutex_);
        latency_[req->workload].record(
            std::chrono::duration<double>(dt).count());
    } catch (const std::exception &e) {
        resp.status = ResponseStatus::InternalError;
        resp.error = e.what();
    }
    return resp;
}

DaemonStats
GscalarServer::stats() const
{
    DaemonStats s;
    const EngineSnapshot snap = engine_.snapshot();
    s.uptimeSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - startTime_)
                          .count();
    s.requestsServed = served_.load();
    s.activeConnections = std::uint32_t(activeConnections());
    s.jobs = snap.jobs;
    s.queueDepth = snap.queueDepth;
    s.peakQueueDepth = snap.peakQueueDepth;
    s.cacheHits = snap.cache.hits;
    s.cacheMisses = snap.cache.misses;
    s.diskCacheHits = snap.cache.diskHits;
    s.diskCacheStores = snap.cache.diskStores;
    s.simWallSeconds = snap.wallSumSeconds;
    s.simCycles = snap.simCycles;
    s.warpInsts = snap.warpInsts;
    s.overloads = overloads_.load();
    s.idleCloses = idleCloses_.load();
    s.frameRejects = frameRejects_.load();
    std::lock_guard<std::mutex> lock(latencyMutex_);
    for (const auto &[name, hist] : latency_)
        s.workloads.push_back({name, hist}); // std::map: sorted by name
    return s;
}

void
GscalarServer::connectionLoop(Conn &conn)
{
    std::vector<std::uint8_t> payload;
    for (;;) {
        if (opts_.idleTimeoutSec > 0) {
            // Idle guard between frames: a silent peer must not pin a
            // connection slot (and its thread) forever.
            pollfd pfd{conn.fd, POLLIN, 0};
            const int prc =
                ::poll(&pfd, 1, int(opts_.idleTimeoutSec * 1000));
            if (prc < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            if (prc == 0) {
                idleCloses_.fetch_add(1);
                healthCounters().daemonIdleCloses.fetch_add(
                    1, std::memory_order_relaxed);
                break;
            }
        }
        const int rc =
            readFrame(conn.fd, payload, nullptr, opts_.maxFrameBytes);
        if (rc == -2) {
            // Size-guard trip: answer before hanging up so the peer
            // learns the limit instead of diagnosing a dead socket.
            frameRejects_.fetch_add(1);
            healthCounters().daemonFrameRejects.fetch_add(
                1, std::memory_order_relaxed);
            RunResponse resp;
            resp.status = ResponseStatus::BadRequest;
            resp.error = "frame exceeds the " +
                         std::to_string(opts_.maxFrameBytes) +
                         " byte limit";
            writeFrame(conn.fd, serializeResponse(resp));
            break;
        }
        if (rc <= 0)
            break; // EOF or framing error: drop the connection

        const std::optional<BlobKind> kind =
            peekKind(payload.data(), payload.size());
        bool sent = false;
        if (kind == BlobKind::Ping) {
            sent = writeFrame(conn.fd, serializePong());
        } else if (kind == BlobKind::StatsRequest) {
            sent = writeFrame(conn.fd, serializeStatsResponse(stats()));
        } else if (kind == BlobKind::Request) {
            const RunResponse resp =
                handleRequest(payload.data(), payload.size());
            sent = writeFrame(conn.fd, serializeResponse(resp));
        } else {
            RunResponse resp;
            resp.status = ResponseStatus::BadRequest;
            resp.error = "unexpected message kind";
            sent = writeFrame(conn.fd, serializeResponse(resp));
        }
        if (!sent)
            break;
    }
    // Make the hangup visible to the peer now: the fd itself is closed
    // by the reaper (reapFinishedConns/wait) after the join — closing
    // here would race the drain path's shutdown(SHUT_RD) against kernel
    // fd reuse — but the reaper only runs on a later accept, so without
    // this FIN an idle-closed peer would block forever on its next read.
    ::shutdown(conn.fd, SHUT_RDWR);
    conn.done.store(true);
}

std::uint64_t
GscalarServer::activeConnections() const
{
    std::lock_guard<std::mutex> lock(connMutex_);
    std::uint64_t n = 0;
    for (const auto &c : conns_)
        if (!c->done.load())
            ++n;
    return n;
}

void
GscalarServer::wait()
{
    if (acceptThread_.joinable())
        acceptThread_.join();

    // The accept loop has half-closed every connection; join them all.
    std::vector<std::unique_ptr<Conn>> conns;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        conns.swap(conns_);
    }
    for (const auto &c : conns) {
        if (c->thread.joinable())
            c->thread.join();
        if (c->fd >= 0)
            ::close(c->fd);
    }

    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(path_.c_str());
    }
    for (int &fd : wakeFds_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
    running_.store(false);
}

void
GscalarServer::stop()
{
    if (!running_.load())
        return;
    requestStop();
    wait();
}

bool
GscalarServer::installSignalHandlers(std::string *error)
{
    GscalarServer *expected = nullptr;
    if (!g_signal_server.compare_exchange_strong(expected, this)) {
        if (error)
            *error = "another server already owns the signal handlers";
        return false;
    }
    struct sigaction sa = {};
    sa.sa_handler = gscalardSignalHandler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: let blocking calls see EINTR
    if (::sigaction(SIGINT, &sa, &oldInt_) != 0 ||
        ::sigaction(SIGTERM, &sa, &oldTerm_) != 0) {
        if (error)
            *error = std::string("sigaction: ") + std::strerror(errno);
        g_signal_server.store(nullptr);
        return false;
    }
    handlersInstalled_ = true;
    return true;
}

} // namespace gs
