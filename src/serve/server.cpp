#include "server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "workloads/workload.hpp"

namespace gs
{

namespace
{

/** The instance SIGINT/SIGTERM route to (one daemon per process). */
std::atomic<GscalarServer *> g_signal_server{nullptr};

extern "C" void
gscalardSignalHandler(int)
{
    if (GscalarServer *s = g_signal_server.load())
        s->requestStop();
}

// epoll_event.data.u64 sentinels for the reactor's static fds;
// connection ids start at 16 (GscalarServer::nextConnId_).
constexpr std::uint64_t kIdWake = 1;
constexpr std::uint64_t kIdUnixListen = 2;
constexpr std::uint64_t kIdTcpListen = 3;

/** Injected spurious epoll wakeups are bounded so rate 1.0 cannot
 *  livelock the reactor (the serve:eintr bound, same idiom). */
constexpr int kMaxInjectedSpurious = 16;

/** How long a draining stop waits for stuck response flushes. */
constexpr double kDrainFlushDeadlineSec = 5.0;

/** Grace before reaping a closing connection whose peer never EOFs. */
constexpr double kClosingGraceSec = 30.0;

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool
bindUnixSocket(int fd, const std::string &path, std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + path;
        return false;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) == 0)
        return true;
    if (errno != EADDRINUSE) {
        if (error)
            *error = "bind(" + path + "): " + std::strerror(errno);
        return false;
    }

    // A socket file exists. If nobody answers it is a stale leftover of
    // a dead server: remove and retry. If a server answers, refuse.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
        const bool alive = ::connect(probe,
                                     reinterpret_cast<sockaddr *>(&addr),
                                     sizeof(addr)) == 0;
        ::close(probe);
        if (alive) {
            if (error)
                *error = "a gscalard is already listening on " + path;
            return false;
        }
    }
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) ==
        0)
        return true;
    if (error)
        *error = "bind(" + path + "): " + std::strerror(errno);
    return false;
}

/** Bind + listen a TCP socket for @p spec ("host:port", port 0 ok). */
int
bindTcpSocket(const std::string &spec, std::uint16_t *boundPort,
              std::string *error)
{
    std::string err;
    const std::optional<ConnectTarget> target =
        parseConnectTarget(spec, &err, /*allowPortZero=*/true);
    if (!target) {
        if (error)
            *error = err;
        return -1;
    }

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo *res = nullptr;
    const std::string portStr = std::to_string(target->port);
    const int rc =
        ::getaddrinfo(target->host.c_str(), portStr.c_str(), &hints, &res);
    if (rc != 0) {
        if (error)
            *error = "resolve " + spec + ": " + ::gai_strerror(rc);
        return -1;
    }

    int fd = -1;
    std::string lastErr = "no addresses";
    for (addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            lastErr = std::string("socket: ") + std::strerror(errno);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, 128) == 0)
            break;
        lastErr = std::string("bind/listen ") + spec + ": " +
                  std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        if (error)
            *error = lastErr;
        return -1;
    }

    if (boundPort) {
        sockaddr_storage ss{};
        socklen_t len = sizeof(ss);
        *boundPort = target->port;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&ss), &len) ==
            0) {
            if (ss.ss_family == AF_INET)
                *boundPort = ntohs(
                    reinterpret_cast<sockaddr_in *>(&ss)->sin_port);
            else if (ss.ss_family == AF_INET6)
                *boundPort = ntohs(
                    reinterpret_cast<sockaddr_in6 *>(&ss)->sin6_port);
        }
    }
    return fd;
}

/** Engine cache key, so flights and memo entries coalesce identically. */
std::string
flightKey(const RunRequest &req)
{
    std::ostringstream os;
    os << req.workload << '#' << std::hex << req.cfg.fingerprint();
    return os.str();
}

/** One wire frame (length prefix + payload), shareable across waiters. */
std::shared_ptr<const std::vector<std::uint8_t>>
makeFrame(const std::vector<std::uint8_t> &payload)
{
    auto f = std::make_shared<std::vector<std::uint8_t>>();
    f->reserve(payload.size() + 4);
    const std::uint32_t len = std::uint32_t(payload.size());
    f->push_back(std::uint8_t(len));
    f->push_back(std::uint8_t(len >> 8));
    f->push_back(std::uint8_t(len >> 16));
    f->push_back(std::uint8_t(len >> 24));
    f->insert(f->end(), payload.begin(), payload.end());
    return f;
}

std::shared_ptr<const std::vector<std::uint8_t>>
makeResponseFrame(ResponseStatus status, std::string error)
{
    RunResponse resp;
    resp.status = status;
    resp.error = std::move(error);
    return makeFrame(serializeResponse(resp));
}

} // namespace

GscalarServer::GscalarServer(ExperimentEngine &engine, Options opts)
    : engine_(engine), opts_(std::move(opts))
{
    path_ = opts_.socketPath.empty() ? defaultSocketPath()
                                     : opts_.socketPath;
}

GscalarServer::~GscalarServer()
{
    stop();
    if (handlersInstalled_) {
        ::sigaction(SIGINT, &oldInt_, nullptr);
        ::sigaction(SIGTERM, &oldTerm_, nullptr);
        g_signal_server.store(nullptr);
    }
}

bool
GscalarServer::start(std::string *error)
{
    GS_ASSERT(!running_.load(), "start() on a running server");
    stopping_.store(false);
    stopWorkers_ = false;

    auto failCleanup = [this] {
        for (int *fd : {&listenFd_, &tcpListenFd_, &epollFd_,
                        &wakeFds_[0], &wakeFds_[1]}) {
            if (*fd >= 0) {
                ::close(*fd);
                *fd = -1;
            }
        }
    };

    epollFd_ = ::epoll_create1(0);
    if (epollFd_ < 0) {
        if (error)
            *error = std::string("epoll_create1: ") + std::strerror(errno);
        return false;
    }
    if (::pipe(wakeFds_) != 0) {
        if (error)
            *error = std::string("pipe: ") + std::strerror(errno);
        failCleanup();
        return false;
    }
    setNonBlocking(wakeFds_[0]);
    setNonBlocking(wakeFds_[1]);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        failCleanup();
        return false;
    }
    if (!bindUnixSocket(listenFd_, path_, error)) {
        failCleanup();
        return false;
    }
    if (::listen(listenFd_, 128) != 0) {
        if (error)
            *error = std::string("listen: ") + std::strerror(errno);
        failCleanup();
        ::unlink(path_.c_str());
        return false;
    }
    setNonBlocking(listenFd_);

    if (!opts_.tcpBind.empty()) {
        std::uint16_t port = 0;
        tcpListenFd_ = bindTcpSocket(opts_.tcpBind, &port, error);
        if (tcpListenFd_ < 0) {
            failCleanup();
            ::unlink(path_.c_str());
            return false;
        }
        setNonBlocking(tcpListenFd_);
        tcpPort_.store(port);
    }

    auto addFd = [this](int fd, std::uint64_t id) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = id;
        return ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) == 0;
    };
    if (!addFd(wakeFds_[0], kIdWake) ||
        !addFd(listenFd_, kIdUnixListen) ||
        (tcpListenFd_ >= 0 && !addFd(tcpListenFd_, kIdTcpListen))) {
        if (error)
            *error = std::string("epoll_ctl: ") + std::strerror(errno);
        failCleanup();
        ::unlink(path_.c_str());
        return false;
    }

    startTime_ = std::chrono::steady_clock::now();
    running_.store(true);
    reactorThread_ = std::thread([this] { reactorLoop(); });

    unsigned workers = opts_.serviceThreads;
    if (workers == 0)
        workers = engine_.jobs() + 2;
    serviceThreads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        serviceThreads_.emplace_back([this] { serviceLoop(); });
    return true;
}

void
GscalarServer::requestStop() noexcept
{
    stopping_.store(true);
    wakeReactor();
}

void
GscalarServer::wakeReactor() noexcept
{
    if (wakeFds_[1] >= 0) {
        const char byte = 1;
        // Best effort; a full pipe still wakes the reactor.
        [[maybe_unused]] ssize_t w = ::write(wakeFds_[1], &byte, 1);
    }
}

// ---- reactor ------------------------------------------------------------

GscalarServer::Conn *
GscalarServer::findConn(std::uint64_t id)
{
    const auto it = conns_.find(id);
    return it == conns_.end() ? nullptr : it->second.get();
}

void
GscalarServer::reactorLoop()
{
    std::vector<epoll_event> events(64);
    std::vector<BatchItem> batch;
    int spuriousBudget = kMaxInjectedSpurious;
    bool listenersClosed = false;
    std::chrono::steady_clock::time_point drainDeadline{};

    for (;;) {
        int timeoutMs = 250;
        if (opts_.idleTimeoutSec > 0)
            timeoutMs = std::clamp(int(opts_.idleTimeoutSec * 250), 10,
                                   250);
        if (stopping_.load())
            timeoutMs = std::min(timeoutMs, 50);

        const int n = ::epoll_wait(epollFd_, events.data(),
                                   int(events.size()), timeoutMs);
        const auto wake = std::chrono::steady_clock::now();
        if (n < 0) {
            if (errno == EINTR)
                continue;
            GS_WARN("gscalard: epoll_wait failed: ",
                    std::strerror(errno));
            break;
        }
        if (spuriousBudget > 0 &&
            injectFault("serve", FaultKind::EpollSpurious)) {
            // Phantom wakeup: drop this iteration on the floor. Level-
            // triggered epoll re-reports every ready fd next time, so
            // nothing is lost — the loop must merely survive it.
            --spuriousBudget;
            continue;
        }

        batch.clear();
        for (int i = 0; i < n; ++i) {
            const std::uint64_t id = events[i].data.u64;
            const std::uint32_t ev = events[i].events;
            if (id == kIdWake) {
                std::uint8_t buf[256];
                while (::read(wakeFds_[0], buf, sizeof(buf)) > 0) {
                }
            } else if (id == kIdUnixListen) {
                acceptReady(listenFd_, /*tcp=*/false);
            } else if (id == kIdTcpListen) {
                acceptReady(tcpListenFd_, /*tcp=*/true);
            } else if (Conn *conn = findConn(id)) {
                if (!conn->dead &&
                    (ev & (EPOLLIN | EPOLLHUP | EPOLLERR)))
                    readConn(*conn, batch);
                if (!conn->dead && (ev & EPOLLOUT))
                    flushConn(*conn);
            }
        }

        dispatchBatch(batch);
        drainCompletions();
        idleSweep(wake);
        reapDead();

        if (n > 0) {
            const auto busy = std::chrono::steady_clock::now() - wake;
            std::lock_guard<std::mutex> lock(latencyMutex_);
            reactorLoopHist_.record(
                std::chrono::duration<double>(busy).count());
        }

        if (stopping_.load()) {
            if (!listenersClosed) {
                closeListeners();
                listenersClosed = true;
                drainDeadline =
                    wake + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(
                                   kDrainFlushDeadlineSec));
            }
            bool completionsEmpty;
            {
                std::lock_guard<std::mutex> lock(completionMutex_);
                completionsEmpty = completions_.empty();
            }
            bool writesFlushed = true;
            for (const auto &[id, conn] : conns_)
                if (!conn->dead && !conn->wq.empty())
                    writesFlushed = false;
            if (flights_.empty() && completionsEmpty &&
                (writesFlushed ||
                 std::chrono::steady_clock::now() > drainDeadline))
                break;
        }
    }

    // Drained (or the loop died): every response owed has been fanned
    // out and flushed. Tear the connections down.
    for (auto &[id, conn] : conns_) {
        if (conn->fd >= 0)
            ::close(conn->fd);
        activeConns_.fetch_sub(1, std::memory_order_relaxed);
    }
    conns_.clear();
    closeListeners();
}

void
GscalarServer::closeListeners()
{
    for (int *fd : {&listenFd_, &tcpListenFd_}) {
        if (*fd >= 0) {
            ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, *fd, nullptr);
            ::close(*fd);
            *fd = -1;
        }
    }
}

void
GscalarServer::acceptReady(int listenFd, bool tcp)
{
    for (;;) {
        const int fd = ::accept4(listenFd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK)
                GS_WARN("gscalard: accept failed: ",
                        std::strerror(errno));
            return;
        }
        if (opts_.maxConnections > 0 &&
            activeConns_.load(std::memory_order_relaxed) >=
                opts_.maxConnections) {
            // Shed load instead of queueing unboundedly: tell the peer
            // why (it retries with backoff) and close. The frame is
            // tiny and the socket buffer empty, so the nonblocking
            // send is best-effort in practice.
            // Count before sending: the peer may act on the frame the
            // instant send() lands, and must then observe the shed.
            overloads_.fetch_add(1);
            healthCounters().daemonOverloads.fetch_add(
                1, std::memory_order_relaxed);
            RunResponse resp;
            resp.status = ResponseStatus::Overloaded;
            resp.error = "connection cap (" +
                         std::to_string(opts_.maxConnections) +
                         ") reached; retry with backoff";
            const auto frame = makeFrame(serializeResponse(resp));
            [[maybe_unused]] ssize_t w =
                ::send(fd, frame->data(), frame->size(), MSG_NOSIGNAL);
            ::close(fd);
            continue;
        }
        if (tcp) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
        }

        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->id = nextConnId_++;
        conn->lastActivity = std::chrono::steady_clock::now();
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = conn->id;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            GS_WARN("gscalard: epoll_ctl(conn) failed: ",
                    std::strerror(errno));
            ::close(fd);
            continue;
        }
        conns_.emplace(conn->id, std::move(conn));
        activeConns_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
GscalarServer::readConn(Conn &conn, std::vector<BatchItem> &batch)
{
    std::uint8_t chunk[16384];
    for (;;) {
        const ssize_t r = ::recv(conn.fd, chunk, sizeof(chunk), 0);
        if (r > 0) {
            conn.lastActivity = std::chrono::steady_clock::now();
            if (conn.closing)
                continue; // discard: the goodbye frame is in the wq
            conn.rbuf.insert(conn.rbuf.end(), chunk, chunk + r);
            parseFrames(conn, batch);
            if (conn.dead)
                return;
            continue;
        }
        if (r == 0) {
            // EOF: reclaim the slot immediately — a burst-then-idle
            // daemon must never pin dead connections (the epoll
            // lifecycle replaced the old reap-on-next-accept). Any
            // response still owed is dropped with the peer.
            conn.sawEof = true;
            markDead(conn);
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        markDead(conn); // ECONNRESET and friends
        return;
    }
}

void
GscalarServer::parseFrames(Conn &conn, std::vector<BatchItem> &batch)
{
    for (;;) {
        const std::size_t avail = conn.rbuf.size() - conn.rpos;
        if (avail < 4)
            break;
        const std::uint8_t *p = conn.rbuf.data() + conn.rpos;
        const std::uint32_t len = std::uint32_t(p[0]) |
                                  (std::uint32_t(p[1]) << 8) |
                                  (std::uint32_t(p[2]) << 16) |
                                  (std::uint32_t(p[3]) << 24);
        if (len > opts_.maxFrameBytes) {
            // Size-guard trip: answer before hanging up so the peer
            // learns the limit instead of diagnosing a dead socket.
            frameRejects_.fetch_add(1);
            healthCounters().daemonFrameRejects.fetch_add(
                1, std::memory_order_relaxed);
            RunResponse resp;
            resp.status = ResponseStatus::BadRequest;
            resp.error = "frame exceeds the " +
                         std::to_string(opts_.maxFrameBytes) +
                         " byte limit";
            respond(conn, resp);
            conn.closing = true;
            conn.rbuf.clear();
            conn.rpos = 0;
            return;
        }
        if (avail < 4 + std::size_t(len))
            break;
        handleFrame(conn, p + 4, len, batch);
        conn.rpos += 4 + std::size_t(len);
        if (conn.dead || conn.closing) {
            conn.rbuf.clear();
            conn.rpos = 0;
            return;
        }
    }
    if (conn.rpos == conn.rbuf.size()) {
        conn.rbuf.clear();
        conn.rpos = 0;
    } else if (conn.rpos > std::size_t(64) << 10) {
        conn.rbuf.erase(conn.rbuf.begin(),
                        conn.rbuf.begin() +
                            std::ptrdiff_t(conn.rpos));
        conn.rpos = 0;
    }
}

void
GscalarServer::handleFrame(Conn &conn, const std::uint8_t *data,
                           std::size_t size,
                           std::vector<BatchItem> &batch)
{
    const std::optional<BlobKind> kind = peekKind(data, size);
    if (kind == BlobKind::Ping) {
        enqueueFrame(conn, makeFrame(serializePong()));
        return;
    }
    if (kind == BlobKind::StatsRequest) {
        enqueueFrame(conn, makeFrame(serializeStatsResponse(stats())));
        return;
    }
    if (kind != BlobKind::Request) {
        RunResponse resp;
        resp.status = ResponseStatus::BadRequest;
        resp.error = "unexpected message kind";
        respond(conn, resp);
        return;
    }

    RunResponse resp;
    std::string err;
    std::optional<RunRequest> req = deserializeRequest(data, size, &err);
    if (!req) {
        resp.status = ResponseStatus::BadRequest;
        resp.error = "malformed request: " + err;
        respond(conn, resp);
        return;
    }
    if (!workloadResolvable(req->workload)) {
        resp.status = ResponseStatus::BadRequest;
        resp.error = "unknown workload '" + req->workload + "'";
        respond(conn, resp);
        return;
    }
    if (std::string bad = req->cfg.check(); !bad.empty()) {
        resp.status = ResponseStatus::BadRequest;
        resp.error = "invalid configuration: " + bad;
        respond(conn, resp);
        return;
    }
    if (stopping_.load()) {
        resp.status = ResponseStatus::ShuttingDown;
        resp.error = "server is draining";
        respond(conn, resp);
        return;
    }

    conn.inFlight++;
    BatchItem item;
    item.connId = conn.id;
    item.req = std::move(*req);
    batch.push_back(std::move(item));
}

void
GscalarServer::dispatchBatch(std::vector<BatchItem> &batch)
{
    if (batch.empty())
        return;
    batches_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t peak = batchPeak_.load(std::memory_order_relaxed);
    while (peak < batch.size() &&
           !batchPeak_.compare_exchange_weak(peak, batch.size())) {
    }

    const auto now = std::chrono::steady_clock::now();
    for (BatchItem &item : batch) {
        const std::string key = flightKey(item.req);
        const auto it = flights_.find(key);
        if (it != flights_.end()) {
            // Singleflight join: park on the flight in the air and
            // share its one computation (and its one serialization).
            Flight &flight = it->second;
            flight.waiters.push_back({item.connId, now});
            coalesceFollowers_.fetch_add(1, std::memory_order_relaxed);
            if (item.req.priority > flight.priority) {
                // Priority inheritance: a high-priority follower must
                // not wait behind the leader's lower band.
                std::lock_guard<std::mutex> lock(pendingMutex_);
                auto &from = pending_[flight.priority];
                for (auto job = from.begin(); job != from.end(); ++job) {
                    if (job->key == key) {
                        PendingJob moved = std::move(*job);
                        from.erase(job);
                        auto &to = pending_[item.req.priority];
                        to.push_back(std::move(moved));
                        queuePeaks_[item.req.priority] = std::max(
                            queuePeaks_[item.req.priority],
                            std::uint64_t(to.size()));
                        break;
                    }
                }
                flight.priority = item.req.priority;
            }
            continue;
        }

        // New flight: admission control. The queue bound covers
        // flights not yet picked up by a service thread; when it is
        // full a lower-band queued flight is shed to make room, else
        // the arrival itself is shed.
        std::string victimKey;
        bool admitted = true;
        {
            std::lock_guard<std::mutex> lock(pendingMutex_);
            std::size_t total = 0;
            for (const auto &band : pending_)
                total += band.size();
            if (opts_.maxQueuedFlights > 0 &&
                total >= opts_.maxQueuedFlights) {
                for (std::uint32_t band = 0; band < item.req.priority;
                     ++band) {
                    if (!pending_[band].empty()) {
                        victimKey = pending_[band].back().key;
                        pending_[band].pop_back();
                        break;
                    }
                }
                if (victimKey.empty())
                    admitted = false;
            }
            if (admitted) {
                auto &band = pending_[item.req.priority];
                PendingJob job;
                job.key = key;
                job.req = item.req;
                job.created = now;
                band.push_back(std::move(job));
                queuePeaks_[item.req.priority] =
                    std::max(queuePeaks_[item.req.priority],
                             std::uint64_t(band.size()));
            }
        }
        if (!victimKey.empty())
            shedFlight(victimKey,
                       "shed by a higher-priority arrival; retry with "
                       "backoff");
        if (!admitted) {
            queueSheds_.fetch_add(1, std::memory_order_relaxed);
            healthCounters().daemonQueueSheds.fetch_add(
                1, std::memory_order_relaxed);
            if (Conn *conn = findConn(item.connId)) {
                RunResponse resp;
                resp.status = ResponseStatus::Overloaded;
                resp.error =
                    "admission queue full (" +
                    std::to_string(opts_.maxQueuedFlights) +
                    ") at priority " + std::to_string(item.req.priority) +
                    "; retry with backoff";
                conn->inFlight--;
                respond(*conn, resp);
            }
            continue;
        }

        Flight flight;
        flight.req = item.req;
        flight.priority = item.req.priority;
        flight.created = now;
        flight.waiters.push_back({item.connId, now});
        flights_.emplace(key, std::move(flight));
        coalesceLeaders_.fetch_add(1, std::memory_order_relaxed);
        pendingCv_.notify_one();
    }
}

void
GscalarServer::shedFlight(const std::string &key, const std::string &why)
{
    const auto it = flights_.find(key);
    if (it == flights_.end())
        return;
    queueSheds_.fetch_add(1, std::memory_order_relaxed);
    healthCounters().daemonQueueSheds.fetch_add(
        1, std::memory_order_relaxed);
    const auto frame = makeResponseFrame(ResponseStatus::Overloaded, why);
    for (const Waiter &w : it->second.waiters) {
        if (Conn *conn = findConn(w.connId)) {
            conn->inFlight--;
            enqueueFrame(*conn, frame);
        }
    }
    flights_.erase(it);
}

void
GscalarServer::drainCompletions()
{
    for (;;) {
        Completion done;
        {
            std::lock_guard<std::mutex> lock(completionMutex_);
            if (completions_.empty())
                return;
            done = std::move(completions_.front());
            completions_.pop_front();
        }
        fanOut(done.key, done);
    }
}

void
GscalarServer::fanOut(const std::string &key, const Completion &done)
{
    const auto it = flights_.find(key);
    if (it == flights_.end())
        return;
    Flight &flight = it->second;

    if (done.leaderCrash) {
        // The leader died mid-flight; promote: re-dispatch the same
        // flight at the front of its band, marked so the rerun is
        // exempt from injection (transient-fault contract) — every
        // follower still gets its answer.
        coalescePromotions_.fetch_add(1, std::memory_order_relaxed);
        healthCounters().coalescePromotions.fetch_add(
            1, std::memory_order_relaxed);
        flight.dispatched = false;
        PendingJob job;
        job.key = key;
        job.req = flight.req;
        job.promoted = true;
        job.created = flight.created;
        {
            std::lock_guard<std::mutex> lock(pendingMutex_);
            auto &band = pending_[flight.priority];
            band.push_front(std::move(job));
            queuePeaks_[flight.priority] =
                std::max(queuePeaks_[flight.priority],
                         std::uint64_t(band.size()));
        }
        pendingCv_.notify_one();
        return;
    }

    const auto now = std::chrono::steady_clock::now();
    const bool ok = done.status == ResponseStatus::Ok;
    for (const Waiter &w : flight.waiters) {
        Conn *conn = findConn(w.connId);
        if (conn == nullptr || conn->dead)
            continue; // the peer hung up while waiting
        conn->inFlight--;
        conn->lastActivity = now;
        // Count before sending: the peer may act on the frame the
        // instant send() lands, and must then observe the serve.
        if (ok) {
            served_.fetch_add(1);
            std::lock_guard<std::mutex> lock(latencyMutex_);
            latency_[flight.req.workload].record(
                std::chrono::duration<double>(now - w.start).count());
        }
        enqueueFrame(*conn, done.frame);
    }
    flights_.erase(it);
}

void
GscalarServer::idleSweep(std::chrono::steady_clock::time_point now)
{
    for (auto &[id, conn] : conns_) {
        if (conn->dead)
            continue;
        const double idle =
            std::chrono::duration<double>(now - conn->lastActivity)
                .count();
        if (conn->closing) {
            const double grace = opts_.idleTimeoutSec > 0
                                     ? opts_.idleTimeoutSec
                                     : kClosingGraceSec;
            if (conn->wq.empty() && (conn->sawEof || idle > grace))
                markDead(*conn);
            continue;
        }
        if (opts_.idleTimeoutSec > 0 && conn->inFlight == 0 &&
            conn->wq.empty() && idle > opts_.idleTimeoutSec) {
            idleCloses_.fetch_add(1);
            healthCounters().daemonIdleCloses.fetch_add(
                1, std::memory_order_relaxed);
            markDead(*conn);
        }
    }
}

void
GscalarServer::markDead(Conn &conn)
{
    conn.dead = true;
}

void
GscalarServer::reapDead()
{
    for (auto it = conns_.begin(); it != conns_.end();) {
        if (it->second->dead) {
            Conn &conn = *it->second;
            ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, conn.fd, nullptr);
            ::close(conn.fd);
            activeConns_.fetch_sub(1, std::memory_order_relaxed);
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

void
GscalarServer::respond(Conn &conn, const RunResponse &resp)
{
    enqueueFrame(conn, makeFrame(serializeResponse(resp)));
}

void
GscalarServer::enqueueFrame(
    Conn &conn, std::shared_ptr<const std::vector<std::uint8_t>> f)
{
    if (conn.dead)
        return;
    conn.wq.push_back(OutBuf{std::move(f), 0});
    flushConn(conn);
}

void
GscalarServer::flushConn(Conn &conn)
{
    while (!conn.wq.empty()) {
        OutBuf &b = conn.wq.front();
        const ssize_t w =
            ::send(conn.fd, b.frame->data() + b.off,
                   b.frame->size() - b.off, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                armWrite(conn, true);
                return;
            }
            markDead(conn); // EPIPE/ECONNRESET: the peer is gone
            return;
        }
        b.off += std::size_t(w);
        if (b.off == b.frame->size())
            conn.wq.pop_front();
    }
    if (conn.wantWrite)
        armWrite(conn, false);
    if (conn.closing && conn.sawEof)
        markDead(conn);
}

void
GscalarServer::armWrite(Conn &conn, bool on)
{
    if (conn.wantWrite == on)
        return;
    epoll_event ev{};
    ev.events = EPOLLIN | (on ? EPOLLOUT : 0);
    ev.data.u64 = conn.id;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0)
        conn.wantWrite = on;
}

// ---- service pool -------------------------------------------------------

void
GscalarServer::serviceLoop()
{
    for (;;) {
        PendingJob job;
        {
            std::unique_lock<std::mutex> lock(pendingMutex_);
            pendingCv_.wait(lock, [this] {
                if (stopWorkers_)
                    return true;
                for (const auto &band : pending_)
                    if (!band.empty())
                        return true;
                return false;
            });
            bool found = false;
            for (std::uint32_t band = kNumPriorities; band-- > 0;) {
                if (!pending_[band].empty()) {
                    job = std::move(pending_[band].front());
                    pending_[band].pop_front();
                    found = true;
                    break;
                }
            }
            if (!found) {
                if (stopWorkers_)
                    return;
                continue;
            }
        }
        runJob(std::move(job));
    }
}

void
GscalarServer::runJob(PendingJob job)
{
    Completion done;
    done.key = job.key;

    if (!job.promoted &&
        injectFault("serve", FaultKind::CoalesceLeaderCrash)) {
        // The leader's computation dies before reaching the engine;
        // the reactor must promote (re-dispatch) so followers are
        // never stranded on a dead flight.
        done.leaderCrash = true;
        postCompletion(std::move(done));
        return;
    }
    // A promoted rerun is the recovery path: injected faults model
    // transient failures, so it runs exempt from further injection.
    std::optional<FaultInjector::Suppress> guard;
    if (job.promoted)
        guard.emplace();

    RunResponse resp;
    const auto budget = std::chrono::duration<double>(
        opts_.requestTimeoutSec > 0 ? opts_.requestTimeoutSec : 1e9);
    const auto elapsed = std::chrono::steady_clock::now() - job.created;
    try {
        if (elapsed >= budget) {
            resp.status = ResponseStatus::Timeout;
            resp.error = "simulation exceeded the request budget";
        } else {
            std::shared_future<RunResult> future =
                engine_.submit(job.req.workload, job.req.cfg);
            if (future.wait_for(budget - elapsed) !=
                std::future_status::ready) {
                resp.status = ResponseStatus::Timeout;
                resp.error = "simulation exceeded the request budget";
            } else {
                resp.result = future.get();
                if (resp.result.ok()) {
                    resp.status = ResponseStatus::Ok;
                } else {
                    // The engine retried and still failed; the error
                    // rides the result rather than an exception
                    // (engine.cpp), so map it to a status here.
                    resp.status = ResponseStatus::InternalError;
                    resp.error = resp.result.error;
                    resp.result = RunResult{};
                }
            }
        }
    } catch (const std::exception &e) {
        resp.status = ResponseStatus::InternalError;
        resp.error = e.what();
        resp.result = RunResult{};
    }

    done.status = resp.status;
    // Serialize exactly once: every waiter receives these same bytes,
    // which is what makes coalesced results byte-identical by
    // construction.
    done.frame = makeFrame(serializeResponse(resp));
    postCompletion(std::move(done));
}

void
GscalarServer::postCompletion(Completion done)
{
    {
        std::lock_guard<std::mutex> lock(completionMutex_);
        completions_.push_back(std::move(done));
    }
    wakeReactor();
}

// ---- stats / lifecycle --------------------------------------------------

DaemonStats
GscalarServer::stats() const
{
    DaemonStats s;
    const EngineSnapshot snap = engine_.snapshot();
    s.uptimeSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - startTime_)
                          .count();
    s.requestsServed = served_.load();
    s.activeConnections = std::uint32_t(activeConnections());
    s.jobs = snap.jobs;
    s.queueDepth = snap.queueDepth;
    s.peakQueueDepth = snap.peakQueueDepth;
    s.cacheHits = snap.cache.hits;
    s.cacheMisses = snap.cache.misses;
    s.diskCacheHits = snap.cache.diskHits;
    s.diskCacheStores = snap.cache.diskStores;
    s.simWallSeconds = snap.wallSumSeconds;
    s.simCycles = snap.simCycles;
    s.warpInsts = snap.warpInsts;
    s.overloads = overloads_.load();
    s.idleCloses = idleCloses_.load();
    s.frameRejects = frameRejects_.load();
    s.coalesceLeaders = coalesceLeaders_.load();
    s.coalesceFollowers = coalesceFollowers_.load();
    s.coalescePromotions = coalescePromotions_.load();
    s.batches = batches_.load();
    s.batchPeak = batchPeak_.load();
    s.queueSheds = queueSheds_.load();
    {
        std::lock_guard<std::mutex> lock(pendingMutex_);
        for (std::size_t i = 0; i < kNumPriorities; ++i) {
            s.queueDepths[i] = pending_[i].size();
            s.queuePeaks[i] = queuePeaks_[i];
        }
    }
    std::lock_guard<std::mutex> lock(latencyMutex_);
    s.reactorLoop = reactorLoopHist_;
    for (const auto &[name, hist] : latency_)
        s.workloads.push_back({name, hist}); // std::map: sorted by name
    return s;
}

void
GscalarServer::wait()
{
    if (reactorThread_.joinable())
        reactorThread_.join();

    {
        std::lock_guard<std::mutex> lock(pendingMutex_);
        stopWorkers_ = true;
    }
    pendingCv_.notify_all();
    for (std::thread &t : serviceThreads_)
        if (t.joinable())
            t.join();
    serviceThreads_.clear();

    closeListeners();
    if (epollFd_ >= 0) {
        ::close(epollFd_);
        epollFd_ = -1;
    }
    for (int &fd : wakeFds_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
    if (running_.load())
        ::unlink(path_.c_str());
    running_.store(false);
}

void
GscalarServer::stop()
{
    if (!running_.load())
        return;
    requestStop();
    wait();
}

bool
GscalarServer::installSignalHandlers(std::string *error)
{
    GscalarServer *expected = nullptr;
    if (!g_signal_server.compare_exchange_strong(expected, this)) {
        if (error)
            *error = "another server already owns the signal handlers";
        return false;
    }
    struct sigaction sa = {};
    sa.sa_handler = gscalardSignalHandler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: let blocking calls see EINTR
    if (::sigaction(SIGINT, &sa, &oldInt_) != 0 ||
        ::sigaction(SIGTERM, &sa, &oldTerm_) != 0) {
        if (error)
            *error = std::string("sigaction: ") + std::strerror(errno);
        g_signal_server.store(nullptr);
        return false;
    }
    handlersInstalled_ = true;
    return true;
}

} // namespace gs
