/**
 * @file
 * Client side of the gscalard protocol: connect to a daemon's unix
 * socket and submit experiment requests. Used by `gscalar submit` and
 * by sweep scripts that want machine-wide run sharing without linking
 * the whole simulator.
 *
 * Hardened for a flaky daemon: connects are deadline-bounded
 * (non-blocking connect + poll, so a wedged daemon can never hang a
 * client forever), and run/ping/stats retry transport failures and
 * retryable statuses (ShuttingDown, Overloaded) with exponential
 * backoff whose jitter is deterministic given ClientOptions::jitterSeed
 * — a failing sweep replays identically.
 */

#ifndef GSCALAR_SERVE_CLIENT_HPP
#define GSCALAR_SERVE_CLIENT_HPP

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "protocol.hpp"

namespace gs
{

/** Retry/timeout knobs of one GscalarClient. */
struct ClientOptions
{
    /** Connect deadline; <= 0 restores a blocking connect. */
    double connectTimeoutSec = 5.0;

    /** Total tries per operation (1 = no retries). */
    unsigned attempts = 3;

    double backoffBaseSec = 0.01; ///< first retry delay (doubles after)
    double backoffMaxSec = 1.0;   ///< backoff ceiling

    /**
     * Total-time cap on one operation's retry ladder, in seconds;
     * <= 0 means uncapped (the GS_RETRIES count is the only bound).
     * With a dead daemon and a deep ladder the exponential backoff
     * alone can stall a caller for minutes; past this deadline the
     * operation fails fast instead of sleeping again.
     */
    double retryDeadlineSec = 0;

    /** Seed of the deterministic backoff jitter. */
    std::uint64_t jitterSeed = 0;

    /**
     * Defaults with environment overrides applied:
     * $GS_CONNECT_TIMEOUT_MS (connect deadline, 0 disables),
     * $GS_RETRIES (total attempts, >= 1) and $GS_RETRY_DEADLINE_MS
     * (retry-ladder deadline, 0 disables). Malformed values warn and
     * keep the default.
     */
    static ClientOptions fromEnv();
};

class GscalarClient
{
  public:
    /**
     * @param socketPath empty selects defaultSocketPath().
     * @param opts retry/timeout knobs; defaulted from the environment
     *        (ClientOptions::fromEnv()) when not given.
     */
    explicit GscalarClient(std::string socketPath = {},
                           std::optional<ClientOptions> opts = std::nullopt);

    /**
     * Connect over TCP instead of the unix socket (a daemon started
     * with --tcp). The same deadline-bounded connect and retry/backoff
     * machinery applies; socketPath() reads "tcp://host:port".
     */
    explicit GscalarClient(ConnectTarget target,
                           std::optional<ClientOptions> opts = std::nullopt);

    ~GscalarClient();

    GscalarClient(const GscalarClient &) = delete;
    GscalarClient &operator=(const GscalarClient &) = delete;

    /**
     * Connect to the daemon; false (with reason) when none answers
     * within the connect deadline. One attempt, no retries — the
     * request entry points below do the retrying.
     */
    bool connect(std::string *error = nullptr);

    /** Liveness probe: Ping and wait for Pong. Retries transport
     *  failures per ClientOptions. */
    bool ping(std::string *error = nullptr);

    /**
     * Submit one run and block for the response. Empty optional on
     * transport failure or non-Ok status (reason in *error).
     * Transport failures and retryable statuses (ShuttingDown,
     * Overloaded) are retried with exponential backoff before giving
     * up. @p priority picks the daemon's admission band (0 = shed
     * first, kNumPriorities - 1 = shed last).
     */
    std::optional<RunResult> run(const std::string &workload,
                                 const ArchConfig &cfg,
                                 std::string *error = nullptr,
                                 std::uint32_t priority = kDefaultPriority);

    /** Raw request/response exchange: one attempt, no retries (tests
     *  use this for bad inputs and shed connections). */
    std::optional<RunResponse> exchange(const RunRequest &req,
                                        std::string *error = nullptr);

    /**
     * Fetch the daemon's live counters (`gscalar submit --stats`).
     * Empty optional on transport failure or malformed reply; retries
     * like run().
     */
    std::optional<DaemonStats> stats(std::string *error = nullptr);

    bool connected() const { return fd_ >= 0; }
    const std::string &socketPath() const { return path_; }
    const ClientOptions &options() const { return opts_; }

    void close();

  private:
    /**
     * The absolute retry deadline for one operation, established at
     * ladder entry; empty when retryDeadlineSec is unset.
     */
    std::optional<std::chrono::steady_clock::time_point>
    retryDeadline() const;

    /**
     * Sleep before retry @p attempt (0-based): exponential backoff
     * from backoffBaseSec capped at backoffMaxSec, scaled by a
     * deterministic jitter factor in [0.5, 1.0) drawn from jitterSeed.
     * Counts the retry in the health counters. Returns false — without
     * sleeping — when the sleep would cross @p deadline: the caller
     * must fail fast instead of retrying.
     */
    bool backoffBeforeRetry(
        unsigned attempt,
        const std::optional<std::chrono::steady_clock::time_point>
            &deadline);

    bool connectUnix(std::string *error);
    bool connectTcp(std::string *error);

    /**
     * Finish a nonblocking connect on fd_: poll for writability until
     * @p deadline, then read SO_ERROR. Empty string on success, the
     * failure reason otherwise.
     */
    std::string awaitConnect(
        std::chrono::steady_clock::time_point deadline);

    std::string path_; ///< unix path, or "tcp://host:port" diagnostic
    std::optional<ConnectTarget> target_; ///< set for TCP clients
    ClientOptions opts_;
    int fd_ = -1;
};

} // namespace gs

#endif // GSCALAR_SERVE_CLIENT_HPP
