/**
 * @file
 * Client side of the gscalard protocol: connect to a daemon's unix
 * socket and submit experiment requests. Used by `gscalar submit` and
 * by sweep scripts that want machine-wide run sharing without linking
 * the whole simulator.
 */

#ifndef GSCALAR_SERVE_CLIENT_HPP
#define GSCALAR_SERVE_CLIENT_HPP

#include <optional>
#include <string>

#include "protocol.hpp"

namespace gs
{

class GscalarClient
{
  public:
    /** @param socketPath empty selects defaultSocketPath(). */
    explicit GscalarClient(std::string socketPath = {});

    ~GscalarClient();

    GscalarClient(const GscalarClient &) = delete;
    GscalarClient &operator=(const GscalarClient &) = delete;

    /** Connect to the daemon; false (with reason) when none answers. */
    bool connect(std::string *error = nullptr);

    /** Liveness probe: Ping and wait for Pong. */
    bool ping(std::string *error = nullptr);

    /**
     * Submit one run and block for the response. Empty optional on
     * transport failure or non-Ok status (reason in *error).
     */
    std::optional<RunResult> run(const std::string &workload,
                                 const ArchConfig &cfg,
                                 std::string *error = nullptr);

    /** Raw request/response exchange (tests use this for bad inputs). */
    std::optional<RunResponse> exchange(const RunRequest &req,
                                        std::string *error = nullptr);

    /**
     * Fetch the daemon's live counters (`gscalar submit --stats`).
     * Empty optional on transport failure or malformed reply.
     */
    std::optional<DaemonStats> stats(std::string *error = nullptr);

    bool connected() const { return fd_ >= 0; }
    const std::string &socketPath() const { return path_; }

    void close();

  private:
    std::string path_;
    int fd_ = -1;
};

} // namespace gs

#endif // GSCALAR_SERVE_CLIENT_HPP
