#include "protocol.hpp"

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "fault/fault.hpp"

namespace gs
{

namespace
{

// Request field tags.
constexpr std::uint16_t kReqWorkload = 1;
constexpr std::uint16_t kReqConfig = 2;
constexpr std::uint16_t kReqPriority = 3;

// Response field tags.
constexpr std::uint16_t kRespStatus = 1;
constexpr std::uint16_t kRespError = 2;
constexpr std::uint16_t kRespResult = 3;

// StatsResponse field tags.
constexpr std::uint16_t kStatUptime = 1;
constexpr std::uint16_t kStatServed = 2;
constexpr std::uint16_t kStatConns = 3;
constexpr std::uint16_t kStatJobs = 4;
constexpr std::uint16_t kStatQueueDepth = 5;
constexpr std::uint16_t kStatPeakQueueDepth = 6;
constexpr std::uint16_t kStatCacheHits = 7;
constexpr std::uint16_t kStatCacheMisses = 8;
constexpr std::uint16_t kStatDiskHits = 9;
constexpr std::uint16_t kStatDiskStores = 10;
constexpr std::uint16_t kStatSimWall = 11;
constexpr std::uint16_t kStatSimCycles = 12;
constexpr std::uint16_t kStatWarpInsts = 13;
constexpr std::uint16_t kStatWorkload = 14; ///< repeated nested blob
constexpr std::uint16_t kStatOverloads = 15;
constexpr std::uint16_t kStatIdleCloses = 16;
constexpr std::uint16_t kStatFrameRejects = 17;
// Reactor / coalescing tier (appended; old readers skip them, old
// writers simply never emit them — either way the defaults hold).
constexpr std::uint16_t kStatCoalesceLeaders = 18;
constexpr std::uint16_t kStatCoalesceFollowers = 19;
constexpr std::uint16_t kStatCoalescePromotions = 20;
constexpr std::uint16_t kStatBatches = 21;
constexpr std::uint16_t kStatBatchPeak = 22;
constexpr std::uint16_t kStatQueueSheds = 23;
constexpr std::uint16_t kStatQueueDepthBase = 24; ///< 24..24+bands-1
constexpr std::uint16_t kStatQueuePeakBase = 28;  ///< 28..28+bands-1
constexpr std::uint16_t kStatReactorLoop = 32;    ///< nested blob

// WorkloadStats (nested) field tags.
constexpr std::uint16_t kWlName = 1;
constexpr std::uint16_t kWlCount = 2;
constexpr std::uint16_t kWlTotalSeconds = 3;
constexpr std::uint16_t kWlMaxSeconds = 4;
constexpr std::uint16_t kWlBucketBase = 16; ///< tags 16..16+kBuckets-1

std::vector<std::uint8_t>
serializeWorkloadLatency(const WorkloadLatency &wl)
{
    ByteWriter w(BlobKind::WorkloadStats);
    w.field(kWlName, wl.workload);
    w.field(kWlCount, wl.latency.count());
    w.field(kWlTotalSeconds, wl.latency.totalSeconds());
    w.field(kWlMaxSeconds, wl.latency.maxSeconds());
    const auto &buckets = wl.latency.buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i)
        if (buckets[i] != 0)
            w.field(std::uint16_t(kWlBucketBase + i), buckets[i]);
    return w.finish();
}

std::optional<WorkloadLatency>
deserializeWorkloadLatency(const std::uint8_t *data, std::size_t size,
                           std::string *error)
{
    ByteReader r(data, size, BlobKind::WorkloadStats);
    WorkloadLatency wl;
    std::uint64_t count = 0;
    double total = 0, max = 0;
    std::array<std::uint64_t, LatencyHistogram::kBuckets> buckets{};
    r.get(kWlName, wl.workload);
    r.get(kWlCount, count);
    r.get(kWlTotalSeconds, total);
    r.get(kWlMaxSeconds, max);
    for (std::size_t i = 0; i < buckets.size(); ++i)
        r.get(std::uint16_t(kWlBucketBase + i), buckets[i]);
    if (!r.ok()) {
        if (error)
            *error = r.error();
        return std::nullopt;
    }
    if (wl.workload.empty()) {
        if (error)
            *error = "workload stats blob carries no workload name";
        return std::nullopt;
    }
    wl.latency.restore(buckets, count, total, max);
    return wl;
}

} // namespace

std::string
defaultSocketPath()
{
    if (const char *env = std::getenv("GS_SOCKET"); env && *env)
        return env;
    if (const char *run = std::getenv("XDG_RUNTIME_DIR"); run && *run)
        return std::string(run) + "/gscalard.sock";
    return "/tmp/gscalard-" + std::to_string(::getuid()) + ".sock";
}

std::optional<ConnectTarget>
parseConnectTarget(const std::string &spec, std::string *error,
                   bool allowPortZero)
{
    auto fail = [&](const std::string &why) -> std::optional<ConnectTarget> {
        if (error)
            *error = "connect target '" + spec + "': " + why;
        return std::nullopt;
    };

    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos)
        return fail("want host:port");
    std::string host = spec.substr(0, colon);
    const std::string port = spec.substr(colon + 1);
    if (host.empty())
        return fail("empty host");
    // Accept a bracketed IPv6 literal and strip the brackets for
    // getaddrinfo, which wants the bare address.
    if (host.size() >= 2 && host.front() == '[' && host.back() == ']')
        host = host.substr(1, host.size() - 2);
    if (host.empty())
        return fail("empty host");
    if (port.empty() ||
        port.find_first_not_of("0123456789") != std::string::npos)
        return fail("port wants digits only");
    char *end = nullptr;
    const unsigned long v = std::strtoul(port.c_str(), &end, 10);
    const unsigned long lo = allowPortZero ? 0 : 1;
    if (!end || *end != '\0' || v < lo || v > 65535)
        return fail("port wants an integer in [1, 65535]");

    ConnectTarget t;
    t.host = std::move(host);
    t.port = std::uint16_t(v);
    return t;
}

std::string_view
responseStatusName(ResponseStatus s)
{
    switch (s) {
      case ResponseStatus::Ok: return "ok";
      case ResponseStatus::BadRequest: return "bad-request";
      case ResponseStatus::Timeout: return "timeout";
      case ResponseStatus::ShuttingDown: return "shutting-down";
      case ResponseStatus::InternalError: return "internal-error";
      case ResponseStatus::Overloaded: return "overloaded";
    }
    return "unknown";
}

bool
retryableStatus(ResponseStatus s)
{
    return s == ResponseStatus::ShuttingDown ||
           s == ResponseStatus::Overloaded;
}

std::vector<std::uint8_t>
serializeRequest(const RunRequest &req)
{
    ByteWriter w(BlobKind::Request);
    w.field(kReqWorkload, req.workload);
    w.fieldBlob(kReqConfig, serializeConfig(req.cfg));
    w.field(kReqPriority, req.priority);
    return w.finish();
}

std::optional<RunRequest>
deserializeRequest(const std::uint8_t *data, std::size_t size,
                   std::string *error)
{
    ByteReader r(data, size, BlobKind::Request);
    RunRequest req;
    r.get(kReqWorkload, req.workload);

    const std::uint8_t *p = nullptr;
    std::size_t n = 0;
    if (r.getBlob(kReqConfig, p, n)) {
        std::optional<ArchConfig> cfg = deserializeConfig(p, n, error);
        if (!cfg)
            return std::nullopt;
        req.cfg = *cfg;
    } else {
        r.fail("request carries no configuration");
    }
    r.get(kReqPriority, req.priority); // absent tag keeps the default
    if (!r.ok()) {
        if (error)
            *error = r.error();
        return std::nullopt;
    }
    if (req.workload.empty()) {
        if (error)
            *error = "request carries no workload name";
        return std::nullopt;
    }
    if (req.priority >= kNumPriorities) {
        if (error)
            *error = "request priority " + std::to_string(req.priority) +
                     " out of range (want 0.." +
                     std::to_string(kNumPriorities - 1) + ")";
        return std::nullopt;
    }
    return req;
}

std::vector<std::uint8_t>
serializeResponse(const RunResponse &resp)
{
    ByteWriter w(BlobKind::Response);
    w.field(kRespStatus, static_cast<std::uint32_t>(resp.status));
    w.field(kRespError, resp.error);
    if (resp.status == ResponseStatus::Ok)
        w.fieldBlob(kRespResult, serializeResult(resp.result));
    return w.finish();
}

std::optional<RunResponse>
deserializeResponse(const std::uint8_t *data, std::size_t size,
                    std::string *error)
{
    ByteReader r(data, size, BlobKind::Response);
    RunResponse resp;
    std::uint32_t status = 0;
    r.get(kRespStatus, status);
    r.get(kRespError, resp.error);
    if (status > static_cast<std::uint32_t>(ResponseStatus::Overloaded)) {
        if (error)
            *error = "response status " + std::to_string(status) +
                     " out of range";
        return std::nullopt;
    }
    resp.status = static_cast<ResponseStatus>(status);

    if (resp.status == ResponseStatus::Ok) {
        const std::uint8_t *p = nullptr;
        std::size_t n = 0;
        if (!r.getBlob(kRespResult, p, n)) {
            if (error)
                *error = "ok response carries no result";
            return std::nullopt;
        }
        std::optional<RunResult> res = deserializeResult(p, n, error);
        if (!res)
            return std::nullopt;
        resp.result = *res;
    }
    if (!r.ok()) {
        if (error)
            *error = r.error();
        return std::nullopt;
    }
    return resp;
}

std::vector<std::uint8_t>
serializePing()
{
    return ByteWriter(BlobKind::Ping).finish();
}

std::vector<std::uint8_t>
serializePong()
{
    return ByteWriter(BlobKind::Pong).finish();
}

std::vector<std::uint8_t>
serializeStatsRequest()
{
    return ByteWriter(BlobKind::StatsRequest).finish();
}

std::vector<std::uint8_t>
serializeStatsResponse(const DaemonStats &s)
{
    ByteWriter w(BlobKind::StatsResponse);
    w.field(kStatUptime, s.uptimeSeconds);
    w.field(kStatServed, s.requestsServed);
    w.field(kStatConns, s.activeConnections);
    w.field(kStatJobs, s.jobs);
    w.field(kStatQueueDepth, s.queueDepth);
    w.field(kStatPeakQueueDepth, s.peakQueueDepth);
    w.field(kStatCacheHits, s.cacheHits);
    w.field(kStatCacheMisses, s.cacheMisses);
    w.field(kStatDiskHits, s.diskCacheHits);
    w.field(kStatDiskStores, s.diskCacheStores);
    w.field(kStatSimWall, s.simWallSeconds);
    w.field(kStatSimCycles, s.simCycles);
    w.field(kStatWarpInsts, s.warpInsts);
    w.field(kStatOverloads, s.overloads);
    w.field(kStatIdleCloses, s.idleCloses);
    w.field(kStatFrameRejects, s.frameRejects);
    w.field(kStatCoalesceLeaders, s.coalesceLeaders);
    w.field(kStatCoalesceFollowers, s.coalesceFollowers);
    w.field(kStatCoalescePromotions, s.coalescePromotions);
    w.field(kStatBatches, s.batches);
    w.field(kStatBatchPeak, s.batchPeak);
    w.field(kStatQueueSheds, s.queueSheds);
    for (std::size_t i = 0; i < kNumPriorities; ++i) {
        w.field(std::uint16_t(kStatQueueDepthBase + i), s.queueDepths[i]);
        w.field(std::uint16_t(kStatQueuePeakBase + i), s.queuePeaks[i]);
    }
    if (s.reactorLoop.count() > 0) {
        WorkloadLatency loop;
        loop.workload = "reactor-loop";
        loop.latency = s.reactorLoop;
        w.fieldBlob(kStatReactorLoop, serializeWorkloadLatency(loop));
    }
    for (const WorkloadLatency &wl : s.workloads)
        w.fieldBlob(kStatWorkload, serializeWorkloadLatency(wl));
    return w.finish();
}

std::optional<DaemonStats>
deserializeStatsResponse(const std::uint8_t *data, std::size_t size,
                         std::string *error)
{
    ByteReader r(data, size, BlobKind::StatsResponse);
    DaemonStats s;
    r.get(kStatUptime, s.uptimeSeconds);
    r.get(kStatServed, s.requestsServed);
    r.get(kStatConns, s.activeConnections);
    r.get(kStatJobs, s.jobs);
    r.get(kStatQueueDepth, s.queueDepth);
    r.get(kStatPeakQueueDepth, s.peakQueueDepth);
    r.get(kStatCacheHits, s.cacheHits);
    r.get(kStatCacheMisses, s.cacheMisses);
    r.get(kStatDiskHits, s.diskCacheHits);
    r.get(kStatDiskStores, s.diskCacheStores);
    r.get(kStatSimWall, s.simWallSeconds);
    r.get(kStatSimCycles, s.simCycles);
    r.get(kStatWarpInsts, s.warpInsts);
    r.get(kStatOverloads, s.overloads);
    r.get(kStatIdleCloses, s.idleCloses);
    r.get(kStatFrameRejects, s.frameRejects);
    r.get(kStatCoalesceLeaders, s.coalesceLeaders);
    r.get(kStatCoalesceFollowers, s.coalesceFollowers);
    r.get(kStatCoalescePromotions, s.coalescePromotions);
    r.get(kStatBatches, s.batches);
    r.get(kStatBatchPeak, s.batchPeak);
    r.get(kStatQueueSheds, s.queueSheds);
    for (std::size_t i = 0; i < kNumPriorities; ++i) {
        r.get(std::uint16_t(kStatQueueDepthBase + i), s.queueDepths[i]);
        r.get(std::uint16_t(kStatQueuePeakBase + i), s.queuePeaks[i]);
    }
    {
        const std::uint8_t *p = nullptr;
        std::size_t n = 0;
        if (r.getBlob(kStatReactorLoop, p, n)) {
            std::optional<WorkloadLatency> loop =
                deserializeWorkloadLatency(p, n, error);
            if (!loop)
                return std::nullopt;
            s.reactorLoop = loop->latency;
        }
    }
    const std::vector<ByteReader::BlobView> blobs =
        r.getBlobs(kStatWorkload);
    if (!r.ok()) {
        if (error)
            *error = r.error();
        return std::nullopt;
    }
    for (const ByteReader::BlobView &b : blobs) {
        std::optional<WorkloadLatency> wl =
            deserializeWorkloadLatency(b.ptr, b.len, error);
        if (!wl)
            return std::nullopt;
        s.workloads.push_back(std::move(*wl));
    }
    return s;
}

std::optional<BlobKind>
peekKind(const std::uint8_t *data, std::size_t size)
{
    if (data == nullptr || size < 8)
        return std::nullopt;
    std::uint32_t magic;
    std::memcpy(&magic, data, 4); // little-endian host assumed repo-wide
    if (magic != kSerialMagic)
        return std::nullopt;
    return static_cast<BlobKind>(data[6]);
}

namespace
{
/** Injected-EINTR storms are bounded so rate 1.0 cannot livelock. */
constexpr int kMaxInjectedEintr = 16;
} // namespace

bool
writeFrame(int fd, const std::vector<std::uint8_t> &payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    if (injectFault("serve", FaultKind::ConnReset)) {
        errno = ECONNRESET;
        return false;
    }
    const std::uint32_t len = std::uint32_t(payload.size());
    std::uint8_t header[4] = {
        std::uint8_t(len), std::uint8_t(len >> 8),
        std::uint8_t(len >> 16), std::uint8_t(len >> 24)};

    int eintrBudget = kMaxInjectedEintr;
    auto writeAll = [fd, &eintrBudget](const std::uint8_t *p,
                                       std::size_t n) {
        while (n > 0) {
            if (eintrBudget > 0 &&
                injectFault("serve", FaultKind::Eintr)) {
                // Simulated spurious wakeup: retry like a real EINTR.
                --eintrBudget;
                continue;
            }
            // MSG_NOSIGNAL: a vanished peer must error out, not raise
            // SIGPIPE and kill the daemon.
            const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
            if (w < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            p += w;
            n -= std::size_t(w);
        }
        return true;
    };
    return writeAll(header, sizeof(header)) &&
           writeAll(payload.data(), payload.size());
}

int
readFrame(int fd, std::vector<std::uint8_t> &payload, std::string *error,
          std::uint32_t maxFrame)
{
    if (maxFrame > kMaxFrameBytes)
        maxFrame = kMaxFrameBytes;
    if (injectFault("serve", FaultKind::ConnReset)) {
        if (error)
            *error = "connection reset by peer (injected)";
        return -1;
    }
    if (injectFault("serve", FaultKind::Stall)) {
        // A peer that stops sending: the reader must survive the gap
        // (or its read timeout must fire), never wedge forever.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }

    int eintrBudget = kMaxInjectedEintr;
    auto readAll = [fd, &eintrBudget](std::uint8_t *p, std::size_t n,
                                      bool *sawAnyByte) {
        std::size_t got = 0;
        while (got < n) {
            if (eintrBudget > 0 &&
                injectFault("serve", FaultKind::Eintr)) {
                --eintrBudget;
                continue;
            }
            const ssize_t r = ::recv(fd, p + got, n - got, 0);
            if (r < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            if (r == 0)
                return false; // EOF
            got += std::size_t(r);
            if (sawAnyByte)
                *sawAnyByte = true;
        }
        return true;
    };

    std::uint8_t header[4];
    bool sawByte = false;
    if (!readAll(header, sizeof(header), &sawByte)) {
        if (!sawByte)
            return 0; // clean EOF between frames
        if (error)
            *error = "connection dropped inside a frame header";
        return -1;
    }
    const std::uint32_t len = std::uint32_t(header[0]) |
                              (std::uint32_t(header[1]) << 8) |
                              (std::uint32_t(header[2]) << 16) |
                              (std::uint32_t(header[3]) << 24);
    if (len > maxFrame) {
        if (error)
            *error = "frame of " + std::to_string(len) +
                     " bytes exceeds the " + std::to_string(maxFrame) +
                     " byte limit";
        return -2;
    }
    if (len > 0 && injectFault("serve", FaultKind::ShortRead)) {
        // Model the peer dying mid-frame; the caller must treat the
        // connection as unusable from here on.
        if (error)
            *error = "connection dropped inside a frame payload "
                     "(injected)";
        return -1;
    }
    payload.resize(len);
    if (len > 0 && !readAll(payload.data(), len, nullptr)) {
        if (error)
            *error = "connection dropped inside a frame payload";
        return -1;
    }
    return 1;
}

} // namespace gs
