/**
 * @file
 * Deterministic, spec-driven fault injection for the harness' three
 * I/O seams: store file operations, serve sockets, and engine workers.
 * A spec names a site, a fault kind, a firing rate and an optional
 * seed:
 *
 *   GS_FAULT=site:kind:rate[:seed][,site:kind:rate[:seed]...]
 *
 * e.g. `GS_FAULT=engine:throw:0.1:42` or
 * `GS_FAULT=store:bit-flip:0.05,serve:conn-reset:0.02`.
 *
 * Firing is a pure function of (seed, site, kind, occurrence index):
 * the n-th time a hook asks about a matching (site, kind) the answer
 * is decided by hashing the spec seed with the occurrence counter, so
 * a given seed always produces the same firing pattern — the chaos
 * suite replays failures instead of chasing them. The injected faults
 * model *transient* failures: recovery paths (the engine's retry, the
 * cache's recompute) run under a Suppress guard so a single fault
 * class is absorbed by design rather than by luck.
 *
 * Sites and the kinds their hooks consult:
 *
 *   store    short-write, rename-fail, bit-flip   (store/run_cache.cpp)
 *   serve    conn-reset, short-read, eintr, stall (serve/protocol.cpp)
 *   serve    coalesce-leader-crash, epoll-spurious (serve/server.cpp)
 *   engine   throw, slow                          (harness/engine.cpp)
 *   sim      slow                                 (sim/parallel.cpp)
 *   gen      miscompare                           (gen/diff.cpp)
 *   rf       stuck-array                          (sim/sm.cpp)
 *   sweep    journal-torn-write, journal-bit-flip (sweep/journal.cpp)
 *   sweep    point-crash, daemon-lost             (sweep/campaign.cpp)
 *
 * The rf site is special: it models *permanent* manufacturing faults,
 * not transient ones. An armed `rf:stuck-array:rate[:seed]` spec marks
 * a deterministic fraction of every SM's SRAM arrays stuck at
 * construction (a pure hash of seed x SM x bank x array, so the set is
 * identical at any --jobs/--sim-threads); a codec whose capability
 * descriptor advertises absorbsStuckFaults (RRCD) redirects the
 * affected registers into spare capacity instead of failing.
 *
 * All hooks are no-ops (one relaxed atomic load) when nothing is
 * armed, so production binaries pay nothing for carrying them.
 */

#ifndef GSCALAR_FAULT_FAULT_HPP
#define GSCALAR_FAULT_FAULT_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gs
{

/** Fault classes an injection site can be asked to produce. */
enum class FaultKind : std::uint8_t
{
    ShortWrite, ///< store: file write persists only a prefix
    RenameFail, ///< store: the atomic publish rename fails
    BitFlip,    ///< store: one payload bit flips after the write
    ConnReset,  ///< serve: the peer vanishes mid-exchange
    ShortRead,  ///< serve: the connection drops inside a frame
    Eintr,      ///< serve: a storm of spurious EINTR wakeups
    Stall,      ///< serve: the peer stops sending for a while
    Throw,      ///< engine: the simulation throws
    Slow,       ///< engine: the simulation takes extra wall clock
    Miscompare, ///< gen: corrupt a differential comparison
    CoalesceLeaderCrash, ///< serve: a coalesced flight's leader dies
    EpollSpurious,       ///< serve: epoll_wait reports a phantom wakeup
    StuckArray,          ///< rf: an RF SRAM array is permanently stuck
    JournalTornWrite, ///< sweep: a journal append persists only a prefix
    JournalBitFlip,   ///< sweep: one journal record bit flips on disk
    PointCrash,       ///< sweep: the process dies after a point commits
    DaemonLost,       ///< sweep: a daemon submit fails as if the peer died
};

/** Canonical spec name of a kind ("short-write", "throw", ...). */
const char *faultKindName(FaultKind k);

/** Parse a spec kind name; empty optional on unknown names. */
std::optional<FaultKind> parseFaultKind(std::string_view name);

/** One armed fault: where, what, how often, and the decision seed. */
struct FaultSpec
{
    std::string site; ///< "store", "serve", "engine", "sim", "gen",
                      ///< "rf", "sweep"
    FaultKind kind = FaultKind::Throw;
    double rate = 0;    ///< firing probability per occurrence, [0, 1]
    std::uint64_t seed = 0;
};

/**
 * The injector: parses specs, answers shouldInject() at every hook,
 * and counts what fired. Instantiable so tests can probe decision
 * sequences in isolation; production hooks consult the process-wide
 * faultInjector() singleton, which arms itself from $GS_FAULT (or the
 * CLI's --fault=) on first use.
 */
class FaultInjector
{
  public:
    FaultInjector() = default;

    /**
     * Arm the injector from a comma-separated spec list, replacing any
     * previous configuration. False (with a one-line reason) on a
     * malformed spec; the previous configuration is kept in that case.
     * An empty string disarms.
     */
    bool configure(const std::string &specList,
                   std::string *error = nullptr);

    /** Drop every spec; hooks return to their no-op fast path. */
    void disarm();

    /** Whether any spec is armed. */
    bool armed() const { return armed_.load(std::memory_order_relaxed); }

    /**
     * Decision point, called by a hook that is able to produce
     * (site, kind). True when an armed spec matches and its seeded
     * hash fires for this occurrence. Counts both consultations and
     * firings; always false under a Suppress guard.
     */
    bool shouldInject(std::string_view site, FaultKind kind);

    /** Faults fired since construction (or the last configure). */
    std::uint64_t injected() const;

    /** Faults fired for one site since the last configure. */
    std::uint64_t injectedAt(std::string_view site) const;

    /** The armed specs (tests and --help diagnostics). */
    std::vector<FaultSpec> specs() const;

    /** First armed spec matching (site, kind); empty when none. */
    std::optional<FaultSpec> armedSpec(std::string_view site,
                                       FaultKind kind) const;

    /**
     * RAII guard exempting the current thread from injection. Recovery
     * paths (engine retry, cache recompute) run under it: the injected
     * faults model transient failures, so the recovery attempt itself
     * must not re-fail — that is what makes a single fault class
     * deterministically absorbable.
     */
    class Suppress
    {
      public:
        Suppress();
        ~Suppress();
        Suppress(const Suppress &) = delete;
        Suppress &operator=(const Suppress &) = delete;
    };

    /** Whether the current thread is under a Suppress guard. */
    static bool suppressed();

  private:
    struct Armed
    {
        FaultSpec spec;
        std::uint64_t siteHash = 0;
        std::atomic<std::uint64_t> occurrences{0};
        std::atomic<std::uint64_t> fired{0};
    };

    std::atomic<bool> armed_{false};
    mutable std::mutex mutex_; ///< guards specs_ (reconfiguration)
    std::vector<std::unique_ptr<Armed>> specs_;
};

/**
 * Process-wide injector consulted by every production hook. On first
 * use it arms itself from $GS_FAULT; a malformed value is fatal (a
 * configuration error, in the GS_JOBS idiom), never silently ignored.
 */
FaultInjector &faultInjector();

/**
 * Convenience hook: consult the process-wide injector. Inlined
 * armed() fast path so unarmed binaries pay one relaxed load.
 */
inline bool
injectFault(std::string_view site, FaultKind kind)
{
    FaultInjector &inj = faultInjector();
    if (!inj.armed())
        return false;
    return inj.shouldInject(site, kind);
}

/**
 * Permanent-fault query for the rf:stuck-array site: whether the SRAM
 * array at (sm, bank, array) is stuck under the armed spec. Unlike
 * shouldInject() this is a pure function of the spec's seed and the
 * coordinates — no occurrence counter — so the stuck set is identical
 * across repeated queries and at any --jobs/--sim-threads. False when
 * nothing is armed or under a Suppress guard.
 */
bool stuckArrayFault(unsigned sm, unsigned bank, unsigned array);

} // namespace gs

#endif // GSCALAR_FAULT_FAULT_HPP
