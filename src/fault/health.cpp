#include "health.hpp"

#include <sstream>

namespace gs
{

HealthCounts
HealthCounters::snapshot() const
{
    HealthCounts out;
#define GS_HEALTH_SNAP(member, name, unit, doc)                              \
    out.member = member.load(std::memory_order_relaxed);
    GS_HEALTH_COUNT_FIELDS(GS_HEALTH_SNAP)
#undef GS_HEALTH_SNAP
    return out;
}

void
HealthCounters::reset()
{
#define GS_HEALTH_RESET(member, name, unit, doc)                             \
    member.store(0, std::memory_order_relaxed);
    GS_HEALTH_COUNT_FIELDS(GS_HEALTH_RESET)
#undef GS_HEALTH_RESET
}

HealthCounters &
healthCounters()
{
    static HealthCounters counters;
    return counters;
}

std::string
healthSummary()
{
    const HealthCounts c = healthCounters().snapshot();
    std::ostringstream out;
    bool any = false;
#define GS_HEALTH_PRINT(member, name, unit, doc)                             \
    if (c.member != 0) {                                                     \
        out << (any ? "  " : "health: ") << name << ' ' << c.member;         \
        any = true;                                                          \
    }
    GS_HEALTH_COUNT_FIELDS(GS_HEALTH_PRINT)
#undef GS_HEALTH_PRINT
    return out.str();
}

} // namespace gs
