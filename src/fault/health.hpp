/**
 * @file
 * Process-wide reliability counters in the EventCounts idiom: every
 * retry, timeout, quarantine and shed-load event on the hardened
 * request path bumps exactly one named counter here, and the obs
 * metric registry (obs/metrics.hpp) enumerates them all — a counter
 * added to the X-macro is exported everywhere by construction, and a
 * static_assert catches a missed registration at compile time.
 *
 * Two shapes share the X-macro: HealthCounters is the live struct of
 * atomics the hot paths bump; HealthCounts is its plain snapshot,
 * which the registry's member pointers address.
 */

#ifndef GSCALAR_FAULT_HEALTH_HPP
#define GSCALAR_FAULT_HEALTH_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace gs
{

/**
 * X-macro enumerating every reliability counter exactly once:
 * X(member, metricName, unit, doc). Single source of truth behind
 * HealthCounters, HealthCounts and the obs registry.
 */
#define GS_HEALTH_COUNT_FIELDS(X)                                            \
    X(faultsInjected, "faults_injected", "events",                           \
      "fault-injector decisions that fired")                                 \
    X(runRetries, "run_retries", "events",                                   \
      "engine runs retried after a first failure")                           \
    X(runFailures, "run_failures", "events",                                 \
      "engine runs that still failed after the retry")                       \
    X(serialFallbacks, "serial_fallbacks", "events",                         \
      "runs executed inline after worker-pool degradation")                  \
    X(clientRetries, "client_retries", "events",                             \
      "client request attempts retried with backoff")                        \
    X(clientConnectTimeouts, "client_connect_timeouts", "events",            \
      "client connects abandoned at the deadline")                           \
    X(daemonIdleCloses, "daemon_idle_closes", "events",                      \
      "connections closed by the per-connection idle timeout")               \
    X(daemonOverloads, "daemon_overloads", "events",                         \
      "connections shed with Overloaded at the connection cap")              \
    X(daemonQueueSheds, "daemon_queue_sheds", "events",                      \
      "queued requests shed with Overloaded by priority admission")          \
    X(coalescePromotions, "coalesce_promotions", "events",                   \
      "coalesced flights whose crashed leader was replaced")                 \
    X(daemonFrameRejects, "daemon_frame_rejects", "events",                  \
      "frames rejected by the max-frame-size guard")                         \
    X(cachePublishFailures, "cache_publish_failures", "events",              \
      "cache records whose atomic publish failed")                           \
    X(cacheQuarantines, "cache_quarantines", "events",                       \
      "corrupt cache records moved to quarantine")                           \
    X(rfStuckArrays, "rf_stuck_arrays", "events",                            \
      "RF SRAM arrays marked permanently stuck by rf:stuck-array")           \
    X(rfRedirectedRegisters, "rf_redirects", "events",                       \
      "registers redirected into spare capacity over stuck arrays")          \
    X(quarantineEvictions, "quarantine_evictions", "events",                 \
      "quarantined cache records evicted by the LRU byte cap")               \
    X(sweepJournalRecoveries, "sweep_journal_recoveries", "events",          \
      "corrupt sweep-journal records quarantined on load")                   \
    X(sweepPointRetries, "sweep_point_retries", "events",                    \
      "sweep points retried after a failed attempt")                         \
    X(sweepResumedPoints, "sweep_resumed_points", "events",                  \
      "sweep points replayed from the journal on --resume")                  \
    X(sweepDaemonFallbacks, "sweep_daemon_fallbacks", "events",              \
      "sweep points computed in-process after daemon submits failed")

/** Plain snapshot of the reliability counters (registry target). */
struct HealthCounts
{
#define GS_HEALTH_FIELD(member, name, unit, doc) std::uint64_t member = 0;
    GS_HEALTH_COUNT_FIELDS(GS_HEALTH_FIELD)
#undef GS_HEALTH_FIELD
};

namespace detail
{
#define GS_HEALTH_COUNT_ONE(member, name, unit, doc) +1
/** Number of lines in GS_HEALTH_COUNT_FIELDS. */
inline constexpr std::size_t kHealthFieldListCount =
    0 GS_HEALTH_COUNT_FIELDS(GS_HEALTH_COUNT_ONE);
#undef GS_HEALTH_COUNT_ONE
} // namespace detail

/** Number of HealthCounts fields; the registry must cover them all. */
inline constexpr std::size_t kHealthCountFields =
    detail::kHealthFieldListCount;

static_assert(kHealthCountFields * sizeof(std::uint64_t) ==
                  sizeof(HealthCounts),
              "GS_HEALTH_COUNT_FIELDS is out of sync with HealthCounts: "
              "register every new counter exactly once");

/** The live counters: lock-free atomics the hardened paths bump. */
struct HealthCounters
{
#define GS_HEALTH_ATOMIC(member, name, unit, doc)                            \
    std::atomic<std::uint64_t> member{0};
    GS_HEALTH_COUNT_FIELDS(GS_HEALTH_ATOMIC)
#undef GS_HEALTH_ATOMIC

    /** Point-in-time plain copy for the registry and reports. */
    HealthCounts snapshot() const;

    /** Zero every counter (tests isolate themselves with this). */
    void reset();
};

/** Process-wide instance every component bumps. */
HealthCounters &healthCounters();

/**
 * One-line report of the non-zero counters, e.g.
 * "health: run_retries 2  cache_quarantines 1"; empty string when all
 * are zero, so clean runs print nothing.
 */
std::string healthSummary();

} // namespace gs

#endif // GSCALAR_FAULT_HEALTH_HPP
