#include "fault.hpp"

#include <cstdlib>
#include <memory>
#include <sstream>

#include "common/log.hpp"
#include "health.hpp"

namespace gs
{

namespace
{

struct KindName
{
    FaultKind kind;
    const char *name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::ShortWrite, "short-write"},
    {FaultKind::RenameFail, "rename-fail"},
    {FaultKind::BitFlip, "bit-flip"},
    {FaultKind::ConnReset, "conn-reset"},
    {FaultKind::ShortRead, "short-read"},
    {FaultKind::Eintr, "eintr"},
    {FaultKind::Stall, "stall"},
    {FaultKind::Throw, "throw"},
    {FaultKind::Slow, "slow"},
    {FaultKind::Miscompare, "miscompare"},
    {FaultKind::CoalesceLeaderCrash, "coalesce-leader-crash"},
    {FaultKind::EpollSpurious, "epoll-spurious"},
    {FaultKind::StuckArray, "stuck-array"},
    {FaultKind::JournalTornWrite, "journal-torn-write"},
    {FaultKind::JournalBitFlip, "journal-bit-flip"},
    {FaultKind::PointCrash, "point-crash"},
    {FaultKind::DaemonLost, "daemon-lost"},
};

constexpr std::string_view kSites[] = {"store", "serve", "engine",
                                       "sim", "gen", "rf", "sweep"};

/** SplitMix64: decorrelates (seed, occurrence) into uniform bits. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
hashString(std::string_view s)
{
    // FNV-1a, same flavour as the serialization checksum.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= std::uint8_t(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

thread_local int t_suppress_depth = 0;

} // namespace

const char *
faultKindName(FaultKind k)
{
    for (const KindName &kn : kKindNames)
        if (kn.kind == k)
            return kn.name;
    return "unknown";
}

std::optional<FaultKind>
parseFaultKind(std::string_view name)
{
    for (const KindName &kn : kKindNames)
        if (name == kn.name)
            return kn.kind;
    return std::nullopt;
}

bool
FaultInjector::configure(const std::string &specList, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };

    std::vector<std::unique_ptr<Armed>> parsed;
    std::istringstream in(specList);
    std::string one;
    while (std::getline(in, one, ',')) {
        if (one.empty())
            continue;

        // site:kind:rate[:seed]
        std::vector<std::string> parts;
        std::istringstream spec(one);
        std::string tok;
        while (std::getline(spec, tok, ':'))
            parts.push_back(tok);
        if (parts.size() < 3 || parts.size() > 4)
            return fail("fault spec '" + one +
                        "' wants site:kind:rate[:seed]");

        FaultSpec s;
        s.site = parts[0];
        bool knownSite = false;
        for (const std::string_view site : kSites)
            knownSite = knownSite || site == s.site;
        if (!knownSite)
            return fail("unknown fault site '" + s.site +
                        "' (want store, serve, engine, sim, gen, rf "
                        "or sweep)");

        const std::optional<FaultKind> kind = parseFaultKind(parts[1]);
        if (!kind)
            return fail("unknown fault kind '" + parts[1] + "'");
        s.kind = *kind;

        char *end = nullptr;
        s.rate = std::strtod(parts[2].c_str(), &end);
        if (parts[2].empty() || !end || *end != '\0' || s.rate < 0 ||
            s.rate > 1)
            return fail("fault rate '" + parts[2] +
                        "' wants a number in [0, 1]");

        if (parts.size() == 4) {
            // strtoull wraps negatives silently; insist on digits only.
            const bool digits =
                !parts[3].empty() &&
                parts[3].find_first_not_of("0123456789") ==
                    std::string::npos;
            const unsigned long long v =
                digits ? std::strtoull(parts[3].c_str(), &end, 10) : 0;
            if (!digits || !end || *end != '\0')
                return fail("fault seed '" + parts[3] +
                            "' wants a non-negative integer");
            s.seed = v;
        }

        auto armed = std::make_unique<Armed>();
        armed->spec = std::move(s);
        armed->siteHash = hashString(armed->spec.site) ^
                          mix64(std::uint64_t(armed->spec.kind) + 1);
        parsed.push_back(std::move(armed));
    }

    std::lock_guard<std::mutex> lock(mutex_);
    specs_ = std::move(parsed);
    armed_.store(!specs_.empty(), std::memory_order_relaxed);
    return true;
}

void
FaultInjector::disarm()
{
    std::lock_guard<std::mutex> lock(mutex_);
    specs_.clear();
    armed_.store(false, std::memory_order_relaxed);
}

bool
FaultInjector::shouldInject(std::string_view site, FaultKind kind)
{
    if (!armed() || suppressed())
        return false;

    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &a : specs_) {
        if (a->spec.kind != kind || a->spec.site != site)
            continue;
        const std::uint64_t n =
            a->occurrences.fetch_add(1, std::memory_order_relaxed);
        // Pure function of (seed, site, kind, occurrence): the n-th
        // consultation fires identically in every process and thread
        // interleaving.
        const std::uint64_t h = mix64(a->spec.seed ^ a->siteHash ^
                                      mix64(n));
        const double u = double(h >> 11) * 0x1.0p-53;
        if (u < a->spec.rate) {
            a->fired.fetch_add(1, std::memory_order_relaxed);
            healthCounters().faultsInjected.fetch_add(
                1, std::memory_order_relaxed);
            return true;
        }
        return false; // first matching spec decides
    }
    return false;
}

std::uint64_t
FaultInjector::injected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = 0;
    for (const auto &a : specs_)
        n += a->fired.load(std::memory_order_relaxed);
    return n;
}

std::uint64_t
FaultInjector::injectedAt(std::string_view site) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = 0;
    for (const auto &a : specs_)
        if (a->spec.site == site)
            n += a->fired.load(std::memory_order_relaxed);
    return n;
}

std::vector<FaultSpec>
FaultInjector::specs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<FaultSpec> out;
    for (const auto &a : specs_)
        out.push_back(a->spec);
    return out;
}

std::optional<FaultSpec>
FaultInjector::armedSpec(std::string_view site, FaultKind kind) const
{
    if (!armed())
        return std::nullopt;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &a : specs_)
        if (a->spec.kind == kind && a->spec.site == site)
            return a->spec;
    return std::nullopt;
}

FaultInjector::Suppress::Suppress()
{
    ++t_suppress_depth;
}

FaultInjector::Suppress::~Suppress()
{
    --t_suppress_depth;
}

bool
FaultInjector::suppressed()
{
    return t_suppress_depth > 0;
}

bool
stuckArrayFault(unsigned sm, unsigned bank, unsigned array)
{
    FaultInjector &inj = faultInjector();
    if (!inj.armed() || FaultInjector::suppressed())
        return false;
    const std::optional<FaultSpec> spec =
        inj.armedSpec("rf", FaultKind::StuckArray);
    if (!spec)
        return false;
    // Pure function of (seed, coordinates): the stuck set of a chip is
    // a manufacturing outcome, fixed before the first cycle.
    const std::uint64_t coord = (std::uint64_t(sm) << 32) ^
                                (std::uint64_t(bank) << 16) ^ array;
    const std::uint64_t h =
        mix64(spec->seed ^ hashString("rf") ^ mix64(coord));
    return double(h >> 11) * 0x1.0p-53 < spec->rate;
}

FaultInjector &
faultInjector()
{
    static FaultInjector &injector = []() -> FaultInjector & {
        static FaultInjector inj;
        if (const char *env = std::getenv("GS_FAULT"); env && *env) {
            std::string err;
            if (!inj.configure(env, &err))
                GS_FATAL("GS_FAULT='", env, "': ", err);
        }
        return inj;
    }();
    return injector;
}

} // namespace gs
