#include "run_cache.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "common/log.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "serial.hpp"

namespace fs = std::filesystem;

namespace gs
{

namespace
{

// Cache-record field tags (BlobKind::CacheEntry).
constexpr std::uint16_t kEntryConfig = 1;
constexpr std::uint16_t kEntryResult = 2;

std::optional<std::vector<std::uint8_t>>
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::vector<std::uint8_t> buf(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        return std::nullopt;
    return buf;
}

} // namespace

DiskRunCache::DiskRunCache(std::string dir, std::uint64_t maxBytes)
    : dir_(std::move(dir)), maxBytes_(maxBytes)
{
    schemaDir_ =
        (fs::path(dir_) / ("v" + std::to_string(kSchemaVersion))).string();
    std::error_code ec;
    fs::create_directories(schemaDir_, ec);
    if (ec)
        GS_WARN("cannot create cache directory ", schemaDir_, ": ",
                ec.message(), " (persistent cache disabled for writes)");
}

std::string
DiskRunCache::defaultCacheDir()
{
    if (const char *xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg)
        return (fs::path(xdg) / "gscalar").string();
    if (const char *home = std::getenv("HOME"); home && *home)
        return (fs::path(home) / ".cache" / "gscalar").string();
    return "/tmp/gscalar-cache";
}

std::unique_ptr<DiskRunCache>
DiskRunCache::fromEnv(bool useDefaultDir)
{
    std::string dir;
    if (const char *env = std::getenv("GS_CACHE_DIR"); env && *env)
        dir = env;
    else if (useDefaultDir)
        dir = defaultCacheDir();
    else
        return nullptr;

    std::uint64_t maxBytes = kDefaultMaxBytes;
    if (const char *env = std::getenv("GS_CACHE_MAX_MB"); env && *env) {
        char *end = nullptr;
        const unsigned long long mb = std::strtoull(env, &end, 10);
        if (end && *end == '\0')
            maxBytes = mb * 1024 * 1024; // 0 => unlimited
        else
            GS_WARN("ignoring GS_CACHE_MAX_MB='", env,
                    "' (want a non-negative integer)");
    }
    return std::make_unique<DiskRunCache>(dir, maxBytes);
}

std::string
DiskRunCache::recordPath(const std::string &abbr,
                         const ArchConfig &cfg) const
{
    std::ostringstream name;
    name << abbr << '-' << std::hex << cfg.fingerprint() << ".run";
    return (fs::path(schemaDir_) / name.str()).string();
}

std::optional<RunResult>
DiskRunCache::load(const std::string &abbr, const ArchConfig &cfg)
{
    const fs::path path = recordPath(abbr, cfg);
    const auto buf = readFile(path);
    if (!buf) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return std::nullopt;
    }

    auto reject = [&](const std::string &why) {
        quarantine(path, why);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.rejects;
        ++stats_.misses;
        return std::optional<RunResult>();
    };

    ByteReader r(buf->data(), buf->size(), BlobKind::CacheEntry);
    const std::uint8_t *cfgBlob = nullptr, *resBlob = nullptr;
    std::size_t cfgLen = 0, resLen = 0;
    r.getBlob(kEntryConfig, cfgBlob, cfgLen);
    r.getBlob(kEntryResult, resBlob, resLen);
    if (!r.ok())
        return reject(r.error());
    if (!cfgBlob || !resBlob)
        return reject("missing config/result field");

    // The fingerprint in the file name only routed us here; the
    // embedded config is the authoritative key.
    const std::vector<std::uint8_t> want = serializeConfig(cfg);
    if (cfgLen != want.size() ||
        !std::equal(cfgBlob, cfgBlob + cfgLen, want.begin()))
        return reject("stored configuration differs from requested one");

    std::string err;
    std::optional<RunResult> res = deserializeResult(resBlob, resLen, &err);
    if (!res)
        return reject(err);

    // Bump mtime so the LRU sweep sees this record as recently used.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return res;
}

bool
DiskRunCache::store(const std::string &abbr, const ArchConfig &cfg,
                    const RunResult &result)
{
    ByteWriter w(BlobKind::CacheEntry);
    w.fieldBlob(kEntryConfig, serializeConfig(cfg));
    w.fieldBlob(kEntryResult, serializeResult(result));
    const std::vector<std::uint8_t> blob = w.finish();

    std::uint64_t nonce;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        nonce = ++tmpCounter_;
    }
    const fs::path path = recordPath(abbr, cfg);
    const fs::path tmp =
        fs::path(schemaDir_) / (".tmp-" + std::to_string(::getpid()) + "-" +
                                std::to_string(nonce));
    const bool shortWrite = injectFault("store", FaultKind::ShortWrite);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return publishFailed(tmp, "cannot open " + tmp.string());
        const std::size_t n = shortWrite ? blob.size() / 2 : blob.size();
        out.write(reinterpret_cast<const char *>(blob.data()),
                  std::streamsize(n));
        if (!out.good())
            return publishFailed(tmp, "write to " + tmp.string() +
                                          " failed");
    }
    if (shortWrite)
        return publishFailed(tmp, "short write to " + tmp.string() +
                                      " (injected)");

    if (injectFault("store", FaultKind::BitFlip)) {
        // Corrupt one payload bit post-write: the published record must
        // later trip the FNV-1a checksum and land in quarantine.
        std::fstream flip(tmp,
                          std::ios::binary | std::ios::in | std::ios::out);
        char byte = 0;
        const std::streamoff off = std::streamoff(blob.size() / 2);
        flip.seekg(off);
        flip.get(byte);
        byte = char(byte ^ 0x01);
        flip.seekp(off);
        flip.put(byte);
    }

    std::error_code ec;
    if (injectFault("store", FaultKind::RenameFail))
        ec = std::make_error_code(std::errc::io_error);
    else
        fs::rename(tmp, path, ec); // atomic within one directory
    if (ec) {
        return publishFailed(tmp, "rename " + tmp.string() + " -> " +
                                      path.string() + ": " + ec.message());
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.stores;
    }
    sweep();
    return true;
}

std::string
DiskRunCache::quarantineDir() const
{
    return (fs::path(dir_) / "quarantine").string();
}

void
DiskRunCache::quarantine(const fs::path &path, const std::string &why)
{
    const fs::path qdir = quarantineDir();
    std::error_code ec;
    fs::create_directories(qdir, ec);
    const fs::path dest = qdir / path.filename();
    if (!ec)
        fs::rename(path, dest, ec);
    if (ec) {
        // Can't move it aside; removal still protects future loads.
        std::error_code rmEc;
        fs::remove(path, rmEc);
        GS_WARN("discarding cache record ", path.string(), ": ", why,
                " (quarantine failed: ", ec.message(), ")");
    } else {
        GS_WARN("quarantined cache record ", path.string(), " -> ",
                dest.string(), ": ", why);
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.quarantined;
    }
    healthCounters().cacheQuarantines.fetch_add(1,
                                                std::memory_order_relaxed);
    sweepQuarantine();
}

bool
DiskRunCache::publishFailed(const fs::path &tmp, const std::string &why)
{
    std::error_code ec;
    fs::remove(tmp, ec);
    bool firstFailure = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.publishFailures;
        firstFailure = !warnedPublish_;
        warnedPublish_ = true;
    }
    // One line per cache, not per failure: a full disk would otherwise
    // turn every store into a log line.
    if (firstFailure)
        GS_WARN("cache publish failed: ", why,
                " (counted; further failures on this cache are silent)");
    healthCounters().cachePublishFailures.fetch_add(
        1, std::memory_order_relaxed);
    return false;
}

std::uint64_t
DiskRunCache::sweepDir(const std::string &dir, bool runFilesOnly)
{
    if (maxBytes_ == 0)
        return 0;

    struct Entry
    {
        fs::path path;
        std::uint64_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;

    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        const fs::path p = it->path();
        if (runFilesOnly && p.extension() != ".run")
            continue; // leave temp files to their writers
        Entry e{p, it->file_size(ec), it->last_write_time(ec)};
        if (ec)
            continue;
        total += e.bytes;
        entries.push_back(std::move(e));
    }
    if (total <= maxBytes_)
        return 0;

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });
    std::uint64_t evicted = 0;
    for (const Entry &e : entries) {
        if (total <= maxBytes_)
            break;
        std::error_code rmEc;
        if (fs::remove(e.path, rmEc)) {
            total -= e.bytes;
            ++evicted;
        }
    }
    return evicted;
}

void
DiskRunCache::sweep()
{
    const std::uint64_t evicted = sweepDir(schemaDir_, true);
    if (evicted) {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.evictions += evicted;
    }
}

void
DiskRunCache::sweepQuarantine()
{
    const std::uint64_t evicted = sweepDir(quarantineDir(), false);
    if (!evicted)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.quarantineEvictions += evicted;
    }
    healthCounters().quarantineEvictions.fetch_add(
        evicted, std::memory_order_relaxed);
}

DiskCacheStats
DiskRunCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace gs
