#include "serial.hpp"

#include <cstring>

#include "common/log.hpp"

namespace gs
{

std::uint64_t
fnv1a(const void *data, std::size_t n)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

namespace
{

// Wire types. The width is implied by the type; Str/Blob carry a u32
// length prefix.
constexpr std::uint8_t kWireBool = 1;
constexpr std::uint8_t kWireU32 = 2;
constexpr std::uint8_t kWireU64 = 3;
constexpr std::uint8_t kWireF64 = 4;
constexpr std::uint8_t kWireStr = 5;
constexpr std::uint8_t kWireBlob = 6;

constexpr std::size_t kHeaderBytes = 8;  // magic + version + kind + flags
constexpr std::size_t kTrailerBytes = 8; // FNV-1a checksum

} // namespace

// ------------------------------------------------------------- ByteWriter

ByteWriter::ByteWriter(BlobKind kind)
{
    u32(kSerialMagic);
    u16(kSerialVersion);
    u8(static_cast<std::uint8_t>(kind));
    u8(0); // flags, reserved
}

void
ByteWriter::u8(std::uint8_t v)
{
    buf_.push_back(v);
}

void
ByteWriter::u16(std::uint16_t v)
{
    u8(std::uint8_t(v));
    u8(std::uint8_t(v >> 8));
}

void
ByteWriter::u32(std::uint32_t v)
{
    u16(std::uint16_t(v));
    u16(std::uint16_t(v >> 16));
}

void
ByteWriter::u64(std::uint64_t v)
{
    u32(std::uint32_t(v));
    u32(std::uint32_t(v >> 32));
}

void
ByteWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
ByteWriter::bytes(const void *p, std::size_t n)
{
    const std::uint8_t *b = static_cast<const std::uint8_t *>(p);
    buf_.insert(buf_.end(), b, b + n);
}

void
ByteWriter::field(std::uint16_t tag, bool v)
{
    u16(tag);
    u8(kWireBool);
    u8(v ? 1 : 0);
}

void
ByteWriter::field(std::uint16_t tag, std::uint32_t v)
{
    u16(tag);
    u8(kWireU32);
    u32(v);
}

void
ByteWriter::field(std::uint16_t tag, std::uint64_t v)
{
    u16(tag);
    u8(kWireU64);
    u64(v);
}

void
ByteWriter::field(std::uint16_t tag, double v)
{
    u16(tag);
    u8(kWireF64);
    f64(v);
}

void
ByteWriter::field(std::uint16_t tag, const std::string &v)
{
    u16(tag);
    u8(kWireStr);
    u32(std::uint32_t(v.size()));
    bytes(v.data(), v.size());
}

void
ByteWriter::fieldBlob(std::uint16_t tag, const std::vector<std::uint8_t> &v)
{
    u16(tag);
    u8(kWireBlob);
    u32(std::uint32_t(v.size()));
    bytes(v.data(), v.size());
}

std::vector<std::uint8_t>
ByteWriter::finish()
{
    GS_ASSERT(!finished_, "ByteWriter::finish() called twice");
    finished_ = true;
    u64(fnv1a(buf_.data(), buf_.size()));
    return std::move(buf_);
}

// ------------------------------------------------------------- ByteReader

ByteReader::ByteReader(const std::uint8_t *data, std::size_t size,
                       BlobKind expected_kind)
{
    ok_ = true;
    parseEnvelope(data, size, expected_kind);
}

void
ByteReader::fail(const std::string &why)
{
    if (ok_) {
        ok_ = false;
        error_ = why;
    }
}

void
ByteReader::parseEnvelope(const std::uint8_t *data, std::size_t size,
                          BlobKind expected_kind)
{
    auto rd_u16 = [&](std::size_t at) {
        return std::uint16_t(data[at] | (std::uint16_t(data[at + 1]) << 8));
    };
    auto rd_u32 = [&](std::size_t at) {
        return std::uint32_t(rd_u16(at)) |
               (std::uint32_t(rd_u16(at + 2)) << 16);
    };
    auto rd_u64 = [&](std::size_t at) {
        return std::uint64_t(rd_u32(at)) |
               (std::uint64_t(rd_u32(at + 4)) << 32);
    };

    if (data == nullptr || size < kHeaderBytes + kTrailerBytes)
        return fail("blob truncated: shorter than header + trailer");
    if (rd_u32(0) != kSerialMagic)
        return fail("bad magic: not a gscalar blob");
    if (rd_u16(4) != kSerialVersion)
        return fail("unsupported serial version " +
                    std::to_string(rd_u16(4)));
    if (data[6] != static_cast<std::uint8_t>(expected_kind))
        return fail("blob kind " + std::to_string(data[6]) +
                    " where kind " +
                    std::to_string(unsigned(expected_kind)) +
                    " was expected");
    if (data[7] != 0)
        return fail("nonzero reserved flags");

    const std::size_t body = size - kTrailerBytes;
    if (rd_u64(body) != fnv1a(data, body))
        return fail("checksum mismatch: blob corrupted");

    // Parse the tagged-field payload.
    std::size_t pos = kHeaderBytes;
    while (pos < body) {
        if (body - pos < 3)
            return fail("field header truncated");
        Field f{};
        f.tag = rd_u16(pos);
        f.wire = data[pos + 2];
        pos += 3;
        switch (f.wire) {
          case kWireBool:
            if (body - pos < 1)
                return fail("bool field truncated");
            f.bits = data[pos];
            if (f.bits > 1)
                return fail("bool field with value > 1");
            pos += 1;
            break;
          case kWireU32:
            if (body - pos < 4)
                return fail("u32 field truncated");
            f.bits = rd_u32(pos);
            pos += 4;
            break;
          case kWireU64:
          case kWireF64:
            if (body - pos < 8)
                return fail("u64/f64 field truncated");
            f.bits = rd_u64(pos);
            pos += 8;
            break;
          case kWireStr:
          case kWireBlob: {
            if (body - pos < 4)
                return fail("length prefix truncated");
            const std::uint32_t len = rd_u32(pos);
            pos += 4;
            if (body - pos < len)
                return fail("str/blob field truncated");
            f.ptr = data + pos;
            f.len = len;
            pos += len;
            break;
          }
          default:
            return fail("unknown wire type " + std::to_string(f.wire));
        }
        fields_.push_back(f);
    }
}

const ByteReader::Field *
ByteReader::find(std::uint16_t tag, std::uint8_t wire)
{
    if (!ok_)
        return nullptr;
    for (const Field &f : fields_) {
        if (f.tag != tag)
            continue;
        if (f.wire != wire) {
            fail("field tag " + std::to_string(tag) +
                 " has wire type " + std::to_string(f.wire) +
                 ", expected " + std::to_string(wire));
            return nullptr;
        }
        return &f;
    }
    return nullptr;
}

bool
ByteReader::get(std::uint16_t tag, bool &v)
{
    const Field *f = find(tag, kWireBool);
    if (!f)
        return false;
    v = f->bits != 0;
    return true;
}

bool
ByteReader::get(std::uint16_t tag, std::uint32_t &v)
{
    const Field *f = find(tag, kWireU32);
    if (!f)
        return false;
    v = std::uint32_t(f->bits);
    return true;
}

bool
ByteReader::get(std::uint16_t tag, std::uint64_t &v)
{
    const Field *f = find(tag, kWireU64);
    if (!f)
        return false;
    v = f->bits;
    return true;
}

bool
ByteReader::get(std::uint16_t tag, double &v)
{
    const Field *f = find(tag, kWireF64);
    if (!f)
        return false;
    std::memcpy(&v, &f->bits, sizeof(v));
    return true;
}

bool
ByteReader::get(std::uint16_t tag, std::string &v)
{
    const Field *f = find(tag, kWireStr);
    if (!f)
        return false;
    v.assign(reinterpret_cast<const char *>(f->ptr), f->len);
    return true;
}

bool
ByteReader::getBlob(std::uint16_t tag, const std::uint8_t *&p,
                    std::size_t &n)
{
    const Field *f = find(tag, kWireBlob);
    if (!f)
        return false;
    p = f->ptr;
    n = f->len;
    return true;
}

std::vector<ByteReader::BlobView>
ByteReader::getBlobs(std::uint16_t tag)
{
    std::vector<BlobView> out;
    if (!ok_)
        return out;
    for (const Field &f : fields_) {
        if (f.tag != tag)
            continue;
        if (f.wire != kWireBlob) {
            fail("field tag " + std::to_string(tag) +
                 " has wire type " + std::to_string(f.wire) +
                 ", expected " + std::to_string(kWireBlob));
            return {};
        }
        out.push_back({f.ptr, f.len});
    }
    return out;
}

// ------------------------------------------------------- field enumerations
//
// One visitor per struct lists (tag, field) pairs; serialization and
// deserialization share the list so they can never drift apart. Tags
// are append-only: renumbering breaks every existing cache file.

namespace
{

template <typename Cfg, typename V>
void
visitConfig(Cfg &c, V &&v)
{
    v(1, c.mode);
    v(2, c.numSms);
    v(3, c.warpSize);
    v(4, c.simtWidth);
    v(5, c.sfuWidth);
    v(6, c.numAluPipes);
    v(7, c.maxThreadsPerSm);
    v(8, c.maxCtasPerSm);
    v(9, c.numVregsPerSm);
    v(10, c.numBanks);
    v(11, c.arraysPerBank);
    v(12, c.numCollectors);
    v(13, c.numSchedulers);
    v(14, c.schedPolicy);
    v(15, c.checkGranularity);
    v(16, c.halfRegisterCompression);
    v(17, c.scalarRfBanks);
    v(18, c.insertSpecialMoves);
    v(19, c.compilerAssistedSmov);
    v(20, c.scalarShortensOccupancy);
    v(21, c.aluLatency);
    v(22, c.mulLatency);
    v(23, c.divLatency);
    v(24, c.sfuLatency);
    v(25, c.lineBytes);
    v(26, c.l1Bytes);
    v(27, c.l1Assoc);
    v(28, c.l1Latency);
    v(29, c.l1MshrEntries);
    v(30, c.l2Bytes);
    v(31, c.l2Assoc);
    v(32, c.l2Latency);
    v(33, c.dramLatency);
    v(34, c.memChannels);
    v(35, c.dramRequestsPerCycle);
    v(36, c.sharedLatency);
    v(37, c.sharedBanks);
    v(38, c.coreClockGhz);
    v(39, c.maxCycles);
    v(40, c.seed);
    v(41, c.codec);
}

template <typename Ev, typename V>
void
visitEvents(Ev &e, V &&v)
{
    v(1, e.cycles);
    v(2, e.warpInsts);
    v(3, e.threadInsts);
    v(4, e.issuedInsts);
    v(5, e.aluWarpInsts);
    v(6, e.sfuWarpInsts);
    v(7, e.memWarpInsts);
    v(8, e.ctrlWarpInsts);
    v(9, e.aluLaneOps);
    v(10, e.sfuLaneOps);
    v(11, e.memLaneOps);
    v(12, e.aluEnergyUnits);
    v(13, e.sfuEnergyUnits);
    v(14, e.divergentWarpInsts);
    v(15, e.divergentScalarEligible);
    v(16, e.scalarAluEligible);
    v(17, e.scalarSfuEligible);
    v(18, e.scalarMemEligible);
    v(19, e.halfScalarEligible);
    v(20, e.scalarExecuted);
    v(21, e.halfScalarExecuted);
    v(22, e.specialMoveInsts);
    v(23, e.staticScalarInsts);
    v(24, e.rfReads);
    v(25, e.rfWrites);
    v(26, e.rfArrayReads);
    v(27, e.rfArrayWrites);
    v(28, e.bvrAccesses);
    v(29, e.scalarRfAccesses);
    v(30, e.crossbarBytes);
    v(31, e.ocAllocations);
    v(32, e.rfAccScalar);
    v(33, e.rfAcc3Byte);
    v(34, e.rfAcc2Byte);
    v(35, e.rfAcc1Byte);
    v(36, e.rfAccDivergent);
    v(37, e.rfAccOther);
    v(38, e.compressorUses);
    v(39, e.decompressorUses);
    v(40, e.shadowBaseArrayReads);
    v(41, e.shadowBaseArrayWrites);
    v(42, e.shadowScalarArrayReads);
    v(43, e.shadowScalarArrayWrites);
    v(44, e.shadowScalarRfAccesses);
    v(45, e.shadowOursArrayReads);
    v(46, e.shadowOursArrayWrites);
    v(47, e.shadowOursBvrAccesses);
    v(48, e.shadowOursCrossbarBytes);
    v(49, e.bdiMetaAccesses);
    v(50, e.affineWrites);
    v(51, e.affineNonScalarWrites);
    v(52, e.compBytesUncompressed);
    v(53, e.compBytesCompressed);
    v(54, e.bdiBytesUncompressed);
    v(55, e.bdiBytesCompressed);
    v(56, e.bdiArrayReads);
    v(57, e.bdiArrayWrites);
    v(58, e.l1Accesses);
    v(59, e.l1Misses);
    v(60, e.l2Accesses);
    v(61, e.l2Misses);
    v(62, e.dramAccesses);
    v(63, e.sharedAccesses);
    v(64, e.sharedBankConflicts);
    v(65, e.memRequests);
    v(66, e.mshrStallCycles);
    v(67, e.schedIdleCycles);
    v(68, e.scoreboardStalls);
    v(69, e.ocFullStalls);
    v(70, e.scalarBankStalls);
    v(71, e.pipeBusyStalls);
}

template <typename P, typename V>
void
visitPower(P &p, V &&v)
{
    v(1, p.frontendW);
    v(2, p.executeW);
    v(3, p.sfuW);
    v(4, p.regFileW);
    v(5, p.codecW);
    v(6, p.memoryW);
    v(7, p.staticW);
    v(8, p.totalW);
    v(9, p.ipc);
    v(10, p.seconds);
}

/** Writes each visited field into a ByteWriter. */
struct FieldWriter
{
    ByteWriter &w;

    void operator()(std::uint16_t tag, const bool &v) { w.field(tag, v); }
    void operator()(std::uint16_t tag, const std::uint32_t &v)
    {
        w.field(tag, v);
    }
    void operator()(std::uint16_t tag, const std::uint64_t &v)
    {
        w.field(tag, v);
    }
    void operator()(std::uint16_t tag, const double &v) { w.field(tag, v); }
    void operator()(std::uint16_t tag, const ArchMode &v)
    {
        w.field(tag, static_cast<std::uint32_t>(v));
    }
    void operator()(std::uint16_t tag, const SchedPolicy &v)
    {
        w.field(tag, static_cast<std::uint32_t>(v));
    }
    void operator()(std::uint16_t tag, const CodecId &v)
    {
        w.field(tag, static_cast<std::uint32_t>(v));
    }
};

/** Pulls each visited field out of a ByteReader. */
struct FieldReader
{
    ByteReader &r;

    void operator()(std::uint16_t tag, bool &v) { r.get(tag, v); }
    void operator()(std::uint16_t tag, std::uint32_t &v) { r.get(tag, v); }
    void operator()(std::uint16_t tag, std::uint64_t &v) { r.get(tag, v); }
    void operator()(std::uint16_t tag, double &v) { r.get(tag, v); }
    void operator()(std::uint16_t tag, ArchMode &v)
    {
        std::uint32_t x;
        if (!r.get(tag, x))
            return;
        if (x > static_cast<std::uint32_t>(ArchMode::GScalarFull))
            r.fail("ArchMode value " + std::to_string(x) + " out of range");
        else
            v = static_cast<ArchMode>(x);
    }
    void operator()(std::uint16_t tag, SchedPolicy &v)
    {
        std::uint32_t x;
        if (!r.get(tag, x))
            return;
        if (x > static_cast<std::uint32_t>(SchedPolicy::GreedyThenOldest))
            r.fail("SchedPolicy value " + std::to_string(x) +
                   " out of range");
        else
            v = static_cast<SchedPolicy>(x);
    }
    void operator()(std::uint16_t tag, CodecId &v)
    {
        std::uint32_t x;
        if (!r.get(tag, x))
            return;
        if (x >= kNumCodecs)
            r.fail("CodecId value " + std::to_string(x) +
                   " out of range");
        else
            v = static_cast<CodecId>(x);
    }
};

std::vector<std::uint8_t>
serializeEvents(const EventCounts &ev)
{
    ByteWriter w(BlobKind::Events);
    visitEvents(ev, FieldWriter{w});
    return w.finish();
}

std::vector<std::uint8_t>
serializePower(const PowerReport &p)
{
    ByteWriter w(BlobKind::Power);
    visitPower(p, FieldWriter{w});
    return w.finish();
}

bool
deserializeEvents(const std::uint8_t *data, std::size_t size,
                  EventCounts &ev, std::string *error)
{
    ByteReader r(data, size, BlobKind::Events);
    EventCounts out;
    visitEvents(out, FieldReader{r});
    if (!r.ok()) {
        if (error)
            *error = "events: " + r.error();
        return false;
    }
    ev = out;
    return true;
}

bool
deserializePower(const std::uint8_t *data, std::size_t size, PowerReport &p,
                 std::string *error)
{
    ByteReader r(data, size, BlobKind::Power);
    PowerReport out;
    visitPower(out, FieldReader{r});
    if (!r.ok()) {
        if (error)
            *error = "power: " + r.error();
        return false;
    }
    p = out;
    return true;
}

// RunResult field tags.
constexpr std::uint16_t kResWorkload = 1;
constexpr std::uint16_t kResMode = 2;
constexpr std::uint16_t kResEvents = 3;
constexpr std::uint16_t kResPower = 4;
constexpr std::uint16_t kResWallSeconds = 5;

} // namespace

// ------------------------------------------------------------ public API

std::vector<std::uint8_t>
serializeConfig(const ArchConfig &cfg)
{
    ByteWriter w(BlobKind::Config);
    visitConfig(cfg, FieldWriter{w});
    return w.finish();
}

std::optional<ArchConfig>
deserializeConfig(const std::uint8_t *data, std::size_t size,
                  std::string *error)
{
    ByteReader r(data, size, BlobKind::Config);
    ArchConfig cfg;
    visitConfig(cfg, FieldReader{r});
    if (!r.ok()) {
        if (error)
            *error = r.error();
        return std::nullopt;
    }
    return cfg;
}

std::vector<std::uint8_t>
serializeResult(const RunResult &res)
{
    ByteWriter w(BlobKind::Result);
    w.field(kResWorkload, res.workload);
    w.field(kResMode, static_cast<std::uint32_t>(res.mode));
    w.fieldBlob(kResEvents, serializeEvents(res.ev));
    w.fieldBlob(kResPower, serializePower(res.power));
    w.field(kResWallSeconds, res.wallSeconds);
    return w.finish();
}

std::optional<RunResult>
deserializeResult(const std::uint8_t *data, std::size_t size,
                  std::string *error)
{
    ByteReader r(data, size, BlobKind::Result);
    RunResult res;
    r.get(kResWorkload, res.workload);
    FieldReader{r}(kResMode, res.mode);
    r.get(kResWallSeconds, res.wallSeconds);

    const std::uint8_t *p = nullptr;
    std::size_t n = 0;
    if (r.getBlob(kResEvents, p, n) &&
        !deserializeEvents(p, n, res.ev, error))
        return std::nullopt;
    if (r.getBlob(kResPower, p, n) &&
        !deserializePower(p, n, res.power, error))
        return std::nullopt;

    if (!r.ok()) {
        if (error)
            *error = r.error();
        return std::nullopt;
    }
    return res;
}

} // namespace gs
