/**
 * @file
 * Versioned binary serialization for simulation results. This is the
 * wire format shared by the on-disk run cache (run_cache.hpp) and the
 * gscalard request protocol (serve/protocol.hpp), so it is designed for
 * hostile inputs: every blob is framed by a magic/version/kind header
 * and an FNV-1a checksum trailer, every field carries an explicit tag
 * and wire type, and any truncation, bit flip or type mismatch makes
 * deserialization return failure instead of crashing or returning a
 * half-filled struct.
 *
 * Format of one blob:
 *
 *   u32  magic   "GSB1" (0x31425347 little-endian)
 *   u16  version kSerialVersion; readers reject other versions
 *   u8   kind    BlobKind of the payload
 *   u8   flags   reserved, must be zero
 *   ...  payload sequence of tagged fields
 *   u64  fnv     FNV-1a over everything before the trailer
 *
 * Each payload field is (tag u16, wire u8, value). Integers are fixed
 * width little-endian; strings and nested blobs are u32 length +
 * bytes. Unknown tags are skipped (so old readers tolerate appended
 * fields); missing tags keep the in-memory default. Tags are
 * append-only: never renumber or reuse one.
 */

#ifndef GSCALAR_STORE_SERIAL_HPP
#define GSCALAR_STORE_SERIAL_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/events.hpp"
#include "harness/runner.hpp"
#include "power/energy_model.hpp"

namespace gs
{

/** Blob payload types (the header's kind byte). */
enum class BlobKind : std::uint8_t
{
    Config = 1,     ///< one ArchConfig
    Result = 2,     ///< one RunResult (workload, mode, events, power)
    CacheEntry = 3, ///< disk-cache record: config blob + result blob
    Request = 4,    ///< gscalard run request
    Response = 5,   ///< gscalard run response
    Ping = 6,       ///< gscalard liveness probe (empty payload)
    Pong = 7,       ///< gscalard liveness reply (empty payload)
    Events = 8,        ///< nested EventCounts of a result
    Power = 9,         ///< nested PowerReport of a result
    StatsRequest = 10, ///< gscalard stats probe (empty payload)
    StatsResponse = 11, ///< gscalard daemon counters
    WorkloadStats = 12, ///< nested per-workload latency histogram
    GenSpec = 13,       ///< kernel-generator knob set (gen/spec.hpp)
    Kernel = 14,        ///< one serialized Kernel (gen/artifact.hpp)
    Reproducer = 15,    ///< fuzz miscompare artifact (spec + kernel)
};

/** Wire-format revision; bump when a field changes meaning. */
inline constexpr std::uint16_t kSerialVersion = 1;

/** Header magic: "GSB1". */
inline constexpr std::uint32_t kSerialMagic = 0x31425347u;

/** FNV-1a 64-bit over @p n bytes (the trailer checksum). */
std::uint64_t fnv1a(const void *data, std::size_t n);

// ---- serialization -------------------------------------------------------

std::vector<std::uint8_t> serializeConfig(const ArchConfig &cfg);
std::vector<std::uint8_t> serializeResult(const RunResult &r);

// ---- deserialization -----------------------------------------------------
// On failure the optional is empty and *error (when given) holds a
// one-line reason. Failure never mutates partial state into the result.

std::optional<ArchConfig> deserializeConfig(const std::uint8_t *data,
                                            std::size_t size,
                                            std::string *error = nullptr);
std::optional<RunResult> deserializeResult(const std::uint8_t *data,
                                           std::size_t size,
                                           std::string *error = nullptr);

inline std::optional<ArchConfig>
deserializeConfig(const std::vector<std::uint8_t> &buf,
                  std::string *error = nullptr)
{
    return deserializeConfig(buf.data(), buf.size(), error);
}

inline std::optional<RunResult>
deserializeResult(const std::vector<std::uint8_t> &buf,
                  std::string *error = nullptr)
{
    return deserializeResult(buf.data(), buf.size(), error);
}

// ---- envelope + field primitives (shared with protocol.cpp) --------------

/** Accumulates one blob; finish() appends the checksum trailer. */
class ByteWriter
{
  public:
    explicit ByteWriter(BlobKind kind);

    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f64(double v);
    void bytes(const void *p, std::size_t n);

    // Tagged fields.
    void field(std::uint16_t tag, bool v);
    void field(std::uint16_t tag, std::uint32_t v);
    void field(std::uint16_t tag, std::uint64_t v);
    void field(std::uint16_t tag, double v);
    void field(std::uint16_t tag, const std::string &v);
    void fieldBlob(std::uint16_t tag, const std::vector<std::uint8_t> &v);

    /** Append the FNV trailer and return the finished blob. */
    std::vector<std::uint8_t> finish();

  private:
    std::vector<std::uint8_t> buf_;
    bool finished_ = false;
};

/**
 * Bounds-checked reader over one blob. Construction verifies magic,
 * version, kind and checksum; fields are then pulled by tag.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size,
               BlobKind expected_kind);

    /** False when the envelope or any field was malformed. */
    bool ok() const { return ok_; }
    /** First failure reason (empty while ok()). */
    const std::string &error() const { return error_; }

    // Field accessors: false when the tag is absent; fail() the whole
    // reader when present with the wrong wire type.
    bool get(std::uint16_t tag, bool &v);
    bool get(std::uint16_t tag, std::uint32_t &v);
    bool get(std::uint16_t tag, std::uint64_t &v);
    bool get(std::uint16_t tag, double &v);
    bool get(std::uint16_t tag, std::string &v);
    /** Nested blob: pointer/size view into this reader's buffer. */
    bool getBlob(std::uint16_t tag, const std::uint8_t *&p, std::size_t &n);

    /** A nested-blob view (for repeated fields). */
    struct BlobView
    {
        const std::uint8_t *ptr;
        std::size_t len;
    };

    /**
     * Every nested blob carrying @p tag, in wire order. Empty when the
     * tag is absent; fails the reader if the tag exists with a
     * non-blob wire type. Used for repeated fields such as the
     * daemon's per-workload stats.
     */
    std::vector<BlobView> getBlobs(std::uint16_t tag);

    /** Record a failure (used by callers for semantic errors too). */
    void fail(const std::string &why);

  private:
    struct Field
    {
        std::uint16_t tag;
        std::uint8_t wire;
        std::uint64_t bits;      ///< fixed-width value, zero-extended
        const std::uint8_t *ptr; ///< str/blob payload
        std::size_t len;
    };

    const Field *find(std::uint16_t tag, std::uint8_t wire);
    void parseEnvelope(const std::uint8_t *data, std::size_t size,
                       BlobKind expected_kind);

    std::vector<Field> fields_;
    bool ok_ = false;
    std::string error_;
};

} // namespace gs

#endif // GSCALAR_STORE_SERIAL_HPP
