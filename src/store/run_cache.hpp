/**
 * @file
 * Content-addressed on-disk run cache. PR 1's in-process run cache dies
 * with the process; this one persists (workload x ArchConfig) results
 * under a cache directory so every later driver, CI job or gscalard
 * instance reloads them instead of re-simulating.
 *
 * Layout: one file per run at `<dir>/v<schema>/<abbr>-<fp>.run`, where
 * fp is ArchConfig::fingerprint() in hex. The fingerprint only locates
 * the file; each record embeds the full serialized ArchConfig, and a
 * load compares it byte-for-byte against the requested configuration —
 * a fingerprint collision or a stale hash function can therefore never
 * return the wrong result. Records are serial.hpp blobs, so truncation
 * or bit rot fails the checksum and the record is rejected — moved to
 * `<dir>/quarantine/` for post-mortem rather than silently unlinked —
 * and the caller recomputes (a cache may always miss; it must never
 * lie).
 *
 * Writes go to a temp file in the same directory followed by an atomic
 * rename, so concurrent processes never observe half-written records.
 * A size-capped LRU sweep (mtime is bumped on every hit) keeps the
 * directory under maxBytes.
 */

#ifndef GSCALAR_STORE_RUN_CACHE_HPP
#define GSCALAR_STORE_RUN_CACHE_HPP

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/config.hpp"
#include "harness/runner.hpp"

namespace gs
{

/** Observability counters of one DiskRunCache. */
struct DiskCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t rejects = 0;   ///< corrupt/mismatched records discarded
    std::uint64_t evictions = 0; ///< files removed by the LRU sweep
    std::uint64_t quarantined = 0; ///< rejected records moved aside
    std::uint64_t publishFailures = 0; ///< stores that failed to land
    std::uint64_t quarantineEvictions = 0; ///< quarantined files LRU-evicted
};

class DiskRunCache
{
  public:
    /** Bump when the record layout changes; lives in the directory name
     *  so old and new builds never read each other's files. */
    static constexpr unsigned kSchemaVersion = 1;

    /** Default size cap (bytes) when GS_CACHE_MAX_MB is not set. */
    static constexpr std::uint64_t kDefaultMaxBytes =
        512ull * 1024 * 1024;

    /**
     * Open (creating if needed) a cache rooted at @p dir. @p maxBytes
     * caps the total size of cached records; 0 means unlimited.
     */
    explicit DiskRunCache(std::string dir,
                          std::uint64_t maxBytes = kDefaultMaxBytes);

    /**
     * Environment-driven construction: returns a cache rooted at
     * $GS_CACHE_DIR when set and non-empty; otherwise, when
     * @p useDefaultDir is true (the --cache flag), at
     * defaultCacheDir(); otherwise nullptr (persistent caching is
     * opt-in). $GS_CACHE_MAX_MB overrides the size cap.
     */
    static std::unique_ptr<DiskRunCache>
    fromEnv(bool useDefaultDir = false);

    /** `$XDG_CACHE_HOME/gscalar` or `~/.cache/gscalar`. */
    static std::string defaultCacheDir();

    /**
     * Load the cached result for (abbr, cfg). Returns nullopt on miss
     * or on any malformed/mismatched record (which is quarantined).
     */
    std::optional<RunResult> load(const std::string &abbr,
                                  const ArchConfig &cfg);

    /**
     * Persist @p result for (abbr, cfg); returns false on I/O error.
     * Failed publishes are counted (stats().publishFailures) and the
     * first one per cache is logged; the cache stays usable.
     */
    bool store(const std::string &abbr, const ArchConfig &cfg,
               const RunResult &result);

    /**
     * Delete least-recently-used records until the cache fits the size
     * cap. Runs automatically after each store.
     */
    void sweep();

    /**
     * Apply the same LRU byte cap to quarantineDir(): a flaky disk (or
     * an armed store:bit-flip campaign) must not grow the post-mortem
     * pile without bound. Runs automatically after each quarantine;
     * evictions are counted in stats().quarantineEvictions and the
     * quarantine_evictions health counter.
     */
    void sweepQuarantine();

    /** Root directory (as given, before the schema subdirectory). */
    const std::string &dir() const { return dir_; }

    /** Where rejected records are moved: `<dir>/quarantine`. */
    std::string quarantineDir() const;

    DiskCacheStats stats() const;

  private:
    std::string recordPath(const std::string &abbr,
                           const ArchConfig &cfg) const;

    /** Move a rejected record into quarantineDir() (remove on error). */
    void quarantine(const std::filesystem::path &path,
                    const std::string &why);

    /** LRU-evict files in @p dir until it fits maxBytes_; returns the
     *  number removed. @p runFilesOnly skips non-`.run` names. */
    std::uint64_t sweepDir(const std::string &dir, bool runFilesOnly);

    /** Count (and log once) a store that failed to land. */
    bool publishFailed(const std::filesystem::path &tmp,
                       const std::string &why);

    std::string dir_;       ///< cache root
    std::string schemaDir_; ///< dir_/v<kSchemaVersion>
    std::uint64_t maxBytes_;

    mutable std::mutex mutex_; ///< guards stats_ and tmp naming
    DiskCacheStats stats_;
    std::uint64_t tmpCounter_ = 0;
    bool warnedPublish_ = false; ///< first publish failure logs; rest count
};

} // namespace gs

#endif // GSCALAR_STORE_RUN_CACHE_HPP
