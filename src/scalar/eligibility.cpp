#include "eligibility.hpp"

#include "common/bit_utils.hpp"
#include "common/log.hpp"

namespace gs
{

std::string_view
tierName(ScalarTier t)
{
    switch (t) {
      case ScalarTier::None: return "none";
      case ScalarTier::FullAlu: return "alu-scalar";
      case ScalarTier::FullSfu: return "sfu-scalar";
      case ScalarTier::FullMem: return "mem-scalar";
      case ScalarTier::Half: return "half-scalar";
      case ScalarTier::Divergent: return "divergent-scalar";
    }
    return "?";
}

namespace
{

/** Full-warp scalar: every source register holds one compressed value. */
bool
sourcesFullScalar(std::span<const RegMeta> srcs)
{
    for (const RegMeta &m : srcs)
        if (!m.fullScalar())
            return false;
    return true;
}

/** Group-g scalar: every source register's group g is scalar. */
bool
sourcesGroupScalar(std::span<const RegMeta> srcs, unsigned g)
{
    for (const RegMeta &m : srcs)
        if (!m.groupScalar(g))
            return false;
    return true;
}

/**
 * §4.2 check for one divergent source: a register last written
 * non-divergently must be a full compressed scalar; a register last
 * written divergently must have enc == 1111 *and* a stored active mask
 * identical to the current one.
 */
bool
divergentSourceScalar(const RegMeta &m, LaneMask active)
{
    if (!m.valid)
        return false;
    if (!m.divergent)
        return m.fullEnc == 4;
    return m.fullEnc == 4 && m.writeMask == active;
}

ScalarTier
fullTierFor(PipeClass pipe)
{
    switch (pipe) {
      case PipeClass::ALU: return ScalarTier::FullAlu;
      case PipeClass::SFU: return ScalarTier::FullSfu;
      case PipeClass::MEM: return ScalarTier::FullMem;
      case PipeClass::CTRL: return ScalarTier::None;
    }
    return ScalarTier::None;
}

} // namespace

Eligibility
classifyScalar(const Instruction &inst, std::span<const RegMeta> srcs,
               const EligibilityContext &ctx)
{
    Eligibility e;

    const PipeClass pipe = inst.pipe();
    if (pipe == PipeClass::CTRL || inst.op == Opcode::SMOV)
        return e; // control handled at issue; SMOV must move the vector

    // S2R of a per-lane special register can never execute scalar.
    if (inst.op == Opcode::S2R && !ctx.sregUniform)
        return e;

    GS_ASSERT(ctx.active != 0, "classifying an instruction with no lanes");

    if (ctx.active == ctx.fullMask) {
        // Non-divergent path: tiers 1-3.
        if (sourcesFullScalar(srcs) && ctx.predUniform) {
            e.tier = fullTierFor(pipe);
            e.scalarGroupMask = (1u << (ctx.warpSize / ctx.granularity)) - 1;
            return e;
        }
        // Half-warp scalar (§4.3): non-divergent only.
        const unsigned groups = ctx.warpSize / ctx.granularity;
        unsigned gmask = 0;
        for (unsigned g = 0; g < groups; ++g) {
            if (sourcesGroupScalar(srcs, g) &&
                (ctx.predUniformGroups & (1u << g))) {
                gmask |= 1u << g;
            }
        }
        if (gmask != 0) {
            e.tier = ScalarTier::Half;
            e.scalarGroupMask = gmask;
        }
        return e;
    }

    // Divergent path (§4.2).
    for (const RegMeta &m : srcs)
        if (!divergentSourceScalar(m, ctx.active))
            return e;
    if (!ctx.predUniform)
        return e;
    e.tier = ScalarTier::Divergent;
    return e;
}

bool
tierExploited(ScalarTier tier, ArchMode mode)
{
    switch (tier) {
      case ScalarTier::None:
        return false;
      case ScalarTier::FullAlu:
        return exploitsAluScalar(mode);
      case ScalarTier::FullSfu:
      case ScalarTier::FullMem:
        return exploitsSfuMemScalar(mode);
      case ScalarTier::Half:
        return exploitsHalfScalar(mode);
      case ScalarTier::Divergent:
        return exploitsDivergentScalar(mode);
    }
    return false;
}

} // namespace gs
