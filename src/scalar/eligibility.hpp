/**
 * @file
 * Scalar-execution eligibility (§4). Classifies a dynamic instruction
 * into the tiers of Fig. 9: full-warp ALU scalar (prior work), full
 * SFU/MEM scalar, half-warp scalar, and divergent scalar — based on the
 * compression metadata of its source registers and its active mask.
 */

#ifndef GSCALAR_SCALAR_ELIGIBILITY_HPP
#define GSCALAR_SCALAR_ELIGIBILITY_HPP

#include <span>

#include "common/arch_mode.hpp"
#include "common/types.hpp"
#include "compress/reg_meta.hpp"
#include "isa/instruction.hpp"

namespace gs
{

/** Scalar-execution tier of one dynamic instruction (Fig. 9 stack). */
enum class ScalarTier : std::uint8_t
{
    None,     ///< vector execution required
    FullAlu,  ///< non-divergent ALU, all sources scalar (prior work [3])
    FullSfu,  ///< non-divergent SFU scalar (G-Scalar)
    FullMem,  ///< non-divergent memory scalar (G-Scalar)
    Half,     ///< some 16-lane group scalar, not the full warp (§4.3)
    Divergent ///< divergent with matching mask & scalar actives (§4.2)
};

/** Human-readable tier name. */
std::string_view tierName(ScalarTier t);

/** Classification result. */
struct Eligibility
{
    ScalarTier tier = ScalarTier::None;
    /**
     * Bitmask of scalar check groups (bit g = group g can execute on
     * one lane). Set for Half; for the full and divergent tiers all
     * groups covering active lanes are implied.
     */
    unsigned scalarGroupMask = 0;
};

/**
 * Dynamic context needed beyond the instruction encoding.
 */
struct EligibilityContext
{
    /** Active mask after SIMT stack and guard predicate. */
    LaneMask active = 0;
    /** All lanes the warp owns. */
    LaneMask fullMask = 0;
    /** Check-group size (16). */
    unsigned granularity = 16;
    /** Warp size in lanes. */
    unsigned warpSize = 32;
    /**
     * SEL's predicate source holds one value across active lanes
     * (true when the instruction has no predicate source).
     */
    bool predUniform = true;
    /**
     * Per-group predicate uniformity for half-warp checks (bit g set
     * when the predicate source is uniform within group g).
     */
    unsigned predUniformGroups = ~0u;
    /** S2R source register is warp-uniform (CtaId/NTid/...). */
    bool sregUniform = true;
};

/**
 * Classify one dynamic instruction. @p srcs holds the metadata of its
 * vector source registers in operand order (numSrcRegs entries).
 */
Eligibility classifyScalar(const Instruction &inst,
                           std::span<const RegMeta> srcs,
                           const EligibilityContext &ctx);

/** True when @p tier is exploited (executes on one lane) under @p mode. */
bool tierExploited(ScalarTier tier, ArchMode mode);

} // namespace gs

#endif // GSCALAR_SCALAR_ELIGIBILITY_HPP
