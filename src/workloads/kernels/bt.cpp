/**
 * @file
 * BT (b+tree, Rodinia). Batched key search: every query starts at the
 * shared root (scalar loads of node keys), then paths diverge as
 * per-thread keys choose different children.
 */

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 150;
constexpr unsigned kLevels = 10;
constexpr unsigned kNodes = 2048;   ///< nodes per level (wraps)
constexpr unsigned kFanout = 4;

Kernel
buildKernel()
{
    KernelBuilder kb("bt_search");

    const Reg gtid = emitGlobalTid(kb);

    const Reg qaddr = emitWordAddr(kb, gtid, layout::kArrayA);
    const Reg key = kb.reg();
    kb.ldg(key, qaddr);

    const Reg node = kb.reg();
    kb.movi(node, 0); // all queries start at the root (scalar)

    const Reg naddr = kb.reg();
    const Reg pivot = kb.reg();
    const Reg child = kb.reg();
    const Reg adj = kb.reg();
    const Reg found = kb.reg();
    kb.movi(found, 0);
    kb.movi(adj, 1);
    const Pred goRight = kb.pred();

    const Reg lvl = kb.reg();
    kb.forRangeI(lvl, 0, kLevels, [&] {
        // Load this node's pivot. At the root every lane reads the same
        // address (scalar memory); deeper levels scatter.
        kb.shli(naddr, node, 2);                    // starts scalar
        kb.iaddi(naddr, naddr, Word(layout::kArrayB));
        kb.ldg(pivot, naddr);

        // Choose the child: left or right half of the fanout.
        kb.isetp(goRight, CmpOp::GT, key, pivot);
        kb.imuli(child, node, kFanout);
        kb.iaddi(child, child, 1);
        // The taken/not-taken paths update only divergently-written
        // registers (adj, found), so no decompress move is needed once
        // their D bits are set.
        kb.ifElse(
            goRight,
            [&] {
                kb.iaddi(adj, child, 2);        // divergent vector
                kb.iaddi(found, found, 1);      // divergent vector
                kb.iadd(adj, adj, found);       // divergent vector
                kb.imuli(found, found, 3);      // divergent vector
                kb.andi(found, found, 0xffff);  // divergent vector
            },
            [&] {
                kb.shli(adj, child, 1);         // divergent vector
                kb.iaddi(found, found, 2);      // divergent vector
                kb.iadd(adj, adj, found);       // divergent vector
            });
        kb.iadd(node, child, adj);
        kb.andi(node, node, kNodes - 1);
    });

    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);
    kb.stg(oaddr, found);
    kb.stg(oaddr, node, 4u * kThreadsPerCta * kCtas);
    return kb.build();
}

} // namespace

Workload
makeBT()
{
    Workload w;
    w.name = "BT";
    w.fullName = "b+tree";
    w.suite = "rodinia";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0xb7);
        const std::size_t threads = kThreadsPerCta * kCtas;
        mem.fillWords(layout::kArrayA,
                      clusteredInts(threads, 4000, 250, rng));
        mem.fillWords(layout::kArrayB,
                      clusteredInts(kNodes, 4000, 250, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
