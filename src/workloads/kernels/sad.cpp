/**
 * @file
 * SAD (Parboil). Sum-of-absolute-differences block matching with a
 * threshold-based refinement branch: the refinement arithmetic uses
 * warp-uniform search parameters, yielding the ~19 % divergent-scalar
 * instructions the paper reports.
 */

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 180;
constexpr unsigned kPixels = 12;

Kernel
buildKernel()
{
    KernelBuilder kb("sad_block");

    const Reg gtid = emitGlobalTid(kb);
    const Reg thresh = emitParamLoad(kb, 0); // search threshold (scalar)
    const Reg penalty = emitParamLoad(kb, 1);

    const Reg curAddr = emitWordAddr(kb, gtid, layout::kArrayA);
    const Reg refAddr = emitWordAddr(kb, gtid, layout::kArrayB);

    // Per-32-thread macroblock weight: scalar for 32-wide warps but
    // only half/quarter-uniform when warps widen (Fig. 10).
    const Reg mb = kb.reg();
    kb.shri(mb, gtid, 5);
    const Reg mbAddr = emitWordAddr(kb, mb, layout::kArrayC);
    const Reg mbw = kb.reg();
    kb.ldg(mbw, mbAddr);
    const Reg wacc = kb.reg();
    kb.mov(wacc, mbw);

    const Reg sad = kb.reg();
    kb.movi(sad, 0);

    const Reg cur = kb.reg();
    const Reg ref = kb.reg();
    const Reg diff = kb.reg();
    const Reg bias = kb.reg();
    const Pred close = kb.pred();

    const Reg i = kb.reg();
    kb.forRangeI(i, 0, kPixels, [&] {
        kb.ldg(cur, curAddr);                    // clustered pixels
        kb.ldg(ref, refAddr);
        kb.isub(diff, cur, ref);                 // vector
        kb.emit1(Opcode::IABS, diff, diff);      // vector
        kb.iadd(sad, sad, diff);                 // vector
        kb.iaddi(curAddr, curAddr, 4);           // vector ramp
        kb.iaddi(refAddr, refAddr, 4);           // vector ramp

        // Default penalty bias: computed convergently, consumed, then
        // conditionally *overwritten* below — the pattern whose special
        // move the compiler-assisted liveness elides (§3.3).
        kb.iadd(bias, thresh, penalty);          // scalar ALU
        kb.iadd(wacc, wacc, bias);               // scalar@32, half@64

        // Refinement of well-matched pixels: the per-lane difference
        // decides, so the mask is irregular, while the penalty update
        // itself is uniform arithmetic (divergent scalar).
        kb.isetp(close, CmpOp::LT, diff, thresh);
        kb.ifElse(
            close,
            [&] {
                kb.shli(bias, thresh, 1);        // divergent scalar
                kb.iadd(bias, bias, penalty);    // divergent scalar
                kb.iadd(sad, sad, bias);         // divergent vector
            },
            [&] {
                kb.shri(bias, thresh, 1);        // divergent scalar
                kb.iadd(sad, sad, bias);         // divergent vector
            });
    });

    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);
    kb.iadd(sad, sad, wacc);
    kb.stg(oaddr, sad);
    return kb.build();
}

} // namespace

Workload
makeSAD()
{
    Workload w;
    w.name = "SAD";
    w.fullName = "sad";
    w.suite = "parboil";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0x5a);
        const std::size_t threads = kThreadsPerCta * kCtas;
        mem.fillWords(layout::kParams, {50u, 35u});
        mem.fillWords(layout::kArrayA,
                      clusteredInts(threads + kPixels, 128, 100, rng));
        mem.fillWords(layout::kArrayB,
                      clusteredInts(threads + kPixels, 120, 100, rng));
        mem.fillWords(layout::kArrayC,
                      clusteredInts(threads / 32 + 2, 7, 40, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
