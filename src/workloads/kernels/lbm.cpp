/**
 * @file
 * LBM (Parboil). Lattice-Boltzmann streaming/collision step: a
 * data-dependent obstacle branch makes ~half the dynamic instructions
 * divergent, and the collision arithmetic on warp-uniform relaxation
 * constants makes a large share of them divergent *scalar* (the paper
 * reports 30 % divergent-scalar instructions). Streaming access to
 * large distribution arrays keeps it memory-intensive, which caps the
 * efficiency gain (Fig. 11 discussion).
 */

#include <bit>

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 360;

Kernel
buildKernel()
{
    KernelBuilder kb("lbm_stream_collide");

    const Reg gtid = emitGlobalTid(kb);

    const Reg flagAddr = emitWordAddr(kb, gtid, layout::kArrayC);
    const Reg flag = kb.reg();
    kb.ldg(flag, flagAddr);

    const Reg rhoAddr = emitWordAddr(kb, gtid, layout::kArrayA);
    const Reg rho = kb.reg();
    kb.ldg(rho, rhoAddr);
    const Reg uAddr = emitWordAddr(kb, gtid, layout::kArrayB);
    const Reg u = kb.reg();
    kb.ldg(u, uAddr);

    const Reg omega = emitParamLoad(kb, 0); // relaxation (scalar)
    const Reg one = emitParamLoad(kb, 1);   // 1.0 (scalar)

    const Reg omega2 = kb.reg();
    const Reg c1 = kb.reg();
    const Reg c2 = kb.reg();
    const Reg r2 = kb.reg();
    const Reg u2 = kb.reg();
    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);

    const Pred p = kb.pred();
    const Reg tstep = kb.reg();
    kb.forRangeI(tstep, 0, 3, [&] {
    kb.isetpi(p, CmpOp::NE, flag, 0);
    kb.ifElse(
        p,
        [&] {
            // Collision: relaxation constants are warp-uniform, so these
            // are divergent scalar instructions (§4.2).
            kb.fmul(omega2, omega, omega); // divergent scalar
            kb.fadd(c1, omega2, one);      // divergent scalar
            kb.fmul(c2, c1, omega);        // divergent scalar
            kb.fadd(c2, c2, omega2);       // divergent scalar
            kb.fmul(c1, c2, c1);           // divergent scalar
            kb.fmul(r2, rho, c1);          // divergent vector
            kb.ffma(u2, u, c2, r2);        // divergent vector
            kb.fadd(u2, u2, rho);          // divergent vector
            kb.stg(oaddr, u2);             // divergent store
        },
        [&] {
            // Bounce-back: fewer, still mixing uniform and per-thread.
            kb.fadd(c1, one, one);   // divergent scalar
            kb.fmul(c2, c1, omega);  // divergent scalar
            kb.fadd(c2, c2, one);    // divergent scalar
            kb.fsub(u2, c2, u);      // divergent vector
            kb.fmul(u2, u2, rho);    // divergent vector
            kb.stg(oaddr, u2);       // divergent store
        });
    });

    // Streaming phase: gather two distribution slices with no reuse
    // (compulsory misses -> DRAM traffic).
    const Reg nb = kb.reg();
    const Reg sum = kb.reg();
    kb.movf(sum, 0.0f);
    for (unsigned d = 0; d < 2; ++d) {
        const Reg naddr = kb.reg();
        kb.shli(naddr, gtid, 2);
        kb.iaddi(naddr, naddr,
                 Word(layout::kArrayA + 0x500000 + d * 0x300000));
        kb.ldg(nb, naddr);
        kb.fadd(sum, sum, nb);
    }
    kb.stg(oaddr, sum, 4u * kThreadsPerCta * kCtas);
    return kb.build();
}

} // namespace

Workload
makeLBM()
{
    Workload w;
    w.name = "LBM";
    w.fullName = "lbm";
    w.suite = "parboil";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0x1b);
        const std::size_t threads = kThreadsPerCta * kCtas;
        mem.fillWords(layout::kParams,
                      {std::bit_cast<Word>(1.85f), std::bit_cast<Word>(1.0f)});
        mem.fillWords(layout::kArrayA,
                      clusteredFloats(threads, 1.0f, 0.1f, rng));
        mem.fillWords(layout::kArrayB,
                      clusteredFloats(threads, 0.05f, 0.5f, rng));
        mem.fillWords(layout::kArrayC,
                      bernoulliFlags(threads, 0.45, rng));
        for (unsigned d = 0; d < 3; ++d)
            mem.fillWords(layout::kArrayA + 0x500000 + d * 0x300000,
                          clusteredFloats(threads, 0.11f, 0.3f, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
