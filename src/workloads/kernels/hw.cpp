/**
 * @file
 * HW (heartwall, Rodinia). Ultrasound tracking with data-dependent
 * intensity thresholds: roughly half of all dynamic instructions run
 * under a partial mask (the paper cites heartwall at ~50 % divergent),
 * and the template constants inside the branches are warp-uniform.
 */

#include <bit>

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 150;
constexpr unsigned kPoints = 14;

Kernel
buildKernel()
{
    KernelBuilder kb("hw_track");

    const Reg gtid = emitGlobalTid(kb);
    const Reg tmplA = emitParamLoad(kb, 0); // template coeff (scalar)
    const Reg tmplB = emitParamLoad(kb, 1);

    const Reg pixAddr = emitWordAddr(kb, gtid, layout::kArrayA);

    // Per-32-thread sub-image gain: scalar at warp 32, half-scalar at
    // warp 64 (Fig. 10).
    const Reg sub = kb.reg();
    kb.shri(sub, gtid, 5);
    const Reg gAddr = emitWordAddr(kb, sub, layout::kArrayC);
    const Reg gain = kb.reg();
    kb.ldg(gain, gAddr);
    const Reg gacc = kb.reg();
    kb.mov(gacc, gain);

    const Reg acc = kb.reg();
    kb.movf(acc, 0.0f);

    const Reg pix = kb.reg();
    const Reg coeff = kb.reg();
    const Reg term = kb.reg();
    const Pred bright = kb.pred();

    const Reg i = kb.reg();
    const Reg paddr2 = kb.reg();
    const Reg tmplC = kb.reg();
    kb.forRangeI(i, 0, kPoints, [&] {
        kb.ldg(pix, pixAddr);                      // random intensities
        kb.iaddi(pixAddr, pixAddr, 512);           // strided walk
        // Template row refresh: warp-uniform address (scalar memory).
        kb.shli(paddr2, i, 2);                     // scalar ALU
        kb.iaddi(paddr2, paddr2, Word(layout::kArrayB));
        kb.ldg(tmplC, paddr2);                     // scalar memory
        kb.fmul(gacc, gacc, gain);                 // scalar@32, half@64
        // Default coefficient, consumed below and conditionally
        // overwritten in the branches (special-move elidable, §3.3).
        kb.fmul(coeff, tmplA, tmplC);              // scalar ALU
        kb.ffma(acc, pix, coeff, acc);             // vector
        kb.fsetpf(bright, CmpOp::GT, pix, 0.5f);
        kb.ifElse(
            bright,
            [&] {
                kb.fmul(coeff, tmplA, tmplB);  // divergent scalar
                kb.fadd(coeff, coeff, tmplC);  // divergent scalar
                kb.fmul(coeff, coeff, tmplA);  // divergent scalar
                kb.fmul(term, pix, coeff);     // divergent vector
                kb.fadd(acc, acc, term);       // divergent vector
            },
            [&] {
                kb.fadd(coeff, tmplB, tmplC);  // divergent scalar
                kb.fmul(coeff, coeff, tmplB);  // divergent scalar
                kb.fmul(term, pix, coeff);     // divergent vector
                kb.fsub(acc, acc, term);       // divergent vector
            });
    });

    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);
    kb.fadd(acc, acc, gacc);
    kb.stg(oaddr, acc);
    return kb.build();
}

} // namespace

Workload
makeHW()
{
    Workload w;
    w.name = "HW";
    w.fullName = "heartwall";
    w.suite = "rodinia";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0x11);
        const std::size_t threads = kThreadsPerCta * kCtas;
        mem.fillWords(layout::kParams,
                      {std::bit_cast<Word>(0.8f),
                       std::bit_cast<Word>(1.3f)});
        // Strided pixel walk: threads*points words at stride 512 B.
        mem.fillWords(layout::kArrayA,
                      randomFloats(threads + 128 * kPoints, 0.0f, 1.0f,
                                   rng));
        mem.fillWords(layout::kArrayB,
                      randomFloats(kPoints, 0.2f, 0.9f, rng));
        mem.fillWords(layout::kArrayC,
                      randomFloats(threads / 32 + 2, 0.99f, 1.01f, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
