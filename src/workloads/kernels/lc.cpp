/**
 * @file
 * LC (leukocyte, Rodinia). GICOV-style score with microcoded integer
 * division in the dependence chain and deliberately few resident warps
 * (one small CTA per SM), so the +3-cycle pipeline depth of the
 * compression configs cannot be hidden — the paper's worst-case IPC
 * benchmark (§5.4).
 */

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 64; ///< 2 warps per CTA
constexpr unsigned kCtas = 15;          ///< one CTA per SM
constexpr unsigned kIters = 60;

Kernel
buildKernel()
{
    KernelBuilder kb("lc_gicov");

    const Reg gtid = emitGlobalTid(kb);

    const Reg gaddr = emitWordAddr(kb, gtid, layout::kArrayA);
    const Reg grad = kb.reg();
    kb.ldg(grad, gaddr);

    const Reg acc = kb.reg();
    const Reg div = kb.reg();
    const Reg nrm = kb.reg();
    kb.movi(acc, 982451653u);

    const Reg i = kb.reg();
    const Reg radius = kb.reg();
    kb.forRangeI(i, 0, kIters, [&] {
        // Serial IDIV chain: each result feeds the next division.
        kb.iaddi(div, i, 3);                     // scalar ALU
        kb.idiv(acc, acc, div);                  // vector, 40-cycle op
        kb.iadd(acc, acc, grad);                 // vector
        kb.emit1(Opcode::I2F, radius, div);      // scalar ALU
        kb.emit1(Opcode::RCP, radius, radius);   // scalar SFU
        kb.emit1(Opcode::SQRT, nrm, acc);        // vector SFU
        kb.emit1(Opcode::F2I, nrm, nrm);         // vector
        kb.iadd(acc, acc, nrm);                  // vector
    });

    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);
    kb.stg(oaddr, acc);
    return kb.build();
}

} // namespace

Workload
makeLC()
{
    Workload w;
    w.name = "LC";
    w.fullName = "leukocyte";
    w.suite = "rodinia";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0x1c);
        const std::size_t threads = kThreadsPerCta * kCtas;
        mem.fillWords(layout::kArrayA,
                      clusteredInts(threads, 0x3f000000, 200, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
