/**
 * @file
 * MQ (mri-q, Parboil). Non-divergent Fourier-sample accumulation: each
 * loop iteration loads warp-uniform k-space coordinates (scalar memory
 * loads and scalar ALU) and evaluates SIN/COS of a per-thread phase
 * (vector SFU).
 */

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 180;
constexpr unsigned kSamples = 20;

Kernel
buildKernel()
{
    KernelBuilder kb("mq_compute_q");

    const Reg gtid = emitGlobalTid(kb);

    const Reg xaddr = emitWordAddr(kb, gtid, layout::kArrayA);
    const Reg x = kb.reg();
    kb.ldg(x, xaddr);
    const Reg yaddr = emitWordAddr(kb, gtid, layout::kArrayB);
    const Reg y = kb.reg();
    kb.ldg(y, yaddr);

    const Reg accR = kb.reg();
    const Reg accI = kb.reg();
    kb.movf(accR, 0.0f);
    kb.movf(accI, 0.0f);

    const Reg kaddr = kb.reg();
    const Reg kx = kb.reg();
    const Reg ky = kb.reg();
    const Reg phi = kb.reg();
    const Reg t = kb.reg();
    const Reg s = kb.reg();
    const Reg c = kb.reg();

    const Reg k = kb.reg();
    kb.forRangeI(k, 0, kSamples, [&] {
        // Warp-uniform sample coordinate: scalar address arithmetic, a
        // scalar (broadcast) load, and a scalar SFU magnitude factor.
        kb.shli(kaddr, k, 2);                       // scalar ALU
        kb.iaddi(kaddr, kaddr, Word(layout::kArrayC));
        kb.ldg(kx, kaddr, 0);                       // scalar memory
        kb.fmul(ky, kx, kx);                        // scalar ALU
        kb.emit1(Opcode::RSQ, ky, ky);              // scalar SFU
        kb.fmul(t, kx, x);                          // vector
        kb.ffma(phi, ky, y, t);                     // vector
        kb.emit1(Opcode::SIN, s, phi);              // vector SFU
        kb.emit1(Opcode::COS, c, phi);              // vector SFU
        kb.fadd(accR, accR, c);                     // vector
        kb.fadd(accI, accI, s);                     // vector
    });

    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);
    kb.stg(oaddr, accR);
    kb.stg(oaddr, accI, 4u * kThreadsPerCta * kCtas);
    return kb.build();
}

} // namespace

Workload
makeMQ()
{
    Workload w;
    w.name = "MQ";
    w.fullName = "mri-q";
    w.suite = "parboil";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0x30);
        const std::size_t threads = kThreadsPerCta * kCtas;
        mem.fillWords(layout::kArrayA,
                      randomFloats(threads, -1.0f, 1.0f, rng));
        mem.fillWords(layout::kArrayB,
                      randomFloats(threads, -1.0f, 1.0f, rng));
        mem.fillWords(layout::kArrayC,
                      randomFloats(kSamples, 0.5f, 3.0f, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
