/**
 * @file
 * MG (mri-gridding, Parboil). Scattered gridding: heavy per-thread
 * address arithmetic producing 3-byte/2-byte-similar register values
 * but few full scalars (the paper pairs MG with MV as the benchmarks
 * where partial compression beats the scalar-only RF by >40 %).
 */

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 150;
constexpr unsigned kSamples = 12;
constexpr unsigned kGridSize = 8192;

Kernel
buildKernel()
{
    KernelBuilder kb("mg_gridding");

    const Reg gtid = emitGlobalTid(kb);

    const Reg sAddr = emitWordAddr(kb, gtid, layout::kArrayA);
    const Reg acc = kb.reg();
    kb.movf(acc, 0.0f);

    const Reg sample = kb.reg();
    const Reg pos = kb.reg();
    const Reg cell = kb.reg();
    const Reg gaddr = kb.reg();
    const Reg gval = kb.reg();
    const Reg wgt = kb.reg();
    const Reg foldc = kb.reg();
    const Reg folda = kb.reg();

    const Reg i = kb.reg();
    kb.forRangeI(i, 0, kSamples, [&] {
        kb.ldg(sample, sAddr);                 // clustered k-space data
        kb.iaddi(sAddr, sAddr, 4 * 64);        // strided ramp
        // Grid coordinate: fixed-point scale then clamp to the grid.
        kb.emit1(Opcode::F2I, pos, sample);    // vector
        kb.imuli(cell, pos, 37);               // vector (2-byte similar)
        kb.andi(cell, cell, kGridSize - 1);    // vector
        kb.shli(gaddr, cell, 2);               // vector address math
        kb.iaddi(gaddr, gaddr, Word(layout::kArrayC));
        kb.ldg(gval, gaddr);                   // scattered gather
        kb.fmul(wgt, sample, gval);            // vector
        kb.fadd(acc, acc, wgt);                // vector

        // Fold samples landing in the upper half-grid (data-dependent).
        // The fold registers are only ever written divergently, so no
        // decompress moves are needed inside the loop.
        const Pred upper = kb.pred();
        kb.isetpi(upper, CmpOp::GT, cell, kGridSize / 2);
        kb.ifThen(upper, [&] {
            kb.shri(foldc, cell, 1);             // divergent vector
            kb.imuli(foldc, foldc, 3);           // divergent vector
            kb.andi(foldc, foldc, kGridSize - 1);// divergent vector
            kb.fadd(folda, folda, gval);         // divergent vector
            kb.fmul(folda, folda, gval);         // divergent vector
            kb.fadd(folda, folda, folda);        // divergent vector
        });
    });

    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);
    kb.fadd(acc, acc, folda);
    kb.iadd(pos, pos, foldc);
    kb.stg(oaddr, acc);
    kb.stg(oaddr, pos, 4u * kThreadsPerCta * kCtas);
    return kb.build();
}

} // namespace

Workload
makeMG()
{
    Workload w;
    w.name = "MG";
    w.fullName = "mri-grid";
    w.suite = "parboil";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0x33);
        const std::size_t threads = kThreadsPerCta * kCtas;
        mem.fillWords(layout::kArrayA,
                      clusteredFloats(threads + kSamples * 64, 900.0f,
                                      0.05f, rng));
        mem.fillWords(layout::kArrayC,
                      randomFloats(kGridSize, 0.0f, 1.0f, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
