/**
 * @file
 * MV (spmv, Parboil). Sparse matrix-vector product: irregular gathers
 * through a column-index array. Few scalar values but many
 * 3-byte/2-byte-similar accesses (indices and addresses within a narrow
 * range), matching the paper's note that MV benefits mostly from
 * partial compression (Fig. 12 discussion).
 */

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 150;
constexpr unsigned kNnzPerRow = 14;
constexpr unsigned kCols = 768;

Kernel
buildKernel()
{
    KernelBuilder kb("mv_spmv");

    const Reg gtid = emitGlobalTid(kb);

    // CSR-ish layout: row r owns nnz slots [r*K, (r+1)*K).
    const Reg slot = kb.reg();
    kb.imuli(slot, gtid, kNnzPerRow);

    const Reg valAddr = emitWordAddr(kb, slot, layout::kArrayA);
    const Reg idxAddr = emitWordAddr(kb, slot, layout::kArrayB);

    const Reg acc = kb.reg();
    kb.movf(acc, 0.0f);

    const Reg val = kb.reg();
    const Reg colIdx = kb.reg();
    const Reg xaddr = kb.reg();
    const Reg x = kb.reg();

    const Reg j = kb.reg();
    kb.forRangeI(j, 0, kNnzPerRow, [&] {
        kb.ldg(val, valAddr);                 // clustered matrix values
        kb.ldg(colIdx, idxAddr);              // 2-byte-similar indices
        kb.shli(xaddr, colIdx, 2);            // vector address math
        kb.iaddi(xaddr, xaddr, Word(layout::kArrayC));
        kb.ldg(x, xaddr);                     // irregular gather

        // Skip near-zero entries (value-dependent divergence).
        const Pred live = kb.pred();
        kb.fsetpf(live, CmpOp::GT, val, 0.01f);
        kb.ifThen(live, [&] {
            kb.fmul(x, x, val);               // divergent vector
            kb.fadd(acc, acc, x);             // divergent vector
            kb.ffma(acc, val, x, acc);        // divergent vector
        });
        kb.iaddi(valAddr, valAddr, 4);        // vector ramp
        kb.iaddi(idxAddr, idxAddr, 4);        // vector ramp
    });

    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);
    kb.stg(oaddr, acc);
    return kb.build();
}

} // namespace

Workload
makeMV()
{
    Workload w;
    w.name = "MV";
    w.fullName = "spmv";
    w.suite = "parboil";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0x77);
        const std::size_t nnz =
            std::size_t(kThreadsPerCta) * kCtas * kNnzPerRow;
        mem.fillWords(layout::kArrayA,
                      clusteredFloats(nnz, 0.01f, 0.6f, rng));
        mem.fillWords(layout::kArrayB,
                      clusteredInts(nnz, 0, kCols, rng));
        mem.fillWords(layout::kArrayC,
                      randomFloats(kCols, -2.0f, 2.0f, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
