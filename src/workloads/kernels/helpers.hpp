/**
 * @file
 * Shared emission helpers for the benchmark kernels.
 */

#ifndef GSCALAR_WORKLOADS_KERNELS_HELPERS_HPP
#define GSCALAR_WORKLOADS_KERNELS_HELPERS_HPP

#include "isa/kernel_builder.hpp"
#include "workloads/data_gen.hpp"

namespace gs
{

/** gtid = ctaid * ntid + tid (global linear thread id). */
inline Reg
emitGlobalTid(KernelBuilder &kb)
{
    const Reg tid = kb.reg();
    const Reg ctaid = kb.reg();
    const Reg ntid = kb.reg();
    const Reg gtid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    kb.s2r(ctaid, SReg::CtaId);
    kb.s2r(ntid, SReg::NTid);
    kb.imad(gtid, ctaid, ntid, tid);
    return gtid;
}

/** addr = base + idx*4 (word-indexed array address). */
inline Reg
emitWordAddr(KernelBuilder &kb, Reg idx, Addr base)
{
    const Reg addr = kb.reg();
    kb.shli(addr, idx, 2);
    kb.iaddi(addr, addr, Word(base));
    return addr;
}

/** Load the uniform parameter word @p slot (a scalar value). */
inline Reg
emitParamLoad(KernelBuilder &kb, unsigned slot)
{
    const Reg addr = kb.reg();
    const Reg val = kb.reg();
    kb.movi(addr, Word(layout::kParams));
    kb.ldg(val, addr, slot * kBytesPerWord);
    return val;
}

} // namespace gs

#endif // GSCALAR_WORKLOADS_KERNELS_HELPERS_HPP
