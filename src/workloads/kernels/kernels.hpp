/**
 * @file
 * Factories for the 17 synthetic benchmarks of Table 2. Each mirrors
 * the hot loop of its Rodinia/Parboil namesake and is calibrated to the
 * per-benchmark instruction-mix / divergence / value-similarity profile
 * the paper reports (Figs. 1, 8, 9).
 */

#ifndef GSCALAR_WORKLOADS_KERNELS_KERNELS_HPP
#define GSCALAR_WORKLOADS_KERNELS_KERNELS_HPP

#include "workloads/workload.hpp"

namespace gs
{

Workload makeBT();  ///< b+tree: tree search, data-dependent divergence
Workload makeBP();  ///< backprop: 2^n SFU loop, half-scalar groups
Workload makeHW();  ///< heartwall: ~50% divergent tracking loop
Workload makeHS();  ///< hotspot: stencil with boundary conditionals
Workload makeLC();  ///< leukocyte: few warps + long-latency IDIV
Workload makePF();  ///< pathfinder: DP sweep with shared memory
Workload makeSR1(); ///< srad_1: gradients + divergent coefficient clamp
Workload makeSR2(); ///< srad_2: update step with scalar coefficients
Workload makeCC();  ///< cutcp: cutoff pairs, divergent SFU
Workload makeLBM(); ///< lbm: branchy streaming update, memory-heavy
Workload makeMG();  ///< mri-gridding: scattered address arithmetic
Workload makeMQ();  ///< mri-q: SIN/COS heavy, non-divergent
Workload makeSAD(); ///< sad: absolute differences with early-out
Workload makeMM();  ///< sgemm: broadcast A row (scalar memory)
Workload makeMV();  ///< spmv: irregular gather, few scalars
Workload makeST();  ///< stencil: 7-point, scalar coefficients
Workload makeACF(); ///< tpacf: histogram binning loop

} // namespace gs

#endif // GSCALAR_WORKLOADS_KERNELS_KERNELS_HPP
