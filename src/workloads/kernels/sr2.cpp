/**
 * @file
 * SR2 (srad_2, Rodinia). SRAD update pass: almost entirely
 * non-divergent, with the diffusion step built from warp-uniform
 * constants — a scalar-friendly counterpart to SR1.
 */

#include <bit>

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 150;
constexpr unsigned kIters = 8;

Kernel
buildKernel()
{
    KernelBuilder kb("sr2_update");

    const Reg gtid = emitGlobalTid(kb);
    const Reg dt = emitParamLoad(kb, 0);   // scalar
    const Reg damp = emitParamLoad(kb, 1); // scalar

    const Reg iaddr = emitWordAddr(kb, gtid, layout::kArrayA);
    const Reg caddr = emitWordAddr(kb, gtid, layout::kArrayB);
    const Reg img = kb.reg();
    const Reg coeff = kb.reg();
    const Reg east = kb.reg();
    const Reg step = kb.reg();
    const Reg scaled = kb.reg();

    const Reg i = kb.reg();
    kb.forRangeI(i, 0, kIters, [&] {
        kb.ldg(img, iaddr);
        kb.ldg(coeff, caddr);
        kb.ldg(east, caddr, 4);
        kb.fadd(step, coeff, east);     // vector
        kb.fmul(scaled, dt, damp);      // scalar ALU
        kb.emit1(Opcode::EX2, scaled, scaled); // scalar SFU
        kb.fadd(scaled, scaled, dt);    // scalar ALU
        kb.fmul(scaled, scaled, damp);  // scalar ALU
        kb.ffma(img, step, scaled, img);// vector
        kb.stg(iaddr, img);
        kb.iaddi(caddr, caddr, 4u * 64);
    });

    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);
    kb.stg(oaddr, img);
    return kb.build();
}

} // namespace

Workload
makeSR2()
{
    Workload w;
    w.name = "SR2";
    w.fullName = "srad_2";
    w.suite = "rodinia";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0x52);
        const std::size_t threads = kThreadsPerCta * kCtas;
        mem.fillWords(layout::kParams,
                      {std::bit_cast<Word>(0.25f),
                       std::bit_cast<Word>(0.8f)});
        mem.fillWords(layout::kArrayA,
                      clusteredFloats(threads, 1.0f, 0.5f, rng));
        mem.fillWords(layout::kArrayB,
                      clusteredFloats(threads + 64 * (kIters + 1), 0.4f,
                                      0.4f, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
