/**
 * @file
 * MM (sgemm, Parboil). Each warp computes elements of one C row: the A
 * operand is identical across the warp (scalar memory broadcast), the B
 * operand is a coalesced per-lane stream, and the loop/address
 * arithmetic on the A pointer is warp-uniform (scalar ALU).
 */

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kN = 32;            ///< C columns (one 32-warp per row)
constexpr unsigned kK = 40;            ///< inner dimension
constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 120;

Kernel
buildKernel()
{
    KernelBuilder kb("mm_sgemm");

    const Reg gtid = emitGlobalTid(kb);

    // row = gtid / N (warp-uniform for N a multiple of the warp size),
    // col = gtid % N.
    const Reg row = kb.reg();
    const Reg col = kb.reg();
    kb.shri(row, gtid, 5);
    kb.andi(col, gtid, kN - 1);

    // aAddr = A + row*K*4 : warp-uniform (scalar value).
    const Reg aAddr = kb.reg();
    kb.imuli(aAddr, row, kK * 4);
    kb.iaddi(aAddr, aAddr, Word(layout::kArrayA));

    // bAddr = B + col*4 : per-lane ramp (3-byte-similar addresses).
    const Reg bAddr = emitWordAddr(kb, col, layout::kArrayB);

    const Reg acc = kb.reg();
    kb.movf(acc, 0.0f);

    const Reg a = kb.reg();
    const Reg b = kb.reg();
    const Reg k = kb.reg();
    kb.forRangeI(k, 0, kK, [&] {
        kb.ldg(a, aAddr);               // scalar memory (A broadcast)
        kb.ldg(b, bAddr);               // coalesced vector load
        kb.ffma(acc, a, b, acc);        // vector FMA
        kb.iaddi(aAddr, aAddr, 4);      // scalar ALU
        kb.iaddi(bAddr, bAddr, kN * 4); // vector (ramp stays a ramp)
    });

    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);
    kb.stg(oaddr, acc);
    return kb.build();
}

} // namespace

Workload
makeMM()
{
    Workload w;
    w.name = "MM";
    w.fullName = "sgemm";
    w.suite = "parboil";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0x44);
        const std::size_t threads = kThreadsPerCta * kCtas;
        const std::size_t rows = threads / kN + 1;
        mem.fillWords(layout::kArrayA,
                      randomFloats(rows * kK, -1.0f, 1.0f, rng));
        mem.fillWords(layout::kArrayB,
                      randomFloats(std::size_t(kK) * kN, -1.0f, 1.0f,
                                   rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
