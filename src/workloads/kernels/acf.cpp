/**
 * @file
 * ACF (tpacf, Parboil). Two-point angular correlation: a dot product
 * per pair, then a data-dependent binning loop against warp-uniform bin
 * edges — divergent iterations on scalar values.
 */

#include <bit>

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 150;
constexpr unsigned kPairs = 10;
constexpr unsigned kBins = 7;

Kernel
buildKernel()
{
    KernelBuilder kb("acf_binning");

    const Reg gtid = emitGlobalTid(kb);
    const Reg edge0 = emitParamLoad(kb, 0); // first bin edge (scalar)
    const Reg scale = emitParamLoad(kb, 1); // edge ratio (scalar)

    const Reg xaddr = emitWordAddr(kb, gtid, layout::kArrayA);
    const Reg x = kb.reg();
    kb.ldg(x, xaddr);

    const Reg hist = kb.reg();
    kb.movi(hist, 0);

    const Reg yaddr = kb.reg();
    const Reg y = kb.reg();
    const Reg dot = kb.reg();
    const Reg edge = kb.reg();
    const Reg b = kb.reg();
    const Reg bi = kb.reg();
    const Pred below = kb.pred();

    const Reg pidx = kb.reg();
    kb.forRangeI(pidx, 0, kPairs, [&] {
        kb.shli(yaddr, pidx, 2);                    // scalar ALU
        kb.iaddi(yaddr, yaddr, Word(layout::kArrayB));
        kb.ldg(y, yaddr);                           // scalar memory
        kb.fmul(dot, x, y);                         // vector

        // Walk the bin edges; a lane keeps climbing only while its dot
        // product is below the current (warp-uniform) edge, so the body
        // runs divergently on scalar values.
        kb.mov(edge, edge0);                        // scalar ALU
        kb.movi(b, 0);
        kb.forRangeI(bi, 0, kBins, [&] {
            kb.fsetp(below, CmpOp::LT, dot, edge);
            kb.ifThen(below, [&] {
                kb.fmul(edge, edge, scale); // divergent scalar
                kb.fadd(edge, edge, edge0); // divergent scalar
                kb.iaddi(b, b, 1);          // divergent vector
            });
        });
        kb.iadd(hist, hist, b); // vector
    });

    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);
    kb.stg(oaddr, hist);
    return kb.build();
}

} // namespace

Workload
makeACF()
{
    Workload w;
    w.name = "ACF";
    w.fullName = "tpacf";
    w.suite = "parboil";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0xaf);
        const std::size_t threads = kThreadsPerCta * kCtas;
        mem.fillWords(layout::kParams,
                      {std::bit_cast<Word>(0.02f),
                       std::bit_cast<Word>(1.7f)});
        mem.fillWords(layout::kArrayA,
                      randomFloats(threads, 0.0f, 1.0f, rng));
        mem.fillWords(layout::kArrayB,
                      randomFloats(kPairs, 0.0f, 1.0f, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
