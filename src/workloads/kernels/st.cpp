/**
 * @file
 * ST (stencil, Parboil). Non-divergent 7-point stencil: per-thread
 * neighbour loads with ramp addresses (3-byte-similar values) scaled by
 * warp-uniform coefficients (scalar ALU on the coefficient side).
 */

#include <bit>

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 180;
constexpr unsigned kSweeps = 5;

Kernel
buildKernel()
{
    KernelBuilder kb("st_7point");

    const Reg gtid = emitGlobalTid(kb);
    const Reg c0 = emitParamLoad(kb, 0); // centre coefficient (scalar)
    const Reg c1 = emitParamLoad(kb, 1); // face coefficient (scalar)

    // Per-16-thread tile damping factor (half-warp scalar source).
    const Reg tile = kb.reg();
    kb.shri(tile, gtid, 4);
    const Reg taddr = emitWordAddr(kb, tile, layout::kArrayB);
    const Reg damp = kb.reg();
    kb.ldg(damp, taddr);
    const Reg hsum = kb.reg();
    kb.mov(hsum, damp);

    const Reg addr = emitWordAddr(kb, gtid, layout::kArrayA);
    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);

    const Reg centre = kb.reg();
    const Reg n1 = kb.reg();
    const Reg n2 = kb.reg();
    const Reg faces = kb.reg();
    const Reg scale = kb.reg();
    const Reg out = kb.reg();

    const Reg s = kb.reg();
    kb.forRangeI(s, 0, kSweeps, [&] {
        kb.ldg(centre, addr);
        kb.ldg(n1, addr, 4);
        kb.ldg(n2, addr, 4 * 64);
        kb.fadd(faces, n1, n2);            // vector
        kb.fmul(scale, c0, c1);            // scalar ALU
        kb.fadd(scale, scale, c1);         // scalar ALU
        kb.fmul(out, centre, scale);       // vector
        kb.fmul(hsum, hsum, damp);         // half-warp scalar
        kb.ffma(out, faces, c1, out);      // vector
        kb.stg(oaddr, out);
        kb.iaddi(addr, addr, 4u * kThreadsPerCta * kCtas / kSweeps);
    });
    const Reg haddr = emitWordAddr(kb, gtid, layout::kArrayC);
    kb.stg(haddr, hsum);
    return kb.build();
}

} // namespace

Workload
makeST()
{
    Workload w;
    w.name = "ST";
    w.fullName = "stencil";
    w.suite = "parboil";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0x57);
        const std::size_t threads = kThreadsPerCta * kCtas;
        mem.fillWords(layout::kParams,
                      {std::bit_cast<Word>(0.5f),
                       std::bit_cast<Word>(0.08f)});
        mem.fillWords(layout::kArrayA,
                      clusteredFloats(2 * threads + 70, 25.0f, 0.1f,
                                      rng));
        mem.fillWords(layout::kArrayB,
                      randomFloats(threads / 16 + 1, 0.95f, 1.0f, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
