/**
 * @file
 * SR1 (srad_1, Rodinia). SRAD gradient/coefficient pass: gradient
 * magnitudes per thread, a diffusion coefficient built from the
 * warp-uniform lambda, and a divergent clamp where the coefficient
 * leaves [0, 1].
 */

#include <bit>

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 150;
constexpr unsigned kIters = 7;

Kernel
buildKernel()
{
    KernelBuilder kb("sr1_gradient");

    const Reg gtid = emitGlobalTid(kb);
    const Reg lambda = emitParamLoad(kb, 0); // scalar
    const Reg q0 = emitParamLoad(kb, 1);     // scalar

    const Reg addr = emitWordAddr(kb, gtid, layout::kArrayA);
    const Reg img = kb.reg();
    const Reg north = kb.reg();
    const Reg grad = kb.reg();
    const Reg q = kb.reg();
    const Reg denom = kb.reg();
    const Reg coeff = kb.reg();
    const Pred oob = kb.pred();

    const Reg caddr = emitWordAddr(kb, gtid, layout::kArrayB);

    const Reg i = kb.reg();
    kb.forRangeI(i, 0, kIters, [&] {
        kb.ldg(img, addr);
        kb.ldg(north, addr, 4u * 64);
        kb.fsub(grad, north, img);            // vector
        kb.fmul(grad, grad, grad);            // vector
        kb.emit1(Opcode::RCP, denom, img);    // vector SFU
        kb.fmul(q, grad, denom);              // vector
        kb.fmul(denom, lambda, q0);           // scalar ALU
        kb.fadd(denom, denom, lambda);        // scalar ALU
        kb.fsub(coeff, q, denom);             // vector

        // Clamp where the coefficient escapes [0,1] (data-dependent).
        kb.fsetpf(oob, CmpOp::GT, coeff, 0.0f);
        kb.ifElse(
            oob,
            [&] {
                kb.fmul(q, lambda, lambda);   // divergent scalar
                kb.fadd(coeff, q, lambda);    // divergent scalar
                kb.fmul(coeff, coeff, img);   // divergent vector
            },
            [&] {
                kb.fadd(q, lambda, q0);       // divergent scalar
                kb.fmul(coeff, q, img);       // divergent vector
            });
        kb.stg(caddr, coeff);
        kb.iaddi(addr, addr, 4u * 64);
    });
    return kb.build();
}

} // namespace

Workload
makeSR1()
{
    Workload w;
    w.name = "SR1";
    w.fullName = "srad_1";
    w.suite = "rodinia";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0x51);
        const std::size_t threads = kThreadsPerCta * kCtas;
        mem.fillWords(layout::kParams,
                      {std::bit_cast<Word>(0.5f),
                       std::bit_cast<Word>(0.05f)});
        mem.fillWords(layout::kArrayA,
                      clusteredFloats(threads + 64 * (kIters + 1), 1.2f,
                                      0.9f, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
