/**
 * @file
 * HS (hotspot, Rodinia). Iterative 5-point thermal stencil whose
 * column-boundary conditional diverges a couple of lanes per warp; the
 * boundary handling operates on warp-uniform coefficients, giving the
 * ~17 % divergent-scalar share the paper reports for HS.
 */

#include <bit>

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 150;
constexpr unsigned kSteps = 6;

Kernel
buildKernel()
{
    KernelBuilder kb("hs_stencil");

    const Reg gtid = emitGlobalTid(kb);
    const Reg col = kb.reg();
    kb.andi(col, gtid, 31);

    const Reg cap = emitParamLoad(kb, 0);  // Rx^-1 (scalar)
    const Reg amb = emitParamLoad(kb, 1);  // ambient temp (scalar)

    const Reg taddr = emitWordAddr(kb, gtid, layout::kArrayA);
    const Reg paddr = emitWordAddr(kb, gtid, layout::kArrayB);
    const Reg t0 = kb.reg();
    const Reg power = kb.reg();
    kb.ldg(t0, taddr);
    kb.ldg(power, paddr);

    const Reg left = kb.reg();
    const Reg right = kb.reg();
    const Reg acc = kb.reg();
    const Reg delta = kb.reg();
    const Reg edge = kb.reg();
    const Reg edgeAcc = kb.reg();
    const Reg t = kb.reg();
    kb.mov(t, t0);

    const Pred interior = kb.pred();
    const Reg step = kb.reg();
    kb.forRangeI(step, 0, kSteps, [&] {
        kb.ldg(left, taddr, 4);                   // neighbour loads
        kb.ldg(right, taddr, 8);
        kb.fadd(acc, left, right);                // vector
        kb.ffma(delta, acc, cap, power);          // vector
        kb.fadd(t, t, delta);                     // vector

        // Column boundary: lanes 0 of each 32-column tile recompute
        // against the ambient temperature (divergent path on uniform
        // coefficients -> divergent scalar).
        // Both boundary paths accumulate into edgeAcc, which only ever
        // sees divergent writes (no per-step decompress moves).
        kb.isetpi(interior, CmpOp::NE, col, 0);
        kb.ifNotThen(interior, [&] {
            kb.fmul(edge, amb, cap);          // divergent scalar
            kb.fadd(edge, edge, amb);         // divergent scalar
            kb.fmul(edge, edge, cap);         // divergent scalar
            kb.fadd(edgeAcc, edgeAcc, edge);  // divergent vector
        });

        // High-power cells shed extra heat (data-dependent divergence
        // on the uniform sink coefficients; the mask stays mixed since
        // the power map is random).
        const Pred hot = kb.pred();
        kb.fsetpf(hot, CmpOp::GT, power, 0.5f);
        kb.ifThen(hot, [&] {
            kb.fadd(edge, cap, cap);          // divergent scalar
            kb.fmul(edge, edge, amb);         // divergent scalar
            kb.fsub(edgeAcc, edgeAcc, edge);  // divergent vector
        });
        kb.fadd(t, t, edgeAcc);
        kb.stg(taddr, t, 4u * kThreadsPerCta * kCtas);
    });

    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);
    kb.stg(oaddr, t);
    return kb.build();
}

} // namespace

Workload
makeHS()
{
    Workload w;
    w.name = "HS";
    w.fullName = "hotspot";
    w.suite = "rodinia";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0x45);
        const std::size_t threads = kThreadsPerCta * kCtas;
        mem.fillWords(layout::kParams,
                      {std::bit_cast<Word>(0.024f),
                       std::bit_cast<Word>(80.0f)});
        mem.fillWords(layout::kArrayA,
                      clusteredFloats(threads + 2, 330.0f, 0.02f, rng));
        mem.fillWords(layout::kArrayB,
                      clusteredFloats(threads, 0.5f, 0.4f, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
