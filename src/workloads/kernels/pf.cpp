/**
 * @file
 * PF (pathfinder, Rodinia). Dynamic-programming sweep: each step loads
 * the previous row from shared memory, takes the min of three
 * neighbours, adds the cost, and synchronises at a CTA barrier. Block
 * edges diverge through a guard predicate.
 */

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 150;
constexpr unsigned kRows = 8;

Kernel
buildKernel()
{
    KernelBuilder kb("pf_dp_sweep");

    const unsigned row_off = kb.shared(kThreadsPerCta * 4);
    (void)row_off;

    const Reg tid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    const Reg gtid = emitGlobalTid(kb);

    // Shared-memory slot of this thread (byte address).
    const Reg saddr = kb.reg();
    kb.shli(saddr, tid, 2);

    // Seed the DP row from global memory.
    const Reg caddr = emitWordAddr(kb, gtid, layout::kArrayA);
    const Reg best = kb.reg();
    kb.ldg(best, caddr);
    kb.sts(saddr, best);
    kb.bar();

    const Reg lanes = emitParamLoad(kb, 0); // width-1 constant (scalar)
    const Reg left = kb.reg();
    const Reg right = kb.reg();
    const Reg mid = kb.reg();
    const Reg m = kb.reg();
    const Reg cost = kb.reg();
    const Reg clampv = kb.reg();
    const Reg renorm = kb.reg();
    kb.movi(clampv, 0x7fffffff);
    kb.movi(renorm, 0x7fffffff);
    const Pred inner = kb.pred();

    const Reg r = kb.reg();
    kb.forRangeI(r, 0, kRows, [&] {
        kb.lds(mid, saddr);                    // shared loads
        kb.lds(left, saddr, Word(4));
        kb.lds(right, saddr, Word(8));
        kb.emit2(Opcode::IMIN, m, left, right); // vector
        kb.emit2(Opcode::IMIN, m, m, mid);      // vector
        kb.ldg(cost, caddr, 4u * kThreadsPerCta * kCtas);
        kb.iadd(best, m, cost);                // vector

        // Edge threads clamp against the uniform width constant. The
        // branches write only divergently-held registers so no
        // decompress move is triggered per iteration.
        kb.isetp(inner, CmpOp::LT, tid, lanes);
        kb.ifNotThen(inner, [&] {
            kb.iadd(clampv, lanes, lanes); // divergent scalar
            kb.iadd(clampv, clampv, m);    // divergent vector
        });

        // Paths that just improved re-normalise (data-dependent mask).
        const Pred improved = kb.pred();
        kb.isetp(improved, CmpOp::LT, m, cost);
        kb.ifThen(improved, [&] {
            kb.iadd(renorm, lanes, lanes);  // divergent scalar
            kb.iadd(renorm, renorm, cost);  // divergent vector
        });
        kb.emit2(Opcode::IMIN, best, best, clampv);
        kb.emit2(Opcode::IMIN, best, best, renorm);

        kb.bar();
        kb.sts(saddr, best);
        kb.bar();
    });

    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);
    kb.stg(oaddr, best);
    return kb.build();
}

} // namespace

Workload
makePF()
{
    Workload w;
    w.name = "PF";
    w.fullName = "pathfinder";
    w.suite = "rodinia";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0x9f);
        const std::size_t threads = kThreadsPerCta * kCtas;
        mem.fillWords(layout::kParams, {kThreadsPerCta - 8});
        mem.fillWords(layout::kArrayA,
                      clusteredInts(2 * threads, 10, 90, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
