/**
 * @file
 * BP (backprop, Rodinia). The paper singles this benchmark out: each
 * thread computes 2.0^n in a loop (EX2 on a warp-uniform exponent, so
 * every SFU instruction is scalar), ~14 % of dynamic instructions are
 * SFU, and 12 % of instructions are half-warp scalar (per-16-lane
 * uniform layer weights).
 */

#include <bit>

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 240;
constexpr unsigned kIters = 24;

Kernel
buildKernel()
{
    KernelBuilder kb("bp_layer");

    const Reg gtid = emitGlobalTid(kb);

    // Per-thread connection weight (clustered floats).
    const Reg waddr = emitWordAddr(kb, gtid, layout::kArrayA);
    const Reg w = kb.reg();
    kb.ldg(w, waddr);

    // Per-16-thread-group layer value: every lane of a check group
    // loads the same address, making it a half-warp scalar source.
    const Reg gid = kb.reg();
    kb.shri(gid, gtid, 4);
    const Reg haddr = emitWordAddr(kb, gid, layout::kArrayB);
    const Reg hval = kb.reg();
    kb.ldg(hval, haddr);

    const Reg rate = emitParamLoad(kb, 0); // learning rate (scalar)

    const Reg acc = kb.reg();
    const Reg hacc = kb.reg();
    const Reg fi = kb.reg();
    const Reg e = kb.reg();
    const Reg g = kb.reg();
    const Reg we = kb.reg();
    kb.movf(acc, 0.0f);
    kb.mov(hacc, hval);

    const Reg i = kb.reg();
    kb.forRangeI(i, 0, kIters, [&] {
        kb.emit1(Opcode::I2F, fi, i);      // scalar ALU
        kb.emit1(Opcode::EX2, e, fi);      // scalar SFU: 2.0^i
        kb.fmul(g, rate, e);               // scalar ALU
        kb.emit1(Opcode::RCP, g, g);       // scalar SFU: 1/(rate*2^i)
        kb.ffma(acc, w, e, acc);           // vector FMA
        kb.fmul(we, w, g);                 // vector
        kb.fmul(hacc, hacc, e);            // half-warp scalar
        kb.fadd(hacc, hacc, hval);         // half-warp scalar
        kb.fadd(acc, acc, we);             // vector
    });

    const Reg out = kb.reg();
    kb.fadd(out, acc, hacc);
    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);
    kb.stg(oaddr, out);
    return kb.build();
}

} // namespace

Workload
makeBP()
{
    Workload w;
    w.name = "BP";
    w.fullName = "backprop";
    w.suite = "rodinia";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0xb9);
        const std::size_t threads = kThreadsPerCta * kCtas;
        mem.fillWords(layout::kParams, {std::bit_cast<Word>(0.05f)});
        mem.fillWords(layout::kArrayA,
                      clusteredFloats(threads, 0.37f, 0.05f, rng));
        mem.fillWords(layout::kArrayB,
                      randomFloats(threads / 16 + 1, 0.9f, 1.1f, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
