/**
 * @file
 * CC (cutcp, Parboil). Cutoff Coulomb potential: each iteration loads
 * warp-uniform atom coordinates (scalar memory), computes a per-thread
 * distance, and only lanes within the cutoff evaluate the divergent
 * RSQ/accumulate path.
 */

#include <bit>

#include "helpers.hpp"
#include "kernels.hpp"

namespace gs
{

namespace
{

constexpr unsigned kThreadsPerCta = 128;
constexpr unsigned kCtas = 150;
constexpr unsigned kAtoms = 12;

Kernel
buildKernel()
{
    KernelBuilder kb("cc_cutoff");

    const Reg gtid = emitGlobalTid(kb);
    const Reg cutoff2 = emitParamLoad(kb, 0); // squared cutoff (scalar)
    const Reg qscale = emitParamLoad(kb, 1);  // charge scale (scalar)

    const Reg xaddr = emitWordAddr(kb, gtid, layout::kArrayA);
    const Reg x = kb.reg();
    kb.ldg(x, xaddr);

    const Reg pot = kb.reg();
    kb.movf(pot, 0.0f);

    const Reg aaddr = kb.reg();
    const Reg ax = kb.reg();
    const Reg dx = kb.reg();
    const Reg r2 = kb.reg();
    const Reg rinv = kb.reg();
    const Reg term = kb.reg();
    const Pred within = kb.pred();

    const Reg a = kb.reg();
    kb.forRangeI(a, 0, kAtoms, [&] {
        kb.shli(aaddr, a, 2);                       // scalar ALU
        kb.iaddi(aaddr, aaddr, Word(layout::kArrayB));
        kb.ldg(ax, aaddr);                          // scalar memory
        kb.fsub(dx, ax, x);                         // vector
        kb.fmul(r2, dx, dx);                        // vector
        kb.fsetp(within, CmpOp::LT, r2, cutoff2);
        // Per-atom scalar SFU: the switching-function prefactor depends
        // only on the (uniform) atom coordinate.
        const Reg pref = kb.reg();
        kb.emit1(Opcode::RCP, pref, ax);            // scalar SFU
        kb.ifElse(
            within,
            [&] {
                kb.emit1(Opcode::RSQ, rinv, r2); // divergent SFU
                kb.fmul(term, qscale, qscale);   // divergent scalar
                kb.fadd(term, term, cutoff2);    // divergent scalar
                kb.fmul(term, term, qscale);     // divergent scalar
                kb.fmul(term, term, rinv);       // divergent vector
                kb.ffma(rinv, rinv, term, term); // divergent vector
                kb.fadd(pot, pot, term);         // divergent vector
            },
            [&] {
                kb.fmul(term, cutoff2, qscale);  // divergent scalar
                kb.fadd(term, term, qscale);     // divergent scalar
                kb.ffma(pot, dx, term, pot);     // divergent vector
            });
    });

    const Reg oaddr = emitWordAddr(kb, gtid, layout::kOutput);
    kb.stg(oaddr, pot);
    return kb.build();
}

} // namespace

Workload
makeCC()
{
    Workload w;
    w.name = "CC";
    w.fullName = "cutcup";
    w.suite = "parboil";
    w.setup = [](GlobalMemory &mem, std::uint64_t seed) {
        Rng rng(seed ^ 0xcc);
        const std::size_t threads = kThreadsPerCta * kCtas;
        mem.fillWords(layout::kParams,
                      {std::bit_cast<Word>(1.1f),
                       std::bit_cast<Word>(0.35f)});
        mem.fillWords(layout::kArrayA,
                      randomFloats(threads, -2.0f, 2.0f, rng));
        mem.fillWords(layout::kArrayB,
                      randomFloats(kAtoms, -2.0f, 2.0f, rng));
    };
    w.launches.push_back({buildKernel(), {kCtas, kThreadsPerCta}});
    return w;
}

} // namespace gs
