#include "data_gen.hpp"

#include <bit>

namespace gs
{

std::vector<Word>
uniformWords(std::size_t n, Word value)
{
    return std::vector<Word>(n, value);
}

std::vector<Word>
clusteredInts(std::size_t n, Word base, unsigned range, Rng &rng)
{
    std::vector<Word> v(n);
    for (auto &w : v)
        w = base + Word(rng.below(range));
    return v;
}

std::vector<Word>
clusteredFloats(std::size_t n, float center, float spread, Rng &rng)
{
    std::vector<Word> v(n);
    for (auto &w : v) {
        const float f =
            center * (1.0f + spread * (2.0f * float(rng.uniform()) - 1.0f));
        w = std::bit_cast<Word>(f);
    }
    return v;
}

std::vector<Word>
rampInts(std::size_t n, Word base, Word step)
{
    std::vector<Word> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = base + Word(i) * step;
    return v;
}

std::vector<Word>
randomWords(std::size_t n, Rng &rng)
{
    std::vector<Word> v(n);
    for (auto &w : v)
        w = rng.next32();
    return v;
}

std::vector<Word>
randomFloats(std::size_t n, float lo, float hi, Rng &rng)
{
    std::vector<Word> v(n);
    for (auto &w : v) {
        const float f = lo + (hi - lo) * float(rng.uniform());
        w = std::bit_cast<Word>(f);
    }
    return v;
}

std::vector<Word>
bernoulliFlags(std::size_t n, double p, Rng &rng)
{
    std::vector<Word> v(n);
    for (auto &w : v)
        w = rng.chance(p) ? 1u : 0u;
    return v;
}

} // namespace gs
