/**
 * @file
 * A workload: one kernel (or a short kernel sequence) modelling a
 * Rodinia/Parboil benchmark (Table 2), together with its input
 * initialisation and launch geometry.
 */

#ifndef GSCALAR_WORKLOADS_WORKLOAD_HPP
#define GSCALAR_WORKLOADS_WORKLOAD_HPP

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "isa/kernel.hpp"
#include "sim/gmem.hpp"

namespace gs
{

/** One kernel launch of a workload. */
struct WorkloadLaunch
{
    Kernel kernel;
    LaunchDims dims;
};

/** A synthetic benchmark: input setup plus one or more launches. */
struct Workload
{
    std::string name;   ///< Table 2 abbreviation (e.g. "BP")
    std::string fullName;
    std::string suite;  ///< "rodinia" or "parboil"
    /** Initialise device memory; called once before the launches. */
    std::function<void(GlobalMemory &, std::uint64_t seed)> setup;
    std::vector<WorkloadLaunch> launches;
};

/** All 17 benchmarks of Table 2, in the paper's order. */
std::vector<Workload> makeSuite();

/** Look up one benchmark by its Table 2 abbreviation. */
Workload makeWorkload(const std::string &abbr);

/**
 * Pluggable name resolver consulted by makeWorkload() for names the
 * Table 2 registry does not know. Returns a Workload when the name is
 * its to resolve, std::nullopt otherwise. The generator subsystem
 * registers one for "gen:..." spec names (registerGenWorkloads()), so
 * generated kernels flow through every path a Table 2 name can take —
 * engine, disk cache, daemon, CLI. Resolvers must be registered before
 * any concurrent makeWorkload() use (binaries do it in main()).
 */
using WorkloadResolver =
    std::function<std::optional<Workload>(const std::string &name)>;
void registerWorkloadResolver(WorkloadResolver resolver);

/** Table 2 abbreviations in paper order. */
const std::vector<std::string> &workloadNames();

/**
 * Whether @p abbr names a Table 2 workload or a registered resolver
 * accepts it — the non-fatal probe servers use to validate request
 * names before makeWorkload() (which is fatal on unknown names).
 */
bool workloadResolvable(const std::string &abbr);

} // namespace gs

#endif // GSCALAR_WORKLOADS_WORKLOAD_HPP
