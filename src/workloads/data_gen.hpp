/**
 * @file
 * Input-data generators for the synthetic benchmarks. The cross-lane
 * value similarity of loaded data is what drives the compression and
 * scalar-eligibility results, so each generator targets one similarity
 * class: uniform (scalar), clustered (top-byte similar), ramp
 * (address-like) or random (incompressible).
 */

#ifndef GSCALAR_WORKLOADS_DATA_GEN_HPP
#define GSCALAR_WORKLOADS_DATA_GEN_HPP

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace gs
{

/** Device-memory layout shared by all workloads. */
namespace layout
{
/** Uniform kernel parameters (scalar values). */
inline constexpr Addr kParams = 0x1000;
/** Primary input array. */
inline constexpr Addr kArrayA = 0x100000;
/** Secondary input array. */
inline constexpr Addr kArrayB = 0x400000;
/** Tertiary input array. */
inline constexpr Addr kArrayC = 0x700000;
/** Output array. */
inline constexpr Addr kOutput = 0xa00000;
} // namespace layout

/** n copies of the same word (scalar loads). */
std::vector<Word> uniformWords(std::size_t n, Word value);

/** Integers base + delta with |delta| < range (top bytes similar). */
std::vector<Word> clusteredInts(std::size_t n, Word base, unsigned range,
                                Rng &rng);

/** Floats uniformly in [center*(1-spread), center*(1+spread)] — nearby
 *  magnitudes share exponent and mantissa MSBs. */
std::vector<Word> clusteredFloats(std::size_t n, float center,
                                  float spread, Rng &rng);

/** base, base+step, base+2*step, ... (address-like ramps). */
std::vector<Word> rampInts(std::size_t n, Word base, Word step);

/** Fully random words (incompressible). */
std::vector<Word> randomWords(std::size_t n, Rng &rng);

/** Random floats in [lo, hi]. */
std::vector<Word> randomFloats(std::size_t n, float lo, float hi,
                               Rng &rng);

/** 0/1 flags, each 1 with probability @p p (divergence masks). */
std::vector<Word> bernoulliFlags(std::size_t n, double p, Rng &rng);

} // namespace gs

#endif // GSCALAR_WORKLOADS_DATA_GEN_HPP
