#include "workload.hpp"

#include "common/log.hpp"
#include "kernels/kernels.hpp"

namespace gs
{

std::vector<Workload>
makeSuite()
{
    std::vector<Workload> suite;
    // Table 2 order: Rodinia then Parboil.
    suite.push_back(makeBT());
    suite.push_back(makeBP());
    suite.push_back(makeHW());
    suite.push_back(makeHS());
    suite.push_back(makeLC());
    suite.push_back(makePF());
    suite.push_back(makeSR1());
    suite.push_back(makeSR2());
    suite.push_back(makeCC());
    suite.push_back(makeLBM());
    suite.push_back(makeMG());
    suite.push_back(makeMQ());
    suite.push_back(makeSAD());
    suite.push_back(makeMM());
    suite.push_back(makeMV());
    suite.push_back(makeST());
    suite.push_back(makeACF());
    return suite;
}

namespace
{

std::vector<WorkloadResolver> &
resolvers()
{
    static std::vector<WorkloadResolver> r;
    return r;
}

} // namespace

void
registerWorkloadResolver(WorkloadResolver resolver)
{
    resolvers().push_back(std::move(resolver));
}

Workload
makeWorkload(const std::string &abbr)
{
    for (Workload &w : makeSuite())
        if (w.name == abbr)
            return std::move(w);
    for (const WorkloadResolver &resolve : resolvers())
        if (std::optional<Workload> w = resolve(abbr))
            return std::move(*w);
    GS_FATAL("unknown workload '", abbr, "'");
}

bool
workloadResolvable(const std::string &abbr)
{
    for (const std::string &name : workloadNames())
        if (name == abbr)
            return true;
    for (const WorkloadResolver &resolve : resolvers())
        if (resolve(abbr))
            return true;
    return false;
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "BT", "BP", "HW", "HS", "LC", "PF", "SR1", "SR2", "CC",
        "LBM", "MG", "MQ", "SAD", "MM", "MV", "ST", "ACF"};
    return names;
}

} // namespace gs
