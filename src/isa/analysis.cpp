#include "analysis.hpp"

#include "common/log.hpp"

namespace gs
{

namespace
{

/** True when @p op can produce a warp-uniform value from uniform
 *  inputs at compile time. Loads cannot: their values are unknown
 *  until runtime, the key limitation of compiler-assisted scalarization
 *  (§6). */
bool
opStaticallyUniformCapable(const Instruction &inst)
{
    if (isLoad(inst.op))
        return false;
    if (inst.op == Opcode::S2R)
        return sregIsUniformStatic(inst.sreg);
    if (inst.op == Opcode::SMOV)
        return false;
    return true;
}

} // namespace

bool
sregIsUniformStatic(SReg s)
{
    switch (s) {
      case SReg::Tid:
      case SReg::LaneId:
        return false;
      default:
        return true;
    }
}

KernelAnalysis
analyzeKernel(const Kernel &kernel)
{
    const std::size_t n = kernel.code.size();
    KernelAnalysis a;
    a.uniformReg.assign(kernel.numRegs, true);
    a.uniformPred.assign(kernel.numPreds, true);
    a.convergent.assign(n, true);
    a.staticScalar.assign(n, false);
    a.oldValueDead.assign(n, false);

    auto enclosing = [&](std::size_t pc) -> const std::vector<PredIdx> & {
        static const std::vector<PredIdx> kEmpty;
        return pc < kernel.enclosingPreds.size()
                   ? kernel.enclosingPreds[pc]
                   : kEmpty;
    };

    auto predUniform = [&](PredIdx p) {
        return p == kNoPred || a.uniformPred[unsigned(p)];
    };

    auto srcsUniform = [&](const Instruction &inst) {
        for (unsigned s = 0; s < inst.numSrcRegs(); ++s)
            if (!a.uniformReg[unsigned(inst.src[s])])
                return false;
        if (inst.psrc != kNoPred && !a.uniformPred[unsigned(inst.psrc)])
            return false;
        return true;
    };

    // ---- uniformity fixed point (monotone: flags only ever drop) ---------
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t pc = 0; pc < n; ++pc) {
            const Instruction &inst = kernel.code[pc];

            bool conv = predUniform(inst.guard);
            for (const PredIdx p : enclosing(pc))
                conv &= predUniform(p);
            if (conv != a.convergent[pc]) {
                a.convergent[pc] = conv;
                changed = true;
            }

            if (inst.writesDst()) {
                const bool uniform = conv && srcsUniform(inst) &&
                                     opStaticallyUniformCapable(inst);
                if (!uniform && a.uniformReg[unsigned(inst.dst)]) {
                    a.uniformReg[unsigned(inst.dst)] = false;
                    changed = true;
                }
            }
            if (inst.pdst != kNoPred) {
                const bool uniform = conv && srcsUniform(inst);
                if (!uniform && a.uniformPred[unsigned(inst.pdst)]) {
                    a.uniformPred[unsigned(inst.pdst)] = false;
                    changed = true;
                }
            }
        }
    }

    // ---- static scalar classification (what a compiler would mark) -------
    for (std::size_t pc = 0; pc < n; ++pc) {
        const Instruction &inst = kernel.code[pc];
        if (inst.pipe() == PipeClass::CTRL || inst.op == Opcode::SMOV)
            continue;
        if (inst.op == Opcode::S2R && !sregIsUniformStatic(inst.sreg))
            continue;
        a.staticScalar[pc] = a.convergent[pc] && srcsUniform(inst);
    }

    // ---- old-value liveness at (potentially divergent) writes -------------
    if (kernel.numRegs > 64)
        return a; // conservative: claim nothing

    using RegSet = std::uint64_t;
    std::vector<RegSet> live_in(n, 0), live_out(n, 0);

    auto successors = [&](std::size_t pc, std::size_t out[2]) -> unsigned {
        const Instruction &inst = kernel.code[pc];
        switch (inst.op) {
          case Opcode::EXIT:
            return 0;
          case Opcode::JMP:
            out[0] = std::size_t(inst.target);
            return 1;
          case Opcode::BRA:
            out[0] = std::size_t(inst.target);
            out[1] = pc + 1;
            return 2;
          default:
            out[0] = pc + 1;
            return 1;
        }
    };

    bool live_changed = true;
    while (live_changed) {
        live_changed = false;
        for (std::size_t i = n; i-- > 0;) {
            const Instruction &inst = kernel.code[i];
            std::size_t succ[2];
            const unsigned ns = successors(i, succ);
            RegSet out = 0;
            for (unsigned s = 0; s < ns; ++s)
                if (succ[s] < n)
                    out |= live_in[succ[s]];

            RegSet gen = 0;
            for (unsigned s = 0; s < inst.numSrcRegs(); ++s)
                gen |= RegSet{1} << unsigned(inst.src[s]);

            // Path-sensitive kill: a lane travelling this path executes
            // every unguarded instruction on it, so any unguarded write
            // replaces the value *for that lane* — later reads on the
            // same path observe the new value, never the old one. Only
            // guarded writes may be skipped by a lane on the path.
            RegSet kill = 0;
            if (inst.writesDst() && inst.guard == kNoPred)
                kill = RegSet{1} << unsigned(inst.dst);

            const RegSet in = (out & ~kill) | gen;
            if (out != live_out[i] || in != live_in[i]) {
                live_out[i] = out;
                live_in[i] = in;
                live_changed = true;
            }
        }
    }

    for (std::size_t pc = 0; pc < n; ++pc) {
        const Instruction &inst = kernel.code[pc];
        if (!inst.writesDst())
            continue;
        const RegSet bit = RegSet{1} << unsigned(inst.dst);

        // Lanes inactive for a *guarded* write resume at the very next
        // instruction; for structured arms they resume at each
        // enclosing arm's checkPc (the sibling arm or the
        // reconvergence point). The old value is dead only if no such
        // resume point may read it.
        bool dead = true;
        if (inst.guard != kNoPred)
            dead &= !(live_out[pc] & bit);
        bool in_region = false;
        for (const Kernel::Region &r : kernel.regions) {
            if (int(pc) < r.start || int(pc) >= r.end)
                continue;
            in_region = true;
            if (std::size_t(r.checkPc) < n)
                dead &= !(live_in[std::size_t(r.checkPc)] & bit);
        }
        if (!in_region && inst.guard == kNoPred)
            dead &= !(live_out[pc] & bit);
        a.oldValueDead[pc] = dead;
    }
    return a;
}

} // namespace gs
