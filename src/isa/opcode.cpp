#include "opcode.hpp"

#include <array>

#include "common/log.hpp"

namespace gs
{

namespace
{

constexpr std::size_t kNumOps = static_cast<std::size_t>(Opcode::NumOpcodes);

/**
 * Trait table. Energy units are relative to one FP32 add/multiply
 * (= 1.0), following GPUWattch's component cost ordering: simple
 * integer ops are cheaper, microcoded divide much more expensive, and
 * transcendentals land in the 3-24x band the paper cites for SFU ops.
 */
constexpr std::array<OpcodeTraits, kNumOps> kTraits = {{
    // name     pipe             lat               srcs dst   energy
    {"iadd",   PipeClass::ALU,  LatClass::Simple, 2, true,  0.6},
    {"isub",   PipeClass::ALU,  LatClass::Simple, 2, true,  0.6},
    {"imul",   PipeClass::ALU,  LatClass::Mul,    2, true,  1.4},
    {"imad",   PipeClass::ALU,  LatClass::Mul,    3, true,  1.8},
    {"idiv",   PipeClass::ALU,  LatClass::Div,    2, true,  8.0},
    {"irem",   PipeClass::ALU,  LatClass::Div,    2, true,  8.0},
    {"imin",   PipeClass::ALU,  LatClass::Simple, 2, true,  0.6},
    {"imax",   PipeClass::ALU,  LatClass::Simple, 2, true,  0.6},
    {"iabs",   PipeClass::ALU,  LatClass::Simple, 1, true,  0.5},
    {"and",    PipeClass::ALU,  LatClass::Simple, 2, true,  0.4},
    {"or",     PipeClass::ALU,  LatClass::Simple, 2, true,  0.4},
    {"xor",    PipeClass::ALU,  LatClass::Simple, 2, true,  0.4},
    {"not",    PipeClass::ALU,  LatClass::Simple, 1, true,  0.3},
    {"shl",    PipeClass::ALU,  LatClass::Simple, 2, true,  0.5},
    {"shr",    PipeClass::ALU,  LatClass::Simple, 2, true,  0.5},
    {"fadd",   PipeClass::ALU,  LatClass::Simple, 2, true,  1.0},
    {"fsub",   PipeClass::ALU,  LatClass::Simple, 2, true,  1.0},
    {"fmul",   PipeClass::ALU,  LatClass::Simple, 2, true,  1.0},
    {"ffma",   PipeClass::ALU,  LatClass::Mul,    3, true,  1.8},
    {"fmin",   PipeClass::ALU,  LatClass::Simple, 2, true,  0.8},
    {"fmax",   PipeClass::ALU,  LatClass::Simple, 2, true,  0.8},
    {"fabs",   PipeClass::ALU,  LatClass::Simple, 1, true,  0.4},
    {"fneg",   PipeClass::ALU,  LatClass::Simple, 1, true,  0.4},
    {"mov",    PipeClass::ALU,  LatClass::Simple, 1, true,  0.3},
    {"sel",    PipeClass::ALU,  LatClass::Simple, 2, true,  0.5},
    {"i2f",    PipeClass::ALU,  LatClass::Simple, 1, true,  0.8},
    {"f2i",    PipeClass::ALU,  LatClass::Simple, 1, true,  0.8},
    {"isetp",  PipeClass::ALU,  LatClass::Simple, 2, false, 0.5},
    {"fsetp",  PipeClass::ALU,  LatClass::Simple, 2, false, 0.6},
    {"sin",    PipeClass::SFU,  LatClass::Sfu,    1, true,  14.0},
    {"cos",    PipeClass::SFU,  LatClass::Sfu,    1, true,  14.0},
    {"ex2",    PipeClass::SFU,  LatClass::Sfu,    1, true,  9.0},
    {"lg2",    PipeClass::SFU,  LatClass::Sfu,    1, true,  9.0},
    {"rcp",    PipeClass::SFU,  LatClass::Sfu,    1, true,  6.0},
    {"rsq",    PipeClass::SFU,  LatClass::Sfu,    1, true,  7.0},
    {"sqrt",   PipeClass::SFU,  LatClass::Sfu,    1, true,  11.0},
    {"ldg",    PipeClass::MEM,  LatClass::Mem,    1, true,  0.5},
    {"stg",    PipeClass::MEM,  LatClass::Mem,    2, false, 0.5},
    {"lds",    PipeClass::MEM,  LatClass::Mem,    1, true,  0.4},
    {"sts",    PipeClass::MEM,  LatClass::Mem,    2, false, 0.4},
    {"bra",    PipeClass::CTRL, LatClass::Ctrl,   0, false, 0.3},
    {"jmp",    PipeClass::CTRL, LatClass::Ctrl,   0, false, 0.2},
    {"bar",    PipeClass::CTRL, LatClass::Ctrl,   0, false, 0.2},
    {"exit",   PipeClass::CTRL, LatClass::Ctrl,   0, false, 0.1},
    {"s2r",    PipeClass::ALU,  LatClass::Simple, 0, true,  0.3},
    {"smov",   PipeClass::ALU,  LatClass::Simple, 1, true,  0.3},
}};

} // namespace

const OpcodeTraits &
traits(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    GS_ASSERT(idx < kNumOps, "bad opcode ", idx);
    return kTraits[idx];
}

std::string_view
cmpName(CmpOp c)
{
    switch (c) {
      case CmpOp::EQ: return "eq";
      case CmpOp::NE: return "ne";
      case CmpOp::LT: return "lt";
      case CmpOp::LE: return "le";
      case CmpOp::GT: return "gt";
      case CmpOp::GE: return "ge";
    }
    return "?";
}

std::string_view
sregName(SReg s)
{
    switch (s) {
      case SReg::Tid: return "tid";
      case SReg::CtaId: return "ctaid";
      case SReg::NTid: return "ntid";
      case SReg::NCtaId: return "nctaid";
      case SReg::LaneId: return "laneid";
      case SReg::WarpId: return "warpid";
    }
    return "?";
}

} // namespace gs
