#include "kernel.hpp"

#include <sstream>

#include "common/log.hpp"

namespace gs
{

std::string
Kernel::disassemble() const
{
    std::ostringstream os;
    os << ".kernel " << name << " (regs=" << numRegs
       << ", preds=" << numPreds << ", shared=" << sharedBytes << "B)\n";
    for (std::size_t pc = 0; pc < code.size(); ++pc)
        os << "  " << pc << ": " << code[pc].toString() << "\n";
    return os.str();
}

std::string
Kernel::check() const
{
    auto err = [&](int pc, const auto &...parts) {
        std::ostringstream os;
        os << "kernel '" << name << "'";
        if (pc >= 0)
            os << " pc " << pc;
        os << ": ";
        (os << ... << parts);
        return os.str();
    };

    if (code.empty())
        return "kernel '" + name + "' has no instructions";
    if (code.back().op != Opcode::EXIT)
        return "kernel '" + name + "' does not end with EXIT";

    const int n = static_cast<int>(code.size());
    for (int pc = 0; pc < n; ++pc) {
        const Instruction &inst = code[pc];
        // Deserialized kernels (fuzz reproducer artifacts) can carry
        // arbitrary opcode bytes; reject them before any interpreter
        // switches on the value.
        if (inst.op >= Opcode::NumOpcodes)
            return err(pc, "opcode byte ",
                       unsigned(static_cast<std::uint8_t>(inst.op)),
                       " is not an instruction");
        if (inst.op == Opcode::BRA || inst.op == Opcode::JMP) {
            if (inst.target < 0 || inst.target >= n)
                return err(pc, "branch target ", inst.target,
                           " out of range");
            if (inst.op == Opcode::BRA &&
                (inst.reconv < 0 || inst.reconv > n))
                return err(pc, "reconvergence pc ", inst.reconv,
                           " out of range");
        }
        if (inst.writesDst() && inst.dst == kNoReg)
            return err(pc, "missing destination register");
        if (inst.writesDst() &&
            inst.dst >= static_cast<RegIdx>(numRegs))
            return err(pc, "register r", inst.dst,
                       " exceeds numRegs=", numRegs);
        for (unsigned s = 0; s < inst.numSrcRegs(); ++s) {
            if (inst.src[s] == kNoReg)
                return err(pc, "missing source register ", s);
            if (inst.src[s] >= static_cast<RegIdx>(numRegs))
                return err(pc, "register r", inst.src[s],
                           " exceeds numRegs=", numRegs);
        }
        if ((inst.op == Opcode::ISETP || inst.op == Opcode::FSETP) &&
            (inst.pdst == kNoPred ||
             inst.pdst >= static_cast<PredIdx>(numPreds)))
            return err(pc, "predicate destination p", inst.pdst,
                       " exceeds numPreds=", numPreds);
        if (inst.op == Opcode::SEL &&
            (inst.psrc == kNoPred ||
             inst.psrc >= static_cast<PredIdx>(numPreds)))
            return err(pc, "predicate source p", inst.psrc,
                       " exceeds numPreds=", numPreds);
        if (inst.guard != kNoPred &&
            inst.guard >= static_cast<PredIdx>(numPreds))
            return err(pc, "guard p", inst.guard,
                       " exceeds numPreds=", numPreds);
    }
    return {};
}

void
Kernel::validate() const
{
    const std::string why = check();
    if (!why.empty())
        GS_FATAL(why);
}

} // namespace gs
