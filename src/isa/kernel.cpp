#include "kernel.hpp"

#include <sstream>

#include "common/log.hpp"

namespace gs
{

std::string
Kernel::disassemble() const
{
    std::ostringstream os;
    os << ".kernel " << name << " (regs=" << numRegs
       << ", preds=" << numPreds << ", shared=" << sharedBytes << "B)\n";
    for (std::size_t pc = 0; pc < code.size(); ++pc)
        os << "  " << pc << ": " << code[pc].toString() << "\n";
    return os.str();
}

void
Kernel::validate() const
{
    if (code.empty())
        GS_FATAL("kernel '", name, "' has no instructions");
    if (code.back().op != Opcode::EXIT)
        GS_FATAL("kernel '", name, "' does not end with EXIT");

    const int n = static_cast<int>(code.size());
    for (int pc = 0; pc < n; ++pc) {
        const Instruction &inst = code[pc];
        if (inst.op == Opcode::BRA || inst.op == Opcode::JMP) {
            if (inst.target < 0 || inst.target >= n)
                GS_FATAL("kernel '", name, "' pc ", pc,
                         ": branch target ", inst.target, " out of range");
            if (inst.op == Opcode::BRA &&
                (inst.reconv < 0 || inst.reconv > n))
                GS_FATAL("kernel '", name, "' pc ", pc,
                         ": reconvergence pc ", inst.reconv,
                         " out of range");
        }
        if (inst.writesDst() && inst.dst == kNoReg)
            GS_FATAL("kernel '", name, "' pc ", pc,
                     ": missing destination register");
        if (inst.writesDst() &&
            inst.dst >= static_cast<RegIdx>(numRegs))
            GS_FATAL("kernel '", name, "' pc ", pc, ": register r",
                     inst.dst, " exceeds numRegs=", numRegs);
        for (unsigned s = 0; s < inst.numSrcRegs(); ++s) {
            if (inst.src[s] == kNoReg)
                GS_FATAL("kernel '", name, "' pc ", pc,
                         ": missing source register ", s);
            if (inst.src[s] >= static_cast<RegIdx>(numRegs))
                GS_FATAL("kernel '", name, "' pc ", pc, ": register r",
                         inst.src[s], " exceeds numRegs=", numRegs);
        }
        if (inst.guard != kNoPred &&
            inst.guard >= static_cast<PredIdx>(numPreds))
            GS_FATAL("kernel '", name, "' pc ", pc, ": guard p",
                     inst.guard, " exceeds numPreds=", numPreds);
    }
}

} // namespace gs
