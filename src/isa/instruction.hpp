/**
 * @file
 * One decoded instruction of the mini ISA. Kept as a POD-ish value type
 * so kernels are cheap to copy and hash.
 */

#ifndef GSCALAR_ISA_INSTRUCTION_HPP
#define GSCALAR_ISA_INSTRUCTION_HPP

#include <array>
#include <string>

#include "common/types.hpp"
#include "opcode.hpp"

namespace gs
{

/** Index of a vector register (per-thread architectural register). */
using RegIdx = int;

/** Index of a predicate register. */
using PredIdx = int;

/** Sentinel for "no predicate". */
inline constexpr PredIdx kNoPred = -1;

/**
 * A decoded instruction. Operand roles by opcode family:
 *  - ALU/SFU: dst <- src[0] op src[1] (op src[2]); immediate replaces
 *    src[1] when hasImm is set.
 *  - ISETP/FSETP: pdst <- src[0] cmp src[1] (or imm).
 *  - LDG/LDS: dst <- mem[src[0] + imm].
 *  - STG/STS: mem[src[0] + imm] <- src[1].
 *  - SEL: dst <- psrc ? src[0] : src[1].
 *  - BRA: branch to target when guard predicate true; reconv is the
 *    immediate post-dominator PC the SIMT stack reconverges at.
 *  - S2R: dst <- special register sreg.
 *  - SMOV: dst <- dst, ignoring the active mask (decompress-in-place).
 */
struct Instruction
{
    Opcode op = Opcode::EXIT;

    RegIdx dst = kNoReg;
    std::array<RegIdx, 3> src = {kNoReg, kNoReg, kNoReg};

    /** Immediate operand, used when hasImm (replaces src[1]). */
    Word imm = 0;
    bool hasImm = false;

    /** Predicate destination (ISETP/FSETP). */
    PredIdx pdst = kNoPred;
    /** Predicate source (SEL condition). */
    PredIdx psrc = kNoPred;
    /** Comparison operator for ISETP/FSETP. */
    CmpOp cmp = CmpOp::EQ;

    /** Guard predicate: instruction executes only in lanes where the
     *  guard holds (negated when guardNeg). kNoPred = unguarded. */
    PredIdx guard = kNoPred;
    bool guardNeg = false;

    /** Special register selector for S2R. */
    SReg sreg = SReg::Tid;

    /** Branch target PC (BRA/JMP). */
    int target = -1;
    /** Reconvergence PC (BRA); -1 for JMP (never diverges). */
    int reconv = -1;

    /** Number of vector source registers actually read. */
    unsigned
    numSrcRegs() const
    {
        unsigned n = traits(op).numSrcs;
        // An explicit immediate operand replaces the last register
        // source (MOV imm has none left). Memory offsets use the imm
        // field without setting hasImm.
        if (hasImm && n >= 1)
            --n;
        return n;
    }

    /** True when the op writes a vector destination register. */
    bool writesDst() const { return traits(op).writesDst; }

    /** Pipeline this instruction dispatches to. */
    PipeClass pipe() const { return traits(op).pipe; }

    /** Human-readable disassembly. */
    std::string toString() const;
};

} // namespace gs

#endif // GSCALAR_ISA_INSTRUCTION_HPP
