/**
 * @file
 * The mini SIMT instruction set used by all workloads. Opcode traits
 * (pipeline class, latency class, relative execution energy) drive both
 * the timing and the power model.
 */

#ifndef GSCALAR_ISA_OPCODE_HPP
#define GSCALAR_ISA_OPCODE_HPP

#include <cstdint>
#include <string_view>

namespace gs
{

/** Execution pipeline an instruction dispatches to (§2.1). */
enum class PipeClass : std::uint8_t
{
    ALU,  ///< 16-lane arithmetic/logic pipelines (2 per SM)
    SFU,  ///< 4-lane special-function pipeline
    MEM,  ///< 16-lane memory pipeline
    CTRL, ///< branches, barriers, exit (handled at issue)
};

/** Result-latency class, priced in cycles by ArchConfig. */
enum class LatClass : std::uint8_t
{
    Simple, ///< int add/logic/mov and fp add/mul
    Mul,    ///< integer multiply, fused multiply-add
    Div,    ///< microcoded integer divide/remainder
    Sfu,    ///< transcendental
    Mem,    ///< variable (cache hierarchy)
    Ctrl,   ///< no register result
};

/** All opcodes of the mini ISA. */
enum class Opcode : std::uint8_t
{
    // integer ALU
    IADD, ISUB, IMUL, IMAD, IDIV, IREM, IMIN, IMAX, IABS,
    AND, OR, XOR, NOT, SHL, SHR,
    // floating-point ALU
    FADD, FSUB, FMUL, FFMA, FMIN, FMAX, FABS, FNEG,
    // data movement / conversion
    MOV, SEL, I2F, F2I,
    // predicate-setting compares
    ISETP, FSETP,
    // special function (SFU pipeline)
    SIN, COS, EX2, LG2, RCP, RSQ, SQRT,
    // memory
    LDG, STG, LDS, STS,
    // control
    BRA, JMP, BAR, EXIT,
    // special registers
    S2R,
    // hardware-inserted decompress-in-place move (§3.3)
    SMOV,

    NumOpcodes,
};

/** Comparison operator for ISETP/FSETP and the builder's branches. */
enum class CmpOp : std::uint8_t
{
    EQ, NE, LT, LE, GT, GE,
};

/** Special registers readable via S2R. */
enum class SReg : std::uint8_t
{
    Tid,    ///< linear thread index within the CTA (per-lane value)
    CtaId,  ///< linear CTA index within the grid (warp-uniform)
    NTid,   ///< threads per CTA (grid-constant)
    NCtaId, ///< CTAs in the grid (grid-constant)
    LaneId, ///< lane index within the warp (per-lane value)
    WarpId, ///< warp index within the CTA (warp-uniform)
};

/** Static per-opcode properties. */
struct OpcodeTraits
{
    std::string_view name;
    PipeClass pipe;
    LatClass lat;
    /** Number of vector-register sources read. */
    std::uint8_t numSrcs;
    /** True when the op writes a vector destination register. */
    bool writesDst;
    /**
     * Dynamic execution energy per active lane in units of one FP32
     * operation (GPUWattch-style relative costs; SFU ops fall in the
     * paper's 3-24x band).
     */
    double energyUnits;
};

/** Look up traits for @p op. */
const OpcodeTraits &traits(Opcode op);

/** Short mnemonic. */
inline std::string_view opcodeName(Opcode op) { return traits(op).name; }

/** Mnemonic for a comparison operator. */
std::string_view cmpName(CmpOp c);

/** Mnemonic for a special register. */
std::string_view sregName(SReg s);

/** True for LDG/LDS (register-writing memory loads). */
inline bool
isLoad(Opcode op)
{
    return op == Opcode::LDG || op == Opcode::LDS;
}

/** True for STG/STS. */
inline bool
isStore(Opcode op)
{
    return op == Opcode::STG || op == Opcode::STS;
}

/** True for global-memory ops that traverse the cache hierarchy. */
inline bool
isGlobalMem(Opcode op)
{
    return op == Opcode::LDG || op == Opcode::STG;
}

} // namespace gs

#endif // GSCALAR_ISA_OPCODE_HPP
