/**
 * @file
 * Compile-time kernel analyses used by the paper's compiler-assisted
 * techniques:
 *
 *  - **Static uniformity (divergence) analysis** in the style of
 *    Coutinho et al. [10] / Lee et al. [31]: which registers provably
 *    hold one value per warp regardless of input data. Loads are never
 *    statically uniform — exactly the limitation §6 cites when
 *    reporting that the compiler-assisted method captured 24 % fewer
 *    scalar instructions than G-Scalar's dynamic detection.
 *
 *  - **Old-value liveness at divergent writes** (§3.3): when the value
 *    a divergent instruction partially overwrites is provably dead, the
 *    hardware may skip the special decompress-in-place move, reducing
 *    its ~2 % dynamic-instruction overhead further.
 */

#ifndef GSCALAR_ISA_ANALYSIS_HPP
#define GSCALAR_ISA_ANALYSIS_HPP

#include <vector>

#include "kernel.hpp"

namespace gs
{

/** Results of the static kernel analyses, indexed by PC. */
struct KernelAnalysis
{
    /** Registers whose every write is provably warp-uniform. */
    std::vector<bool> uniformReg;
    /** Predicates that are provably warp-uniform. */
    std::vector<bool> uniformPred;
    /**
     * Instruction provably executes with a full warp (every enclosing
     * branch/loop predicate is uniform and it carries no non-uniform
     * guard).
     */
    std::vector<bool> convergent;
    /**
     * Instruction a static scalarizing compiler would mark scalar:
     * convergent, writes or computes from uniform registers only.
     */
    std::vector<bool> staticScalar;
    /**
     * For instructions that may perform a divergent (partial) register
     * write: the destination's previous value is dead afterwards, so
     * the §3.3 special move can be elided.
     */
    std::vector<bool> oldValueDead;
};

/**
 * Run all analyses. Uses Kernel::enclosingPreds (recorded by the
 * builder) for control-dependence and a backward liveness pass over the
 * CFG for old-value deadness. Conservative in the required direction:
 * "uniform"/"dead" are only claimed when provable.
 */
KernelAnalysis analyzeKernel(const Kernel &kernel);

/** True when @p s reads one value per warp (compile-time knowable). */
bool sregIsUniformStatic(SReg s);

} // namespace gs

#endif // GSCALAR_ISA_ANALYSIS_HPP
