#include "kernel_builder.hpp"

#include <bit>

#include "common/log.hpp"

namespace gs
{

KernelBuilder::KernelBuilder(std::string name) : name_(std::move(name)) {}

Reg
KernelBuilder::reg()
{
    return Reg{static_cast<RegIdx>(numRegs_++)};
}

Pred
KernelBuilder::pred()
{
    return Pred{static_cast<PredIdx>(numPreds_++)};
}

unsigned
KernelBuilder::shared(unsigned bytes)
{
    const unsigned base = sharedBytes_;
    // Keep 4-byte alignment for word-granular LDS/STS.
    sharedBytes_ += (bytes + 3u) & ~3u;
    return base;
}

Instruction &
KernelBuilder::push(Instruction inst)
{
    GS_ASSERT(!built_, "kernel '", name_, "' already built");
    if (inst.guard == kNoPred && guard_ != kNoPred) {
        inst.guard = guard_;
        inst.guardNeg = guardNeg_;
    }
    code_.push_back(inst);
    scopes_.emplace_back();
    return code_.back();
}

void
KernelBuilder::markEnclosed(int from, int to, Pred p)
{
    for (int i = from; i < to; ++i)
        scopes_[std::size_t(i)].push_back(p.idx);
}

void
KernelBuilder::addRegion(int from, int to, int check_pc)
{
    regions_.push_back({from, to, check_pc});
}

void
KernelBuilder::s2r(Reg d, SReg s)
{
    Instruction i;
    i.op = Opcode::S2R;
    i.dst = d.idx;
    i.sreg = s;
    push(i);
}

void
KernelBuilder::movi(Reg d, Word imm)
{
    Instruction i;
    i.op = Opcode::MOV;
    i.dst = d.idx;
    i.imm = imm;
    i.hasImm = true;
    push(i);
}

void
KernelBuilder::movf(Reg d, float f)
{
    movi(d, std::bit_cast<Word>(f));
}

void
KernelBuilder::mov(Reg d, Reg s)
{
    Instruction i;
    i.op = Opcode::MOV;
    i.dst = d.idx;
    i.src[0] = s.idx;
    push(i);
}

void
KernelBuilder::emit2(Opcode op, Reg d, Reg a, Reg b)
{
    Instruction i;
    i.op = op;
    i.dst = d.idx;
    i.src[0] = a.idx;
    i.src[1] = b.idx;
    push(i);
}

void
KernelBuilder::emit2i(Opcode op, Reg d, Reg a, Word imm)
{
    Instruction i;
    i.op = op;
    i.dst = d.idx;
    i.src[0] = a.idx;
    i.imm = imm;
    i.hasImm = true;
    push(i);
}

void
KernelBuilder::emit1(Opcode op, Reg d, Reg a)
{
    Instruction i;
    i.op = op;
    i.dst = d.idx;
    i.src[0] = a.idx;
    push(i);
}

void
KernelBuilder::emit3(Opcode op, Reg d, Reg a, Reg b, Reg c)
{
    Instruction i;
    i.op = op;
    i.dst = d.idx;
    i.src[0] = a.idx;
    i.src[1] = b.idx;
    i.src[2] = c.idx;
    push(i);
}

void
KernelBuilder::isetp(Pred p, CmpOp c, Reg a, Reg b)
{
    Instruction i;
    i.op = Opcode::ISETP;
    i.pdst = p.idx;
    i.cmp = c;
    i.src[0] = a.idx;
    i.src[1] = b.idx;
    push(i);
}

void
KernelBuilder::isetpi(Pred p, CmpOp c, Reg a, Word imm)
{
    Instruction i;
    i.op = Opcode::ISETP;
    i.pdst = p.idx;
    i.cmp = c;
    i.src[0] = a.idx;
    i.imm = imm;
    i.hasImm = true;
    push(i);
}

void
KernelBuilder::fsetp(Pred p, CmpOp c, Reg a, Reg b)
{
    Instruction i;
    i.op = Opcode::FSETP;
    i.pdst = p.idx;
    i.cmp = c;
    i.src[0] = a.idx;
    i.src[1] = b.idx;
    push(i);
}

void
KernelBuilder::fsetpf(Pred p, CmpOp c, Reg a, float imm)
{
    Instruction i;
    i.op = Opcode::FSETP;
    i.pdst = p.idx;
    i.cmp = c;
    i.src[0] = a.idx;
    i.imm = std::bit_cast<Word>(imm);
    i.hasImm = true;
    push(i);
}

void
KernelBuilder::sel(Reg d, Pred p, Reg a, Reg b)
{
    Instruction i;
    i.op = Opcode::SEL;
    i.dst = d.idx;
    i.psrc = p.idx;
    i.src[0] = a.idx;
    i.src[1] = b.idx;
    push(i);
}

void
KernelBuilder::ldg(Reg d, Reg addr, Word off)
{
    Instruction i;
    i.op = Opcode::LDG;
    i.dst = d.idx;
    i.src[0] = addr.idx;
    i.imm = off;
    push(i);
}

void
KernelBuilder::stg(Reg addr, Reg val, Word off)
{
    Instruction i;
    i.op = Opcode::STG;
    i.src[0] = addr.idx;
    i.src[1] = val.idx;
    i.imm = off;
    push(i);
}

void
KernelBuilder::lds(Reg d, Reg addr, Word off)
{
    Instruction i;
    i.op = Opcode::LDS;
    i.dst = d.idx;
    i.src[0] = addr.idx;
    i.imm = off;
    push(i);
}

void
KernelBuilder::sts(Reg addr, Reg val, Word off)
{
    Instruction i;
    i.op = Opcode::STS;
    i.src[0] = addr.idx;
    i.src[1] = val.idx;
    i.imm = off;
    push(i);
}

void
KernelBuilder::bar()
{
    Instruction i;
    i.op = Opcode::BAR;
    push(i);
}

void
KernelBuilder::ifThen(Pred p, const std::function<void()> &then_body)
{
    GS_ASSERT(guard_ == kNoPred, "control flow inside predicated region");
    // Lanes where p is FALSE branch over the body.
    Instruction bra;
    bra.op = Opcode::BRA;
    bra.guard = p.idx;
    bra.guardNeg = true;
    const int bra_pc = here();
    push(bra);
    then_body();
    const int end = here();
    code_[bra_pc].target = end;
    code_[bra_pc].reconv = end;
    markEnclosed(bra_pc + 1, end, p);
    addRegion(bra_pc + 1, end, end);
}

void
KernelBuilder::ifNotThen(Pred p, const std::function<void()> &then_body)
{
    GS_ASSERT(guard_ == kNoPred, "control flow inside predicated region");
    Instruction bra;
    bra.op = Opcode::BRA;
    bra.guard = p.idx;
    bra.guardNeg = false; // lanes where p TRUE skip the body
    const int bra_pc = here();
    push(bra);
    then_body();
    const int end = here();
    code_[bra_pc].target = end;
    code_[bra_pc].reconv = end;
    markEnclosed(bra_pc + 1, end, p);
    addRegion(bra_pc + 1, end, end);
}

void
KernelBuilder::ifElse(Pred p, const std::function<void()> &then_body,
                      const std::function<void()> &else_body)
{
    GS_ASSERT(guard_ == kNoPred, "control flow inside predicated region");
    Instruction bra;
    bra.op = Opcode::BRA;
    bra.guard = p.idx;
    bra.guardNeg = true; // !p lanes go to the else block
    const int bra_pc = here();
    push(bra);

    then_body();

    Instruction jmp;
    jmp.op = Opcode::JMP;
    const int jmp_pc = here();
    push(jmp);

    const int else_start = here();
    else_body();
    const int end = here();

    code_[bra_pc].target = else_start;
    code_[bra_pc].reconv = end;
    code_[jmp_pc].target = end;
    markEnclosed(bra_pc + 1, end, p);
    // Lanes skipping the then arm execute the else arm, and vice versa.
    addRegion(bra_pc + 1, else_start, else_start);
    addRegion(else_start, end, end);
}

void
KernelBuilder::loopWhile(const std::function<Pred()> &cond,
                         const std::function<void()> &body)
{
    GS_ASSERT(guard_ == kNoPred, "control flow inside predicated region");
    const int loop_start = here();
    const Pred p = cond();

    // Lanes where the continuation predicate is FALSE exit the loop.
    Instruction bra;
    bra.op = Opcode::BRA;
    bra.guard = p.idx;
    bra.guardNeg = true;
    const int exit_bra = here();
    push(bra);

    body();

    Instruction jmp;
    jmp.op = Opcode::JMP;
    jmp.target = loop_start;
    push(jmp);

    const int exit_pc = here();
    code_[exit_bra].target = exit_pc;
    code_[exit_bra].reconv = exit_pc;
    // The whole loop region (condition included) runs under the
    // continuation predicate once any lane has left the loop.
    markEnclosed(loop_start, exit_pc, p);
    addRegion(loop_start, exit_pc, exit_pc);
}

void
KernelBuilder::forRange(Reg idx, Word start, Reg bound,
                        const std::function<void()> &body)
{
    movi(idx, start);
    const Pred p = pred();
    loopWhile(
        [&] {
            isetp(p, CmpOp::LT, idx, bound);
            return p;
        },
        [&] {
            body();
            iaddi(idx, idx, 1);
        });
}

void
KernelBuilder::forRangeI(Reg idx, Word start, Word bound,
                         const std::function<void()> &body)
{
    movi(idx, start);
    const Pred p = pred();
    loopWhile(
        [&] {
            isetpi(p, CmpOp::LT, idx, bound);
            return p;
        },
        [&] {
            body();
            iaddi(idx, idx, 1);
        });
}

void
KernelBuilder::predicated(Pred p, bool neg,
                          const std::function<void()> &body)
{
    GS_ASSERT(guard_ == kNoPred, "nested predicated regions");
    guard_ = p.idx;
    guardNeg_ = neg;
    body();
    guard_ = kNoPred;
    guardNeg_ = false;
}

Kernel
KernelBuilder::build()
{
    GS_ASSERT(!built_, "kernel '", name_, "' already built");
    Instruction exit_inst;
    exit_inst.op = Opcode::EXIT;
    push(exit_inst);
    built_ = true;

    Kernel k;
    k.name = std::move(name_);
    k.code = std::move(code_);
    k.numRegs = numRegs_;
    k.numPreds = numPreds_;
    k.sharedBytes = sharedBytes_;
    k.enclosingPreds = std::move(scopes_);
    k.regions = std::move(regions_);
    k.validate();
    return k;
}

} // namespace gs
