#include <sstream>

#include "instruction.hpp"

namespace gs
{

namespace
{

std::string
regName(RegIdx r)
{
    return r == kNoReg ? std::string("_") : "r" + std::to_string(r);
}

std::string
predName(PredIdx p)
{
    return p == kNoPred ? std::string("_") : "p" + std::to_string(p);
}

} // namespace

std::string
Instruction::toString() const
{
    std::ostringstream os;
    if (guard != kNoPred)
        os << "@" << (guardNeg ? "!" : "") << predName(guard) << " ";
    os << opcodeName(op);

    switch (op) {
      case Opcode::BRA:
        os << " " << "-> " << target << " (reconv " << reconv << ")";
        break;
      case Opcode::JMP:
        os << " -> " << target;
        break;
      case Opcode::BAR:
      case Opcode::EXIT:
        break;
      case Opcode::S2R:
        os << " " << regName(dst) << ", %" << sregName(sreg);
        break;
      case Opcode::ISETP:
      case Opcode::FSETP:
        os << "." << cmpName(cmp) << " " << predName(pdst) << ", "
           << regName(src[0]) << ", ";
        if (hasImm)
            os << "0x" << std::hex << imm << std::dec;
        else
            os << regName(src[1]);
        break;
      case Opcode::STG:
      case Opcode::STS:
        os << " [" << regName(src[0]) << "+" << imm << "], "
           << regName(src[1]);
        break;
      case Opcode::LDG:
      case Opcode::LDS:
        os << " " << regName(dst) << ", [" << regName(src[0]) << "+" << imm
           << "]";
        break;
      case Opcode::SEL:
        os << " " << regName(dst) << ", " << predName(psrc) << ", "
           << regName(src[0]) << ", " << regName(src[1]);
        break;
      default: {
        os << " " << regName(dst);
        const unsigned n = numSrcRegs();
        for (unsigned i = 0; i < n; ++i)
            os << ", " << regName(src[i]);
        if (hasImm)
            os << ", 0x" << std::hex << imm << std::dec;
        break;
      }
    }
    return os.str();
}

} // namespace gs
