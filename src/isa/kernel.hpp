/**
 * @file
 * A kernel: straight-line instruction storage plus resource metadata,
 * and the launch geometry used to instantiate it on the GPU.
 */

#ifndef GSCALAR_ISA_KERNEL_HPP
#define GSCALAR_ISA_KERNEL_HPP

#include <string>
#include <vector>

#include "instruction.hpp"

namespace gs
{

/**
 * A compiled kernel. Instructions are addressed by PC = index into
 * @ref code. Kernels are immutable once built by KernelBuilder.
 */
struct Kernel
{
    std::string name;
    std::vector<Instruction> code;
    /** Architectural vector registers per thread. */
    unsigned numRegs = 0;
    /** Predicate registers per thread. */
    unsigned numPreds = 0;
    /** Shared memory bytes per CTA. */
    unsigned sharedBytes = 0;
    /**
     * Control-dependence record per instruction: the predicates of
     * every enclosing if/else or loop construct (recorded by the
     * builder; used by the static analyses). Empty when no structured
     * construct encloses the instruction.
     */
    std::vector<std::vector<PredIdx>> enclosingPreds;

    /**
     * One structured-control-flow arm: instructions [start, end) run
     * under a partial mask; the lanes *not* running the arm resume at
     * @ref checkPc (the sibling arm for if/else, otherwise the
     * reconvergence point). Liveness for special-move elision (§3.3)
     * must prove the overwritten value dead at every enclosing arm's
     * checkPc.
     */
    struct Region
    {
        int start = 0;
        int end = 0;
        int checkPc = 0;
    };
    std::vector<Region> regions;

    /** Disassemble the whole kernel. */
    std::string disassemble() const;

    /**
     * First structural error, or an empty string when the kernel is
     * well formed. Non-fatal form of validate() for callers that must
     * survive malformed code (the fuzz minimizer probing candidate
     * kernels, artifact deserialization of hostile files).
     */
    std::string check() const;

    /** Structural sanity checks; GS_FATAL on malformed code. */
    void validate() const;
};

/** Launch geometry for one kernel invocation. */
struct LaunchDims
{
    unsigned ctas = 1;          ///< CTAs in the grid (1-D)
    unsigned threadsPerCta = 32; ///< threads per CTA (1-D)
};

} // namespace gs

#endif // GSCALAR_ISA_KERNEL_HPP
