/**
 * @file
 * Structured kernel builder. Workloads author kernels through this API;
 * it allocates registers, emits instructions, and — crucially for the
 * SIMT stack — computes immediate-post-dominator reconvergence PCs for
 * all structured control flow (if/else and loops).
 */

#ifndef GSCALAR_ISA_KERNEL_BUILDER_HPP
#define GSCALAR_ISA_KERNEL_BUILDER_HPP

#include <functional>
#include <string>

#include "kernel.hpp"

namespace gs
{

/** Strongly-typed handle to a vector register. */
struct Reg
{
    RegIdx idx = kNoReg;
    explicit operator bool() const { return idx != kNoReg; }
};

/** Strongly-typed handle to a predicate register. */
struct Pred
{
    PredIdx idx = kNoPred;
    explicit operator bool() const { return idx != kNoPred; }
};

/**
 * Builds one Kernel. All emission helpers append to the instruction
 * stream in order. Control-flow helpers take callables that emit the
 * nested bodies.
 */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name);

    // ---- resources --------------------------------------------------------
    /** Allocate a fresh vector register. */
    Reg reg();
    /** Allocate a fresh predicate register. */
    Pred pred();
    /** Reserve @p bytes of per-CTA shared memory; returns base offset. */
    unsigned shared(unsigned bytes);

    // ---- straight-line emission -------------------------------------------
    void s2r(Reg d, SReg s);
    void movi(Reg d, Word imm);
    /** Move a float immediate (bit pattern of @p f). */
    void movf(Reg d, float f);
    void mov(Reg d, Reg s);

    /** Generic two-source ALU/SFU op: d <- a op b. */
    void emit2(Opcode op, Reg d, Reg a, Reg b);
    /** Two-source op with immediate second operand: d <- a op imm. */
    void emit2i(Opcode op, Reg d, Reg a, Word imm);
    /** One-source op (NOT, IABS, FABS, FNEG, I2F, F2I, SFU ops). */
    void emit1(Opcode op, Reg d, Reg a);
    /** Three-source op (IMAD, FFMA): d <- a * b + c. */
    void emit3(Opcode op, Reg d, Reg a, Reg b, Reg c);

    // Convenience wrappers for the common ops.
    void iadd(Reg d, Reg a, Reg b) { emit2(Opcode::IADD, d, a, b); }
    void iaddi(Reg d, Reg a, Word i) { emit2i(Opcode::IADD, d, a, i); }
    void isub(Reg d, Reg a, Reg b) { emit2(Opcode::ISUB, d, a, b); }
    void imul(Reg d, Reg a, Reg b) { emit2(Opcode::IMUL, d, a, b); }
    void imuli(Reg d, Reg a, Word i) { emit2i(Opcode::IMUL, d, a, i); }
    void imad(Reg d, Reg a, Reg b, Reg c) { emit3(Opcode::IMAD, d, a, b, c); }
    void idiv(Reg d, Reg a, Reg b) { emit2(Opcode::IDIV, d, a, b); }
    void shli(Reg d, Reg a, Word i) { emit2i(Opcode::SHL, d, a, i); }
    void shri(Reg d, Reg a, Word i) { emit2i(Opcode::SHR, d, a, i); }
    void andi(Reg d, Reg a, Word i) { emit2i(Opcode::AND, d, a, i); }
    void fadd(Reg d, Reg a, Reg b) { emit2(Opcode::FADD, d, a, b); }
    void fsub(Reg d, Reg a, Reg b) { emit2(Opcode::FSUB, d, a, b); }
    void fmul(Reg d, Reg a, Reg b) { emit2(Opcode::FMUL, d, a, b); }
    void ffma(Reg d, Reg a, Reg b, Reg c) { emit3(Opcode::FFMA, d, a, b, c); }

    /** pdst <- a cmp b (integer compare; signed). */
    void isetp(Pred p, CmpOp c, Reg a, Reg b);
    /** pdst <- a cmp imm (integer compare; signed). */
    void isetpi(Pred p, CmpOp c, Reg a, Word imm);
    /** pdst <- a cmp b (float compare). */
    void fsetp(Pred p, CmpOp c, Reg a, Reg b);
    /** pdst <- a cmp imm-float. */
    void fsetpf(Pred p, CmpOp c, Reg a, float imm);

    /** d <- psrc ? a : b. */
    void sel(Reg d, Pred p, Reg a, Reg b);

    /** Global load: d <- mem[addr + off]. */
    void ldg(Reg d, Reg addr, Word off = 0);
    /** Global store: mem[addr + off] <- val. */
    void stg(Reg addr, Reg val, Word off = 0);
    /** Shared-memory load. */
    void lds(Reg d, Reg addr, Word off = 0);
    /** Shared-memory store. */
    void sts(Reg addr, Reg val, Word off = 0);

    /** CTA-wide barrier. */
    void bar();

    // ---- structured control flow -------------------------------------------
    /** if (p) { then() } — reconverges right after the body. */
    void ifThen(Pred p, const std::function<void()> &then_body);
    /** if (!p) { then() }. */
    void ifNotThen(Pred p, const std::function<void()> &then_body);
    /** if (p) { then() } else { else() }. */
    void ifElse(Pred p, const std::function<void()> &then_body,
                const std::function<void()> &else_body);
    /**
     * while (cond()) { body() }. @p cond emits code computing the
     * continuation predicate and returns it; lanes whose predicate is
     * false exit to the reconvergence point after the loop.
     */
    void loopWhile(const std::function<Pred()> &cond,
                   const std::function<void()> &body);
    /**
     * Counted loop: for (idx = start; idx < bound_reg; ++idx) body().
     * @p idx must be a register the body does not clobber.
     */
    void forRange(Reg idx, Word start, Reg bound,
                  const std::function<void()> &body);
    /** Counted loop with an immediate bound. */
    void forRangeI(Reg idx, Word start, Word bound,
                   const std::function<void()> &body);

    /**
     * Emit the instructions produced by @p body under guard predicate
     * @p p (negated when @p neg): lanes where the guard fails are
     * inactive for those instructions. Bodies must be straight-line.
     */
    void predicated(Pred p, bool neg, const std::function<void()> &body);

    // ---- finalization --------------------------------------------------------
    /** Append EXIT, validate and return the kernel. Builder is spent. */
    Kernel build();

    /** Current PC (next instruction index). */
    int here() const { return static_cast<int>(code_.size()); }

  private:
    Instruction &push(Instruction inst);
    /** Record @p p as enclosing predicate of instructions [from, to). */
    void markEnclosed(int from, int to, Pred p);
    /** Record a structured arm [from, to) whose inactive lanes resume
     *  at @p check_pc. */
    void addRegion(int from, int to, int check_pc);

    std::string name_;
    std::vector<Instruction> code_;
    std::vector<std::vector<PredIdx>> scopes_;
    std::vector<Kernel::Region> regions_;
    unsigned numRegs_ = 0;
    unsigned numPreds_ = 0;
    unsigned sharedBytes_ = 0;
    PredIdx guard_ = kNoPred;
    bool guardNeg_ = false;
    bool built_ = false;
};

} // namespace gs

#endif // GSCALAR_ISA_KERNEL_BUILDER_HPP
