#include "simt_stack.hpp"

#include "common/log.hpp"

namespace gs
{

void
SimtStack::reset(int pc, LaneMask mask)
{
    stack_.clear();
    stack_.push_back({pc, mask, -1});
}

int
SimtStack::pc() const
{
    GS_ASSERT(!stack_.empty(), "pc() on exited warp");
    return stack_.back().pc;
}

LaneMask
SimtStack::activeMask() const
{
    GS_ASSERT(!stack_.empty(), "activeMask() on exited warp");
    return stack_.back().mask;
}

void
SimtStack::popConverged()
{
    while (!stack_.empty() && stack_.back().reconv >= 0 &&
           stack_.back().pc == stack_.back().reconv) {
        stack_.pop_back();
    }
}

void
SimtStack::advance(int next_pc)
{
    GS_ASSERT(!stack_.empty(), "advance() on exited warp");
    stack_.back().pc = next_pc;
    popConverged();
}

void
SimtStack::jump(int target)
{
    GS_ASSERT(!stack_.empty(), "jump() on exited warp");
    stack_.back().pc = target;
    popConverged();
}

void
SimtStack::branch(LaneMask taken, int target, int fallthrough, int reconv)
{
    GS_ASSERT(!stack_.empty(), "branch() on exited warp");
    Entry &top = stack_.back();
    const LaneMask mask = top.mask;
    const LaneMask not_taken = mask & ~taken;
    GS_ASSERT((taken & ~mask) == 0, "taken lanes outside active mask");

    if (taken == 0) {
        advance(fallthrough);
        return;
    }
    if (not_taken == 0) {
        jump(target);
        return;
    }

    // Divergence: the current entry becomes the reconvergence entry; the
    // two paths are pushed above it. A path whose start PC already
    // equals the reconvergence point simply waits in the merged entry.
    top.pc = reconv;
    // Keep top.mask: both paths' lanes resume here.
    if (fallthrough != reconv)
        stack_.push_back({fallthrough, not_taken, reconv});
    if (target != reconv)
        stack_.push_back({target, taken, reconv});
    popConverged();
}

void
SimtStack::exit()
{
    GS_ASSERT(!stack_.empty(), "exit() on exited warp");
    GS_ASSERT(stack_.size() == 1,
              "EXIT inside divergent control flow is unsupported");
    stack_.clear();
}

} // namespace gs
