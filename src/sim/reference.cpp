#include "reference.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/log.hpp"

// NOTE: this interpreter intentionally re-implements the instruction
// semantics instead of reusing sim/functional.cpp — an independent
// implementation is what makes differential testing meaningful.

namespace gs
{

namespace
{

float
f32(Word w)
{
    return std::bit_cast<float>(w);
}

Word
w32(float f)
{
    return std::bit_cast<Word>(f);
}

std::int32_t
i32(Word w)
{
    return std::int32_t(w);
}

bool
compareInt(CmpOp c, std::int32_t a, std::int32_t b)
{
    switch (c) {
      case CmpOp::EQ: return a == b;
      case CmpOp::NE: return a != b;
      case CmpOp::LT: return a < b;
      case CmpOp::LE: return a <= b;
      case CmpOp::GT: return a > b;
      case CmpOp::GE: return a >= b;
    }
    return false;
}

bool
compareFloat(CmpOp c, float a, float b)
{
    switch (c) {
      case CmpOp::EQ: return a == b;
      case CmpOp::NE: return a != b;
      case CmpOp::LT: return a < b;
      case CmpOp::LE: return a <= b;
      case CmpOp::GT: return a > b;
      case CmpOp::GE: return a >= b;
    }
    return false;
}

/** One thread's architectural state. */
struct Thread
{
    std::vector<Word> regs;
    std::vector<bool> preds;
    int pc = 0;
    bool done = false;
    bool atBarrier = false;
    unsigned tid = 0; ///< thread index within the CTA
};

struct CtaContext
{
    unsigned ctaId = 0;
    unsigned nTid = 0;
    unsigned nCtaId = 0;
    unsigned warpSizeForIds = 32;
};

Word
readSreg(SReg s, const Thread &t, const CtaContext &c)
{
    switch (s) {
      case SReg::Tid: return t.tid;
      case SReg::CtaId: return c.ctaId;
      case SReg::NTid: return c.nTid;
      case SReg::NCtaId: return c.nCtaId;
      case SReg::LaneId: return t.tid % c.warpSizeForIds;
      case SReg::WarpId: return t.tid / c.warpSizeForIds;
    }
    return 0;
}

/**
 * Execute one instruction for one thread. Returns true when the thread
 * should pause (barrier) or finished.
 */
bool
step(Thread &t, const Kernel &k, const CtaContext &c, GlobalMemory &mem,
     std::vector<Word> &shared)
{
    const Instruction &inst = k.code[std::size_t(t.pc)];

    auto predTrue = [&](PredIdx p, bool neg) {
        const bool v = t.preds[std::size_t(p)];
        return neg ? !v : v;
    };
    auto guarded_off = [&] {
        return inst.guard != kNoPred &&
               !predTrue(inst.guard, inst.guardNeg);
    };
    auto src = [&](unsigned i) -> Word {
        if (i == 1 && inst.hasImm)
            return inst.imm;
        return t.regs[std::size_t(inst.src[i])];
    };

    switch (inst.op) {
      case Opcode::EXIT:
        t.done = true;
        return true;
      case Opcode::BAR:
        t.atBarrier = true;
        ++t.pc;
        return true;
      case Opcode::JMP:
        t.pc = inst.target;
        return false;
      case Opcode::BRA: {
        const bool taken =
            inst.guard == kNoPred || predTrue(inst.guard, inst.guardNeg);
        t.pc = taken ? inst.target : t.pc + 1;
        return false;
      }
      default:
        break;
    }

    if (guarded_off()) {
        ++t.pc;
        return false;
    }

    // Exhaustive over the opcode table — no default case, so adding an
    // opcode without teaching the oracle about it is a compile error
    // (-Wswitch), never a runtime abort inside a fuzz campaign.
    Word r = 0;
    bool writes = inst.writesDst();
    switch (inst.op) {
      case Opcode::S2R: r = readSreg(inst.sreg, t, c); break;
      case Opcode::MOV: r = inst.hasImm ? inst.imm : src(0); break;
      case Opcode::IADD: r = Word(i32(src(0)) + i32(src(1))); break;
      case Opcode::ISUB: r = Word(i32(src(0)) - i32(src(1))); break;
      case Opcode::IMUL: r = Word(i32(src(0)) * i32(src(1))); break;
      case Opcode::IMAD:
        r = Word(i32(src(0)) * i32(src(1)) +
                 i32(t.regs[std::size_t(inst.src[2])]));
        break;
      case Opcode::IDIV: {
        const std::int32_t a = i32(src(0)), b = i32(src(1));
        r = (b == 0) ? 0
            : (a == INT32_MIN && b == -1) ? Word(a)
                                          : Word(a / b);
        break;
      }
      case Opcode::IREM: {
        const std::int32_t a = i32(src(0)), b = i32(src(1));
        r = (b == 0 || (a == INT32_MIN && b == -1)) ? 0 : Word(a % b);
        break;
      }
      case Opcode::IMIN: r = Word(std::min(i32(src(0)), i32(src(1)))); break;
      case Opcode::IMAX: r = Word(std::max(i32(src(0)), i32(src(1)))); break;
      case Opcode::IABS: r = Word(std::abs(i32(src(0)))); break;
      case Opcode::AND: r = src(0) & src(1); break;
      case Opcode::OR: r = src(0) | src(1); break;
      case Opcode::XOR: r = src(0) ^ src(1); break;
      case Opcode::NOT: r = ~src(0); break;
      case Opcode::SHL: r = src(0) << (src(1) & 31); break;
      case Opcode::SHR: r = src(0) >> (src(1) & 31); break;
      case Opcode::FADD: r = w32(f32(src(0)) + f32(src(1))); break;
      case Opcode::FSUB: r = w32(f32(src(0)) - f32(src(1))); break;
      case Opcode::FMUL: r = w32(f32(src(0)) * f32(src(1))); break;
      case Opcode::FFMA:
        r = w32(f32(src(0)) * f32(src(1)) +
                f32(t.regs[std::size_t(inst.src[2])]));
        break;
      case Opcode::FMIN: r = w32(std::fmin(f32(src(0)), f32(src(1)))); break;
      case Opcode::FMAX: r = w32(std::fmax(f32(src(0)), f32(src(1)))); break;
      case Opcode::FABS: r = w32(std::fabs(f32(src(0)))); break;
      case Opcode::FNEG: r = w32(-f32(src(0))); break;
      case Opcode::I2F: r = w32(float(i32(src(0)))); break;
      case Opcode::F2I: {
        const float f = f32(src(0));
        r = !(f == f)                  ? 0
            : (f >= 2147483648.0f)     ? Word(INT32_MAX)
            : (f <= -2147483904.0f)    ? Word(INT32_MIN)
                                       : Word(std::int32_t(f));
        break;
      }
      case Opcode::SIN: r = w32(std::sin(f32(src(0)))); break;
      case Opcode::COS: r = w32(std::cos(f32(src(0)))); break;
      case Opcode::EX2: r = w32(std::exp2(f32(src(0)))); break;
      case Opcode::LG2:
        r = w32(f32(src(0)) > 0 ? std::log2(f32(src(0))) : 0.0f);
        break;
      case Opcode::RCP:
        r = w32(f32(src(0)) == 0 ? 0.0f : 1.0f / f32(src(0)));
        break;
      case Opcode::RSQ:
        r = w32(f32(src(0)) > 0 ? 1.0f / std::sqrt(f32(src(0))) : 0.0f);
        break;
      case Opcode::SQRT:
        r = w32(f32(src(0)) >= 0 ? std::sqrt(f32(src(0))) : 0.0f);
        break;
      case Opcode::SEL:
        r = t.preds[std::size_t(inst.psrc)] ? src(0) : src(1);
        break;
      case Opcode::ISETP:
        t.preds[std::size_t(inst.pdst)] =
            compareInt(inst.cmp, i32(src(0)), i32(src(1)));
        writes = false;
        break;
      case Opcode::FSETP:
        t.preds[std::size_t(inst.pdst)] =
            compareFloat(inst.cmp, f32(src(0)), f32(src(1)));
        writes = false;
        break;
      case Opcode::LDG:
        r = mem.readWord((Addr(src(0)) + inst.imm) & ~Addr{3});
        break;
      case Opcode::STG:
        mem.writeWord((Addr(src(0)) + inst.imm) & ~Addr{3},
                      t.regs[std::size_t(inst.src[1])]);
        break;
      case Opcode::LDS: {
        const Addr a = Addr(src(0)) + inst.imm;
        r = shared.empty()
                ? 0
                : shared[std::size_t(a / kBytesPerWord) % shared.size()];
        break;
      }
      case Opcode::STS: {
        const Addr a = Addr(src(0)) + inst.imm;
        if (!shared.empty())
            shared[std::size_t(a / kBytesPerWord) % shared.size()] =
                t.regs[std::size_t(inst.src[1])];
        break;
      }
      case Opcode::SMOV:
        // Decompress-in-place: per thread this is the identity on the
        // destination register (the mask games only exist on the SIMT
        // side).
        r = t.regs[std::size_t(inst.src[0])];
        break;
      case Opcode::EXIT:
      case Opcode::BAR:
      case Opcode::JMP:
      case Opcode::BRA:
      case Opcode::NumOpcodes:
        // Control flow dispatched above; NumOpcodes is the table size,
        // not an instruction — Kernel::check() rejects kernels that
        // carry it before they reach any interpreter.
        break;
    }

    if (writes)
        t.regs[std::size_t(inst.dst)] = r;
    ++t.pc;
    return false;
}

} // namespace

bool
referenceExecuteBounded(const Kernel &kernel, LaunchDims dims,
                        GlobalMemory &mem, std::uint64_t maxSteps)
{
    GS_ASSERT(kernel.check().empty(), "reference: malformed kernel");
    std::uint64_t steps = 0;
    for (unsigned cta = 0; cta < dims.ctas; ++cta) {
        CtaContext ctx;
        ctx.ctaId = cta;
        ctx.nTid = dims.threadsPerCta;
        ctx.nCtaId = dims.ctas;

        std::vector<Word> shared(
            std::max(kernel.sharedBytes / kBytesPerWord, 1u), 0);

        std::vector<Thread> threads(dims.threadsPerCta);
        for (unsigned i = 0; i < dims.threadsPerCta; ++i) {
            threads[i].tid = i;
            threads[i].regs.assign(kernel.numRegs, 0);
            threads[i].preds.assign(std::max(kernel.numPreds, 1u),
                                    false);
        }

        // Barrier-phase execution: every live thread runs to its next
        // BAR (or EXIT); then all barriers release together.
        bool all_done = false;
        while (!all_done) {
            all_done = true;
            for (Thread &t : threads) {
                if (t.done)
                    continue;
                all_done = false;
                while (!t.done && !t.atBarrier) {
                    if (maxSteps != 0 && ++steps > maxSteps)
                        return false;
                    step(t, kernel, ctx, mem, shared);
                }
            }
            for (Thread &t : threads)
                t.atBarrier = false;
        }
    }
    return true;
}

void
referenceExecute(const Kernel &kernel, LaunchDims dims, GlobalMemory &mem)
{
    kernel.validate();
    referenceExecuteBounded(kernel, dims, mem, 0);
}

} // namespace gs
