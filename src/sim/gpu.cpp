#include "gpu.hpp"

#include <vector>

#include "common/log.hpp"
#include "sm.hpp"

namespace gs
{

Gpu::Gpu(const ArchConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
}

EventCounts
Gpu::launch(const Kernel &kernel, LaunchDims dims)
{
    kernel.validate();
    if (dims.ctas == 0 || dims.threadsPerCta == 0)
        GS_FATAL("empty launch for kernel '", kernel.name, "'");
    if (dims.threadsPerCta > cfg_.maxThreadsPerSm)
        GS_FATAL("CTA of ", dims.threadsPerCta,
                 " threads exceeds the SM limit");

    MemorySystem memsys(cfg_);
    CtaDispatcher dispatcher(dims.ctas);
    const KernelAnalysis analysis = analyzeKernel(kernel);

    std::vector<std::unique_ptr<Sm>> sms;
    sms.reserve(cfg_.numSms);
    for (unsigned s = 0; s < cfg_.numSms; ++s)
        sms.push_back(std::make_unique<Sm>(cfg_, s, kernel, analysis,
                                           dims, gmem_, memsys,
                                           dispatcher, tracer_));

    Cycle now = 0;
    for (; now < cfg_.maxCycles; ++now) {
        bool all_idle = true;
        for (auto &sm : sms) {
            sm->tick(now);
            all_idle &= sm->idle();
        }
        if (all_idle)
            break;
    }
    if (now >= cfg_.maxCycles)
        GS_WARN("kernel '", kernel.name, "' hit the ", cfg_.maxCycles,
                "-cycle watchdog; results are partial");

    EventCounts total;
    for (auto &sm : sms)
        total += sm->events();
    total.cycles = now + 1;
    return total;
}

} // namespace gs
