#include "gpu.hpp"

#include <algorithm>
#include <vector>

#include "common/log.hpp"
#include "parallel.hpp"
#include "sm.hpp"

namespace gs
{

Gpu::Gpu(const ArchConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
}

EventCounts
Gpu::launch(const Kernel &kernel, LaunchDims dims)
{
    kernel.validate();
    if (dims.ctas == 0 || dims.threadsPerCta == 0)
        GS_FATAL("empty launch for kernel '", kernel.name, "'");
    if (dims.threadsPerCta > cfg_.maxThreadsPerSm)
        GS_FATAL("CTA of ", dims.threadsPerCta,
                 " threads exceeds the SM limit");

    MemorySystem memsys(cfg_);
    CtaDispatcher dispatcher(dims.ctas);
    const KernelAnalysis analysis = analyzeKernel(kernel);

    std::vector<std::unique_ptr<Sm>> sms;
    sms.reserve(cfg_.numSms);
    for (unsigned s = 0; s < cfg_.numSms; ++s)
        sms.push_back(std::make_unique<Sm>(cfg_, s, kernel, analysis,
                                           dims, gmem_, memsys,
                                           dispatcher, tracer_));

    // More threads than SMs buys nothing; a tracer observes the exact
    // serial interleaving, so tracing forces the serial path.
    unsigned threads = std::min<unsigned>(resolveSimThreads(),
                                          cfg_.numSms);
    if (tracer_ != nullptr)
        threads = 1;

    Cycle cycles = 0;
    bool watchdog = false;
    if (threads > 1 && cfg_.maxCycles > 0) {
        std::vector<Sm *> raw;
        raw.reserve(sms.size());
        for (auto &sm : sms) {
            sm->setDeferredGmem(true);
            raw.push_back(sm.get());
        }
        const ParallelLaunchOutcome out =
            runSmsParallel(raw, cfg_.maxCycles, threads, kernel.name);
        cycles = out.cycles;
        watchdog = out.watchdog;
    } else {
        Cycle now = 0;
        for (; now < cfg_.maxCycles; ++now) {
            bool all_idle = true;
            for (auto &sm : sms) {
                sm->tick(now);
                all_idle &= sm->idle();
            }
            if (all_idle)
                break;
        }
        watchdog = now >= cfg_.maxCycles;
        // On a watchdog stop the loop counter has already run past the
        // last simulated cycle; report only cycles actually simulated.
        cycles = watchdog ? cfg_.maxCycles : now + 1;
    }
    if (watchdog)
        GS_WARN("kernel '", kernel.name, "' hit the ", cfg_.maxCycles,
                "-cycle watchdog; results are partial");

    EventCounts total;
    for (auto &sm : sms)
        total += sm->events();
    total.cycles = cycles;
    return total;
}

} // namespace gs
