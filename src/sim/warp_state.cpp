#include "warp_state.hpp"

namespace gs
{

void
WarpState::init(unsigned num_regs, unsigned num_preds, unsigned warp_size,
                unsigned lanes)
{
    GS_ASSERT(lanes > 0 && lanes <= warp_size, "bad lane count ", lanes);
    numRegs_ = num_regs;
    numPreds_ = num_preds;
    warpSize_ = warp_size;
    fullMask_ = laneMaskLow(lanes);

    regs_.assign(std::size_t(num_regs) * warp_size, 0);
    meta_.assign(num_regs, RegMeta{});
    preds_.assign(num_preds, 0);
    stack_.reset(0, fullMask_);
    atBarrier = false;
}

std::span<Word>
WarpState::regValues(RegIdx r)
{
    const unsigned idx = checkReg(r);
    return {regs_.data() + std::size_t(idx) * warpSize_, warpSize_};
}

std::span<const Word>
WarpState::regValues(RegIdx r) const
{
    const unsigned idx = checkReg(r);
    return {regs_.data() + std::size_t(idx) * warpSize_, warpSize_};
}

LaneMask
WarpState::pred(PredIdx p) const
{
    GS_ASSERT(p >= 0 && unsigned(p) < numPreds_, "predicate p", p,
              " out of range");
    return preds_[unsigned(p)];
}

void
WarpState::setPred(PredIdx p, LaneMask lanes_true, LaneMask written)
{
    GS_ASSERT(p >= 0 && unsigned(p) < numPreds_, "predicate p", p,
              " out of range");
    LaneMask &v = preds_[unsigned(p)];
    v = (v & ~written) | (lanes_true & written);
}

} // namespace gs
