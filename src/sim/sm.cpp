#include "sm.hpp"

#include <algorithm>

#include "common/bit_utils.hpp"
#include "common/log.hpp"
#include "compress/byte_mask_codec.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"

namespace gs
{

namespace
{

/** Per-SM shared memory capacity (Fermi configures 48 KB). */
constexpr unsigned kSharedBytesPerSm = 48 * 1024;

} // namespace

Sm::Sm(const ArchConfig &cfg, unsigned sm_id, const Kernel &kernel,
       const KernelAnalysis &analysis, LaunchDims dims,
       GlobalMemory &gmem, MemorySystem &memsys,
       CtaDispatcher &dispatcher, Tracer *tracer)
    : cfg_(cfg), smId_(sm_id), kernel_(kernel), analysis_(analysis),
      dims_(dims), tracer_(tracer), gmem_(gmem), gtxn_(gmem),
      memsys_(memsys), dispatcher_(dispatcher),
      geo_{cfg.warpSize, cfg.checkGranularity},
      l1_(cfg.l1Bytes, cfg.l1Assoc, cfg.lineBytes)
{
    warpsPerCta_ = cfg.warpsPerCta(dims.threadsPerCta);

    unsigned cap = cfg.maxCtasPerSm;
    cap = std::min(cap, cfg.maxThreadsPerSm / (warpsPerCta_ * cfg.warpSize));
    if (kernel.numRegs > 0) {
        const unsigned by_regs =
            cfg.numVregsPerSm / (warpsPerCta_ * kernel.numRegs);
        cap = std::min(cap, by_regs);
    }
    if (kernel.sharedBytes > 0)
        cap = std::min(cap, kSharedBytesPerSm / kernel.sharedBytes);
    if (cap == 0)
        GS_FATAL("kernel '", kernel.name,
                 "' does not fit on an SM (regs/threads/shared)");
    ctaCapacity_ = cap;
    maxWarps_ = ctaCapacity_ * warpsPerCta_;

    codec_ = &compress::codecFor(cfg.codec);
    codecCaps_ = codec_->caps();

    // rf:stuck-array manufacturing faults: the stuck set is a pure
    // hash of (seed, SM, bank, array), fixed before the first cycle
    // and identical at any --jobs/--sim-threads.
    stuckArraysPerBank_.assign(cfg.numBanks, 0);
    for (unsigned b = 0; b < cfg.numBanks; ++b) {
        for (unsigned a = 0; a < geo_.byteArrays(); ++a) {
            if (stuckArrayFault(smId_, b, a)) {
                ++stuckArraysPerBank_[b];
                ++stuckArraysTotal_;
            }
        }
    }
    if (stuckArraysTotal_ > 0) {
        healthCounters().rfStuckArrays.fetch_add(
            stuckArraysTotal_, std::memory_order_relaxed);
        if (codecCaps_.absorbsStuckFaults && kernel.numRegs > 0)
            rfRedirected_.assign(
                std::size_t(maxWarps_) * unsigned(kernel.numRegs), false);
    }

    slots_.resize(ctaCapacity_);
    warps_.resize(maxWarps_);
    boards_.resize(maxWarps_);
    warpInFlight_.assign(maxWarps_, 0);
    oc_.resize(cfg.numCollectors);
    bankFreeAt_.assign(cfg.numBanks, 0);
    scalarBankFreeAt_.assign(cfg.scalarRfBanks, 0);
    l1Mshr_.assign(std::max(cfg.l1MshrEntries, 1u), 0);
    greedyWarp_.assign(cfg.numSchedulers, 0);
    rrCursor_.assign(cfg.numSchedulers, 0);
}

unsigned
Sm::residentWarps() const
{
    unsigned n = 0;
    for (const CtaSlot &s : slots_)
        if (s.active)
            n += s.numWarps;
    return n;
}

bool
Sm::idle() const
{
    if (!dispatcher_.exhausted())
        return false;
    for (const CtaSlot &s : slots_)
        if (s.active)
            return false;
    if (!wbQueue_.empty())
        return false;
    for (const InFlight &f : oc_)
        if (f.used)
            return false;
    return true;
}

void
Sm::tick(Cycle now)
{
    writeback(now);
    dispatchReady(now);
    scheduleIssue(now);
    retireCtas(now);
    tryLaunchCtas(now);
    ++ev_.cycles;
}

// --------------------------------------------------------------------------
// CTA lifecycle
// --------------------------------------------------------------------------

void
Sm::tryLaunchCtas(Cycle)
{
    // At most one CTA per SM per cycle so grids spread round-robin over
    // the SM array instead of piling onto the first SM.
    for (unsigned s = 0; s < ctaCapacity_; ++s) {
        CtaSlot &slot = slots_[s];
        if (slot.active)
            continue;
        const auto cta = dispatcher_.fetch();
        if (!cta)
            return;

        slot.active = true;
        slot.ctaId = *cta;
        if (tracer_)
            tracer_->onCtaLaunch(smId_, *cta, ev_.cycles);
        slot.warpBase = s * warpsPerCta_;
        slot.numWarps = warpsPerCta_;
        slot.barrierArrived = 0;
        slot.shared.assign(std::max(kernel_.sharedBytes / kBytesPerWord,
                                    1u),
                           0);

        unsigned threads_left = dims_.threadsPerCta;
        for (unsigned w = 0; w < warpsPerCta_; ++w) {
            WarpState &ws = warps_[slot.warpBase + w];
            const unsigned lanes = std::min(cfg_.warpSize, threads_left);
            threads_left -= lanes;
            ws.init(kernel_.numRegs, kernel_.numPreds, cfg_.warpSize,
                    lanes);
            ws.ctaSlot = int(s);
            ws.ctaId = *cta;
            ws.warpInCta = w;
            ws.threadBase = w * cfg_.warpSize;
            boards_[slot.warpBase + w].init(kernel_.numRegs,
                                            kernel_.numPreds);
            warpInFlight_[slot.warpBase + w] = 0;
        }
        return; // one launch per cycle
    }
}

void
Sm::retireCtas(Cycle)
{
    for (CtaSlot &slot : slots_) {
        if (!slot.active)
            continue;
        bool done = true;
        for (unsigned w = 0; w < slot.numWarps && done; ++w) {
            const unsigned wi = slot.warpBase + w;
            if (!warps_[wi].done() || warpInFlight_[wi] != 0)
                done = false;
        }
        if (done) {
            slot.active = false;
            for (unsigned w = 0; w < slot.numWarps; ++w)
                warps_[slot.warpBase + w].ctaSlot = -1;
            if (tracer_)
                tracer_->onCtaRetire(smId_, slot.ctaId, ev_.cycles);
        }
    }
}

// --------------------------------------------------------------------------
// Issue
// --------------------------------------------------------------------------

void
Sm::scheduleIssue(Cycle now)
{
    for (unsigned s = 0; s < cfg_.numSchedulers; ++s) {
        bool issued = false;
        bool saw_ready_warp = false;

        auto tryWarp = [&](unsigned w) -> bool {
            WarpState &ws = warps_[w];
            if (ws.ctaSlot < 0 || ws.done() || ws.atBarrier)
                return false;
            saw_ready_warp = true;
            return issueWarp(w, now);
        };

        if (cfg_.schedPolicy == SchedPolicy::GreedyThenOldest) {
            const unsigned fav = greedyWarp_[s];
            if (fav < maxWarps_ && fav % cfg_.numSchedulers == s &&
                tryWarp(fav)) {
                issued = true;
            } else {
                for (unsigned w = s; w < maxWarps_;
                     w += cfg_.numSchedulers) {
                    if (w != fav && tryWarp(w)) {
                        greedyWarp_[s] = w;
                        issued = true;
                        break;
                    }
                }
            }
        } else {
            const unsigned count =
                (maxWarps_ + cfg_.numSchedulers - 1 - s) /
                cfg_.numSchedulers;
            for (unsigned k = 0; k < count; ++k) {
                const unsigned slot_k = (rrCursor_[s] + k) % count;
                const unsigned w = s + slot_k * cfg_.numSchedulers;
                if (tryWarp(w)) {
                    rrCursor_[s] = (slot_k + 1) % count;
                    issued = true;
                    break;
                }
            }
        }

        if (!issued) {
            if (saw_ready_warp)
                ++ev_.scoreboardStalls;
            else
                ++ev_.schedIdleCycles;
        }
    }
}

bool
Sm::needsSpecialMove(const WarpState &w, const Instruction &inst,
                     LaneMask mask, int pc) const
{
    if (!usesByteMaskCompression(cfg_.mode) || !cfg_.insertSpecialMoves ||
        !codecCaps_.insertsSpecialMoves)
        return false;
    if (!inst.writesDst())
        return false;
    if (mask == w.fullMask() || mask == 0)
        return false;
    const RegMeta &m = w.meta(inst.dst);
    // A compressed destination (some bytes not stored) cannot take a
    // partial update in place (§3.3).
    if (!codec_->regCompressed(m))
        return false;
    // Compiler-assisted refinement: no move when the inactive lanes'
    // old value is provably dead.
    if (cfg_.compilerAssistedSmov &&
        std::size_t(pc) < analysis_.oldValueDead.size() &&
        analysis_.oldValueDead[std::size_t(pc)]) {
        return false;
    }
    return true;
}

int
Sm::bankOf(unsigned warp, RegIdx reg) const
{
    return int((unsigned(reg) + warp) % cfg_.numBanks);
}

void
Sm::accountRegRead(const RegMeta &meta, bool reader_divergent,
                   bool scalar_from_bvr)
{
    ++ev_.rfReads;
    const LaneMask full = laneMaskLow(cfg_.warpSize);

    // ---- Fig. 8 category (read-time classification) ---------------------
    if (reader_divergent) {
        ++ev_.rfAccDivergent;
    } else if (!meta.valid || meta.divergent) {
        ++ev_.rfAccOther;
    } else {
        switch (meta.fullEnc) {
          case 4: ++ev_.rfAccScalar; break;
          case 3: ++ev_.rfAcc3Byte; break;
          case 2: ++ev_.rfAcc2Byte; break;
          case 1: ++ev_.rfAcc1Byte; break;
          default: ++ev_.rfAccOther; break;
        }
    }

    // ---- shadow accounting: the four RF schemes of Fig. 12 ----------------
    const AccessCost base = baselineRead(geo_);
    ev_.shadowBaseArrayReads += base.arrays;

    if (meta.fullScalar())
        ++ev_.shadowScalarRfAccesses;
    else
        ev_.shadowScalarArrayReads += base.arrays;

    const AccessCost ours =
        compressedRead(geo_, meta, full, cfg_.halfRegisterCompression,
                       meta.fullScalar());
    ev_.shadowOursArrayReads += ours.arrays;
    ev_.shadowOursBvrAccesses += ours.bvr;
    ev_.shadowOursCrossbarBytes += ours.bytes;

    const AccessCost bdi = bdiRead(geo_, meta, full);
    ev_.bdiArrayReads += bdi.arrays;
    ev_.bdiMetaAccesses += bdi.bvr;

    // ---- actual cost under the configured mode -----------------------------
    AccessCost actual;
    switch (cfg_.mode) {
      case ArchMode::Baseline:
        actual = base;
        break;
      case ArchMode::AluScalar:
        if (meta.fullScalar()) {
            ++ev_.scalarRfAccesses;
            actual.bytes = kBytesPerWord;
        } else {
            actual = base;
        }
        break;
      case ArchMode::WarpedCompression:
        actual = bdi;
        ++ev_.decompressorUses;
        break;
      default: // compression modes: price through the configured codec
        actual = codec_->readCost(geo_, meta, full,
                                  cfg_.halfRegisterCompression,
                                  scalar_from_bvr);
        ev_.bvrAccesses += actual.bvr;
        if (!scalar_from_bvr)
            ++ev_.decompressorUses;
        break;
    }
    ev_.rfArrayReads += actual.arrays;
    ev_.crossbarBytes += actual.bytes;
}

void
Sm::accountRegWrite(const RegMeta &before, const RegMeta &after,
                    bool scalar_to_bvr)
{
    (void)before;
    ++ev_.rfWrites;
    const LaneMask wmask = after.writeMask;

    if (after.affine) {
        ++ev_.affineWrites;
        if (after.affineStride != 0)
            ++ev_.affineNonScalarWrites;
    }

    // ---- compression-ratio accounting over the write stream ----------------
    ev_.compBytesUncompressed += geo_.regBytes();
    ev_.compBytesCompressed +=
        codec_->regStoredBytes(geo_, after, cfg_.halfRegisterCompression);
    ev_.bdiBytesUncompressed += geo_.regBytes();
    ev_.bdiBytesCompressed +=
        after.divergent ? geo_.regBytes() : after.bdiBytes;

    // ---- shadow accounting -------------------------------------------------
    const AccessCost base = baselineWrite(geo_, wmask);
    ev_.shadowBaseArrayWrites += base.arrays;

    if (after.fullScalar())
        ++ev_.shadowScalarRfAccesses;
    else
        ev_.shadowScalarArrayWrites += base.arrays;

    const AccessCost ours = compressedWrite(
        geo_, after, cfg_.halfRegisterCompression, after.fullScalar());
    ev_.shadowOursArrayWrites += ours.arrays;
    ev_.shadowOursBvrAccesses += ours.bvr;
    ev_.shadowOursCrossbarBytes += ours.bytes;

    const AccessCost bdi = bdiWrite(geo_, after);
    ev_.bdiArrayWrites += bdi.arrays;
    ev_.bdiMetaAccesses += bdi.bvr;

    // ---- actual cost under the configured mode ------------------------------
    AccessCost actual;
    switch (cfg_.mode) {
      case ArchMode::Baseline:
        actual = base;
        break;
      case ArchMode::AluScalar:
        if (after.fullScalar() && scalar_to_bvr) {
            ++ev_.scalarRfAccesses;
            actual.bytes = kBytesPerWord;
        } else {
            actual = base;
        }
        break;
      case ArchMode::WarpedCompression:
        actual = bdi;
        ++ev_.compressorUses;
        break;
      default:
        actual = codec_->writeCost(geo_, after,
                                   cfg_.halfRegisterCompression,
                                   scalar_to_bvr);
        ev_.bvrAccesses += actual.bvr;
        ++ev_.compressorUses; // comparison logic runs on every write-back
        break;
    }
    ev_.rfArrayWrites += actual.arrays;
    ev_.crossbarBytes += actual.bytes;
}

void
Sm::executeControl(unsigned w, const Instruction &inst, Cycle)
{
    WarpState &ws = warps_[w];
    SimtStack &st = ws.stack();
    const int pc = st.pc();
    const LaneMask mask = st.activeMask();

    ++ev_.issuedInsts;
    ++ev_.warpInsts;
    ++ev_.ctrlWarpInsts;
    ev_.threadInsts += popCount(mask);
    if (mask != ws.fullMask())
        ++ev_.divergentWarpInsts;

    if (tracer_) {
        Tracer::IssueEvent te;
        te.smId = smId_;
        te.warp = w;
        te.cycle = ev_.cycles;
        te.pc = pc;
        te.inst = &inst;
        te.mask = mask;
        tracer_->onIssue(te);
    }

    switch (inst.op) {
      case Opcode::BRA: {
        LaneMask taken = mask;
        if (inst.guard != kNoPred) {
            const LaneMask p = ws.pred(inst.guard);
            taken = (inst.guardNeg ? ~p : p) & mask;
        }
        st.branch(taken, inst.target, pc + 1, inst.reconv);
        break;
      }
      case Opcode::JMP:
        st.jump(inst.target);
        break;
      case Opcode::BAR: {
        GS_ASSERT(ws.ctaSlot >= 0, "barrier on idle warp");
        CtaSlot &slot = slots_[unsigned(ws.ctaSlot)];
        ws.atBarrier = true;
        ++slot.barrierArrived;
        if (slot.barrierArrived == slot.numWarps) {
            slot.barrierArrived = 0;
            for (unsigned i = 0; i < slot.numWarps; ++i) {
                WarpState &peer = warps_[slot.warpBase + i];
                peer.atBarrier = false;
                peer.stack().advance(peer.stack().pc() + 1);
            }
        }
        break;
      }
      case Opcode::EXIT:
        st.exit();
        break;
      default:
        GS_PANIC("not a control opcode: ", opcodeName(inst.op));
    }
}

bool
Sm::issueWarp(unsigned w, Cycle now)
{
    WarpState &ws = warps_[w];
    const int pc = ws.stack().pc();
    GS_ASSERT(pc >= 0 && std::size_t(pc) < kernel_.code.size(),
              "pc out of range");
    const Instruction &real = kernel_.code[std::size_t(pc)];

    if (!boards_[w].ready(real))
        return false;

    // Control flow executes at issue and uses no collector.
    if (real.pipe() == PipeClass::CTRL) {
        executeControl(w, real, now);
        return true;
    }

    // Resolve the active mask (SIMT stack + guard predicate).
    const LaneMask stack_mask = ws.stack().activeMask();
    LaneMask mask = stack_mask;
    if (real.guard != kNoPred) {
        const LaneMask p = ws.pred(real.guard);
        mask = (real.guardNeg ? ~p : p) & stack_mask;
    }

    // Fully predicated-off: retires at issue without touching the RF.
    if (mask == 0) {
        ++ev_.issuedInsts;
        ++ev_.warpInsts;
        ws.stack().advance(pc + 1);
        return true;
    }

    // §3.3: a divergent write to a compressed register first needs the
    // special decompress-in-place move.
    const bool smov = needsSpecialMove(ws, real, mask, pc);

    // Both the SMOV and the real instruction need a collector.
    InFlight *slot = nullptr;
    for (InFlight &f : oc_) {
        if (!f.used) {
            slot = &f;
            break;
        }
    }
    if (!slot) {
        ++ev_.ocFullStalls;
        return false;
    }

    Instruction inst;
    if (smov) {
        inst.op = Opcode::SMOV;
        inst.dst = real.dst;
        inst.src[0] = real.dst;
    } else {
        inst = real;
    }
    const LaneMask exec_mask = smov ? ws.fullMask() : mask;

    // ---- eligibility classification (Figs. 1, 9, 10) ---------------------
    Eligibility elig;
    bool exec_scalar = false;
    bool exec_half = false;
    if (!smov) {
        std::array<RegMeta, 3> srcs{};
        const unsigned nsrc = inst.numSrcRegs();
        for (unsigned i = 0; i < nsrc; ++i)
            srcs[i] = ws.meta(inst.src[i]);

        EligibilityContext ctx;
        ctx.active = mask;
        ctx.fullMask = ws.fullMask();
        ctx.granularity = cfg_.checkGranularity;
        ctx.warpSize = cfg_.warpSize;
        ctx.sregUniform =
            inst.op != Opcode::S2R || sregIsUniform(inst.sreg);
        if (inst.psrc != kNoPred) {
            const LaneMask p = ws.pred(inst.psrc);
            ctx.predUniform =
                (p & mask) == 0 || (p & mask) == mask;
            ctx.predUniformGroups = 0;
            const unsigned groups = cfg_.warpSize / cfg_.checkGranularity;
            for (unsigned g = 0; g < groups; ++g) {
                const LaneMask gm = laneMaskLow(cfg_.checkGranularity)
                                    << (g * cfg_.checkGranularity);
                const LaneMask pg = p & gm;
                if (pg == 0 || pg == gm)
                    ctx.predUniformGroups |= 1u << g;
            }
        }

        elig = classifyScalar(inst, {srcs.data(), nsrc}, ctx);
        switch (elig.tier) {
          case ScalarTier::FullAlu: ++ev_.scalarAluEligible; break;
          case ScalarTier::FullSfu: ++ev_.scalarSfuEligible; break;
          case ScalarTier::FullMem: ++ev_.scalarMemEligible; break;
          case ScalarTier::Half: ++ev_.halfScalarEligible; break;
          case ScalarTier::Divergent:
            ++ev_.divergentScalarEligible;
            break;
          case ScalarTier::None: break;
        }

        // The mode says which tiers the pipeline exploits; under the
        // byte-mask modes the codec's capability descriptor additionally
        // gates the tiers whose metadata it actually exposes.
        const bool codec_tier =
            !usesByteMaskCompression(cfg_.mode) ||
            (elig.tier == ScalarTier::Divergent
                 ? codecCaps_.divergentScalar
                 : codecCaps_.fullScalar);
        exec_scalar = elig.tier != ScalarTier::None &&
                      elig.tier != ScalarTier::Half &&
                      tierExploited(elig.tier, cfg_.mode) && codec_tier;
        // Half-warp scalar execution needs the per-half BVR/EBR sets
        // (§4.3's half-register compression).
        exec_half = elig.tier == ScalarTier::Half &&
                    tierExploited(elig.tier, cfg_.mode) &&
                    cfg_.halfRegisterCompression &&
                    (!usesByteMaskCompression(cfg_.mode) ||
                     codecCaps_.halfScalar);
        if (exec_scalar)
            ++ev_.scalarExecuted;
        if (exec_half)
            ++ev_.halfScalarExecuted;
    }

    // ---- functional execution (program order) ------------------------------
    SregContext sctx;
    sctx.ctaId = ws.ctaId;
    sctx.nTid = dims_.threadsPerCta;
    sctx.nCtaId = dims_.ctas;
    sctx.warpId = ws.warpInCta;
    sctx.threadBase = ws.threadBase;

    std::span<Word> shared;
    if (ws.ctaSlot >= 0 && kernel_.sharedBytes > 0)
        shared = std::span<Word>(slots_[unsigned(ws.ctaSlot)].shared);

    const ExecResult res =
        executeFunctional(inst, ws, exec_mask, sctx, gtxn_, shared);

    // ---- bookkeeping ---------------------------------------------------------
    ++ev_.issuedInsts;
    const unsigned lanes = popCount(exec_mask);
    if (smov) {
        ++ev_.specialMoveInsts;
    } else {
        ++ev_.warpInsts;
        ev_.threadInsts += lanes;
        if (std::size_t(pc) < analysis_.staticScalar.size() &&
            analysis_.staticScalar[std::size_t(pc)]) {
            ++ev_.staticScalarInsts;
        }
        const bool divergent = mask != ws.fullMask();
        if (divergent)
            ++ev_.divergentWarpInsts;

        // Lanes that actually burn execution energy: one for scalar
        // execution, one per scalar check group for half-warp scalar
        // execution (§4.3, clock-gating all other lanes), all active
        // lanes otherwise.
        unsigned active_lanes = lanes;
        if (exec_scalar) {
            active_lanes = 1;
        } else if (exec_half) {
            active_lanes = 0;
            const unsigned groups = cfg_.warpSize / cfg_.checkGranularity;
            for (unsigned g = 0; g < groups; ++g) {
                active_lanes += (elig.scalarGroupMask & (1u << g))
                                    ? 1u
                                    : cfg_.checkGranularity;
            }
        }

        const double eu = traits(inst.op).energyUnits;
        switch (inst.pipe()) {
          case PipeClass::ALU:
            ++ev_.aluWarpInsts;
            ev_.aluLaneOps += active_lanes;
            ev_.aluEnergyUnits += eu * active_lanes;
            break;
          case PipeClass::SFU:
            ++ev_.sfuWarpInsts;
            ev_.sfuLaneOps += active_lanes;
            ev_.sfuEnergyUnits += eu * active_lanes;
            break;
          case PipeClass::MEM:
            ++ev_.memWarpInsts;
            ev_.memLaneOps += active_lanes;
            break;
          case PipeClass::CTRL:
            break;
        }
    }

    // ---- register read accounting + bank timing -----------------------------
    ++ev_.ocAllocations;
    Cycle last_grant = now + 1;
    const bool reader_divergent = !smov && mask != ws.fullMask();
    const unsigned nsrc = inst.numSrcRegs();
    for (unsigned i = 0; i < nsrc; ++i) {
        const RegMeta &m = ws.meta(inst.src[i]);
        const bool from_bvr = exec_scalar && !smov &&
                              elig.tier != ScalarTier::Divergent &&
                              usesByteMaskCompression(cfg_.mode) &&
                              codecCaps_.scalarFromMeta &&
                              codec_->regScalar(m);
        accountRegRead(m, reader_divergent, from_bvr);

        if (from_bvr)
            continue; // BVR banklets: no main-port contention (§4.1)

        if (cfg_.mode == ArchMode::AluScalar && m.fullScalar()) {
            // Single-bank scalar RF: the §4.1 bottleneck.
            auto it = std::min_element(scalarBankFreeAt_.begin(),
                                       scalarBankFreeAt_.end());
            const Cycle grant = std::max(*it, now) + 1;
            if (*it > now)
                ev_.scalarBankStalls += unsigned(*it - now);
            *it = grant;
            last_grant = std::max(last_grant, grant);
            continue;
        }

        const int bank = bankOf(w, inst.src[i]);
        Cycle &free_at = bankFreeAt_[unsigned(bank)];
        const Cycle grant = std::max(free_at, now) + 1;
        free_at = grant;
        last_grant = std::max(last_grant, grant);
    }

    // ---- destination write (functional now, energy accounted now) ----------
    if (inst.writesDst()) {
        const RegMeta before = ws.meta(inst.dst);
        auto dstvals = ws.regValues(inst.dst);
        for (unsigned lane = 0; lane < cfg_.warpSize; ++lane)
            if (res.writeMask & (LaneMask{1} << lane))
                dstvals[lane] = res.dst[lane];

        RegMeta after = analyzeWrite(dstvals, res.writeMask, ws.fullMask(),
                                     cfg_.checkGranularity);
        if (smov) {
            // Stored raw after the special move; the imminent divergent
            // write will set D properly. Mark raw via the D bit.
            after.divergent = true;
        }
        // Carry codec-private metadata (the static-profile frozen
        // encoding) across the write before pricing it.
        codec_->updateMeta(before, after);
        const bool to_bvr = exec_scalar && !smov &&
                            elig.tier != ScalarTier::Divergent &&
                            usesByteMaskCompression(cfg_.mode) &&
                            codecCaps_.scalarFromMeta &&
                            codec_->regScalar(after);
        const bool scalar_rf_write =
            exec_scalar && cfg_.mode == ArchMode::AluScalar;
        accountRegWrite(before, after, to_bvr || scalar_rf_write);
        ws.meta(inst.dst) = after;

        // RRCD-style fault absorption: a write landing in a bank with
        // stuck arrays redirects the register's byte slices into the
        // spare capacity compression frees. Only the health counter
        // sees it — architectural results stay byte-identical.
        if (stuckArraysTotal_ > 0 && codecCaps_.absorbsStuckFaults &&
            stuckArraysPerBank_[unsigned(bankOf(w, inst.dst))] > 0 &&
            codec_->regCompressed(after)) {
            const std::size_t idx =
                std::size_t(w) * unsigned(kernel_.numRegs) +
                unsigned(inst.dst);
            if (idx < rfRedirected_.size() && !rfRedirected_[idx]) {
                rfRedirected_[idx] = true;
                healthCounters().rfRedirectedRegisters.fetch_add(
                    1, std::memory_order_relaxed);
            }
        }
    }

    // ---- create the in-flight packet ------------------------------------------
    slot->used = true;
    slot->warp = w;
    slot->inst = inst;
    slot->mask = exec_mask;
    slot->isSmov = smov;
    slot->dispatched = false;
    slot->execScalar = exec_scalar;
    slot->scalarGroupMask = elig.scalarGroupMask;
    slot->memLines.clear();
    slot->isStore = isStore(inst.op);
    slot->isShared = inst.op == Opcode::LDS || inst.op == Opcode::STS;
    if (inst.pipe() == PipeClass::MEM) {
        if (slot->isShared) {
            ++ev_.sharedAccesses;
            // Bank conflict degree: distinct words per bank, maximised
            // over banks; identical words broadcast conflict-free.
            std::vector<std::pair<unsigned, Addr>> uniq;
            for (unsigned lane = 0; lane < cfg_.warpSize; ++lane) {
                if (!(exec_mask & (LaneMask{1} << lane)))
                    continue;
                const Addr word = res.addrs[lane] / kBytesPerWord;
                const unsigned bank = unsigned(word % cfg_.sharedBanks);
                if (std::find(uniq.begin(), uniq.end(),
                              std::make_pair(bank, word)) == uniq.end())
                    uniq.emplace_back(bank, word);
            }
            unsigned degree = 1;
            std::array<unsigned, kMaxWarpSize> per_bank{};
            for (const auto &[bank, word] : uniq)
                degree = std::max(degree, ++per_bank[bank]);
            slot->sharedConflictDegree = degree;
        } else {
            slot->memLines =
                coalesce(res.addrs, exec_mask, cfg_.lineBytes);
            ev_.memRequests += slot->memLines.size();
        }
    }

    if (tracer_) {
        Tracer::IssueEvent te;
        te.smId = smId_;
        te.warp = w;
        te.cycle = now;
        te.pc = pc;
        te.inst = &kernel_.code[std::size_t(pc)];
        te.mask = exec_mask;
        te.tier = elig.tier;
        te.execScalar = exec_scalar;
        te.isSpecialMove = smov;
        tracer_->onIssue(te);
    }

    // EBR read + decompress stages (§5.1); the codec says how many it
    // adds under the byte-mask modes, Warped-Compression keeps its own.
    const unsigned extra_front =
        usesByteMaskCompression(cfg_.mode) ? codecCaps_.extraFrontCycles
        : usesBdiCompression(cfg_.mode)    ? 2u
                                           : 0u;
    slot->collectDone =
        std::max<Cycle>(last_grant, now + 1) + extra_front;

    boards_[w].reserve(inst);
    ++warpInFlight_[w];

    if (!smov)
        ws.stack().advance(pc + 1);
    return true;
}

// --------------------------------------------------------------------------
// Dispatch & write-back
// --------------------------------------------------------------------------

unsigned
Sm::occupancyCycles(const InFlight &f) const
{
    if (f.execScalar && cfg_.scalarShortensOccupancy)
        return 1; // §6: a scalar instruction can issue in one cycle
    const unsigned width =
        f.inst.pipe() == PipeClass::SFU ? cfg_.sfuWidth : cfg_.simtWidth;
    return cfg_.dispatchCycles(width);
}

Cycle
Sm::memoryCompletion(InFlight &f, Cycle start)
{
    if (f.isShared) {
        // Bank conflicts serialise the access (§2.1-style shared
        // memory; degree computed from per-lane word addresses).
        const unsigned extra = f.sharedConflictDegree - 1;
        ev_.sharedBankConflicts += extra;
        return start + cfg_.sharedLatency + extra;
    }

    Cycle done = start + 1;
    for (const Addr line : f.memLines) {
        // Non-blocking L1: the tag port is held for one cycle per
        // access; misses park in an MSHR without blocking later hits.
        const Cycle inject = std::max(l1PortFreeAt_, start) + 1;
        l1PortFreeAt_ = inject;
        ++ev_.l1Accesses;
        const bool hit = l1_.access(line, /*allocate=*/!f.isStore);
        Cycle d;
        if (hit) {
            d = inject + cfg_.l1Latency;
        } else {
            ++ev_.l1Misses;
            // A free MSHR entry gates when the miss reaches the
            // hierarchy.
            auto slot =
                std::min_element(l1Mshr_.begin(), l1Mshr_.end());
            Cycle issue = inject;
            if (*slot > issue) {
                ev_.mshrStallCycles += unsigned(*slot - issue);
                issue = *slot;
            }
            d = memsys_.access(line, f.isStore, issue + cfg_.l1Latency,
                               ev_);
            *slot = f.isStore ? issue + 1 : d;
        }
        if (f.isStore)
            d = inject + 1; // write-through: do not wait for the line
        done = std::max(done, d);
    }
    return done;
}

void
Sm::dispatchReady(Cycle now)
{
    const unsigned n = unsigned(oc_.size());
    for (unsigned k = 0; k < n; ++k) {
        InFlight &f = oc_[(ocRotate_ + k) % n];
        if (!f.used || f.collectDone > now)
            continue;

        Pipe *pipe = nullptr;
        switch (f.inst.pipe()) {
          case PipeClass::ALU:
            if (alu0_.freeAt <= now)
                pipe = &alu0_;
            else if (alu1_.freeAt <= now)
                pipe = &alu1_;
            break;
          case PipeClass::SFU:
            if (sfu_.freeAt <= now)
                pipe = &sfu_;
            break;
          case PipeClass::MEM:
            if (mem_.freeAt <= now)
                pipe = &mem_;
            break;
          case PipeClass::CTRL:
            GS_PANIC("control instruction in a collector");
        }
        if (!pipe) {
            ++ev_.pipeBusyStalls;
            continue;
        }

        const unsigned occ = occupancyCycles(f);
        pipe->freeAt = now + occ;

        const unsigned extra_wb = cfg_.extraCycles() > 0 ? 1u : 0u;
        Cycle wb;
        if (f.inst.pipe() == PipeClass::MEM) {
            wb = memoryCompletion(f, now + occ);
        } else {
            unsigned lat = cfg_.aluLatency;
            switch (traits(f.inst.op).lat) {
              case LatClass::Simple: lat = cfg_.aluLatency; break;
              case LatClass::Mul: lat = cfg_.mulLatency; break;
              case LatClass::Div: lat = cfg_.divLatency; break;
              case LatClass::Sfu: lat = cfg_.sfuLatency; break;
              default: break;
            }
            wb = now + occ + lat;
        }
        f.wbAt = wb + extra_wb;
        f.dispatched = true;
        wbQueue_.push_back(std::move(f));
        f = InFlight{}; // free the collector slot
    }
    ocRotate_ = (ocRotate_ + 1) % n;
}

void
Sm::writeback(Cycle now)
{
    for (std::size_t i = 0; i < wbQueue_.size();) {
        InFlight &f = wbQueue_[i];
        if (f.wbAt <= now) {
            boards_[f.warp].release(f.inst);
            GS_ASSERT(warpInFlight_[f.warp] > 0, "in-flight underflow");
            --warpInFlight_[f.warp];
            wbQueue_[i] = std::move(wbQueue_.back());
            wbQueue_.pop_back();
        } else {
            ++i;
        }
    }
}

} // namespace gs
