/**
 * @file
 * One streaming multiprocessor: warp contexts, dual warp schedulers,
 * scoreboards, operand collectors with register-bank arbitration, the
 * ALU/SFU/MEM execution pipelines, an L1 cache, and the compression +
 * scalar-execution machinery of G-Scalar.
 *
 * Functional state (register values, predicates, memory, compression
 * metadata) advances in program order at issue; the event-driven parts
 * (operand collection, pipeline occupancy, write-back) model timing.
 */

#ifndef GSCALAR_SIM_SM_HPP
#define GSCALAR_SIM_SM_HPP

#include <optional>
#include <vector>

#include "common/config.hpp"
#include "common/events.hpp"
#include "compress/array_model.hpp"
#include "compress/codec.hpp"
#include "functional.hpp"
#include "isa/analysis.hpp"
#include "isa/kernel.hpp"
#include "memory/cache.hpp"
#include "memory/memory_system.hpp"
#include "scalar/eligibility.hpp"
#include "scoreboard.hpp"
#include "trace.hpp"
#include "warp_state.hpp"

namespace gs
{

/** Hands out CTA ids of the running grid to SMs. */
class CtaDispatcher
{
  public:
    explicit CtaDispatcher(unsigned total) : total_(total) {}

    std::optional<unsigned>
    fetch()
    {
        if (next_ >= total_)
            return std::nullopt;
        return next_++;
    }

    bool exhausted() const { return next_ >= total_; }

  private:
    unsigned next_ = 0;
    unsigned total_;
};

/** One streaming multiprocessor. */
class Sm
{
  public:
    Sm(const ArchConfig &cfg, unsigned sm_id, const Kernel &kernel,
       const KernelAnalysis &analysis, LaunchDims dims,
       GlobalMemory &gmem, MemorySystem &memsys,
       CtaDispatcher &dispatcher, Tracer *tracer = nullptr);

    /** Advance one core cycle. */
    void tick(Cycle now);

    // ---- phase entry points for deterministic parallel ticking ------------
    // The parallel driver (sim/parallel.cpp) replays tick()'s phases
    // across threads: writeback and issue/retire run concurrently
    // (SM-local state only), dispatch and commit/launch run in an
    // SM-ordered rolling handoff so the MemorySystem, GlobalMemory and
    // CtaDispatcher see accesses in exactly the serial order.

    /** Phase P1 (parallel): retire written-back packets. */
    void phaseWriteback(Cycle now) { writeback(now); }

    /** Phase P2 (SM-ordered): dispatch collectors, touching the shared
     *  MemorySystem in serial SM order. */
    void phaseDispatch(Cycle now) { dispatchReady(now); }

    /** Phase P3 (parallel): issue + retire CTAs; global-memory stores
     *  go to the per-SM write log (deferred mode). */
    void phaseIssueRetire(Cycle now)
    {
        scheduleIssue(now);
        retireCtas(now);
    }

    /** Phase P4 (SM-ordered): commit the write log in serial WAW
     *  order, then fetch at most one CTA, then count the cycle. */
    void phaseCommitLaunch(Cycle now)
    {
        gtxn_.commit();
        tryLaunchCtas(now);
        ++ev_.cycles;
    }

    /** Buffer global-memory stores per cycle (parallel ticking). */
    void setDeferredGmem(bool on) { gtxn_.setDeferred(on); }

    /** This SM's global-memory view (parallel driver: logs + commit). */
    const GmemTxn &gmemTxn() const { return gtxn_; }

    /** No resident CTAs, none fetchable, and no in-flight work. */
    bool idle() const;

    EventCounts &events() { return ev_; }
    const EventCounts &events() const { return ev_; }

    /** Warps currently resident (tests). */
    unsigned residentWarps() const;

  private:
    // ---- structures -------------------------------------------------------
    struct CtaSlot
    {
        bool active = false;
        unsigned ctaId = 0;
        unsigned warpBase = 0;  ///< first warp context index
        unsigned numWarps = 0;
        unsigned barrierArrived = 0;
        std::vector<Word> shared;
    };

    /** An instruction in flight between issue and write-back. */
    struct InFlight
    {
        bool used = false;
        unsigned warp = 0;
        Instruction inst;
        LaneMask mask = 0;
        bool isSmov = false;

        /** When the last scheduled bank read completes (+pipe depth). */
        Cycle collectDone = 0;

        // execution
        bool dispatched = false;
        Cycle wbAt = 0;
        bool execScalar = false;
        unsigned scalarGroupMask = 0;

        // memory operation payload (coalesced line addresses)
        std::vector<Addr> memLines;
        bool isStore = false;
        bool isShared = false;
        /** Worst-bank serialisation degree of a shared access. */
        unsigned sharedConflictDegree = 1;
    };

    struct Pipe
    {
        Cycle freeAt = 0;
    };

    // ---- phases of tick() --------------------------------------------------
    void tryLaunchCtas(Cycle now);
    void scheduleIssue(Cycle now);
    void dispatchReady(Cycle now);
    void writeback(Cycle now);
    void retireCtas(Cycle now);

    // ---- issue helpers -------------------------------------------------------
    /** Attempt to issue from @p warp; true on success. */
    bool issueWarp(unsigned warp, Cycle now);
    void executeControl(unsigned warp, const Instruction &inst, Cycle now);
    bool needsSpecialMove(const WarpState &w, const Instruction &inst,
                          LaneMask mask, int pc) const;
    void accountRegRead(const RegMeta &meta, bool reader_divergent,
                        bool scalar_from_bvr);
    void accountRegWrite(const RegMeta &before, const RegMeta &after,
                         bool scalar_to_bvr);
    int bankOf(unsigned warp, RegIdx reg) const;
    unsigned occupancyCycles(const InFlight &f) const;
    Cycle memoryCompletion(InFlight &f, Cycle start);

    // ---- members ----------------------------------------------------------------
    const ArchConfig &cfg_;
    unsigned smId_;
    const Kernel &kernel_;
    const KernelAnalysis &analysis_;
    LaunchDims dims_;
    Tracer *tracer_ = nullptr;
    GlobalMemory &gmem_;
    GmemTxn gtxn_; ///< this SM's (possibly deferred) view of gmem_
    MemorySystem &memsys_;
    CtaDispatcher &dispatcher_;

    RfGeometry geo_;
    unsigned warpsPerCta_;
    unsigned ctaCapacity_;
    unsigned maxWarps_;

    /** The RF compression scheme the byte-mask modes run through. */
    const compress::Codec *codec_;
    compress::CodecCaps codecCaps_; ///< caps(), cached off the hot path

    // rf:stuck-array permanent faults (fault/fault.hpp). The stuck set
    // is fixed at construction; a codec advertising absorbsStuckFaults
    // redirects affected registers into the spare capacity compression
    // frees, counted once per (warp slot, register) in the health
    // counters — EventCounts never see the fault, so absorbed runs
    // stay byte-identical.
    std::vector<unsigned> stuckArraysPerBank_;
    unsigned stuckArraysTotal_ = 0;
    std::vector<bool> rfRedirected_; ///< (warp, reg) already counted

    std::vector<CtaSlot> slots_;
    std::vector<WarpState> warps_;
    std::vector<Scoreboard> boards_;
    std::vector<unsigned> warpInFlight_; ///< packets not yet written back

    std::vector<InFlight> oc_;      ///< operand collectors
    std::vector<InFlight> wbQueue_; ///< dispatched, awaiting write-back
    unsigned ocRotate_ = 0;         ///< dispatch round-robin cursor

    std::vector<Cycle> bankFreeAt_;       ///< one read port per bank
    std::vector<Cycle> scalarBankFreeAt_; ///< prior-work scalar RF ports

    Pipe alu0_, alu1_, sfu_, mem_;
    Cache l1_;
    Cycle l1PortFreeAt_ = 0;
    std::vector<Cycle> l1Mshr_; ///< outstanding-miss completion times

    std::vector<unsigned> greedyWarp_; ///< per-scheduler GTO favourite
    std::vector<unsigned> rrCursor_;   ///< per-scheduler LRR cursor

    EventCounts ev_;
};

} // namespace gs

#endif // GSCALAR_SIM_SM_HPP
