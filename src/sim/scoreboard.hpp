/**
 * @file
 * Per-warp scoreboard tracking in-flight register and predicate writes.
 * An instruction may not issue while any register it reads or writes
 * has a pending write (GPUs have no operand bypassing, §5.4).
 */

#ifndef GSCALAR_SIM_SCOREBOARD_HPP
#define GSCALAR_SIM_SCOREBOARD_HPP

#include <vector>

#include "common/log.hpp"
#include "isa/instruction.hpp"

namespace gs
{

/** Scoreboard for one warp. */
class Scoreboard
{
  public:
    void
    init(unsigned num_regs, unsigned num_preds)
    {
        regPending_.assign(num_regs, 0);
        predPending_.assign(num_preds, 0);
    }

    /** True when @p inst can issue (no RAW/WAW/pred hazards). */
    bool
    ready(const Instruction &inst) const
    {
        if (inst.writesDst() && pendingReg(inst.dst))
            return false;
        for (unsigned s = 0; s < inst.numSrcRegs(); ++s)
            if (pendingReg(inst.src[s]))
                return false;
        if (inst.pdst != kNoPred && predPending_[unsigned(inst.pdst)])
            return false;
        if (inst.psrc != kNoPred && predPending_[unsigned(inst.psrc)])
            return false;
        if (inst.guard != kNoPred && predPending_[unsigned(inst.guard)])
            return false;
        return true;
    }

    /** Mark destinations pending at issue. */
    void
    reserve(const Instruction &inst)
    {
        if (inst.writesDst())
            ++regPending_[unsigned(inst.dst)];
        if (inst.pdst != kNoPred)
            ++predPending_[unsigned(inst.pdst)];
    }

    /** Release destinations at write-back. */
    void
    release(const Instruction &inst)
    {
        if (inst.writesDst()) {
            GS_ASSERT(regPending_[unsigned(inst.dst)] > 0,
                      "releasing idle register");
            --regPending_[unsigned(inst.dst)];
        }
        if (inst.pdst != kNoPred) {
            GS_ASSERT(predPending_[unsigned(inst.pdst)] > 0,
                      "releasing idle predicate");
            --predPending_[unsigned(inst.pdst)];
        }
    }

    /** Any write in flight at all (tests / barrier draining). */
    bool
    anyPending() const
    {
        for (auto c : regPending_)
            if (c)
                return true;
        for (auto c : predPending_)
            if (c)
                return true;
        return false;
    }

  private:
    bool
    pendingReg(RegIdx r) const
    {
        return r != kNoReg && regPending_[unsigned(r)] != 0;
    }

    std::vector<std::uint8_t> regPending_;
    std::vector<std::uint8_t> predPending_;
};

} // namespace gs

#endif // GSCALAR_SIM_SCOREBOARD_HPP
