/**
 * @file
 * Deterministic intra-run parallelism: tick the independent SMs of one
 * launch on a small pool of worker threads while reproducing the
 * serial tick order at every shared seam, so a parallel run is
 * byte-identical to a serial one at any thread count.
 *
 * The serial loop interleaves SMs in a fixed order each cycle:
 *
 *   for each SM s in 0..N-1:
 *     writeback -> dispatchReady -> scheduleIssue -> retireCtas
 *       -> tryLaunchCtas;  all_idle &= s.idle()
 *
 * Three seams couple the SMs inside one cycle: MemorySystem (shared L2
 * and DRAM timing, mutated by dispatchReady), GlobalMemory (functional
 * loads/stores at issue), and CtaDispatcher (one CTA fetch per SM per
 * cycle). The parallel schedule splits a cycle into phases:
 *
 *   P1 writeback            parallel (SM-local)
 *   P2 dispatchReady        rolling SM-order handoff: preserves the
 *                           exact serial MemorySystem access order
 *   P3 scheduleIssue+retire parallel; global-memory stores are
 *                           deferred into a per-SM write log, loads
 *                           snoop that log first (program order within
 *                           an SM is preserved)
 *   -- barrier --
 *   P4 commit+launch+idle   rolling SM-order handoff: write logs
 *                           commit in SM order (serial WAW order),
 *                           CTA fetches happen in serial SM order, and
 *                           idle() is sampled exactly where the serial
 *                           loop samples it (after this SM's launch,
 *                           before the next SM's)
 *   -- barrier --           deterministic all-idle loop exit
 *
 * The only semantic difference from serial is a cross-SM *same-cycle*
 * global-memory read-after-write (SM j > i reading a word SM i wrote
 * this cycle): the deferred commit makes the read return the previous
 * value. No workload in the suite does this (kernels write disjoint
 * per-thread outputs); a commit-time detector warns once per launch if
 * one ever does.
 *
 * Thread count comes from GS_SIM_THREADS / --sim-threads (strictly
 * validated, default 1 = the untouched serial path) and is independent
 * of the cross-run GS_JOBS pool: GS_JOBS spreads runs over workers,
 * GS_SIM_THREADS spreads one run's SMs over cores.
 */

#ifndef GSCALAR_SIM_PARALLEL_HPP
#define GSCALAR_SIM_PARALLEL_HPP

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace gs
{

class Sm;

/**
 * Strict positive-integer parse for --sim-threads / GS_SIM_THREADS:
 * the whole string must be digits, in [1, 4096]. Empty optional on
 * anything else (same contract as parseJobsValue for GS_JOBS).
 */
std::optional<unsigned> parseSimThreadsValue(const std::string &s);

/**
 * Set the process-default intra-run thread count (the --sim-threads
 * flag). Takes precedence over $GS_SIM_THREADS, like --jobs over
 * $GS_JOBS. 0 restores "consult the environment".
 */
void setSimThreads(unsigned threads);

/**
 * Threads a launch should use: the setSimThreads() value if set, else
 * a validated $GS_SIM_THREADS (a malformed value is fatal, in the
 * GS_JOBS idiom), else 1 (serial).
 */
unsigned resolveSimThreads();

/** Outcome of the parallel cycle loop. */
struct ParallelLaunchOutcome
{
    Cycle cycles = 0;      ///< cycles actually simulated
    bool watchdog = false; ///< stopped by maxCycles, not by idleness
};

/**
 * Run the per-cycle phase schedule above over @p sms on @p threads
 * worker threads until every SM is idle or @p maxCycles is reached.
 * @p threads must be >= 2 and <= sms.size(); @p maxCycles >= 1.
 * @p kernelName is used by the same-cycle overlap warning.
 */
ParallelLaunchOutcome runSmsParallel(const std::vector<Sm *> &sms,
                                     Cycle maxCycles, unsigned threads,
                                     const std::string &kernelName);

namespace detail
{

/**
 * Sense-reversing centralised barrier. Spins briefly then yields, so
 * oversubscribed hosts (threads > cores) still make progress; atomics
 * only, so TSan sees the happens-before edges.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned parties) : parties_(parties) {}

    void
    wait()
    {
        const std::uint64_t gen = gen_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            arrived_.store(0, std::memory_order_relaxed);
            gen_.fetch_add(1, std::memory_order_release);
        } else {
            unsigned spins = 0;
            while (gen_.load(std::memory_order_acquire) == gen)
                if (++spins >= kSpinsBeforeYield)
                    std::this_thread::yield();
        }
    }

  private:
    static constexpr unsigned kSpinsBeforeYield = 128;

    std::atomic<std::uint64_t> gen_{0};
    std::atomic<unsigned> arrived_{0};
    unsigned parties_;
};

} // namespace detail

} // namespace gs

#endif // GSCALAR_SIM_PARALLEL_HPP
