#include "gmem.hpp"

#include "common/log.hpp"

namespace gs
{

GlobalMemory::Page &
GlobalMemory::page(Addr addr)
{
    const Addr key = addr / kPageBytes;
    auto &slot = pages_[key];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

const GlobalMemory::Page *
GlobalMemory::pageIfPresent(Addr addr) const
{
    const auto it = pages_.find(addr / kPageBytes);
    return it == pages_.end() ? nullptr : it->second.get();
}

Word
GlobalMemory::readWord(Addr addr) const
{
    GS_ASSERT(addr % kBytesPerWord == 0, "unaligned read at ", addr);
    const Page *p = pageIfPresent(addr);
    if (!p)
        return 0;
    Word w;
    std::memcpy(&w, p->data() + addr % kPageBytes, sizeof(w));
    return w;
}

void
GlobalMemory::writeWord(Addr addr, Word value)
{
    GS_ASSERT(addr % kBytesPerWord == 0, "unaligned write at ", addr);
    Page &p = page(addr);
    std::memcpy(p.data() + addr % kPageBytes, &value, sizeof(value));
}

void
GlobalMemory::fillWords(Addr addr, const std::vector<Word> &values)
{
    for (std::size_t i = 0; i < values.size(); ++i)
        writeWord(addr + i * kBytesPerWord, values[i]);
}

std::vector<Word>
GlobalMemory::readWords(Addr addr, std::size_t count) const
{
    std::vector<Word> out(count);
    for (std::size_t i = 0; i < count; ++i)
        out[i] = readWord(addr + i * kBytesPerWord);
    return out;
}

} // namespace gs
