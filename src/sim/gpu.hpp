/**
 * @file
 * Top-level GPU: owns the functional global memory, the shared memory
 * hierarchy and the SM array; launches grids and runs them to
 * completion.
 */

#ifndef GSCALAR_SIM_GPU_HPP
#define GSCALAR_SIM_GPU_HPP

#include <memory>

#include "common/config.hpp"
#include "common/events.hpp"
#include "gmem.hpp"
#include "isa/kernel.hpp"
#include "memory/memory_system.hpp"
#include "trace.hpp"

namespace gs
{

/**
 * A simulated GPU. Typical use:
 * @code
 *   Gpu gpu(cfg);
 *   gpu.memory().fillWords(0x1000, input);
 *   EventCounts ev = gpu.launch(kernel, {64, 256});
 * @endcode
 */
class Gpu
{
  public:
    explicit Gpu(const ArchConfig &cfg);

    /** Functional device memory (initialise inputs, read outputs). */
    GlobalMemory &memory() { return gmem_; }
    const GlobalMemory &memory() const { return gmem_; }

    /**
     * Launch @p kernel with @p dims, simulate to completion, and return
     * the merged event counters of the run. Caches and channel state
     * reset at each launch (kernel boundary).
     */
    EventCounts launch(const Kernel &kernel, LaunchDims dims);

    const ArchConfig &config() const { return cfg_; }

    /** Attach an execution tracer (nullptr to detach). Not owned. */
    void setTracer(Tracer *t) { tracer_ = t; }

  private:
    ArchConfig cfg_;
    GlobalMemory gmem_;
    Tracer *tracer_ = nullptr;
};

} // namespace gs

#endif // GSCALAR_SIM_GPU_HPP
