#include "functional.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

#include "common/bit_utils.hpp"
#include "common/log.hpp"

namespace gs
{

bool
sregIsUniform(SReg s)
{
    switch (s) {
      case SReg::Tid:
      case SReg::LaneId:
        return false;
      case SReg::CtaId:
      case SReg::NTid:
      case SReg::NCtaId:
      case SReg::WarpId:
        return true;
    }
    return false;
}

namespace
{

float
asFloat(Word w)
{
    return std::bit_cast<float>(w);
}

Word
asWord(float f)
{
    return std::bit_cast<Word>(f);
}

std::int32_t
asInt(Word w)
{
    return static_cast<std::int32_t>(w);
}

/** Integer comparison. */
bool
cmpInt(CmpOp c, std::int32_t a, std::int32_t b)
{
    switch (c) {
      case CmpOp::EQ: return a == b;
      case CmpOp::NE: return a != b;
      case CmpOp::LT: return a < b;
      case CmpOp::LE: return a <= b;
      case CmpOp::GT: return a > b;
      case CmpOp::GE: return a >= b;
    }
    return false;
}

bool
cmpFloat(CmpOp c, float a, float b)
{
    switch (c) {
      case CmpOp::EQ: return a == b;
      case CmpOp::NE: return a != b;
      case CmpOp::LT: return a < b;
      case CmpOp::LE: return a <= b;
      case CmpOp::GT: return a > b;
      case CmpOp::GE: return a >= b;
    }
    return false;
}

Word
aluOp(Opcode op, Word a, Word b, Word c)
{
    switch (op) {
      case Opcode::IADD: return Word(asInt(a) + asInt(b));
      case Opcode::ISUB: return Word(asInt(a) - asInt(b));
      case Opcode::IMUL: return Word(asInt(a) * asInt(b));
      case Opcode::IMAD: return Word(asInt(a) * asInt(b) + asInt(c));
      case Opcode::IDIV:
        if (b == 0 || (asInt(a) == INT32_MIN && asInt(b) == -1))
            return b == 0 ? 0 : a;
        return Word(asInt(a) / asInt(b));
      case Opcode::IREM:
        if (b == 0 || (asInt(a) == INT32_MIN && asInt(b) == -1))
            return 0;
        return Word(asInt(a) % asInt(b));
      case Opcode::IMIN: return Word(std::min(asInt(a), asInt(b)));
      case Opcode::IMAX: return Word(std::max(asInt(a), asInt(b)));
      case Opcode::IABS: return Word(std::abs(asInt(a)));
      case Opcode::AND: return a & b;
      case Opcode::OR: return a | b;
      case Opcode::XOR: return a ^ b;
      case Opcode::NOT: return ~a;
      case Opcode::SHL: return a << (b & 31);
      case Opcode::SHR: return a >> (b & 31);
      case Opcode::FADD: return asWord(asFloat(a) + asFloat(b));
      case Opcode::FSUB: return asWord(asFloat(a) - asFloat(b));
      case Opcode::FMUL: return asWord(asFloat(a) * asFloat(b));
      case Opcode::FFMA:
        return asWord(asFloat(a) * asFloat(b) + asFloat(c));
      case Opcode::FMIN: return asWord(std::fmin(asFloat(a), asFloat(b)));
      case Opcode::FMAX: return asWord(std::fmax(asFloat(a), asFloat(b)));
      case Opcode::FABS: return asWord(std::fabs(asFloat(a)));
      case Opcode::FNEG: return asWord(-asFloat(a));
      case Opcode::MOV: return a;
      case Opcode::I2F: return asWord(float(asInt(a)));
      case Opcode::F2I: {
        const float f = asFloat(a);
        // Saturating conversion; NaN maps to 0 (CUDA cvt semantics).
        if (!(f == f))
            return 0;
        if (f >= 2147483648.0f)
            return Word(INT32_MAX);
        if (f <= -2147483904.0f)
            return Word(INT32_MIN);
        return Word(std::int32_t(f));
      }
      case Opcode::SIN: return asWord(std::sin(asFloat(a)));
      case Opcode::COS: return asWord(std::cos(asFloat(a)));
      case Opcode::EX2: return asWord(std::exp2(asFloat(a)));
      case Opcode::LG2:
        return asWord(asFloat(a) > 0 ? std::log2(asFloat(a)) : 0.0f);
      case Opcode::RCP:
        return asWord(asFloat(a) == 0 ? 0.0f : 1.0f / asFloat(a));
      case Opcode::RSQ:
        return asWord(asFloat(a) > 0 ? 1.0f / std::sqrt(asFloat(a))
                                     : 0.0f);
      case Opcode::SQRT:
        return asWord(asFloat(a) >= 0 ? std::sqrt(asFloat(a)) : 0.0f);
      default:
        GS_PANIC("aluOp on non-ALU opcode ", opcodeName(op));
    }
}

Word
sregValue(SReg s, unsigned lane, const SregContext &ctx)
{
    switch (s) {
      case SReg::Tid: return ctx.threadBase + lane;
      case SReg::CtaId: return ctx.ctaId;
      case SReg::NTid: return ctx.nTid;
      case SReg::NCtaId: return ctx.nCtaId;
      case SReg::LaneId: return lane;
      case SReg::WarpId: return ctx.warpId;
    }
    return 0;
}

} // namespace

ExecResult
executeFunctional(const Instruction &inst, WarpState &warp, LaneMask mask,
                  const SregContext &ctx, GmemTxn &gmem,
                  std::span<Word> shared)
{
    ExecResult r;
    const unsigned ws = warp.warpSize();

    auto srcVal = [&](unsigned operand, unsigned lane) -> Word {
        if (operand == 1 && inst.hasImm)
            return inst.imm;
        return warp.regValues(inst.src[operand])[lane];
    };

    switch (inst.op) {
      case Opcode::S2R: {
        for (unsigned lane = 0; lane < ws; ++lane)
            if (mask & (LaneMask{1} << lane))
                r.dst[lane] = sregValue(inst.sreg, lane, ctx);
        r.writeMask = mask;
        break;
      }
      case Opcode::ISETP:
      case Opcode::FSETP: {
        const bool isFloat = inst.op == Opcode::FSETP;
        for (unsigned lane = 0; lane < ws; ++lane) {
            if (!(mask & (LaneMask{1} << lane)))
                continue;
            const Word a = srcVal(0, lane);
            const Word b = srcVal(1, lane);
            const bool t = isFloat
                               ? cmpFloat(inst.cmp, asFloat(a), asFloat(b))
                               : cmpInt(inst.cmp, asInt(a), asInt(b));
            if (t)
                r.predTrue |= LaneMask{1} << lane;
        }
        warp.setPred(inst.pdst, r.predTrue, mask);
        break;
      }
      case Opcode::SEL: {
        const LaneMask p = warp.pred(inst.psrc);
        for (unsigned lane = 0; lane < ws; ++lane) {
            if (!(mask & (LaneMask{1} << lane)))
                continue;
            r.dst[lane] = (p & (LaneMask{1} << lane)) ? srcVal(0, lane)
                                                      : srcVal(1, lane);
        }
        r.writeMask = mask;
        break;
      }
      case Opcode::LDG:
      case Opcode::LDS: {
        for (unsigned lane = 0; lane < ws; ++lane) {
            if (!(mask & (LaneMask{1} << lane)))
                continue;
            const Addr a = Addr(srcVal(0, lane)) + inst.imm;
            r.addrs[lane] = a;
            if (inst.op == Opcode::LDG) {
                r.dst[lane] = gmem.readWord(a & ~Addr{3});
            } else {
                const std::size_t w = (a / kBytesPerWord) %
                    std::max<std::size_t>(shared.size(), 1);
                r.dst[lane] = shared.empty() ? 0 : shared[w];
            }
        }
        r.writeMask = mask;
        break;
      }
      case Opcode::STG:
      case Opcode::STS: {
        for (unsigned lane = 0; lane < ws; ++lane) {
            if (!(mask & (LaneMask{1} << lane)))
                continue;
            const Addr a = Addr(srcVal(0, lane)) + inst.imm;
            const Word v = warp.regValues(inst.src[1])[lane];
            r.addrs[lane] = a;
            if (inst.op == Opcode::STG) {
                gmem.writeWord(a & ~Addr{3}, v);
            } else if (!shared.empty()) {
                shared[(a / kBytesPerWord) % shared.size()] = v;
            }
        }
        break;
      }
      case Opcode::SMOV: {
        // Decompress-in-place: rewrite the full register, ignoring the
        // active mask (§3.3).
        const auto cur = warp.regValues(inst.dst);
        for (unsigned lane = 0; lane < ws; ++lane)
            r.dst[lane] = cur[lane];
        r.writeMask = warp.fullMask();
        break;
      }
      case Opcode::MOV: {
        for (unsigned lane = 0; lane < ws; ++lane) {
            if (!(mask & (LaneMask{1} << lane)))
                continue;
            r.dst[lane] = inst.hasImm ? inst.imm : srcVal(0, lane);
        }
        r.writeMask = mask;
        break;
      }
      case Opcode::BRA:
      case Opcode::JMP:
      case Opcode::BAR:
      case Opcode::EXIT:
        GS_PANIC("control instruction in functional unit");
      default: {
        // Generic 1-3 source ALU/SFU operation.
        for (unsigned lane = 0; lane < ws; ++lane) {
            if (!(mask & (LaneMask{1} << lane)))
                continue;
            const Word a = srcVal(0, lane);
            const Word b = traits(inst.op).numSrcs >= 2 ? srcVal(1, lane)
                                                        : 0;
            const Word c = traits(inst.op).numSrcs >= 3
                               ? warp.regValues(inst.src[2])[lane]
                               : 0;
            r.dst[lane] = aluOp(inst.op, a, b, c);
        }
        r.writeMask = mask;
        break;
      }
    }
    return r;
}

} // namespace gs
