/**
 * @file
 * Per-warp SIMT reconvergence stack (immediate post-dominator scheme,
 * as in GPGPU-Sim). Branch divergence splits the active mask into
 * taken/fall-through entries that reconverge at the PC the kernel
 * builder computed.
 */

#ifndef GSCALAR_SIM_SIMT_STACK_HPP
#define GSCALAR_SIM_SIMT_STACK_HPP

#include <vector>

#include "common/types.hpp"

namespace gs
{

/**
 * SIMT stack. The top entry supplies the warp's current PC and active
 * mask. Entries whose PC reaches their reconvergence PC are popped,
 * resuming the (superset) entry below.
 */
class SimtStack
{
  public:
    /** Reset to a single entry covering @p mask at @p pc. */
    void reset(int pc, LaneMask mask);

    /** Current PC (top entry). */
    int pc() const;

    /** Current active mask (top entry). */
    LaneMask activeMask() const;

    /** Warp has no live entries (exited). */
    bool empty() const { return stack_.empty(); }

    /** Advance the top entry to the fall-through PC, popping at the
     *  reconvergence point. */
    void advance(int next_pc);

    /** Unconditional jump of the whole top entry. */
    void jump(int target);

    /**
     * Conditional branch executed by the top entry. @p taken is the
     * sub-mask branching to @p target; the rest falls through to
     * @p fallthrough. @p reconv is the immediate post-dominator.
     * Handles the non-divergent fast paths and the divergent split.
     */
    void branch(LaneMask taken, int target, int fallthrough, int reconv);

    /** Terminate the warp (EXIT). */
    void exit();

    /** Entries currently on the stack (tests/inspection). */
    std::size_t depth() const { return stack_.size(); }

  private:
    struct Entry
    {
        int pc;
        LaneMask mask;
        int reconv; ///< -1: never auto-pops (top-level)
    };

    void popConverged();

    std::vector<Entry> stack_;
};

} // namespace gs

#endif // GSCALAR_SIM_SIMT_STACK_HPP
