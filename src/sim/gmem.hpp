/**
 * @file
 * Functional (value-holding) device global memory. Timing is modelled
 * separately by MemorySystem; this class only stores bytes. Paged so
 * sparse address spaces stay cheap.
 */

#ifndef GSCALAR_SIM_GMEM_HPP
#define GSCALAR_SIM_GMEM_HPP

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace gs
{

/** Byte-addressable functional memory with 4 KB pages. */
class GlobalMemory
{
  public:
    /** Read a 4-byte word at @p addr (must be 4-byte aligned). */
    Word readWord(Addr addr) const;

    /** Write a 4-byte word at @p addr (must be 4-byte aligned). */
    void writeWord(Addr addr, Word value);

    /** Bulk-initialise words starting at @p addr. */
    void fillWords(Addr addr, const std::vector<Word> &values);

    /** Read @p count consecutive words starting at @p addr. */
    std::vector<Word> readWords(Addr addr, std::size_t count) const;

    /** Pages currently allocated (tests). */
    std::size_t pageCount() const { return pages_.size(); }

  private:
    static constexpr Addr kPageBytes = 4096;
    using Page = std::array<std::uint8_t, kPageBytes>;

    Page &page(Addr addr);
    const Page *pageIfPresent(Addr addr) const;

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

} // namespace gs

#endif // GSCALAR_SIM_GMEM_HPP
