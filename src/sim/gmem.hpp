/**
 * @file
 * Functional (value-holding) device global memory. Timing is modelled
 * separately by MemorySystem; this class only stores bytes. Paged so
 * sparse address spaces stay cheap.
 */

#ifndef GSCALAR_SIM_GMEM_HPP
#define GSCALAR_SIM_GMEM_HPP

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace gs
{

/** Byte-addressable functional memory with 4 KB pages. */
class GlobalMemory
{
  public:
    /** Read a 4-byte word at @p addr (must be 4-byte aligned). */
    Word readWord(Addr addr) const;

    /** Write a 4-byte word at @p addr (must be 4-byte aligned). */
    void writeWord(Addr addr, Word value);

    /** Bulk-initialise words starting at @p addr. */
    void fillWords(Addr addr, const std::vector<Word> &values);

    /** Read @p count consecutive words starting at @p addr. */
    std::vector<Word> readWords(Addr addr, std::size_t count) const;

    /** Pages currently allocated (tests). */
    std::size_t pageCount() const { return pages_.size(); }

  private:
    static constexpr Addr kPageBytes = 4096;
    using Page = std::array<std::uint8_t, kPageBytes>;

    Page &page(Addr addr);
    const Page *pageIfPresent(Addr addr) const;

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

/**
 * An SM's view of global memory. Direct by default (serial ticking:
 * every access goes straight to the backing GlobalMemory). In deferred
 * mode (parallel ticking) stores are buffered into a per-cycle write
 * log and loads snoop that log newest-first before falling back to the
 * backing store, which preserves program order *within* the SM while
 * other SMs issue concurrently; the parallel driver commits the logs
 * in SM order at the end of the cycle so the backing memory takes
 * writes in exactly the serial order. The read log exists only to let
 * the driver detect cross-SM same-cycle read/write overlap.
 */
class GmemTxn
{
  public:
    explicit GmemTxn(GlobalMemory &mem) : mem_(&mem) {}

    /** Buffer stores per cycle (parallel ticking) instead of writing
     *  through. Turning it off with a non-empty log is a bug. */
    void setDeferred(bool on) { deferred_ = on; }
    bool deferred() const { return deferred_; }

    Word
    readWord(Addr addr)
    {
        if (deferred_) {
            reads_.push_back(addr);
            for (auto it = writes_.rbegin(); it != writes_.rend(); ++it)
                if (it->first == addr)
                    return it->second;
        }
        return mem_->readWord(addr);
    }

    void
    writeWord(Addr addr, Word value)
    {
        if (deferred_) {
            writes_.emplace_back(addr, value);
            return;
        }
        mem_->writeWord(addr, value);
    }

    /** Word addresses read this cycle (deferred mode only). */
    const std::vector<Addr> &readLog() const { return reads_; }

    /** Stores buffered this cycle, in program order. */
    const std::vector<std::pair<Addr, Word>> &writeLog() const
    {
        return writes_;
    }

    /** Apply the write log to the backing memory and clear both logs. */
    void
    commit()
    {
        for (const auto &[a, v] : writes_)
            mem_->writeWord(a, v);
        writes_.clear();
        reads_.clear();
    }

  private:
    GlobalMemory *mem_;
    bool deferred_ = false;
    std::vector<Addr> reads_;
    std::vector<std::pair<Addr, Word>> writes_;
};

} // namespace gs

#endif // GSCALAR_SIM_GMEM_HPP
