#include "trace.hpp"

#include <iomanip>

namespace gs
{

void
TextTracer::onIssue(const IssueEvent &e)
{
    os_ << std::setw(8) << e.cycle << " sm" << e.smId << " w"
        << std::setw(2) << e.warp << " pc" << std::setw(3) << e.pc
        << " mask=" << std::hex << std::setw(8) << std::setfill('0')
        << (e.mask & 0xffffffffull) << std::setfill(' ') << std::dec
        << "  " << (e.inst ? e.inst->toString() : "?");
    if (e.isSpecialMove)
        os_ << "  [special-move]";
    else if (e.execScalar)
        os_ << "  [scalar:" << tierName(e.tier) << "]";
    else if (e.tier != ScalarTier::None)
        os_ << "  [eligible:" << tierName(e.tier) << "]";
    os_ << "\n";
}

void
TextTracer::onCtaLaunch(unsigned sm_id, unsigned cta_id, Cycle now)
{
    os_ << std::setw(8) << now << " sm" << sm_id << " launch cta"
        << cta_id << "\n";
}

void
TextTracer::onCtaRetire(unsigned sm_id, unsigned cta_id, Cycle now)
{
    os_ << std::setw(8) << now << " sm" << sm_id << " retire cta"
        << cta_id << "\n";
}

} // namespace gs
