/**
 * @file
 * Functional (value) execution of one warp instruction. Timing is
 * modelled elsewhere; this computes results, predicate outcomes and
 * memory effects in program order.
 */

#ifndef GSCALAR_SIM_FUNCTIONAL_HPP
#define GSCALAR_SIM_FUNCTIONAL_HPP

#include <array>
#include <span>

#include "gmem.hpp"
#include "isa/instruction.hpp"
#include "warp_state.hpp"

namespace gs
{

/** Launch-geometry context for special registers. */
struct SregContext
{
    unsigned ctaId = 0;
    unsigned nTid = 0;    ///< threads per CTA
    unsigned nCtaId = 0;  ///< CTAs in grid
    unsigned warpId = 0;  ///< warp within CTA
    unsigned threadBase = 0; ///< first thread id of this warp
};

/** True when @p s reads the same value in every lane of a warp. */
bool sregIsUniform(SReg s);

/** Outcome of functionally executing one instruction. */
struct ExecResult
{
    /** Per-lane destination values (valid in written lanes). */
    std::array<Word, kMaxWarpSize> dst{};
    /** Lanes whose predicate result is true (ISETP/FSETP). */
    LaneMask predTrue = 0;
    /** Per-lane byte addresses of a memory operation. */
    std::array<Addr, kMaxWarpSize> addrs{};
    /** Lanes that actually wrote dst (mask, or full mask for SMOV). */
    LaneMask writeMask = 0;
};

/**
 * Execute @p inst for the lanes of @p mask. Loads read and stores write
 * @p gmem or @p shared immediately (program order per warp). The GmemTxn
 * view either writes through (serial ticking) or defers stores to a
 * per-cycle log (parallel ticking); either way per-warp program order
 * is preserved.
 *
 * @param shared this CTA's shared-memory segment (word granular)
 */
ExecResult executeFunctional(const Instruction &inst, WarpState &warp,
                             LaneMask mask, const SregContext &ctx,
                             GmemTxn &gmem, std::span<Word> shared);

/** Convenience overload: execute against bare memory (write-through). */
inline ExecResult
executeFunctional(const Instruction &inst, WarpState &warp, LaneMask mask,
                  const SregContext &ctx, GlobalMemory &gmem,
                  std::span<Word> shared)
{
    GmemTxn txn(gmem);
    return executeFunctional(inst, warp, mask, ctx, txn, shared);
}

} // namespace gs

#endif // GSCALAR_SIM_FUNCTIONAL_HPP
