#include "parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>

#include "common/log.hpp"
#include "fault/fault.hpp"
#include "sm.hpp"

namespace gs
{

namespace
{

std::atomic<unsigned> g_sim_threads{0}; ///< 0 = consult the environment

/** Spin on a monotonic sequence counter until it reaches @p target. */
void
waitSeq(const std::atomic<std::uint64_t> &seq, std::uint64_t target)
{
    unsigned spins = 0;
    while (seq.load(std::memory_order_acquire) < target)
        if (++spins >= 128)
            std::this_thread::yield();
}

} // namespace

std::optional<unsigned>
parseSimThreadsValue(const std::string &s)
{
    if (s.empty() || s.size() > 4)
        return std::nullopt;
    unsigned v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9')
            return std::nullopt;
        v = v * 10 + unsigned(c - '0');
    }
    if (v == 0 || v > 4096)
        return std::nullopt;
    return v;
}

void
setSimThreads(unsigned threads)
{
    g_sim_threads.store(threads, std::memory_order_relaxed);
}

unsigned
resolveSimThreads()
{
    const unsigned set = g_sim_threads.load(std::memory_order_relaxed);
    if (set > 0)
        return set;
    if (const char *env = std::getenv("GS_SIM_THREADS")) {
        const std::optional<unsigned> v = parseSimThreadsValue(env);
        if (!v)
            GS_FATAL("GS_SIM_THREADS='", env,
                     "' is not a valid thread count (want an integer "
                     "in [1, 4096])");
        return *v;
    }
    return 1;
}

ParallelLaunchOutcome
runSmsParallel(const std::vector<Sm *> &sms, Cycle maxCycles,
               unsigned threads, const std::string &kernelName)
{
    const unsigned numSms = unsigned(sms.size());
    GS_ASSERT(threads >= 2 && threads <= numSms && maxCycles >= 1,
              "bad parallel launch shape");

    detail::SpinBarrier barrier(threads);
    // Rolling SM-order handoffs: a thread may run phase P for its SM
    // range only once the counter reaches cycle*numSms + firstSm, and
    // releases cycle*numSms + lastSm+1 when done. This reproduces the
    // exact serial visit order at the MemorySystem (memSeq) and
    // dispatcher/commit (commitSeq) seams without a full barrier.
    std::atomic<std::uint64_t> memSeq{0};
    std::atomic<std::uint64_t> commitSeq{0};
    std::vector<std::uint8_t> idle(numSms, 0);
    std::vector<Addr> cycleWrites; ///< commit-ordered; cleared by SM 0
    bool overlapWarned = false;
    ParallelLaunchOutcome outcome;

    auto body = [&](unsigned t) {
        const unsigned lo = numSms * t / threads;
        const unsigned hi = numSms * (t + 1) / threads;
        for (Cycle now = 0;; ++now) {
            const std::uint64_t base = std::uint64_t(now) * numSms;

            for (unsigned s = lo; s < hi; ++s)
                sms[s]->phaseWriteback(now);

            waitSeq(memSeq, base + lo);
            for (unsigned s = lo; s < hi; ++s)
                sms[s]->phaseDispatch(now);
            memSeq.store(base + hi, std::memory_order_release);

            for (unsigned s = lo; s < hi; ++s)
                sms[s]->phaseIssueRetire(now);

            // Chaos seam: a firing thread straggles into the barrier;
            // the phase schedule must absorb it without changing a
            // single output byte.
            if (injectFault("sim", FaultKind::Slow))
                std::this_thread::sleep_for(std::chrono::milliseconds(2));

            barrier.wait();

            waitSeq(commitSeq, base + lo);
            if (lo == 0)
                cycleWrites.clear();
            for (unsigned s = lo; s < hi; ++s) {
                const GmemTxn &txn = sms[s]->gmemTxn();
                if (!cycleWrites.empty() && !overlapWarned) {
                    for (const Addr a : txn.readLog()) {
                        if (std::find(cycleWrites.begin(),
                                      cycleWrites.end(),
                                      a) != cycleWrites.end()) {
                            overlapWarned = true;
                            GS_WARN("kernel '", kernelName,
                                    "': cross-SM same-cycle global-"
                                    "memory read/write overlap at 0x",
                                    std::hex, a, std::dec, " (cycle ",
                                    now,
                                    "); parallel ticking may diverge "
                                    "from serial");
                            break;
                        }
                    }
                }
                for (const auto &[a, v] : txn.writeLog()) {
                    (void)v;
                    cycleWrites.push_back(a);
                }
                sms[s]->phaseCommitLaunch(now);
                idle[s] = sms[s]->idle() ? 1 : 0;
            }
            commitSeq.store(base + hi, std::memory_order_release);

            barrier.wait();

            // Every thread evaluates the same flags and exits on the
            // same cycle; no further synchronisation needed.
            const bool allIdle =
                std::all_of(idle.begin(), idle.end(),
                            [](std::uint8_t f) { return f != 0; });
            if (allIdle || now + 1 >= maxCycles) {
                if (t == 0) {
                    outcome.watchdog = !allIdle;
                    outcome.cycles = allIdle ? now + 1 : maxCycles;
                }
                return;
            }
        }
    };

    auto run = [&](unsigned t) {
        try {
            body(t);
        } catch (const std::exception &e) {
            // The sim core does not throw in normal operation; an
            // escape here would deadlock the barrier crew.
            GS_PANIC("sim worker ", t, " threw: ", e.what());
        }
    };

    std::vector<std::thread> crew;
    crew.reserve(threads - 1);
    for (unsigned t = 1; t < threads; ++t)
        crew.emplace_back(run, t);
    run(0);
    for (std::thread &th : crew)
        th.join();
    return outcome;
}

} // namespace gs
