#include "memory_system.hpp"

#include <algorithm>
#include <array>

#include "common/bit_utils.hpp"

namespace gs
{

MemorySystem::MemorySystem(const ArchConfig &cfg) : cfg_(cfg)
{
    const std::size_t slice_bytes = cfg.l2Bytes / cfg.memChannels;
    for (unsigned c = 0; c < cfg.memChannels; ++c)
        l2_.emplace_back(slice_bytes, cfg.l2Assoc, cfg.lineBytes);
    l2NextFree_.assign(cfg.memChannels, 0);
    dramNextFree_.assign(cfg.memChannels, 0);
    dramServiceCycles_ = 1.0 / cfg.dramRequestsPerCycle;
}

unsigned
MemorySystem::channelOf(Addr addr) const
{
    return unsigned((addr / cfg_.lineBytes) % cfg_.memChannels);
}

Cycle
MemorySystem::access(Addr addr, bool is_store, Cycle now, EventCounts &ev)
{
    const unsigned ch = channelOf(addr);

    // One request per slice port per cycle.
    const Cycle start = std::max(l2NextFree_[ch], now) + 1;
    l2NextFree_[ch] = start;

    ++ev.l2Accesses;
    const bool hit = l2_[ch].access(addr, /*allocate=*/true);
    if (hit)
        return start + cfg_.l2Latency;

    ++ev.l2Misses;
    ++ev.dramAccesses;
    const Cycle dram_start =
        std::max<Cycle>(dramNextFree_[ch], start + cfg_.l2Latency);
    dramNextFree_[ch] = dram_start + Cycle(dramServiceCycles_);

    if (is_store) {
        // Write-through: the SM does not wait for DRAM.
        return start + cfg_.l2Latency;
    }
    return dram_start + cfg_.dramLatency;
}

void
MemorySystem::reset()
{
    for (Cache &c : l2_)
        c.clear();
    std::fill(l2NextFree_.begin(), l2NextFree_.end(), 0);
    std::fill(dramNextFree_.begin(), dramNextFree_.end(), 0);
}

std::vector<Addr>
coalesce(const std::array<Addr, kMaxWarpSize> &addrs, LaneMask mask,
         unsigned line_bytes)
{
    std::vector<Addr> lines;
    for (unsigned lane = 0; lane < kMaxWarpSize; ++lane) {
        if (!(mask & (LaneMask{1} << lane)))
            continue;
        const Addr line = addrs[lane] / line_bytes * line_bytes;
        if (std::find(lines.begin(), lines.end(), line) == lines.end())
            lines.push_back(line);
    }
    return lines;
}

} // namespace gs
