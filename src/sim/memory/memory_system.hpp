/**
 * @file
 * Timing model of the shared memory hierarchy below the SMs: L2 slices
 * (one per memory channel) and DRAM channels with limited service
 * rates. Per-SM L1 caches live in the SM; they call into this for
 * misses.
 */

#ifndef GSCALAR_SIM_MEMORY_MEMORY_SYSTEM_HPP
#define GSCALAR_SIM_MEMORY_MEMORY_SYSTEM_HPP

#include <array>
#include <vector>

#include "cache.hpp"
#include "common/config.hpp"
#include "common/events.hpp"
#include "common/types.hpp"

namespace gs
{

/** Shared L2 + DRAM timing model. */
class MemorySystem
{
  public:
    explicit MemorySystem(const ArchConfig &cfg);

    /**
     * Service an L1 miss (or uncached store) for the line containing
     * @p addr arriving at @p now.
     *
     * @param is_store store requests update tags but complete on
     *        injection (write-through, no allocate-stall)
     * @return cycle the data is available at the SM
     */
    Cycle access(Addr addr, bool is_store, Cycle now, EventCounts &ev);

    /** Reset between kernels. */
    void reset();

  private:
    unsigned channelOf(Addr addr) const;

    const ArchConfig &cfg_;
    std::vector<Cache> l2_;          ///< one slice per channel
    std::vector<Cycle> l2NextFree_;  ///< slice port
    std::vector<Cycle> dramNextFree_;
    double dramServiceCycles_;
};

/**
 * Coalesce the per-lane addresses of a memory instruction into unique
 * line-aligned segments (the memory pipeline's address coalescer).
 *
 * @return line-aligned addresses, one per distinct segment
 */
std::vector<Addr> coalesce(const std::array<Addr, kMaxWarpSize> &addrs,
                           LaneMask mask, unsigned line_bytes);

} // namespace gs

#endif // GSCALAR_SIM_MEMORY_MEMORY_SYSTEM_HPP
