#include "cache.hpp"

#include "common/bit_utils.hpp"
#include "common/log.hpp"

namespace gs
{

Cache::Cache(std::size_t bytes, unsigned assoc, unsigned line_bytes)
    : assoc_(assoc), lineShift_(log2Exact(line_bytes)),
      sets_(bytes / (std::size_t(assoc) * line_bytes))
{
    GS_ASSERT(isPow2(line_bytes), "line size must be a power of two");
    GS_ASSERT(sets_ > 0, "cache too small for its associativity");
    ways_.assign(sets_ * assoc_, Way{});
}

bool
Cache::access(Addr addr, bool allocate)
{
    ++tick_;
    const Addr line = addr >> lineShift_;
    const std::size_t set = std::size_t(line) % sets_;
    Way *base = &ways_[set * assoc_];

    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line) {
            way.lastUse = tick_;
            return true;
        }
    }
    Way *lru = base;
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = base[w];
        if (!way.valid) {
            lru = &way;
            break;
        }
        if (way.lastUse < lru->lastUse)
            lru = &way;
    }
    if (allocate) {
        lru->valid = true;
        lru->tag = line;
        lru->lastUse = tick_;
    }
    return false;
}

void
Cache::clear()
{
    for (Way &w : ways_)
        w = Way{};
    tick_ = 0;
}

} // namespace gs
