/**
 * @file
 * Tag-only set-associative cache with LRU replacement. Holds no data —
 * the functional state lives in GlobalMemory — it exists purely to
 * decide hit/miss for the timing and energy models.
 */

#ifndef GSCALAR_SIM_MEMORY_CACHE_HPP
#define GSCALAR_SIM_MEMORY_CACHE_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace gs
{

/** Tag-only cache. Addresses are line-aligned byte addresses. */
class Cache
{
  public:
    /**
     * @param bytes total capacity
     * @param assoc ways per set
     * @param line_bytes line size
     */
    Cache(std::size_t bytes, unsigned assoc, unsigned line_bytes);

    /**
     * Look up @p addr; on miss with @p allocate, victimise LRU and
     * install the line.
     * @return true on hit
     */
    bool access(Addr addr, bool allocate);

    /** Invalidate everything (kernel boundary). */
    void clear();

    std::size_t numSets() const { return sets_; }

  private:
    struct Way
    {
        Addr tag = ~Addr{0};
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    unsigned assoc_;
    unsigned lineShift_;
    std::size_t sets_;
    std::uint64_t tick_ = 0;
    std::vector<Way> ways_; ///< sets_ x assoc_
};

} // namespace gs

#endif // GSCALAR_SIM_MEMORY_CACHE_HPP
