/**
 * @file
 * Execution tracing hooks. A Tracer attached to the GPU observes every
 * issued instruction (with its mask and scalar-execution decision) and
 * CTA lifecycle events — the debugging workflow gem5-style simulators
 * rely on.
 */

#ifndef GSCALAR_SIM_TRACE_HPP
#define GSCALAR_SIM_TRACE_HPP

#include <ostream>
#include <string>

#include "common/arch_mode.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "scalar/eligibility.hpp"

namespace gs
{

/** Observer of simulation events. All callbacks are optional. */
class Tracer
{
  public:
    virtual ~Tracer() = default;

    struct IssueEvent
    {
        unsigned smId = 0;
        unsigned warp = 0;
        Cycle cycle = 0;
        int pc = 0;
        const Instruction *inst = nullptr;
        LaneMask mask = 0;
        ScalarTier tier = ScalarTier::None;
        bool execScalar = false;
        bool isSpecialMove = false;
    };

    /** An instruction (or special move) issued. */
    virtual void onIssue(const IssueEvent &) {}
    /** A workload run starts (runner-level hook; sims never call it). */
    virtual void onRunBegin(const std::string &workload, ArchMode mode)
    {
        (void)workload;
        (void)mode;
    }
    /** The current workload run finished. */
    virtual void onRunEnd(const std::string &workload)
    {
        (void)workload;
    }
    /** A CTA began executing on an SM. */
    virtual void onCtaLaunch(unsigned sm_id, unsigned cta_id, Cycle now)
    {
        (void)sm_id;
        (void)cta_id;
        (void)now;
    }
    /** A CTA finished. */
    virtual void onCtaRetire(unsigned sm_id, unsigned cta_id, Cycle now)
    {
        (void)sm_id;
        (void)cta_id;
        (void)now;
    }
};

/** Tracer printing one line per event to a stream. */
class TextTracer : public Tracer
{
  public:
    explicit TextTracer(std::ostream &os) : os_(os) {}

    void onIssue(const IssueEvent &e) override;
    void onCtaLaunch(unsigned sm_id, unsigned cta_id,
                     Cycle now) override;
    void onCtaRetire(unsigned sm_id, unsigned cta_id,
                     Cycle now) override;

  private:
    std::ostream &os_;
};

} // namespace gs

#endif // GSCALAR_SIM_TRACE_HPP
