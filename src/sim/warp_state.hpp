/**
 * @file
 * Architectural state of one warp: vector register values, predicate
 * registers (stored as lane masks), the SIMT stack, and CTA membership.
 */

#ifndef GSCALAR_SIM_WARP_STATE_HPP
#define GSCALAR_SIM_WARP_STATE_HPP

#include <span>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "compress/reg_meta.hpp"
#include "isa/instruction.hpp"
#include "simt_stack.hpp"

namespace gs
{

/** One warp's architectural and micro-architectural state. */
class WarpState
{
  public:
    /**
     * (Re)initialise for a launch.
     *
     * @param num_regs  vector registers per thread
     * @param num_preds predicate registers per thread
     * @param warp_size lanes
     * @param lanes     lanes actually populated with threads (the last
     *                  warp of a CTA may be partial)
     */
    void init(unsigned num_regs, unsigned num_preds, unsigned warp_size,
              unsigned lanes);

    /** All lanes this warp owns (partial for the last warp of a CTA). */
    LaneMask fullMask() const { return fullMask_; }

    unsigned warpSize() const { return warpSize_; }

    /** Value span of register @p r (warpSize words). */
    std::span<Word> regValues(RegIdx r);
    std::span<const Word> regValues(RegIdx r) const;

    /** Compression metadata of register @p r. */
    RegMeta &meta(RegIdx r) { return meta_[checkReg(r)]; }
    const RegMeta &meta(RegIdx r) const { return meta_[checkReg(r)]; }

    /** Predicate register @p p as a lane mask. */
    LaneMask pred(PredIdx p) const;
    void setPred(PredIdx p, LaneMask lanes_true, LaneMask written);

    /** SIMT reconvergence stack. */
    SimtStack &stack() { return stack_; }
    const SimtStack &stack() const { return stack_; }

    /** Warp finished (EXIT executed). */
    bool done() const { return stack_.empty(); }

    // ---- identity within the SM (set by the CTA dispatcher) ------------
    int ctaSlot = -1;      ///< hardware CTA slot on the SM (-1: idle)
    unsigned ctaId = 0;    ///< logical CTA index in the grid
    unsigned warpInCta = 0;///< warp index within the CTA
    unsigned threadBase = 0; ///< first thread id of this warp in the CTA
    bool atBarrier = false;

  private:
    unsigned
    checkReg(RegIdx r) const
    {
        GS_ASSERT(r >= 0 && unsigned(r) < numRegs_, "register r", r,
                  " out of range");
        return unsigned(r);
    }

    unsigned numRegs_ = 0;
    unsigned numPreds_ = 0;
    unsigned warpSize_ = 0;
    LaneMask fullMask_ = 0;

    std::vector<Word> regs_;      ///< numRegs x warpSize values
    std::vector<RegMeta> meta_;   ///< numRegs entries
    std::vector<LaneMask> preds_; ///< numPreds lane masks
    SimtStack stack_;
};

} // namespace gs

#endif // GSCALAR_SIM_WARP_STATE_HPP
