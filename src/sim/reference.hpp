/**
 * @file
 * Per-thread reference interpreter: executes a kernel one thread at a
 * time as ordinary sequential code, with barrier-phase synchronisation
 * for shared memory. For barrier-disciplined kernels (no reliance on
 * intra-warp lockstep between barriers) it defines the architectural
 * result the SIMT pipeline must reproduce — the differential-testing
 * oracle used by the randomized test suite.
 */

#ifndef GSCALAR_SIM_REFERENCE_HPP
#define GSCALAR_SIM_REFERENCE_HPP

#include <cstdint>

#include "gmem.hpp"
#include "isa/kernel.hpp"

namespace gs
{

/**
 * Execute @p kernel over the whole grid against @p mem, thread by
 * thread. CTAs run sequentially; within a CTA, threads advance in
 * barrier-delimited phases (every thread runs to its next BAR or EXIT
 * before any thread passes the barrier).
 */
void referenceExecute(const Kernel &kernel, LaunchDims dims,
                      GlobalMemory &mem);

/**
 * Like referenceExecute(), but gives up after @p maxSteps executed
 * instructions across the whole grid (0 = unbounded) and returns false
 * instead of spinning forever. The fuzz minimizer probes candidate
 * kernels whose control flow may no longer terminate (a removed loop
 * increment); a bounded oracle turns those into a rejected candidate
 * rather than a hang. The kernel must satisfy Kernel::check().
 */
bool referenceExecuteBounded(const Kernel &kernel, LaunchDims dims,
                             GlobalMemory &mem, std::uint64_t maxSteps);

} // namespace gs

#endif // GSCALAR_SIM_REFERENCE_HPP
