/**
 * @file
 * Delta-debugging minimizer for miscomparing kernels. Greedy chunked
 * removal (ddmin-style): try deleting halves, then quarters, down to
 * single instructions, keeping any candidate that (a) still passes
 * Kernel::check() after PC remapping and (b) still trips the caller's
 * badness predicate. The result is a small reproducer a human can read
 * in one sitting instead of a 500-instruction haystack.
 */

#ifndef GSCALAR_GEN_MINIMIZE_HPP
#define GSCALAR_GEN_MINIMIZE_HPP

#include <cstdint>
#include <functional>

#include "isa/kernel.hpp"

namespace gs
{

/** Outcome of one minimization run. */
struct MinimizeResult
{
    Kernel kernel;              ///< smallest still-bad kernel found
    std::uint64_t probes = 0;   ///< candidate evaluations spent
    std::uint64_t removed = 0;  ///< instructions deleted from the input
};

/**
 * Shrink @p kernel while @p stillBad holds. The predicate receives a
 * structurally valid candidate (check() passed) and must return true
 * when the candidate still exhibits the failure. Deterministic: the
 * same kernel and predicate always produce the same reproducer.
 * @p maxProbes bounds predicate evaluations (0 = unbounded).
 */
MinimizeResult
minimizeKernel(const Kernel &kernel,
               const std::function<bool(const Kernel &)> &stillBad,
               std::uint64_t maxProbes = 0);

} // namespace gs

#endif // GSCALAR_GEN_MINIMIZE_HPP
