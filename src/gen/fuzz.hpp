/**
 * @file
 * Differential fuzzing campaigns: draw N GenSpecs from a campaign
 * seed, run every generated kernel through the cycle-level GPU (all
 * architecture modes) against the reference interpreter, and on any
 * mismatch delta-debug the kernel down to a minimal reproducer and
 * write it to the corpus directory. The campaign is deterministic end
 * to end: same seed and knobs, same kernels, same report bytes —
 * regardless of --jobs or --sim-threads.
 */

#ifndef GSCALAR_GEN_FUZZ_HPP
#define GSCALAR_GEN_FUZZ_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "diff.hpp"
#include "spec.hpp"

namespace gs
{

/** Campaign configuration (the CLI's `gscalar fuzz` flags). */
struct FuzzOptions
{
    std::uint64_t count = 100; ///< kernels to generate and diff
    std::uint64_t seed = 1;    ///< campaign seed (drives every spec)
    DiffOptions diff;          ///< per-kernel differential knobs
    /** Corpus directory for reproducer artifacts ("" = don't write). */
    std::string corpusDir;
    /** Knobs pinned across the campaign (--knob k=v), overriding the
     *  drawn value; e.g. pin div=0 to fuzz convergent kernels only. */
    std::vector<std::pair<std::string, std::string>> knobs;
    /** Diff worker threads; 0 = the engine's worker count. */
    unsigned jobs = 0;
    /** Also submit every spec through the shared ExperimentEngine
     *  (exercising cache keying and the full harness path). */
    bool engineTraffic = true;
};

/** What a campaign did. */
struct FuzzCampaignResult
{
    std::uint64_t kernels = 0;     ///< kernels generated and diffed
    std::uint64_t miscompares = 0; ///< kernels with >= 1 failing mode
    std::uint64_t refAborts = 0;   ///< kernels the oracle gave up on
    std::vector<std::string> artifacts; ///< reproducer paths written
    /** Deterministic per-miscompare report lines (stdout material). */
    std::vector<std::string> reportLines;
    /** One-line campaign summary (stdout material). */
    std::string summaryText;

    bool clean() const { return miscompares == 0; }
};

/**
 * The i-th spec of a campaign: every knob drawn from a SplitMix64
 * stream keyed by (campaign seed, i), then the pinned knobs applied.
 * Pure function — workers and replays recompute it freely. GS_FATAL
 * when pinned knobs produce an invalid spec.
 */
GenSpec drawSpec(std::uint64_t campaignSeed, std::uint64_t index,
                 const std::vector<std::pair<std::string, std::string>>
                     &pinned = {});

/** Run a campaign. */
FuzzCampaignResult runFuzzCampaign(const FuzzOptions &opt);

/**
 * Replay one corpus artifact: re-diff its kernel under its recorded
 * mode and compare against the recorded mismatch. Returns true when
 * the exact mismatch reproduces; *detail gets a one-line account
 * either way.
 */
bool replayReproducer(const std::string &path, const DiffOptions &opt,
                      std::string *detail = nullptr);

/**
 * Strict digit-only parses in the GS_JOBS idiom: the whole string must
 * be digits, count in [1, 1000000], seed any u64. Empty optional on
 * anything else — callers reject loudly instead of defaulting.
 */
std::optional<std::uint64_t> parseCountValue(const std::string &s);
std::optional<std::uint64_t> parseSeedValue(const std::string &s);

} // namespace gs

#endif // GSCALAR_GEN_FUZZ_HPP
