/**
 * @file
 * Differential execution of one generated kernel: the cycle-level GPU
 * in every architecture mode against the per-thread reference
 * interpreter, comparing the full output region word by word. A
 * mismatch is the fuzzer's bug signal; the reference aborting (step
 * budget exhausted) marks a kernel the campaign must skip, not a bug.
 */

#ifndef GSCALAR_GEN_DIFF_HPP
#define GSCALAR_GEN_DIFF_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/arch_mode.hpp"
#include "isa/kernel.hpp"

#include "spec.hpp"

namespace gs
{

/** Knobs of one differential run. */
struct DiffOptions
{
    /** Architecture modes to run; default is all six. */
    std::vector<ArchMode> modes = {
        ArchMode::Baseline,          ArchMode::AluScalar,
        ArchMode::WarpedCompression, ArchMode::GScalarCompressOnly,
        ArchMode::GScalarNoDiv,      ArchMode::GScalarFull};
    unsigned numSms = 2;
    /** Cycle-sim watchdog per mode (partial results past this). */
    std::uint64_t maxCycles = 20'000'000;
    /** Reference-interpreter step budget (0 = unbounded). */
    std::uint64_t maxRefSteps = 200'000'000;
};

/** One differing output word. */
struct DiffMismatch
{
    ArchMode mode = ArchMode::Baseline;
    std::uint64_t index = 0; ///< word index into the output region
    std::uint32_t want = 0;  ///< reference value
    std::uint32_t got = 0;   ///< cycle-sim value
    bool injected = false;   ///< true when the gen:miscompare fault fired
};

/** Result of diffing one kernel across the requested modes. */
struct DiffOutcome
{
    /** Reference ran out of steps; no comparison was possible. */
    bool refAborted = false;
    /** First mismatch per failing mode (empty = all modes agree). */
    std::vector<DiffMismatch> mismatches;

    bool clean() const { return !refAborted && mismatches.empty(); }
};

/**
 * Run @p kernel (described by @p spec, which supplies input data and
 * launch geometry) through the reference interpreter once and the
 * cycle-level GPU in every requested mode, comparing the full output
 * region. The kernel need not be generateKernel(spec) — the minimizer
 * diffs mutated kernels under the original spec's data and geometry.
 */
DiffOutcome diffKernel(const Kernel &kernel, const GenSpec &spec,
                       const DiffOptions &opt = {});

/**
 * Diff against a single mode; the minimizer's predicate. Returns true
 * when the mode MIScompares (or the reference aborts — a candidate
 * that stops terminating is not a simpler reproducer).
 */
bool diffOneMode(const Kernel &kernel, const GenSpec &spec, ArchMode mode,
                 const DiffOptions &opt, DiffMismatch *first = nullptr);

/** One-line human rendering ("mode=gscalar word 17: want 3 got 4"). */
std::string describeMismatch(const DiffMismatch &m);

} // namespace gs

#endif // GSCALAR_GEN_DIFF_HPP
