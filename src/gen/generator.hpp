/**
 * @file
 * The kernel generator: expands a GenSpec into a random-but-valid
 * Kernel through KernelBuilder. Determinism is the contract — all
 * randomness flows through gs::Rng (SplitMix64-seeded xorshift128+)
 * with integer-only rolls, so a spec generates byte-identical kernels
 * on every platform and compiler. Generated kernels deliberately mix
 * warp-uniform, affine and varying dataflow, structured divergence,
 * predication, shared-memory exchanges and strided/indirect global
 * access — the exact axes the G-Scalar architecture modes disagree on
 * when one of them is wrong, which is what the differential fuzzer
 * (diff.hpp) exists to catch.
 */

#ifndef GSCALAR_GEN_GENERATOR_HPP
#define GSCALAR_GEN_GENERATOR_HPP

#include <cstdint>

#include "isa/kernel.hpp"
#include "sim/gmem.hpp"
#include "workloads/workload.hpp"

#include "spec.hpp"

namespace gs
{

/** Base byte address of the generated kernel's input array. */
inline constexpr std::uint64_t kGenIn = 0x100000;

/** Base byte address of the generated kernel's output array. */
inline constexpr std::uint64_t kGenOut = 0x400000;

/** Register-pool values every generated kernel stores on exit. */
inline constexpr std::uint32_t kGenStoredRegs = 16;

/** Words in the input array: power of two ≥ max(256, threads*stride),
 *  so indirect accesses can be masked into range with a single AND. */
std::uint64_t genInputWords(const GenSpec &spec);

/** Words in the output array: kGenStoredRegs per thread. */
std::uint64_t genOutputWords(const GenSpec &spec);

/** Deterministically fill the input array from spec.seed. */
void fillGenInput(GlobalMemory &mem, const GenSpec &spec);

/** Expand @p spec into a kernel. GS_FATAL on an invalid spec. */
Kernel generateKernel(const GenSpec &spec);

/**
 * Wrap @p spec as a harness Workload: name = spec.toName(), setup =
 * fillGenInput (the workload seed parameter is ignored — the spec's
 * own seed decides the data, keeping name → result a pure function),
 * one launch of {ctas, tpc}.
 */
Workload makeGenWorkload(const GenSpec &spec);

/**
 * Install the "gen:..." workload resolver (workload.hpp) so generated
 * specs resolve anywhere a Table 2 abbreviation does. Idempotent;
 * binaries call it from main() — explicit registration instead of a
 * static initializer, which a static library would dead-strip.
 */
void registerGenWorkloads();

} // namespace gs

#endif // GSCALAR_GEN_GENERATOR_HPP
