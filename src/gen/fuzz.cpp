#include "fuzz.hpp"

#include <algorithm>
#include <mutex>

#include "common/config.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "harness/engine.hpp"

#include "artifact.hpp"
#include "generator.hpp"
#include "minimize.hpp"

namespace gs
{

namespace
{

/** SplitMix64 mixing step (decorrelates campaign seed and index). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Probes the minimizer spends per reproducer before settling. */
constexpr std::uint64_t kMinimizeProbeBudget = 2000;

} // namespace

GenSpec
drawSpec(std::uint64_t campaignSeed, std::uint64_t index,
         const std::vector<std::pair<std::string, std::string>> &pinned)
{
    Rng rng(mix64(campaignSeed ^ mix64(index + 1)));
    GenSpec spec;
    spec.seed = rng.next64();
    spec.ops = std::uint32_t(8 + rng.below(41));    // 8..48
    spec.ctas = std::uint32_t(1 + rng.below(3));    // 1..3
    spec.tpc = std::uint32_t(16 + rng.below(113));  // 16..128
    spec.div = std::uint32_t(rng.below(61));
    spec.pred = std::uint32_t(rng.below(41));
    spec.scalar = std::uint32_t(rng.below(61));
    spec.affine =
        std::uint32_t(rng.below(std::min<std::uint64_t>(
                          61, 101 - spec.scalar)));
    spec.stride = std::uint32_t(1 + rng.below(4));
    spec.ind = std::uint32_t(rng.below(41));
    spec.sfu = std::uint32_t(rng.below(41));
    spec.shared = std::uint32_t(rng.below(31));

    for (const auto &[knob, value] : pinned) {
        std::string why;
        if (!setGenKnob(spec, knob, value, &why))
            GS_FATAL("fuzz --knob ", knob, "=", value, ": ", why);
    }
    // A pinned scalar can push the drawn affine over the shared 100%
    // budget; trim the drawn half rather than rejecting the pin.
    if (spec.scalar + spec.affine > 100) {
        bool affinePinned = false;
        for (const auto &[knob, value] : pinned)
            affinePinned = affinePinned || knob == "affine";
        if (!affinePinned)
            spec.affine = 100 - spec.scalar;
    }
    if (const std::string why = spec.check(); !why.empty())
        GS_FATAL("fuzz spec ", index, " (seed ", campaignSeed,
                 "): pinned knobs produce an invalid spec: ", why);
    return spec;
}

FuzzCampaignResult
runFuzzCampaign(const FuzzOptions &opt)
{
    GS_ASSERT(opt.count > 0, "fuzz campaign wants count >= 1");

    // Specs first, serially: cheap, and keeps the draw order (and thus
    // every kernel) independent of worker scheduling.
    std::vector<GenSpec> specs;
    specs.reserve(opt.count);
    for (std::uint64_t i = 0; i < opt.count; ++i)
        specs.push_back(drawSpec(opt.seed, i, opt.knobs));

    std::vector<DiffOutcome> outcomes(opt.count);
    std::vector<std::shared_future<RunResult>> engineRuns;
    std::mutex engineMutex;

    ArchConfig engineCfg;
    engineCfg.mode = ArchMode::Baseline;
    engineCfg.numSms = opt.diff.numSms;
    engineCfg.maxCycles = opt.diff.maxCycles;

    {
        // Scoped pool: destruction drains the queue and joins, so the
        // post-pass below sees every outcome.
        WorkerPool pool(opt.jobs ? opt.jobs : defaultEngine().jobs());
        for (std::uint64_t i = 0; i < opt.count; ++i) {
            pool.submit([&, i] {
                const Kernel kernel = generateKernel(specs[i]);
                outcomes[i] = diffKernel(kernel, specs[i], opt.diff);
                if (opt.engineTraffic) {
                    std::shared_future<RunResult> f =
                        defaultEngine().submit(makeGenWorkload(specs[i]),
                                               engineCfg);
                    std::lock_guard<std::mutex> lock(engineMutex);
                    engineRuns.push_back(std::move(f));
                }
            });
        }
    }
    for (const std::shared_future<RunResult> &f : engineRuns)
        f.wait();

    // Post-pass in index order: minimization, artifacts and report
    // lines are deterministic regardless of worker interleaving.
    FuzzCampaignResult result;
    result.kernels = opt.count;
    for (std::uint64_t i = 0; i < opt.count; ++i) {
        const DiffOutcome &outcome = outcomes[i];
        if (outcome.refAborted) {
            ++result.refAborts;
            continue;
        }
        if (outcome.mismatches.empty())
            continue;
        ++result.miscompares;

        const DiffMismatch &first = outcome.mismatches.front();
        const Kernel kernel = generateKernel(specs[i]);
        const MinimizeResult minimized = minimizeKernel(
            kernel,
            [&](const Kernel &candidate) {
                return diffOneMode(candidate, specs[i], first.mode,
                                   opt.diff);
            },
            kMinimizeProbeBudget);

        // Re-diff the minimized kernel so the artifact records the
        // mismatch of the kernel it actually carries.
        DiffMismatch minimizedMismatch = first;
        diffOneMode(minimized.kernel, specs[i], first.mode, opt.diff,
                    &minimizedMismatch);

        std::string line = "MISCOMPARE kernel " + std::to_string(i) +
                           " (" + specs[i].toName() + "): " +
                           describeMismatch(minimizedMismatch) + "; minimized " +
                           std::to_string(kernel.code.size()) + " -> " +
                           std::to_string(minimized.kernel.code.size()) +
                           " instructions";

        if (!opt.corpusDir.empty()) {
            Reproducer repro;
            repro.spec = specs[i];
            repro.kernel = minimized.kernel;
            repro.mode = minimizedMismatch.mode;
            repro.index = minimizedMismatch.index;
            repro.want = minimizedMismatch.want;
            repro.got = minimizedMismatch.got;
            repro.note = "campaign seed " + std::to_string(opt.seed) +
                         " kernel " + std::to_string(i);
            std::string error;
            const std::string path =
                writeReproducer(repro, opt.corpusDir, &error);
            if (path.empty()) {
                line += "; ARTIFACT-WRITE-FAILED: " + error;
            } else {
                result.artifacts.push_back(path);
                line += "; artifact " + path;
            }
        }
        result.reportLines.push_back(std::move(line));
    }

    result.summaryText =
        "fuzz: kernels=" + std::to_string(result.kernels) +
        " miscompares=" + std::to_string(result.miscompares) +
        " ref-aborts=" + std::to_string(result.refAborts) +
        " artifacts=" + std::to_string(result.artifacts.size()) +
        " seed=" + std::to_string(opt.seed);
    return result;
}

bool
replayReproducer(const std::string &path, const DiffOptions &opt,
                 std::string *detail)
{
    auto note = [&](const std::string &text) {
        if (detail)
            *detail = text;
    };

    std::string error;
    const std::optional<Reproducer> repro = loadReproducer(path, &error);
    if (!repro) {
        note("cannot load '" + path + "': " + error);
        return false;
    }

    DiffMismatch got;
    if (!diffOneMode(repro->kernel, repro->spec, repro->mode, opt,
                     &got)) {
        note("no miscompare: mode " +
             std::string(archModeName(repro->mode)) +
             " now agrees with the reference");
        return false;
    }
    if (got.index != repro->index || got.want != repro->want ||
        got.got != repro->got) {
        note("different miscompare: recorded " +
             describeMismatch({repro->mode, repro->index, repro->want,
                               repro->got, false}) +
             ", observed " + describeMismatch(got));
        return false;
    }
    note("reproduced: " + describeMismatch(got));
    return true;
}

std::optional<std::uint64_t>
parseCountValue(const std::string &s)
{
    if (s.empty() || s.size() > 7 ||
        s.find_first_not_of("0123456789") != std::string::npos)
        return std::nullopt;
    const std::uint64_t v = std::stoull(s);
    if (v < 1 || v > 1'000'000)
        return std::nullopt;
    return v;
}

std::optional<std::uint64_t>
parseSeedValue(const std::string &s)
{
    if (s.empty() || s.size() > 20 ||
        s.find_first_not_of("0123456789") != std::string::npos)
        return std::nullopt;
    std::uint64_t v = 0;
    for (const char c : s) {
        const std::uint64_t digit = std::uint64_t(c - '0');
        if (v > (UINT64_MAX - digit) / 10)
            return std::nullopt;
        v = v * 10 + digit;
    }
    return v;
}

} // namespace gs
