#include "minimize.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace gs
{

namespace
{

/**
 * Remove instructions [lo, hi) and remap every PC reference. PCs
 * inside the deleted range collapse to lo (the instruction that now
 * sits where the range began); PCs past it shift down. Regions that
 * become empty are dropped.
 */
Kernel
removeRange(const Kernel &k, int lo, int hi)
{
    const int cut = hi - lo;
    const auto map = [lo, hi, cut](int pc) {
        if (pc < lo)
            return pc;
        if (pc >= hi)
            return pc - cut;
        return lo;
    };

    Kernel out;
    out.name = k.name;
    out.numRegs = k.numRegs;
    out.numPreds = k.numPreds;
    out.sharedBytes = k.sharedBytes;

    out.code.reserve(k.code.size() - std::size_t(cut));
    for (std::size_t pc = 0; pc < k.code.size(); ++pc) {
        if (int(pc) >= lo && int(pc) < hi)
            continue;
        Instruction inst = k.code[pc];
        if (inst.target >= 0)
            inst.target = map(inst.target);
        if (inst.reconv >= 0)
            inst.reconv = map(inst.reconv);
        out.code.push_back(inst);
        out.enclosingPreds.push_back(
            pc < k.enclosingPreds.size() ? k.enclosingPreds[pc]
                                         : std::vector<PredIdx>{});
    }

    for (Kernel::Region r : k.regions) {
        r.start = map(r.start);
        r.end = map(r.end);
        r.checkPc = map(r.checkPc);
        if (r.start < r.end)
            out.regions.push_back(r);
    }
    return out;
}

} // namespace

MinimizeResult
minimizeKernel(const Kernel &kernel,
               const std::function<bool(const Kernel &)> &stillBad,
               std::uint64_t maxProbes)
{
    MinimizeResult result;
    result.kernel = kernel;

    GS_ASSERT(!kernel.code.empty(), "minimize: empty kernel");

    auto probe = [&](const Kernel &candidate) {
        ++result.probes;
        return candidate.check().empty() && stillBad(candidate);
    };

    // Never delete the trailing EXIT: check() requires it, so every
    // removal window ranges over [0, n-1) only.
    bool shrunk = true;
    while (shrunk) {
        shrunk = false;
        const int n = int(result.kernel.code.size()) - 1;
        if (n <= 0)
            break;
        for (int chunk = std::max(1, n / 2); chunk >= 1; chunk /= 2) {
            for (int lo = 0;;) {
                // Re-read the size: every accepted removal shrinks it.
                const int limit = int(result.kernel.code.size()) - 1;
                if (lo + chunk > limit)
                    break;
                if (maxProbes != 0 && result.probes >= maxProbes)
                    return result;
                const Kernel candidate =
                    removeRange(result.kernel, lo, lo + chunk);
                if (probe(candidate)) {
                    result.kernel = candidate;
                    result.removed += std::uint64_t(chunk);
                    shrunk = true;
                    // Same lo now names the next window.
                } else {
                    lo += chunk;
                }
            }
        }
    }
    return result;
}

} // namespace gs
