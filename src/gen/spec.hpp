/**
 * @file
 * GenSpec: the knob set of the kernel generator. A spec fully
 * determines one generated kernel (generator.hpp) — same spec, same
 * bytes, on every platform — so a spec is also a *name*: its canonical
 * text form ("gen:seed=1,ops=24,...") is a workload name the harness
 * resolves like a Table 2 abbreviation, and its fingerprint content-
 * addresses generated runs in the engine and disk caches the same way
 * ArchConfig::fingerprint() addresses configurations.
 */

#ifndef GSCALAR_GEN_SPEC_HPP
#define GSCALAR_GEN_SPEC_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace gs
{

/**
 * Knobs of one generated kernel. All integers: the generator must be
 * byte-stable across platforms, so no knob is ever a float.
 * Percentage knobs are in [0, 100] and bias the per-step emission
 * rolls; they are biases, not guarantees.
 */
struct GenSpec
{
    /** Generator RNG seed (also seeds the kernel's input data). */
    std::uint64_t seed = 1;
    /** Top-level emission steps (a step expands to 1-6 instructions). */
    std::uint32_t ops = 24;
    /** CTAs in the launch grid. */
    std::uint32_t ctas = 2;
    /** Threads per CTA (need not be a warp-size multiple). */
    std::uint32_t tpc = 64;
    /** % of steps that emit structured control flow (divergence). */
    std::uint32_t div = 30;
    /** % of steps that emit a guarded (predicated) block. */
    std::uint32_t pred = 15;
    /** % of value ops with warp-uniform destination and sources. */
    std::uint32_t scalar = 25;
    /** % of value ops shaped as affine (base + tid * stride) updates. */
    std::uint32_t affine = 20;
    /** Words between consecutive threads' strided loads. */
    std::uint32_t stride = 1;
    /** % of loads that are data-dependent (indirect) accesses. */
    std::uint32_t ind = 10;
    /** % of varying value ops drawn from the FP/SFU families. */
    std::uint32_t sfu = 15;
    /** % of top-level steps that emit an STS/BAR/LDS exchange. */
    std::uint32_t shared = 10;

    /** First out-of-range knob, or empty when the spec is valid. */
    std::string check() const;

    /** GS_FATAL on an invalid spec. */
    void validate() const;

    /**
     * Stable content hash over every knob (ArchConfig::fingerprint
     * style). Two specs with the same fingerprint generate the same
     * kernel. Stable within a build; not a serialization format.
     */
    std::uint64_t fingerprint() const;

    /**
     * Canonical workload name: "gen:seed=S,ops=N,...,shared=H" with
     * every knob in a fixed order, so equal specs always render the
     * same name (the engine's cache key) and parse() round-trips.
     */
    std::string toName() const;

    bool operator==(const GenSpec &) const = default;
};

/**
 * Parse a "gen:..." workload name. Strict: every entry must be
 * knob=value with digits-only values, knobs must be known and unique,
 * and the result must pass check(). Missing knobs keep their defaults.
 * Empty optional (with *error set) on anything else.
 */
std::optional<GenSpec> parseGenSpec(const std::string &name,
                                    std::string *error = nullptr);

/**
 * Set one knob by name ("ops", "seed", ...) with the same strict value
 * rules as parseGenSpec. False (with *error) on an unknown knob or a
 * malformed/out-of-range value.
 */
bool setGenKnob(GenSpec &spec, const std::string &knob,
                const std::string &value, std::string *error = nullptr);

/** Knob names accepted by setGenKnob, in canonical-name order. */
std::vector<std::string> genKnobNames();

// ---- binary round trip (store wire format, BlobKind::GenSpec) ------------

std::vector<std::uint8_t> serializeGenSpec(const GenSpec &spec);
std::optional<GenSpec> deserializeGenSpec(const std::uint8_t *data,
                                          std::size_t size,
                                          std::string *error = nullptr);

inline std::optional<GenSpec>
deserializeGenSpec(const std::vector<std::uint8_t> &buf,
                   std::string *error = nullptr)
{
    return deserializeGenSpec(buf.data(), buf.size(), error);
}

} // namespace gs

#endif // GSCALAR_GEN_SPEC_HPP
