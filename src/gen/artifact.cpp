#include "artifact.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "store/serial.hpp"

namespace gs
{

namespace
{

// Kernel blob tags.
constexpr std::uint16_t kTagName = 1;
constexpr std::uint16_t kTagNumRegs = 2;
constexpr std::uint16_t kTagNumPreds = 3;
constexpr std::uint16_t kTagSharedBytes = 4;
constexpr std::uint16_t kTagCode = 5;
constexpr std::uint16_t kTagRegions = 6;
constexpr std::uint16_t kTagEnclosing = 7;

// Reproducer blob tags.
constexpr std::uint16_t kTagSpec = 1;
constexpr std::uint16_t kTagKernel = 2;
constexpr std::uint16_t kTagMode = 3;
constexpr std::uint16_t kTagIndex = 4;
constexpr std::uint16_t kTagWant = 5;
constexpr std::uint16_t kTagGot = 6;
constexpr std::uint16_t kTagNote = 7;

/** Fixed 45-byte little-endian packing of one Instruction. */
constexpr std::size_t kInstBytes = 45;

void
put32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(std::uint8_t(v));
    out.push_back(std::uint8_t(v >> 8));
    out.push_back(std::uint8_t(v >> 16));
    out.push_back(std::uint8_t(v >> 24));
}

std::uint32_t
get32(const std::uint8_t *p)
{
    return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
           (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

void
packInstruction(std::vector<std::uint8_t> &out, const Instruction &inst)
{
    out.push_back(std::uint8_t(inst.op));
    put32(out, std::uint32_t(inst.dst));
    for (const RegIdx s : inst.src)
        put32(out, std::uint32_t(s));
    put32(out, inst.imm);
    out.push_back(inst.hasImm ? 1 : 0);
    put32(out, std::uint32_t(inst.pdst));
    put32(out, std::uint32_t(inst.psrc));
    out.push_back(std::uint8_t(inst.cmp));
    put32(out, std::uint32_t(inst.guard));
    out.push_back(inst.guardNeg ? 1 : 0);
    out.push_back(std::uint8_t(inst.sreg));
    put32(out, std::uint32_t(inst.target));
    put32(out, std::uint32_t(inst.reconv));
}

/**
 * Decode one packed instruction. Enum *selectors* are range-checked
 * here (cmp, sreg); an out-of-range opcode byte is representable in
 * the Instruction and left for Kernel::check() to reject, keeping one
 * authority for what a well-formed kernel is.
 */
bool
unpackInstruction(const std::uint8_t *p, Instruction &inst,
                  std::string *why)
{
    std::size_t off = 0;
    inst.op = Opcode(p[off]);
    off += 1;
    inst.dst = RegIdx(get32(p + off));
    off += 4;
    for (RegIdx &s : inst.src) {
        s = RegIdx(get32(p + off));
        off += 4;
    }
    inst.imm = get32(p + off);
    off += 4;
    inst.hasImm = p[off] != 0;
    off += 1;
    inst.pdst = PredIdx(get32(p + off));
    off += 4;
    inst.psrc = PredIdx(get32(p + off));
    off += 4;
    if (p[off] > std::uint8_t(CmpOp::GE)) {
        *why = "instruction cmp byte " + std::to_string(p[off]) +
               " out of range";
        return false;
    }
    inst.cmp = CmpOp(p[off]);
    off += 1;
    inst.guard = PredIdx(get32(p + off));
    off += 4;
    inst.guardNeg = p[off] != 0;
    off += 1;
    if (p[off] > std::uint8_t(SReg::WarpId)) {
        *why = "instruction sreg byte " + std::to_string(p[off]) +
               " out of range";
        return false;
    }
    inst.sreg = SReg(p[off]);
    off += 1;
    inst.target = int(get32(p + off));
    off += 4;
    inst.reconv = int(get32(p + off));
    return true;
}

} // namespace

std::vector<std::uint8_t>
serializeKernel(const Kernel &kernel)
{
    ByteWriter w(BlobKind::Kernel);
    w.field(kTagName, kernel.name);
    w.field(kTagNumRegs, std::uint32_t(kernel.numRegs));
    w.field(kTagNumPreds, std::uint32_t(kernel.numPreds));
    w.field(kTagSharedBytes, std::uint32_t(kernel.sharedBytes));

    std::vector<std::uint8_t> code;
    code.reserve(kernel.code.size() * kInstBytes);
    for (const Instruction &inst : kernel.code)
        packInstruction(code, inst);
    w.fieldBlob(kTagCode, code);

    std::vector<std::uint8_t> regions;
    put32(regions, std::uint32_t(kernel.regions.size()));
    for (const Kernel::Region &r : kernel.regions) {
        put32(regions, std::uint32_t(r.start));
        put32(regions, std::uint32_t(r.end));
        put32(regions, std::uint32_t(r.checkPc));
    }
    w.fieldBlob(kTagRegions, regions);

    // Enclosing-pred lists: per-pc count followed by the pred indexes.
    std::vector<std::uint8_t> enclosing;
    put32(enclosing, std::uint32_t(kernel.enclosingPreds.size()));
    for (const std::vector<PredIdx> &preds : kernel.enclosingPreds) {
        put32(enclosing, std::uint32_t(preds.size()));
        for (const PredIdx p : preds)
            put32(enclosing, std::uint32_t(p));
    }
    w.fieldBlob(kTagEnclosing, enclosing);

    return w.finish();
}

std::optional<Kernel>
deserializeKernel(const std::uint8_t *data, std::size_t size,
                  std::string *error)
{
    ByteReader r(data, size, BlobKind::Kernel);
    Kernel k;
    std::uint32_t numRegs = 0, numPreds = 0, sharedBytes = 0;
    r.get(kTagName, k.name);
    r.get(kTagNumRegs, numRegs);
    r.get(kTagNumPreds, numPreds);
    r.get(kTagSharedBytes, sharedBytes);
    k.numRegs = numRegs;
    k.numPreds = numPreds;
    k.sharedBytes = sharedBytes;

    const std::uint8_t *p = nullptr;
    std::size_t n = 0;
    if (r.ok() && r.getBlob(kTagCode, p, n)) {
        if (n % kInstBytes != 0) {
            r.fail("kernel code blob of " + std::to_string(n) +
                   " bytes is not a whole number of instructions");
        } else {
            k.code.resize(n / kInstBytes);
            std::string why;
            for (std::size_t i = 0; i < k.code.size(); ++i) {
                if (!unpackInstruction(p + i * kInstBytes, k.code[i],
                                       &why)) {
                    r.fail("pc " + std::to_string(i) + ": " + why);
                    break;
                }
            }
        }
    }

    if (r.ok() && r.getBlob(kTagRegions, p, n)) {
        if (n < 4 || (n - 4) % 12 != 0 ||
            get32(p) != (n - 4) / 12) {
            r.fail("kernel regions blob is malformed");
        } else {
            const std::uint32_t count = get32(p);
            for (std::uint32_t i = 0; i < count; ++i) {
                Kernel::Region region;
                region.start = int(get32(p + 4 + i * 12));
                region.end = int(get32(p + 4 + i * 12 + 4));
                region.checkPc = int(get32(p + 4 + i * 12 + 8));
                k.regions.push_back(region);
            }
        }
    }

    if (r.ok() && r.getBlob(kTagEnclosing, p, n)) {
        std::size_t off = 4;
        bool bad = n < 4;
        const std::uint32_t count = bad ? 0 : get32(p);
        for (std::uint32_t i = 0; !bad && i < count; ++i) {
            if (off + 4 > n) {
                bad = true;
                break;
            }
            const std::uint32_t len = get32(p + off);
            off += 4;
            if (len > (n - off) / 4) {
                bad = true;
                break;
            }
            std::vector<PredIdx> preds(len);
            for (std::uint32_t j = 0; j < len; ++j) {
                preds[j] = PredIdx(get32(p + off));
                off += 4;
            }
            k.enclosingPreds.push_back(std::move(preds));
        }
        if (bad || (!bad && off != n))
            r.fail("kernel enclosing-pred blob is malformed");
    }

    // The per-pc control-dependence table must stay aligned with the
    // code; the simulators index it by pc without re-checking.
    if (r.ok() && k.enclosingPreds.size() != k.code.size())
        r.fail("kernel enclosing-pred count " +
               std::to_string(k.enclosingPreds.size()) +
               " does not match " + std::to_string(k.code.size()) +
               " instructions");

    if (r.ok())
        if (const std::string why = k.check(); !why.empty())
            r.fail(why);

    if (!r.ok()) {
        if (error)
            *error = r.error();
        return std::nullopt;
    }
    return k;
}

std::vector<std::uint8_t>
serializeReproducer(const Reproducer &r)
{
    ByteWriter w(BlobKind::Reproducer);
    w.fieldBlob(kTagSpec, serializeGenSpec(r.spec));
    w.fieldBlob(kTagKernel, serializeKernel(r.kernel));
    w.field(kTagMode, std::uint32_t(r.mode));
    w.field(kTagIndex, std::uint64_t(r.index));
    w.field(kTagWant, std::uint32_t(r.want));
    w.field(kTagGot, std::uint32_t(r.got));
    w.field(kTagNote, r.note);
    return w.finish();
}

std::optional<Reproducer>
deserializeReproducer(const std::uint8_t *data, std::size_t size,
                      std::string *error)
{
    ByteReader r(data, size, BlobKind::Reproducer);
    Reproducer out;

    const std::uint8_t *p = nullptr;
    std::size_t n = 0;
    if (r.ok() && r.getBlob(kTagSpec, p, n)) {
        std::string why;
        if (std::optional<GenSpec> spec = deserializeGenSpec(p, n, &why))
            out.spec = *spec;
        else
            r.fail("nested spec: " + why);
    }
    if (r.ok() && r.getBlob(kTagKernel, p, n)) {
        std::string why;
        if (std::optional<Kernel> kernel = deserializeKernel(p, n, &why))
            out.kernel = std::move(*kernel);
        else
            r.fail("nested kernel: " + why);
    }
    if (out.kernel.code.empty() && r.ok())
        r.fail("reproducer is missing its kernel");

    std::uint32_t mode = 0;
    r.get(kTagMode, mode);
    if (r.ok() && mode > std::uint32_t(ArchMode::GScalarFull))
        r.fail("reproducer mode " + std::to_string(mode) +
               " out of range");
    out.mode = ArchMode(mode);
    r.get(kTagIndex, out.index);
    r.get(kTagWant, out.want);
    r.get(kTagGot, out.got);
    r.get(kTagNote, out.note);

    if (!r.ok()) {
        if (error)
            *error = r.error();
        return std::nullopt;
    }
    return out;
}

std::string
reproducerFileName(const std::vector<std::uint8_t> &blob)
{
    const std::uint64_t h = fnv1a(blob.data(), blob.size());
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string("repro-") + hex + ".gsr";
}

std::string
writeReproducer(const Reproducer &r, const std::string &dir,
                std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return std::string();
    };

    const std::vector<std::uint8_t> blob = serializeReproducer(r);

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return fail("cannot create corpus dir '" + dir +
                    "': " + ec.message());

    const std::filesystem::path path =
        std::filesystem::path(dir) / reproducerFileName(blob);
    const std::filesystem::path tmp = path.string() + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return fail("cannot open '" + tmp.string() + "' for write");
        out.write(reinterpret_cast<const char *>(blob.data()),
                  std::streamsize(blob.size()));
        if (!out)
            return fail("short write to '" + tmp.string() + "'");
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        return fail("cannot publish '" + path.string() +
                    "': " + ec.message());
    return path.string();
}

std::optional<Reproducer>
loadReproducer(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open '" + path + "'";
        return std::nullopt;
    }
    std::vector<std::uint8_t> blob(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return deserializeReproducer(blob.data(), blob.size(), error);
}

} // namespace gs
