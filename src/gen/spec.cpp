#include "spec.hpp"

#include <cstdlib>
#include <string_view>

#include "common/log.hpp"
#include "store/serial.hpp"

namespace gs
{

namespace
{

/** One knob: canonical name, member, and inclusive bounds. */
struct Knob
{
    const char *name;
    std::uint32_t GenSpec::*member;
    std::uint32_t min;
    std::uint32_t max;
};

// Canonical order: this is also the field order of toName(). The seed
// is handled separately (it is 64-bit); it always renders first.
constexpr Knob kKnobs[] = {
    {"ops", &GenSpec::ops, 1, 4096},
    {"ctas", &GenSpec::ctas, 1, 64},
    {"tpc", &GenSpec::tpc, 1, 256},
    {"div", &GenSpec::div, 0, 100},
    {"pred", &GenSpec::pred, 0, 100},
    {"scalar", &GenSpec::scalar, 0, 100},
    {"affine", &GenSpec::affine, 0, 100},
    {"stride", &GenSpec::stride, 1, 64},
    {"ind", &GenSpec::ind, 0, 100},
    {"sfu", &GenSpec::sfu, 0, 100},
    {"shared", &GenSpec::shared, 0, 100},
};

/** SplitMix64 mixing step (fingerprint chaining, config.hpp idiom). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Digits-only u64 parse with overflow rejection. strtoull accepts
 * "-1" (wrapping) and "0x10"; a knob value wants neither.
 */
bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        return false;
    // 20 digits can overflow u64; 19 never do. Check the boundary by
    // round-tripping through strtoull with errno-free arithmetic.
    if (text.size() > 20)
        return false;
    std::uint64_t v = 0;
    for (const char c : text) {
        const std::uint64_t digit = std::uint64_t(c - '0');
        if (v > (UINT64_MAX - digit) / 10)
            return false;
        v = v * 10 + digit;
    }
    out = v;
    return true;
}

} // namespace

std::string
GenSpec::check() const
{
    for (const Knob &k : kKnobs) {
        const std::uint32_t v = this->*(k.member);
        if (v < k.min || v > k.max)
            return std::string("gen knob ") + k.name + "=" +
                   std::to_string(v) + " wants [" + std::to_string(k.min) +
                   ", " + std::to_string(k.max) + "]";
    }
    if (scalar + affine > 100)
        return "gen knobs scalar+affine=" +
               std::to_string(scalar + affine) + " exceed 100";
    const std::uint64_t total = std::uint64_t(ctas) * tpc;
    if (total > 8192)
        return "gen launch ctas*tpc=" + std::to_string(total) +
               " exceeds 8192 threads";
    if (total * stride > 262144)
        return "gen input ctas*tpc*stride=" +
               std::to_string(total * stride) + " exceeds 262144 words";
    return std::string();
}

void
GenSpec::validate() const
{
    const std::string why = check();
    if (!why.empty())
        GS_FATAL(why);
}

std::uint64_t
GenSpec::fingerprint() const
{
    std::uint64_t h = mix64(0x67656e2d73706563ull); // "gen-spec"
    h = mix64(h ^ seed);
    for (const Knob &k : kKnobs)
        h = mix64(h ^ this->*(k.member));
    return h;
}

std::string
GenSpec::toName() const
{
    std::string name = "gen:seed=" + std::to_string(seed);
    for (const Knob &k : kKnobs) {
        name += ',';
        name += k.name;
        name += '=';
        name += std::to_string(this->*(k.member));
    }
    return name;
}

bool
setGenKnob(GenSpec &spec, const std::string &knob,
           const std::string &value, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };

    std::uint64_t v = 0;
    if (!parseU64(value, v))
        return fail("gen knob " + knob + "='" + value +
                    "' wants a non-negative integer");

    if (knob == "seed") {
        spec.seed = v;
        return true;
    }
    for (const Knob &k : kKnobs) {
        if (knob != k.name)
            continue;
        if (v < k.min || v > k.max)
            return fail("gen knob " + knob + "=" + value + " wants [" +
                        std::to_string(k.min) + ", " +
                        std::to_string(k.max) + "]");
        spec.*(k.member) = std::uint32_t(v);
        return true;
    }
    return fail("unknown gen knob '" + knob + "'");
}

std::vector<std::string>
genKnobNames()
{
    std::vector<std::string> names = {"seed"};
    for (const Knob &k : kKnobs)
        names.push_back(k.name);
    return names;
}

std::optional<GenSpec>
parseGenSpec(const std::string &name, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return std::optional<GenSpec>();
    };

    constexpr std::string_view kPrefix = "gen:";
    if (name.rfind(kPrefix, 0) != 0)
        return fail("gen spec '" + name + "' wants a gen: prefix");

    GenSpec spec;
    std::vector<std::string> seen;
    std::size_t pos = kPrefix.size();
    if (pos >= name.size())
        return fail("gen spec '" + name +
                    "' wants at least one knob=value entry");
    while (pos < name.size()) {
        std::size_t comma = name.find(',', pos);
        if (comma == std::string::npos)
            comma = name.size();
        const std::string entry = name.substr(pos, comma - pos);
        pos = comma + 1;

        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0)
            return fail("gen spec entry '" + entry + "' wants knob=value");
        const std::string knob = entry.substr(0, eq);
        const std::string value = entry.substr(eq + 1);

        for (const std::string &s : seen)
            if (s == knob)
                return fail("gen spec repeats knob '" + knob + "'");
        seen.push_back(knob);

        std::string why;
        if (!setGenKnob(spec, knob, value, &why))
            return fail(why);
    }

    if (const std::string why = spec.check(); !why.empty())
        return fail(why);
    return spec;
}

// ---- binary round trip ---------------------------------------------------

namespace
{
// Wire tags (append-only): 1 = seed, 2.. = kKnobs in order.
constexpr std::uint16_t kTagSeed = 1;
constexpr std::uint16_t kTagKnobBase = 2;
} // namespace

std::vector<std::uint8_t>
serializeGenSpec(const GenSpec &spec)
{
    ByteWriter w(BlobKind::GenSpec);
    w.field(kTagSeed, spec.seed);
    std::uint16_t tag = kTagKnobBase;
    for (const Knob &k : kKnobs)
        w.field(tag++, spec.*(k.member));
    return w.finish();
}

std::optional<GenSpec>
deserializeGenSpec(const std::uint8_t *data, std::size_t size,
                   std::string *error)
{
    ByteReader r(data, size, BlobKind::GenSpec);
    GenSpec spec;
    r.get(kTagSeed, spec.seed);
    std::uint16_t tag = kTagKnobBase;
    for (const Knob &k : kKnobs)
        r.get(tag++, spec.*(k.member));
    if (r.ok())
        if (const std::string why = spec.check(); !why.empty())
            r.fail(why);
    if (!r.ok()) {
        if (error)
            *error = r.error();
        return std::nullopt;
    }
    return spec;
}

} // namespace gs
