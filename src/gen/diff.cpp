#include "diff.hpp"

#include "common/config.hpp"
#include "fault/fault.hpp"
#include "sim/gpu.hpp"
#include "sim/reference.hpp"

#include "generator.hpp"

namespace gs
{

namespace
{

/** Reference (oracle) outputs; empty optional when the budget runs out. */
std::optional<std::vector<Word>>
referenceOutputs(const Kernel &kernel, const GenSpec &spec,
                 const DiffOptions &opt)
{
    GlobalMemory mem;
    fillGenInput(mem, spec);
    const LaunchDims dims{spec.ctas, spec.tpc};
    if (!referenceExecuteBounded(kernel, dims, mem, opt.maxRefSteps))
        return std::nullopt;
    return mem.readWords(kGenOut, genOutputWords(spec));
}

/** Cycle-sim outputs under one architecture mode. */
std::vector<Word>
simtOutputs(const Kernel &kernel, const GenSpec &spec, ArchMode mode,
            const DiffOptions &opt, bool &injected)
{
    ArchConfig cfg;
    cfg.mode = mode;
    cfg.codec = defaultCodecId(); // fuzz under the selected codec too
    cfg.numSms = opt.numSms;
    cfg.maxCycles = opt.maxCycles;
    Gpu gpu(cfg);
    fillGenInput(gpu.memory(), spec);
    gpu.launch(kernel, {spec.ctas, spec.tpc});
    std::vector<Word> got =
        gpu.memory().readWords(kGenOut, genOutputWords(spec));
    // Chaos hook: a fired gen:miscompare corrupts the observed output,
    // exercising the minimize/artifact/replay path end to end without
    // needing a real simulator bug on tap.
    injected = false;
    if (!got.empty() && injectFault("gen", FaultKind::Miscompare)) {
        got[0] ^= 1;
        injected = true;
    }
    return got;
}

std::optional<DiffMismatch>
firstDifference(const std::vector<Word> &want, const std::vector<Word> &got,
                ArchMode mode)
{
    for (std::size_t i = 0; i < want.size(); ++i) {
        if (got[i] == want[i])
            continue;
        DiffMismatch m;
        m.mode = mode;
        m.index = i;
        m.want = want[i];
        m.got = got[i];
        return m;
    }
    return std::nullopt;
}

} // namespace

DiffOutcome
diffKernel(const Kernel &kernel, const GenSpec &spec,
           const DiffOptions &opt)
{
    DiffOutcome outcome;
    const std::optional<std::vector<Word>> want =
        referenceOutputs(kernel, spec, opt);
    if (!want) {
        outcome.refAborted = true;
        return outcome;
    }
    for (const ArchMode mode : opt.modes) {
        bool injected = false;
        const std::vector<Word> got =
            simtOutputs(kernel, spec, mode, opt, injected);
        if (std::optional<DiffMismatch> m =
                firstDifference(*want, got, mode)) {
            m->injected = injected;
            outcome.mismatches.push_back(*m);
        }
    }
    return outcome;
}

bool
diffOneMode(const Kernel &kernel, const GenSpec &spec, ArchMode mode,
            const DiffOptions &opt, DiffMismatch *first)
{
    const std::optional<std::vector<Word>> want =
        referenceOutputs(kernel, spec, opt);
    if (!want)
        return false;
    bool injected = false;
    const std::vector<Word> got =
        simtOutputs(kernel, spec, mode, opt, injected);
    std::optional<DiffMismatch> m = firstDifference(*want, got, mode);
    if (m) {
        m->injected = injected;
        if (first)
            *first = *m;
    }
    return m.has_value();
}

std::string
describeMismatch(const DiffMismatch &m)
{
    std::string out = "mode=";
    out += archModeName(m.mode);
    out += " word ";
    out += std::to_string(m.index);
    out += ": want ";
    out += std::to_string(m.want);
    out += " got ";
    out += std::to_string(m.got);
    if (m.injected)
        out += " (injected)";
    return out;
}

} // namespace gs
