/**
 * @file
 * Fuzz reproducer artifacts: a miscomparing (minimized) kernel, the
 * GenSpec that supplies its data and launch geometry, and the recorded
 * mismatch, serialized in the store wire format so a corpus file from
 * one machine replays anywhere. Deserialization treats files as
 * hostile: a corrupt artifact is a load error, never a crash.
 */

#ifndef GSCALAR_GEN_ARTIFACT_HPP
#define GSCALAR_GEN_ARTIFACT_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/kernel.hpp"

#include "diff.hpp"
#include "spec.hpp"

namespace gs
{

// ---- kernel round trip ---------------------------------------------------

std::vector<std::uint8_t> serializeKernel(const Kernel &kernel);

/**
 * Decode and structurally validate (Kernel::check) a serialized
 * kernel. Empty optional with *error on any malformed input.
 */
std::optional<Kernel> deserializeKernel(const std::uint8_t *data,
                                        std::size_t size,
                                        std::string *error = nullptr);

inline std::optional<Kernel>
deserializeKernel(const std::vector<std::uint8_t> &buf,
                  std::string *error = nullptr)
{
    return deserializeKernel(buf.data(), buf.size(), error);
}

// ---- reproducer ----------------------------------------------------------

/** Everything needed to replay one miscompare. */
struct Reproducer
{
    GenSpec spec;     ///< data + launch geometry (and original seed)
    Kernel kernel;    ///< minimized miscomparing kernel
    ArchMode mode = ArchMode::Baseline; ///< mode that disagreed
    std::uint64_t index = 0;            ///< first differing output word
    std::uint32_t want = 0;             ///< reference value
    std::uint32_t got = 0;              ///< cycle-sim value
    std::string note;                   ///< free-form provenance
};

std::vector<std::uint8_t> serializeReproducer(const Reproducer &r);
std::optional<Reproducer>
deserializeReproducer(const std::uint8_t *data, std::size_t size,
                      std::string *error = nullptr);

/**
 * Content-addressed corpus filename: "repro-<16 hex of fnv1a(blob)>.gsr".
 * Identical reproducers collapse to one file, so re-running a campaign
 * never litters the corpus with duplicates.
 */
std::string reproducerFileName(const std::vector<std::uint8_t> &blob);

/**
 * Write @p r under its content-addressed name in @p dir (created if
 * missing), via temp-file + rename so a crash never leaves a torn
 * artifact. Returns the full path, or empty string with *error.
 */
std::string writeReproducer(const Reproducer &r, const std::string &dir,
                            std::string *error = nullptr);

/** Load and validate an artifact file. */
std::optional<Reproducer> loadReproducer(const std::string &path,
                                         std::string *error = nullptr);

} // namespace gs

#endif // GSCALAR_GEN_ARTIFACT_HPP
