#include "generator.hpp"

#include <array>
#include <iterator>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "isa/kernel_builder.hpp"

namespace gs
{

namespace
{

/**
 * One generation session: a KernelBuilder plus the register pools the
 * emission rolls draw from. Every random decision is an integer roll
 * on a single Rng seeded from the spec, consumed in emission order —
 * that ordering IS the determinism contract, so helpers must draw in
 * the order they emit.
 */
class GenProgram
{
  public:
    explicit GenProgram(const GenSpec &spec)
        : spec_(spec), rng_(spec.seed), b_(spec.toName())
    {
    }

    Kernel
    run()
    {
        prologue();
        emitBlock(/*depth=*/0, spec_.ops);
        epilogue();
        return b_.build();
    }

  private:
    /** Integer percentage roll; pct is a [0,100] knob. */
    bool roll(std::uint32_t pct) { return rng_.below(100) < pct; }

    Reg pickUni() { return uni_[rng_.below(uni_.size())]; }
    Reg pickAff() { return aff_[rng_.below(aff_.size())]; }
    Reg pickVar() { return var_[rng_.below(var_.size())]; }
    Reg pickFp() { return fp_[rng_.below(fp_.size())]; }

    CmpOp
    pickCmp()
    {
        return CmpOp(rng_.below(6));
    }

    /** Rolling predicate pool: old guards go stale, never dangle. */
    Pred
    nextPred()
    {
        return preds_[predCursor_++ % preds_.size()];
    }

    void
    prologue()
    {
        tid_ = b_.reg();
        ctaid_ = b_.reg();
        ntid_ = b_.reg();
        gtid_ = b_.reg();
        b_.s2r(tid_, SReg::Tid);
        b_.s2r(ctaid_, SReg::CtaId);
        b_.s2r(ntid_, SReg::NTid);
        b_.imad(gtid_, ctaid_, ntid_, tid_);

        addrA_ = b_.reg();
        addrB_ = b_.reg();
        for (Reg &r : loopIdx_)
            r = b_.reg();
        for (Reg &r : loopBound_)
            r = b_.reg();
        for (Pred &p : preds_)
            p = b_.pred();

        // Warp-uniform pool: CTA id and grid constants.
        for (Reg &r : uni_)
            r = b_.reg();
        b_.mov(uni_[0], ctaid_);
        b_.movi(uni_[1], Word(rng_.below(1 << 16)));
        b_.s2r(uni_[2], SReg::NCtaId);

        // Affine pool: linear in the global thread id.
        for (Reg &r : aff_)
            r = b_.reg();
        b_.mov(aff_[0], gtid_);
        b_.imuli(aff_[1], gtid_, Word(1 + rng_.below(8)));
        b_.iaddi(aff_[2], gtid_, Word(rng_.below(1 << 12)));

        // Varying pool: one real input load, the rest lane-dependent
        // arithmetic (imul tid*tid is deliberately non-affine).
        for (Reg &r : var_)
            r = b_.reg();
        b_.imuli(addrA_, gtid_, Word(4 * spec_.stride));
        b_.ldg(var_[0], addrA_, Word(kGenIn));
        b_.emit2i(Opcode::XOR, var_[1], tid_, Word(rng_.next32()));
        b_.imul(var_[2], tid_, tid_);
        b_.iaddi(var_[3], var_[0], Word(rng_.below(1 << 10)));
        b_.emit2(Opcode::AND, var_[4], var_[0], tid_);
        b_.shli(var_[5], tid_, Word(rng_.below(8)));

        // FP pool seeded from the varying pool.
        for (std::size_t i = 0; i < fp_.size(); ++i) {
            fp_[i] = b_.reg();
            b_.emit1(Opcode::I2F, fp_[i], var_[i % var_.size()]);
        }

        if (spec_.shared > 0)
            sharedBase_ = b_.shared(spec_.tpc * 4);
    }

    void
    epilogue()
    {
        // Store every pool register to its own per-thread output slot:
        // reg i of thread t lands at kGenOut + (i*threads + t)*4. The
        // differential harness compares this whole region.
        const std::array<Reg, kGenStoredRegs> pools = {
            uni_[0], uni_[1], uni_[2], aff_[0], aff_[1], aff_[2],
            var_[0], var_[1], var_[2], var_[3], var_[4], var_[5],
            fp_[0], fp_[1], fp_[2], fp_[3]};
        const std::uint64_t total =
            std::uint64_t(spec_.ctas) * spec_.tpc;
        b_.shli(addrB_, gtid_, 2);
        for (std::size_t i = 0; i < pools.size(); ++i)
            b_.stg(addrB_, pools[i], Word(kGenOut + i * 4 * total));
    }

    void
    emitBlock(unsigned depth, std::uint32_t steps)
    {
        for (std::uint32_t i = 0; i < steps; ++i)
            emitStep(depth);
    }

    void
    emitStep(unsigned depth)
    {
        // Barriers only in provably convergent code: top level only.
        if (depth == 0 && roll(spec_.shared)) {
            emitSharedExchange();
            return;
        }
        if (depth < 2 && roll(spec_.div)) {
            emitControl(depth);
            return;
        }
        if (roll(spec_.pred)) {
            emitPredicated();
            return;
        }
        if (roll(20)) {
            emitMemory();
            return;
        }
        emitValueOp(/*allowPredWrites=*/true);
    }

    /** sts own slot; bar; lds a rotated partner's slot; bar. */
    void
    emitSharedExchange()
    {
        const Word delta = Word(1 + rng_.below(spec_.tpc));
        const Reg src = pickAnyPool();
        const Reg dst = pickVar();
        b_.shli(addrA_, tid_, 2);
        b_.sts(addrA_, src, Word(sharedBase_));
        b_.bar();
        b_.iaddi(addrB_, tid_, delta);
        b_.emit2(Opcode::IREM, addrB_, addrB_, ntid_);
        b_.shli(addrB_, addrB_, 2);
        b_.lds(dst, addrB_, Word(sharedBase_));
        b_.bar();
    }

    /**
     * Draw cmp/source/imm as separate statements, then emit. All
     * emission helpers below do the same: several rolls inside one
     * call expression would leave the draw order to the compiler's
     * argument evaluation order, silently forking the byte stream
     * across toolchains.
     */
    void
    emitCondition(Pred p)
    {
        const CmpOp cmp = pickCmp();
        const Reg a = pickVar();
        const Word imm = Word(rng_.below(16));
        b_.isetpi(p, cmp, a, imm);
    }

    void
    emitControl(unsigned depth)
    {
        const std::uint64_t variant = rng_.below(4);
        if (variant == 0) {
            const Pred p = nextPred();
            emitCondition(p);
            b_.ifThen(p, [&] { emitBlock(depth + 1, bodySteps()); });
        } else if (variant == 1) {
            const Pred p = nextPred();
            emitCondition(p);
            b_.ifElse(
                p, [&] { emitBlock(depth + 1, bodySteps()); },
                [&] { emitBlock(depth + 1, bodySteps()); });
        } else if (variant == 2) {
            // Divergent counted loop: per-lane trip count in [0, 7].
            const Reg src = pickVar();
            b_.andi(loopBound_[depth], src, 7);
            b_.forRange(loopIdx_[depth], 0, loopBound_[depth],
                        [&] { emitBlock(depth + 1, bodySteps()); });
        } else {
            // Uniform counted loop: same trip count on every lane.
            const Word bound = Word(1 + rng_.below(3));
            b_.forRangeI(loopIdx_[depth], 0, bound,
                         [&] { emitBlock(depth + 1, bodySteps()); });
        }
    }

    std::uint32_t bodySteps() { return std::uint32_t(1 + rng_.below(3)); }

    /**
     * Guarded straight-line block. Bodies never write predicates: a
     * guarded ISETP overwriting its own guard mid-block is legal but
     * pins the block's meaning to pred-file timing, which is exactly
     * the noise the differential compare does not want to chase.
     */
    void
    emitPredicated()
    {
        const Pred p = nextPred();
        emitCondition(p);
        const bool neg = rng_.below(2) == 1;
        const std::uint32_t n = std::uint32_t(1 + rng_.below(3));
        b_.predicated(p, neg, [&] {
            for (std::uint32_t i = 0; i < n; ++i) {
                if (roll(25))
                    emitMemory();
                else
                    emitValueOp(/*allowPredWrites=*/false);
            }
        });
    }

    void
    emitMemory()
    {
        if (roll(spec_.ind)) {
            // Data-dependent gather, masked into the input array.
            const Word mask = Word(genInputWords(spec_) - 1);
            const Reg idx = pickVar();
            const Reg dst = pickVar();
            b_.andi(addrA_, idx, mask);
            b_.shli(addrA_, addrA_, 2);
            b_.ldg(dst, addrA_, Word(kGenIn));
            return;
        }
        const std::uint64_t variant = rng_.below(3);
        if (variant == 0) {
            // Strided re-load of this thread's input element.
            const Reg dst = pickVar();
            b_.imuli(addrA_, gtid_, Word(4 * spec_.stride));
            b_.ldg(dst, addrA_, Word(kGenIn));
        } else if (variant == 1) {
            // Store-then-reload through this thread's private slot:
            // races are impossible, but the value round-trips memory.
            const Reg src = pickAnyPool();
            const Reg dst = pickVar();
            b_.shli(addrA_, gtid_, 2);
            b_.stg(addrA_, src, Word(kGenOut));
            b_.ldg(dst, addrA_, Word(kGenOut));
        } else {
            const Reg dst = pickVar();
            const Reg d2 = pickVar();
            const Reg a = pickVar();
            const Reg c = pickVar();
            b_.imuli(addrA_, gtid_, Word(4 * spec_.stride));
            b_.ldg(dst, addrA_, Word(kGenIn));
            b_.emit2(Opcode::OR, d2, a, c);
        }
    }

    Reg
    pickAnyPool()
    {
        const std::uint64_t i = rng_.below(16);
        if (i < 3)
            return uni_[i];
        if (i < 6)
            return aff_[i - 3];
        if (i < 12)
            return var_[i - 6];
        return fp_[i - 12];
    }

    void
    emitValueOp(bool allowPredWrites)
    {
        const std::uint64_t cls = rng_.below(100);
        if (cls < spec_.scalar) {
            emitUniformOp();
            return;
        }
        if (cls < spec_.scalar + spec_.affine) {
            emitAffineOp();
            return;
        }
        if (roll(spec_.sfu)) {
            emitFpOp();
            return;
        }
        emitIntOp(allowPredWrites);
    }

    /** Warp-uniform destination and sources (SMOV/scalar-unit food). */
    void
    emitUniformOp()
    {
        static constexpr Opcode kOps[] = {
            Opcode::IADD, Opcode::ISUB, Opcode::IMUL, Opcode::IMIN,
            Opcode::IMAX, Opcode::AND, Opcode::OR, Opcode::XOR,
            Opcode::SHL, Opcode::SHR};
        const Opcode op = kOps[rng_.below(std::size(kOps))];
        const Reg d = pickUni();
        const Reg a = pickUni();
        if (rng_.below(2) == 0) {
            const Word imm = Word(rng_.below(1 << 12));
            b_.emit2i(op, d, a, imm);
        } else {
            const Reg c = pickUni();
            b_.emit2(op, d, a, c);
        }
    }

    /** Keep an affine register affine: add/scale by uniform amounts. */
    void
    emitAffineOp()
    {
        const Reg d = pickAff();
        switch (rng_.below(5)) {
        case 0: {
            const Reg a = pickAff();
            const Word imm = Word(rng_.below(1 << 10));
            b_.iaddi(d, a, imm);
            break;
        }
        case 1: {
            const Reg a = pickAff();
            const Reg u = pickUni();
            b_.iadd(d, a, u);
            break;
        }
        case 2: {
            const Word scale = Word(1 + rng_.below(16));
            b_.imuli(d, gtid_, scale);
            break;
        }
        case 3: {
            const Word sh = Word(rng_.below(4));
            b_.shli(d, gtid_, sh);
            break;
        }
        default: {
            const Reg a = pickAff();
            const Reg u = pickUni();
            b_.isub(d, a, u);
            break;
        }
        }
    }

    void
    emitFpOp()
    {
        static constexpr Opcode kBin[] = {Opcode::FADD, Opcode::FSUB,
                                          Opcode::FMUL, Opcode::FMIN,
                                          Opcode::FMAX};
        static constexpr Opcode kUn[] = {Opcode::FABS, Opcode::FNEG,
                                         Opcode::SIN, Opcode::COS,
                                         Opcode::EX2, Opcode::LG2,
                                         Opcode::RCP, Opcode::RSQ,
                                         Opcode::SQRT};
        switch (rng_.below(5)) {
        case 0: {
            const Opcode op = kBin[rng_.below(std::size(kBin))];
            const Reg d = pickFp();
            const Reg a = pickFp();
            const Reg c = pickFp();
            b_.emit2(op, d, a, c);
            break;
        }
        case 1: {
            const Opcode op = kUn[rng_.below(std::size(kUn))];
            const Reg d = pickFp();
            const Reg a = pickFp();
            b_.emit1(op, d, a);
            break;
        }
        case 2: {
            const Reg d = pickFp();
            const Reg a = pickFp();
            const Reg m = pickFp();
            const Reg c = pickFp();
            b_.ffma(d, a, m, c);
            break;
        }
        case 3: {
            const Reg d = pickFp();
            const Reg a = pickVar();
            b_.emit1(Opcode::I2F, d, a);
            break;
        }
        default: {
            // Saturating conversion back into the integer domain.
            const Reg d = pickVar();
            const Reg a = pickFp();
            b_.emit1(Opcode::F2I, d, a);
            break;
        }
        }
    }

    void
    emitIntOp(bool allowPredWrites)
    {
        static constexpr Opcode kBin[] = {
            Opcode::IADD, Opcode::ISUB, Opcode::IMUL, Opcode::IDIV,
            Opcode::IREM, Opcode::IMIN, Opcode::IMAX, Opcode::AND,
            Opcode::OR, Opcode::XOR, Opcode::SHL, Opcode::SHR};
        const std::uint64_t variant = rng_.below(10);
        if (variant < 5) {
            const Opcode op = kBin[rng_.below(std::size(kBin))];
            const Reg d = pickVar();
            const Reg a = pickVar();
            const Reg c = pickMixedSrc();
            b_.emit2(op, d, a, c);
        } else if (variant < 7) {
            const Opcode op = kBin[rng_.below(std::size(kBin))];
            const Reg d = pickVar();
            const Reg a = pickVar();
            const Word imm = Word(rng_.below(1 << 12));
            b_.emit2i(op, d, a, imm);
        } else if (variant == 7) {
            const Reg d = pickVar();
            const Reg a = pickVar();
            const Reg m = pickMixedSrc();
            const Reg c = pickVar();
            b_.imad(d, a, m, c);
        } else if (variant == 8) {
            const std::uint64_t un = rng_.below(2);
            const Reg d = pickVar();
            const Reg a = pickVar();
            b_.emit1(un == 0 ? Opcode::NOT : Opcode::IABS, d, a);
        } else if (allowPredWrites && rng_.below(2) == 0) {
            const Pred p = nextPred();
            const CmpOp cmp = pickCmp();
            const Reg a = pickVar();
            const Reg c = pickMixedSrc();
            b_.isetp(p, cmp, a, c);
            const Reg d = pickVar();
            const Reg t = pickVar();
            const Reg f = pickMixedSrc();
            b_.sel(d, p, t, f);
        } else {
            // SEL on an existing predicate (read-only use).
            const Pred p = preds_[rng_.below(preds_.size())];
            const Reg d = pickVar();
            const Reg t = pickVar();
            const Reg f = pickVar();
            b_.sel(d, p, t, f);
        }
    }

    /** Varying-biased source pick that sometimes crosses pools. */
    Reg
    pickMixedSrc()
    {
        const std::uint64_t i = rng_.below(10);
        if (i < 6)
            return pickVar();
        if (i < 8)
            return pickAff();
        return pickUni();
    }

    GenSpec spec_;
    Rng rng_;
    KernelBuilder b_;

    Reg tid_, ctaid_, ntid_, gtid_;
    Reg addrA_, addrB_;
    std::array<Reg, 2> loopIdx_{};
    std::array<Reg, 2> loopBound_{};
    std::array<Pred, 8> preds_{};
    std::size_t predCursor_ = 0;
    std::array<Reg, 3> uni_{};
    std::array<Reg, 3> aff_{};
    std::array<Reg, 6> var_{};
    std::array<Reg, 4> fp_{};
    unsigned sharedBase_ = 0;
};

} // namespace

std::uint64_t
genInputWords(const GenSpec &spec)
{
    const std::uint64_t need =
        std::uint64_t(spec.ctas) * spec.tpc * spec.stride;
    std::uint64_t words = 256;
    while (words < need)
        words <<= 1;
    return words;
}

std::uint64_t
genOutputWords(const GenSpec &spec)
{
    return std::uint64_t(kGenStoredRegs) * spec.ctas * spec.tpc;
}

void
fillGenInput(GlobalMemory &mem, const GenSpec &spec)
{
    Rng rng(spec.seed);
    const std::uint64_t words = genInputWords(spec);
    std::vector<Word> values(words);
    for (Word &v : values)
        // Bounded magnitudes keep IMUL/I2F chains out of the extreme
        // exponent range without ever producing two equal streams.
        v = rng.next32() & 0xffffff;
    mem.fillWords(kGenIn, values);
}

Kernel
generateKernel(const GenSpec &spec)
{
    spec.validate();
    GenProgram program(spec);
    return program.run();
}

Workload
makeGenWorkload(const GenSpec &spec)
{
    spec.validate();
    Workload w;
    w.name = spec.toName();
    w.fullName = "generated kernel (seed " + std::to_string(spec.seed) + ")";
    w.suite = "generated";
    const GenSpec captured = spec;
    w.setup = [captured](GlobalMemory &mem, std::uint64_t /*seed*/) {
        fillGenInput(mem, captured);
    };
    w.launches.push_back(
        {generateKernel(spec), LaunchDims{spec.ctas, spec.tpc}});
    return w;
}

void
registerGenWorkloads()
{
    static const bool once = [] {
        registerWorkloadResolver(
            [](const std::string &name) -> std::optional<Workload> {
                if (name.rfind("gen:", 0) != 0)
                    return std::nullopt;
                std::string error;
                const std::optional<GenSpec> spec =
                    parseGenSpec(name, &error);
                if (!spec)
                    GS_FATAL("workload '", name, "': ", error);
                return makeGenWorkload(*spec);
            });
        return true;
    }();
    (void)once;
}

} // namespace gs
