/**
 * @file
 * Small bit-manipulation helpers used by the codec, SIMT stack and
 * register-file models.
 */

#ifndef GSCALAR_COMMON_BIT_UTILS_HPP
#define GSCALAR_COMMON_BIT_UTILS_HPP

#include <bit>
#include <cstdint>
#include <cstring>

#include "types.hpp"

namespace gs
{

/** Number of set bits in a lane mask. */
inline unsigned
popCount(LaneMask m)
{
    return static_cast<unsigned>(std::popcount(m));
}

/** Index of the lowest set bit; undefined for m == 0. */
inline unsigned
firstLane(LaneMask m)
{
    return static_cast<unsigned>(std::countr_zero(m));
}

/** Extract byte @p i (0 = LSB) of a word. */
constexpr std::uint8_t
byteOf(Word w, unsigned i)
{
    return static_cast<std::uint8_t>(w >> (8 * i));
}

/** Replace byte @p i (0 = LSB) of @p w with @p b. */
constexpr Word
withByte(Word w, unsigned i, std::uint8_t b)
{
    const Word mask = Word{0xff} << (8 * i);
    return (w & ~mask) | (Word{b} << (8 * i));
}

/** True when @p m has exactly one bit set. */
inline bool
isSingleLane(LaneMask m)
{
    return m != 0 && (m & (m - 1)) == 0;
}

/** Ceiling division for unsigned integers. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** True when @p v is a power of two (v > 0). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Load two adjacent 32-bit words as one 64-bit SWAR lane pair. Each
 * aligned 4-byte half of the result equals one input word exactly
 * (memcpy keeps native endianness), so word-positional operations like
 * XOR against a replicated base work on both halves at once.
 */
inline std::uint64_t
loadWordPair(const Word *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/** Replicate a 32-bit word into both halves of a 64-bit SWAR value. */
constexpr std::uint64_t
broadcastWord(Word w)
{
    return std::uint64_t{w} * 0x1'0000'0001ull;
}

/** OR the two 32-bit halves of a SWAR accumulator together. */
constexpr std::uint32_t
foldWordPair(std::uint64_t v)
{
    return static_cast<std::uint32_t>(v) |
           static_cast<std::uint32_t>(v >> 32);
}

/**
 * Number of most-significant bytes that are zero in an accumulated
 * lane difference (OR of per-lane XORs against the base): exactly the
 * byte-mask codec's common-prefix count, 4 for a scalar value.
 */
inline unsigned
commonMsbBytes(std::uint32_t diff)
{
    return static_cast<unsigned>(std::countl_zero(diff)) / 8;
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace gs

#endif // GSCALAR_COMMON_BIT_UTILS_HPP
