/**
 * @file
 * Minimal ASCII table formatter used by benches and examples to print
 * the paper's tables and figure series.
 */

#ifndef GSCALAR_COMMON_TABLE_HPP
#define GSCALAR_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace gs
{

/**
 * Column-aligned ASCII table. Cells are strings; numeric helpers format
 * with fixed precision. The first added row is rendered as a header.
 */
class Table
{
  public:
    explicit Table(std::string title = "") : title_(std::move(title)) {}

    /** Append a row of cells. */
    Table &row(std::vector<std::string> cells);

    /** Format a double with @p digits fractional digits. */
    static std::string num(double v, int digits = 2);

    /** Format a value as a percentage with @p digits fractional digits. */
    static std::string pct(double fraction, int digits = 1);

    /** Render the table, header separated by a rule. */
    std::string str() const;

    /** Table title (empty when none was given). */
    const std::string &title() const { return title_; }

    /**
     * Raw cells in insertion order; the first row is the header. The
     * structured result emitters (obs/result.hpp) serialize these, so
     * machine-readable output always matches the rendered text.
     */
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

    /** Render and write to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gs

#endif // GSCALAR_COMMON_TABLE_HPP
