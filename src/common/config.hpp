/**
 * @file
 * Architecture configuration. Defaults reproduce Table 1 of the paper
 * (a GTX 480-like GPU as modelled by GPGPU-Sim 3.2.2).
 */

#ifndef GSCALAR_COMMON_CONFIG_HPP
#define GSCALAR_COMMON_CONFIG_HPP

#include <cstdint>
#include <string>

#include "arch_mode.hpp"
#include "codec_id.hpp"
#include "types.hpp"

namespace gs
{

/** Warp scheduler policy. */
enum class SchedPolicy
{
    LooseRoundRobin, ///< rotate priority every cycle
    GreedyThenOldest ///< keep issuing the same warp until it stalls
};

/**
 * Full simulator configuration: GPU organisation (Table 1), pipeline
 * latencies, cache geometry and the architecture mode under study.
 */
struct ArchConfig
{
    /** Architecture variant being simulated. */
    ArchMode mode = ArchMode::Baseline;

    // ---- GPU organisation (Table 1) -----------------------------------
    unsigned numSms = 15;          ///< streaming multiprocessors
    unsigned warpSize = 32;        ///< threads per warp (64 for Fig. 10)
    unsigned simtWidth = 16;       ///< lanes per ALU/MEM pipeline
    unsigned sfuWidth = 4;         ///< lanes of the special-function pipe
    unsigned numAluPipes = 2;      ///< ALU pipelines per SM
    unsigned maxThreadsPerSm = 1536;
    unsigned maxCtasPerSm = 8;
    unsigned numVregsPerSm = 1024; ///< 128 KB: 1024 x 32 x 4 B
    unsigned numBanks = 16;        ///< register file banks
    unsigned arraysPerBank = 8;    ///< 128-bit single-port SRAM arrays
    unsigned numCollectors = 16;   ///< operand collector units
    unsigned numSchedulers = 2;    ///< warp schedulers per SM
    SchedPolicy schedPolicy = SchedPolicy::GreedyThenOldest;

    // ---- compression / scalar micro-architecture ----------------------
    /**
     * Register-file compression codec for the compressed modes
     * (compress/codec.hpp registry). Defaults to the paper's byte-mask
     * scheme; entry points apply --codec/$GS_CODEC via defaultCodecId().
     */
    CodecId codec = CodecId::ByteMask;
    /** Lanes per scalar-check group (16 also for 64-wide warps). */
    unsigned checkGranularity = 16;
    /** Per-half enc/base registers (half-register compression, §3.2). */
    bool halfRegisterCompression = true;
    /** Banks of the prior-work scalar RF (1 in [3]; swept by ablation). */
    unsigned scalarRfBanks = 1;
    /**
     * Insert the special decompress-in-place move when a divergent
     * instruction writes a compressed register (§3.3, hardware-assisted).
     */
    bool insertSpecialMoves = true;
    /**
     * §3.3's compiler-assisted refinement: skip the special move when
     * static liveness proves the partially-overwritten value dead.
     */
    bool compilerAssistedSmov = false;
    /**
     * When true, a scalar-executed instruction occupies its pipeline
     * for a single dispatch cycle instead of warpSize/width cycles.
     * The paper's G-Scalar only clock-gates lanes (Fig. 11 shows a
     * small IPC *loss*), so this stays off by default; it models the
     * §6 observation that scalar execution could also shorten
     * multi-cycle dispatch, and is explored by an ablation bench.
     */
    bool scalarShortensOccupancy = false;

    // ---- pipeline latencies (cycles; Fermi dependent-issue depths) ------
    unsigned aluLatency = 14;      ///< simple int/fp result latency
    unsigned mulLatency = 18;      ///< integer multiply / FMA
    unsigned divLatency = 60;      ///< integer divide (microcoded)
    unsigned sfuLatency = 24;      ///< transcendental result latency

    // ---- memory system --------------------------------------------------
    unsigned lineBytes = 128;
    unsigned l1Bytes = 16 * 1024;
    unsigned l1Assoc = 4;
    unsigned l1Latency = 30;
    unsigned l1MshrEntries = 64;
    unsigned l2Bytes = 768 * 1024;
    unsigned l2Assoc = 8;
    unsigned l2Latency = 120;
    unsigned dramLatency = 250;
    unsigned memChannels = 6;
    /** Peak memory requests serviced per channel per core cycle. */
    double dramRequestsPerCycle = 0.5;
    unsigned sharedLatency = 24;
    /** Shared-memory banks (word-interleaved); conflicting accesses
     *  within a warp serialise. */
    unsigned sharedBanks = 32;

    // ---- clocks ----------------------------------------------------------
    double coreClockGhz = 1.4;

    // ---- simulation control ---------------------------------------------
    std::uint64_t maxCycles = 200'000'000; ///< watchdog
    std::uint64_t seed = 1;                ///< workload data seed

    // ---- derived ----------------------------------------------------------
    /** Warps needed for one CTA of @p cta_threads threads. */
    unsigned
    warpsPerCta(unsigned cta_threads) const
    {
        return (cta_threads + warpSize - 1) / warpSize;
    }

    /** Scalar-check groups per warp (2 for 32-wide, 4 for 64-wide). */
    unsigned
    groupsPerWarp() const
    {
        return (warpSize + checkGranularity - 1) / checkGranularity;
    }

    /** Extra pipeline depth for the configured mode. */
    unsigned extraCycles() const { return extraPipelineCycles(mode); }

    /** Dispatch cycles for a full warp on a pipeline of @p width lanes. */
    unsigned
    dispatchCycles(unsigned width) const
    {
        return (warpSize + width - 1) / width;
    }

    /**
     * First internal-consistency error, or an empty string when the
     * configuration is valid. Non-fatal form of validate() for callers
     * (gscalard, deserializers) that must survive bad inputs.
     */
    std::string check() const;

    /** Validate internal consistency; calls GS_FATAL on bad configs. */
    void validate() const;

    /** Render Table 1 as an ASCII table. */
    std::string describe() const;

    /**
     * Stable content hash over every configuration field. Two configs
     * with the same fingerprint produce bit-identical simulations, so
     * the harness run cache keys on (workload, fingerprint()). The
     * value is stable within a build of the simulator but is not a
     * serialisation format — do not persist it across versions.
     */
    std::uint64_t fingerprint() const;
};

} // namespace gs

#endif // GSCALAR_COMMON_CONFIG_HPP
