#include "events.hpp"

#include <algorithm>

namespace gs
{

EventCounts &
EventCounts::operator+=(const EventCounts &o)
{
    // Cycles are wall time: SMs run in lock-step, so merging takes the
    // max. Computed first, applied after the generated sums below.
    const u64 mergedCycles = std::max(cycles, o.cycles);

#define GS_EVENT_ADD(member, name, unit, doc) member += o.member;
    GS_EVENT_COUNT_FIELDS(GS_EVENT_ADD)
#undef GS_EVENT_ADD

    cycles = mergedCycles;
    return *this;
}

} // namespace gs
