#include "events.hpp"

#include <algorithm>

namespace gs
{

EventCounts &
EventCounts::operator+=(const EventCounts &o)
{
    // Cycles are wall time: SMs run in lock-step, so merging takes the max.
    cycles = std::max(cycles, o.cycles);

    warpInsts += o.warpInsts;
    threadInsts += o.threadInsts;
    issuedInsts += o.issuedInsts;

    aluWarpInsts += o.aluWarpInsts;
    sfuWarpInsts += o.sfuWarpInsts;
    memWarpInsts += o.memWarpInsts;
    ctrlWarpInsts += o.ctrlWarpInsts;

    aluLaneOps += o.aluLaneOps;
    sfuLaneOps += o.sfuLaneOps;
    memLaneOps += o.memLaneOps;
    aluEnergyUnits += o.aluEnergyUnits;
    sfuEnergyUnits += o.sfuEnergyUnits;

    divergentWarpInsts += o.divergentWarpInsts;
    divergentScalarEligible += o.divergentScalarEligible;
    scalarAluEligible += o.scalarAluEligible;
    scalarSfuEligible += o.scalarSfuEligible;
    scalarMemEligible += o.scalarMemEligible;
    halfScalarEligible += o.halfScalarEligible;
    scalarExecuted += o.scalarExecuted;
    halfScalarExecuted += o.halfScalarExecuted;
    specialMoveInsts += o.specialMoveInsts;
    staticScalarInsts += o.staticScalarInsts;

    rfReads += o.rfReads;
    rfWrites += o.rfWrites;
    rfArrayReads += o.rfArrayReads;
    rfArrayWrites += o.rfArrayWrites;
    bvrAccesses += o.bvrAccesses;
    scalarRfAccesses += o.scalarRfAccesses;
    crossbarBytes += o.crossbarBytes;
    ocAllocations += o.ocAllocations;

    rfAccScalar += o.rfAccScalar;
    rfAcc3Byte += o.rfAcc3Byte;
    rfAcc2Byte += o.rfAcc2Byte;
    rfAcc1Byte += o.rfAcc1Byte;
    rfAccDivergent += o.rfAccDivergent;
    rfAccOther += o.rfAccOther;

    compressorUses += o.compressorUses;
    decompressorUses += o.decompressorUses;

    shadowBaseArrayReads += o.shadowBaseArrayReads;
    shadowBaseArrayWrites += o.shadowBaseArrayWrites;
    shadowScalarArrayReads += o.shadowScalarArrayReads;
    shadowScalarArrayWrites += o.shadowScalarArrayWrites;
    shadowScalarRfAccesses += o.shadowScalarRfAccesses;
    shadowOursArrayReads += o.shadowOursArrayReads;
    shadowOursArrayWrites += o.shadowOursArrayWrites;
    shadowOursBvrAccesses += o.shadowOursBvrAccesses;
    shadowOursCrossbarBytes += o.shadowOursCrossbarBytes;
    bdiMetaAccesses += o.bdiMetaAccesses;

    affineWrites += o.affineWrites;
    affineNonScalarWrites += o.affineNonScalarWrites;

    compBytesUncompressed += o.compBytesUncompressed;
    compBytesCompressed += o.compBytesCompressed;
    bdiBytesUncompressed += o.bdiBytesUncompressed;
    bdiBytesCompressed += o.bdiBytesCompressed;
    bdiArrayReads += o.bdiArrayReads;
    bdiArrayWrites += o.bdiArrayWrites;

    l1Accesses += o.l1Accesses;
    l1Misses += o.l1Misses;
    l2Accesses += o.l2Accesses;
    l2Misses += o.l2Misses;
    dramAccesses += o.dramAccesses;
    sharedAccesses += o.sharedAccesses;
    sharedBankConflicts += o.sharedBankConflicts;
    memRequests += o.memRequests;
    mshrStallCycles += o.mshrStallCycles;

    schedIdleCycles += o.schedIdleCycles;
    scoreboardStalls += o.scoreboardStalls;
    ocFullStalls += o.ocFullStalls;
    scalarBankStalls += o.scalarBankStalls;
    pipeBusyStalls += o.pipeBusyStalls;

    return *this;
}

} // namespace gs
