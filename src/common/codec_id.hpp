/**
 * @file
 * Identity of a register-file compression codec. Lives in common (not
 * compress) because ArchConfig carries the selected codec: the run
 * cache, the coalescing map and the disk store all key on the config
 * fingerprint, so the choice must be part of the config itself.
 *
 * The codec implementations sit behind gs::compress::Codec
 * (compress/codec.hpp); this header only names them and resolves the
 * process-wide default from $GS_CODEC / --codec in the strict
 * parse-and-fail-eagerly GS_JOBS idiom.
 */

#ifndef GSCALAR_COMMON_CODEC_ID_HPP
#define GSCALAR_COMMON_CODEC_ID_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gs
{

/** Registered register-file compression codecs. */
enum class CodecId : std::uint32_t
{
    ByteMask = 0,      ///< the paper's common-MSB byte-mask scheme (§3)
    Bdi = 1,           ///< Warped-Compression base-delta-immediate
    StaticProfile = 2, ///< profile-guided fixed encodings (2006.05693)
    Rrcd = 3,          ///< byte-mask + stuck-fault redirection (2105.03859)
};

/** Number of registered codecs (CodecId values are 0..kNumCodecs-1). */
inline constexpr unsigned kNumCodecs = 4;

/** Spec name of a codec ("byte-mask", "bdi", ...). */
const char *codecIdName(CodecId id);

/** Parse a --codec/GS_CODEC value; empty optional on unknown names. */
std::optional<CodecId> parseCodecId(std::string_view name);

/** Comma-separated list of every codec name (error messages, --help). */
std::string codecIdList();

/**
 * The codec new top-level runs select: the setDefaultCodecId()
 * override if present, else a validated $GS_CODEC (unknown names are
 * fatal, in the GS_JOBS idiom), else ByteMask. Entry points apply this
 * to the configs they build; ArchConfig itself always defaults to
 * ByteMask so deserialization and tests stay hermetic.
 */
CodecId defaultCodecId();

/** Pin the default codec, overriding $GS_CODEC (--codec does this). */
void setDefaultCodecId(CodecId id);

/** Drop the setDefaultCodecId() override ($GS_CODEC applies again). */
void clearDefaultCodecIdOverride();

} // namespace gs

#endif // GSCALAR_COMMON_CODEC_ID_HPP
