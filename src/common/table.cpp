#include "table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace gs
{

Table &
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
    return *this;
}

std::string
Table::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
Table::pct(double fraction, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
    return buf;
}

std::string
Table::str() const
{
    // Column widths across all rows.
    std::vector<std::size_t> width;
    for (const auto &r : rows_) {
        if (r.size() > width.size())
            width.resize(r.size(), 0);
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());
    }

    std::ostringstream os;
    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        const auto &r = rows_[i];
        for (std::size_t c = 0; c < r.size(); ++c) {
            os << r[c];
            if (c + 1 < r.size())
                os << std::string(width[c] - r[c].size() + 2, ' ');
        }
        os << "\n";
        if (i == 0 && rows_.size() > 1) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < width.size(); ++c)
                total += width[c] + (c + 1 < width.size() ? 2 : 0);
            os << std::string(total, '-') << "\n";
        }
    }
    return os.str();
}

void
Table::print() const
{
    std::cout << str() << std::flush;
}

} // namespace gs
