/**
 * @file
 * Event counters: the contract between the timing simulator (which
 * counts micro-architectural events) and the power model (which prices
 * them). Also carries the classification tallies behind Figs. 1, 8, 9
 * and 10.
 */

#ifndef GSCALAR_COMMON_EVENTS_HPP
#define GSCALAR_COMMON_EVENTS_HPP

#include <cstdint>

namespace gs
{

/**
 * Every countable event of one simulation run. Plain counters so the
 * struct is trivially mergeable across SMs.
 */
struct EventCounts
{
    using u64 = std::uint64_t;

    // ---- progress -------------------------------------------------------
    u64 cycles = 0;           ///< SM core cycles (max over SMs after merge)
    u64 warpInsts = 0;        ///< dynamic warp instructions committed
    u64 threadInsts = 0;      ///< sum of active lanes over warp insts
    u64 issuedInsts = 0;      ///< scheduler issues (incl. special moves)

    // ---- instruction class mix (warp level) ------------------------------
    u64 aluWarpInsts = 0;
    u64 sfuWarpInsts = 0;
    u64 memWarpInsts = 0;
    u64 ctrlWarpInsts = 0;

    // ---- lane-weighted execution activity ---------------------------------
    u64 aluLaneOps = 0;
    u64 sfuLaneOps = 0;
    u64 memLaneOps = 0;       ///< address-generation lane ops
    /** Lane ops x per-opcode relative energy (units of one FP32 op). */
    double aluEnergyUnits = 0;
    double sfuEnergyUnits = 0;

    // ---- divergence & scalar classification (Figs. 1, 9, 10) -------------
    u64 divergentWarpInsts = 0;       ///< active mask != full warp
    u64 divergentScalarEligible = 0;  ///< tier 4: divergent scalar
    u64 scalarAluEligible = 0;        ///< tier 1: non-div ALU scalar
    u64 scalarSfuEligible = 0;        ///< tier 2a
    u64 scalarMemEligible = 0;        ///< tier 2b
    u64 halfScalarEligible = 0;       ///< tier 3 (non-div, some group scalar)
    u64 scalarExecuted = 0;           ///< warp insts actually run on 1 lane
    u64 halfScalarExecuted = 0;
    u64 specialMoveInsts = 0;         ///< inserted decompress moves (§3.3)
    /** Instructions a static scalarizing compiler would cover (§6). */
    u64 staticScalarInsts = 0;

    // ---- register file (Fig. 8, Fig. 12) ----------------------------------
    u64 rfReads = 0;          ///< vector-register read operations
    u64 rfWrites = 0;
    u64 rfArrayReads = 0;     ///< 128-bit SRAM array activations
    u64 rfArrayWrites = 0;
    u64 bvrAccesses = 0;      ///< small BVR/EBR/flag array accesses
    u64 scalarRfAccesses = 0; ///< prior-work scalar RF accesses
    u64 crossbarBytes = 0;    ///< operand bytes through the crossbar
    u64 ocAllocations = 0;    ///< operand collector entries allocated

    /// Read-time access distribution (Fig. 8 categories).
    u64 rfAccScalar = 0;  ///< enc==1111: whole register is one value
    u64 rfAcc3Byte = 0;   ///< top 3 bytes common
    u64 rfAcc2Byte = 0;
    u64 rfAcc1Byte = 0;
    u64 rfAccDivergent = 0; ///< register last written divergently
    u64 rfAccOther = 0;     ///< no common bytes

    // ---- codec activity ----------------------------------------------------
    u64 compressorUses = 0;
    u64 decompressorUses = 0;

    // ---- shadow RF accounting (Fig. 12: same stream, four RF schemes) ------
    /// Baseline word-sliced register file.
    u64 shadowBaseArrayReads = 0;
    u64 shadowBaseArrayWrites = 0;
    /// Scalar-only RF of prior work [3]: scalar regs live in a small RF.
    u64 shadowScalarArrayReads = 0;
    u64 shadowScalarArrayWrites = 0;
    u64 shadowScalarRfAccesses = 0;
    /// Our byte-mask compressed RF.
    u64 shadowOursArrayReads = 0;
    u64 shadowOursArrayWrites = 0;
    u64 shadowOursBvrAccesses = 0;
    u64 shadowOursCrossbarBytes = 0;
    /// Warped-Compression (BDI) RF metadata accesses.
    u64 bdiMetaAccesses = 0;

    // ---- affine shadow classification (related work §6) --------------------
    u64 affineWrites = 0;          ///< register writes of base+i*stride form
    u64 affineNonScalarWrites = 0; ///< affine with stride != 0

    // ---- compression accounting (ratio, §5.3) ------------------------------
    u64 compBytesUncompressed = 0; ///< bytes written, raw size (ours)
    u64 compBytesCompressed = 0;   ///< bytes written, stored size (ours)
    u64 bdiBytesUncompressed = 0;  ///< shadow-BDI of the same stream
    u64 bdiBytesCompressed = 0;
    u64 bdiArrayReads = 0;         ///< array activations if BDI stored regs
    u64 bdiArrayWrites = 0;

    // ---- memory system ------------------------------------------------------
    u64 l1Accesses = 0;
    u64 l1Misses = 0;
    u64 l2Accesses = 0;
    u64 l2Misses = 0;
    u64 dramAccesses = 0;
    u64 sharedAccesses = 0;
    u64 sharedBankConflicts = 0; ///< extra serialisation cycles
    u64 memRequests = 0; ///< post-coalescing requests
    u64 mshrStallCycles = 0; ///< L1 injection blocked on a full MSHR

    // ---- stalls (ablation of §4.1 bottleneck) -------------------------------
    u64 schedIdleCycles = 0;      ///< scheduler issued nothing
    u64 scoreboardStalls = 0;     ///< issue blocked by dependences
    u64 ocFullStalls = 0;         ///< no free collector
    u64 scalarBankStalls = 0;     ///< scalar-RF bank conflicts (AluScalar)
    u64 pipeBusyStalls = 0;       ///< execution pipe occupied

    /** Accumulate another SM's (or run's) counters into this one. */
    EventCounts &operator+=(const EventCounts &o);

    // ---- derived -------------------------------------------------------------
    /** Instructions per cycle. */
    double ipc() const { return cycles ? double(warpInsts) / cycles : 0; }

    /** Our compression ratio (raw bytes / stored bytes). */
    double
    compressionRatio() const
    {
        return compBytesCompressed
                   ? double(compBytesUncompressed) / compBytesCompressed
                   : 1.0;
    }

    /** Shadow BDI compression ratio over the same value stream. */
    double
    bdiCompressionRatio() const
    {
        return bdiBytesCompressed
                   ? double(bdiBytesUncompressed) / bdiBytesCompressed
                   : 1.0;
    }
};

} // namespace gs

#endif // GSCALAR_COMMON_EVENTS_HPP
