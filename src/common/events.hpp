/**
 * @file
 * Event counters: the contract between the timing simulator (which
 * counts micro-architectural events) and the power model (which prices
 * them). Also carries the classification tallies behind Figs. 1, 8, 9
 * and 10.
 */

#ifndef GSCALAR_COMMON_EVENTS_HPP
#define GSCALAR_COMMON_EVENTS_HPP

#include <cstddef>
#include <cstdint>

namespace gs
{

/**
 * Every countable event of one simulation run. Plain counters so the
 * struct is trivially mergeable across SMs.
 */
struct EventCounts
{
    using u64 = std::uint64_t;

    // ---- progress -------------------------------------------------------
    u64 cycles = 0;           ///< SM core cycles (max over SMs after merge)
    u64 warpInsts = 0;        ///< dynamic warp instructions committed
    u64 threadInsts = 0;      ///< sum of active lanes over warp insts
    u64 issuedInsts = 0;      ///< scheduler issues (incl. special moves)

    // ---- instruction class mix (warp level) ------------------------------
    u64 aluWarpInsts = 0;
    u64 sfuWarpInsts = 0;
    u64 memWarpInsts = 0;
    u64 ctrlWarpInsts = 0;

    // ---- lane-weighted execution activity ---------------------------------
    u64 aluLaneOps = 0;
    u64 sfuLaneOps = 0;
    u64 memLaneOps = 0;       ///< address-generation lane ops
    /** Lane ops x per-opcode relative energy (units of one FP32 op). */
    double aluEnergyUnits = 0;
    double sfuEnergyUnits = 0;

    // ---- divergence & scalar classification (Figs. 1, 9, 10) -------------
    u64 divergentWarpInsts = 0;       ///< active mask != full warp
    u64 divergentScalarEligible = 0;  ///< tier 4: divergent scalar
    u64 scalarAluEligible = 0;        ///< tier 1: non-div ALU scalar
    u64 scalarSfuEligible = 0;        ///< tier 2a
    u64 scalarMemEligible = 0;        ///< tier 2b
    u64 halfScalarEligible = 0;       ///< tier 3 (non-div, some group scalar)
    u64 scalarExecuted = 0;           ///< warp insts actually run on 1 lane
    u64 halfScalarExecuted = 0;
    u64 specialMoveInsts = 0;         ///< inserted decompress moves (§3.3)
    /** Instructions a static scalarizing compiler would cover (§6). */
    u64 staticScalarInsts = 0;

    // ---- register file (Fig. 8, Fig. 12) ----------------------------------
    u64 rfReads = 0;          ///< vector-register read operations
    u64 rfWrites = 0;
    u64 rfArrayReads = 0;     ///< 128-bit SRAM array activations
    u64 rfArrayWrites = 0;
    u64 bvrAccesses = 0;      ///< small BVR/EBR/flag array accesses
    u64 scalarRfAccesses = 0; ///< prior-work scalar RF accesses
    u64 crossbarBytes = 0;    ///< operand bytes through the crossbar
    u64 ocAllocations = 0;    ///< operand collector entries allocated

    /// Read-time access distribution (Fig. 8 categories).
    u64 rfAccScalar = 0;  ///< enc==1111: whole register is one value
    u64 rfAcc3Byte = 0;   ///< top 3 bytes common
    u64 rfAcc2Byte = 0;
    u64 rfAcc1Byte = 0;
    u64 rfAccDivergent = 0; ///< register last written divergently
    u64 rfAccOther = 0;     ///< no common bytes

    // ---- codec activity ----------------------------------------------------
    u64 compressorUses = 0;
    u64 decompressorUses = 0;

    // ---- shadow RF accounting (Fig. 12: same stream, four RF schemes) ------
    /// Baseline word-sliced register file.
    u64 shadowBaseArrayReads = 0;
    u64 shadowBaseArrayWrites = 0;
    /// Scalar-only RF of prior work [3]: scalar regs live in a small RF.
    u64 shadowScalarArrayReads = 0;
    u64 shadowScalarArrayWrites = 0;
    u64 shadowScalarRfAccesses = 0;
    /// Our byte-mask compressed RF.
    u64 shadowOursArrayReads = 0;
    u64 shadowOursArrayWrites = 0;
    u64 shadowOursBvrAccesses = 0;
    u64 shadowOursCrossbarBytes = 0;
    /// Warped-Compression (BDI) RF metadata accesses.
    u64 bdiMetaAccesses = 0;

    // ---- affine shadow classification (related work §6) --------------------
    u64 affineWrites = 0;          ///< register writes of base+i*stride form
    u64 affineNonScalarWrites = 0; ///< affine with stride != 0

    // ---- compression accounting (ratio, §5.3) ------------------------------
    u64 compBytesUncompressed = 0; ///< bytes written, raw size (ours)
    u64 compBytesCompressed = 0;   ///< bytes written, stored size (ours)
    u64 bdiBytesUncompressed = 0;  ///< shadow-BDI of the same stream
    u64 bdiBytesCompressed = 0;
    u64 bdiArrayReads = 0;         ///< array activations if BDI stored regs
    u64 bdiArrayWrites = 0;

    // ---- memory system ------------------------------------------------------
    u64 l1Accesses = 0;
    u64 l1Misses = 0;
    u64 l2Accesses = 0;
    u64 l2Misses = 0;
    u64 dramAccesses = 0;
    u64 sharedAccesses = 0;
    u64 sharedBankConflicts = 0; ///< extra serialisation cycles
    u64 memRequests = 0; ///< post-coalescing requests
    u64 mshrStallCycles = 0; ///< L1 injection blocked on a full MSHR

    // ---- stalls (ablation of §4.1 bottleneck) -------------------------------
    u64 schedIdleCycles = 0;      ///< scheduler issued nothing
    u64 scoreboardStalls = 0;     ///< issue blocked by dependences
    u64 ocFullStalls = 0;         ///< no free collector
    u64 scalarBankStalls = 0;     ///< scalar-RF bank conflicts (AluScalar)
    u64 pipeBusyStalls = 0;       ///< execution pipe occupied

    /** Accumulate another SM's (or run's) counters into this one. */
    EventCounts &operator+=(const EventCounts &o);

    // ---- derived -------------------------------------------------------------
    /** Instructions per cycle. */
    double ipc() const { return cycles ? double(warpInsts) / cycles : 0; }

    /** Our compression ratio (raw bytes / stored bytes). */
    double
    compressionRatio() const
    {
        return compBytesCompressed
                   ? double(compBytesUncompressed) / compBytesCompressed
                   : 1.0;
    }

    /** Shadow BDI compression ratio over the same value stream. */
    double
    bdiCompressionRatio() const
    {
        return bdiBytesCompressed
                   ? double(bdiBytesUncompressed) / bdiBytesCompressed
                   : 1.0;
    }
};

/**
 * X-macro enumerating every EventCounts field exactly once, in
 * declaration order: X(member, metricName, unit, doc). This is the
 * single source of truth behind operator+= (events.cpp) and the named
 * metric registry (obs/metrics.hpp); adding a counter means adding the
 * struct member *and* one line here — the static_assert below catches a
 * missed registration at compile time.
 *
 * Merge rule: `cycles` merges by max (SMs run in lock-step wall time);
 * every other field sums.
 */
#define GS_EVENT_COUNT_FIELDS(X)                                             \
    X(cycles, "cycles", "cycles",                                            \
      "SM core cycles (max over SMs after merge)")                           \
    X(warpInsts, "warp_insts", "insts",                                      \
      "dynamic warp instructions committed")                                 \
    X(threadInsts, "thread_insts", "insts",                                  \
      "sum of active lanes over warp insts")                                 \
    X(issuedInsts, "issued_insts", "insts",                                  \
      "scheduler issues (incl. special moves)")                              \
    X(aluWarpInsts, "alu_warp_insts", "insts", "ALU-class warp insts")       \
    X(sfuWarpInsts, "sfu_warp_insts", "insts", "SFU-class warp insts")       \
    X(memWarpInsts, "mem_warp_insts", "insts", "memory-class warp insts")    \
    X(ctrlWarpInsts, "ctrl_warp_insts", "insts", "control-class warp insts") \
    X(aluLaneOps, "alu_lane_ops", "ops", "ALU lane operations")              \
    X(sfuLaneOps, "sfu_lane_ops", "ops", "SFU lane operations")              \
    X(memLaneOps, "mem_lane_ops", "ops", "address-generation lane ops")      \
    X(aluEnergyUnits, "alu_energy_units", "fp32-ops",                        \
      "ALU lane ops x per-opcode relative energy")                           \
    X(sfuEnergyUnits, "sfu_energy_units", "fp32-ops",                        \
      "SFU lane ops x per-opcode relative energy")                           \
    X(divergentWarpInsts, "divergent_warp_insts", "insts",                   \
      "active mask != full warp")                                            \
    X(divergentScalarEligible, "divergent_scalar_eligible", "insts",         \
      "tier 4: divergent scalar")                                            \
    X(scalarAluEligible, "scalar_alu_eligible", "insts",                     \
      "tier 1: non-divergent ALU scalar")                                    \
    X(scalarSfuEligible, "scalar_sfu_eligible", "insts", "tier 2a: SFU")     \
    X(scalarMemEligible, "scalar_mem_eligible", "insts", "tier 2b: MEM")     \
    X(halfScalarEligible, "half_scalar_eligible", "insts",                   \
      "tier 3: non-divergent, some group scalar")                            \
    X(scalarExecuted, "scalar_executed", "insts",                            \
      "warp insts actually run on one lane")                                 \
    X(halfScalarExecuted, "half_scalar_executed", "insts",                   \
      "warp insts run on one lane per half")                                 \
    X(specialMoveInsts, "special_move_insts", "insts",                       \
      "inserted decompress moves (Sec 3.3)")                                 \
    X(staticScalarInsts, "static_scalar_insts", "insts",                     \
      "covered by a static scalarizing compiler (Sec 6)")                    \
    X(rfReads, "rf_reads", "accesses", "vector-register read operations")    \
    X(rfWrites, "rf_writes", "accesses", "vector-register write operations") \
    X(rfArrayReads, "rf_array_reads", "accesses",                            \
      "128-bit SRAM array read activations")                                 \
    X(rfArrayWrites, "rf_array_writes", "accesses",                          \
      "128-bit SRAM array write activations")                                \
    X(bvrAccesses, "bvr_accesses", "accesses",                               \
      "small BVR/EBR/flag array accesses")                                   \
    X(scalarRfAccesses, "scalar_rf_accesses", "accesses",                    \
      "prior-work scalar RF accesses")                                       \
    X(crossbarBytes, "crossbar_bytes", "bytes",                              \
      "operand bytes through the crossbar")                                  \
    X(ocAllocations, "oc_allocations", "entries",                            \
      "operand collector entries allocated")                                 \
    X(rfAccScalar, "rf_acc_scalar", "accesses",                              \
      "reads of a fully-scalar register (enc 1111)")                         \
    X(rfAcc3Byte, "rf_acc_3byte", "accesses",                                \
      "reads with top 3 bytes common")                                       \
    X(rfAcc2Byte, "rf_acc_2byte", "accesses",                                \
      "reads with top 2 bytes common")                                       \
    X(rfAcc1Byte, "rf_acc_1byte", "accesses",                                \
      "reads with top byte common")                                          \
    X(rfAccDivergent, "rf_acc_divergent", "accesses",                        \
      "reads of a divergently-written register")                             \
    X(rfAccOther, "rf_acc_other", "accesses",                                \
      "reads with no common bytes")                                          \
    X(compressorUses, "compressor_uses", "uses",                             \
      "byte-mask compressor activations")                                    \
    X(decompressorUses, "decompressor_uses", "uses",                         \
      "byte-mask decompressor activations")                                  \
    X(shadowBaseArrayReads, "shadow_base_array_reads", "accesses",           \
      "baseline word-sliced RF shadow: array reads")                         \
    X(shadowBaseArrayWrites, "shadow_base_array_writes", "accesses",         \
      "baseline word-sliced RF shadow: array writes")                        \
    X(shadowScalarArrayReads, "shadow_scalar_array_reads", "accesses",       \
      "scalar-RF [3] shadow: vector array reads")                            \
    X(shadowScalarArrayWrites, "shadow_scalar_array_writes", "accesses",     \
      "scalar-RF [3] shadow: vector array writes")                           \
    X(shadowScalarRfAccesses, "shadow_scalar_rf_accesses", "accesses",       \
      "scalar-RF [3] shadow: scalar RF accesses")                            \
    X(shadowOursArrayReads, "shadow_ours_array_reads", "accesses",           \
      "byte-mask RF shadow: array reads")                                    \
    X(shadowOursArrayWrites, "shadow_ours_array_writes", "accesses",         \
      "byte-mask RF shadow: array writes")                                   \
    X(shadowOursBvrAccesses, "shadow_ours_bvr_accesses", "accesses",         \
      "byte-mask RF shadow: BVR/EBR accesses")                               \
    X(shadowOursCrossbarBytes, "shadow_ours_crossbar_bytes", "bytes",        \
      "byte-mask RF shadow: crossbar bytes")                                 \
    X(bdiMetaAccesses, "bdi_meta_accesses", "accesses",                      \
      "Warped-Compression RF metadata accesses")                             \
    X(affineWrites, "affine_writes", "writes",                               \
      "register writes of base+i*stride form")                               \
    X(affineNonScalarWrites, "affine_nonscalar_writes", "writes",            \
      "affine writes with stride != 0")                                      \
    X(compBytesUncompressed, "comp_bytes_uncompressed", "bytes",             \
      "register bytes written, raw size (ours)")                             \
    X(compBytesCompressed, "comp_bytes_compressed", "bytes",                 \
      "register bytes written, stored size (ours)")                          \
    X(bdiBytesUncompressed, "bdi_bytes_uncompressed", "bytes",               \
      "shadow-BDI raw bytes over the same stream")                           \
    X(bdiBytesCompressed, "bdi_bytes_compressed", "bytes",                   \
      "shadow-BDI stored bytes over the same stream")                        \
    X(bdiArrayReads, "bdi_array_reads", "accesses",                          \
      "array read activations if BDI stored regs")                           \
    X(bdiArrayWrites, "bdi_array_writes", "accesses",                        \
      "array write activations if BDI stored regs")                          \
    X(l1Accesses, "l1_accesses", "accesses", "L1 data cache accesses")       \
    X(l1Misses, "l1_misses", "accesses", "L1 data cache misses")             \
    X(l2Accesses, "l2_accesses", "accesses", "L2 cache accesses")            \
    X(l2Misses, "l2_misses", "accesses", "L2 cache misses")                  \
    X(dramAccesses, "dram_accesses", "accesses", "DRAM accesses")            \
    X(sharedAccesses, "shared_accesses", "accesses",                         \
      "shared-memory accesses")                                              \
    X(sharedBankConflicts, "shared_bank_conflicts", "cycles",                \
      "extra serialisation cycles from bank conflicts")                      \
    X(memRequests, "mem_requests", "requests",                               \
      "post-coalescing memory requests")                                     \
    X(mshrStallCycles, "mshr_stall_cycles", "cycles",                        \
      "L1 injection blocked on a full MSHR")                                 \
    X(schedIdleCycles, "sched_idle_cycles", "cycles",                        \
      "scheduler issued nothing")                                            \
    X(scoreboardStalls, "scoreboard_stalls", "cycles",                       \
      "issue blocked by dependences")                                        \
    X(ocFullStalls, "oc_full_stalls", "cycles", "no free collector")         \
    X(scalarBankStalls, "scalar_bank_stalls", "cycles",                      \
      "scalar-RF bank conflicts (AluScalar)")                                \
    X(pipeBusyStalls, "pipe_busy_stalls", "cycles",                          \
      "execution pipe occupied")

namespace detail
{
#define GS_EVENT_COUNT_ONE(member, name, unit, doc) +1
/** Number of lines in GS_EVENT_COUNT_FIELDS. */
inline constexpr std::size_t kEventFieldListCount =
    0 GS_EVENT_COUNT_FIELDS(GS_EVENT_COUNT_ONE);
#undef GS_EVENT_COUNT_ONE
} // namespace detail

/** Number of EventCounts fields; the registry must cover all of them. */
inline constexpr std::size_t kEventCountFields =
    detail::kEventFieldListCount;

// Every EventCounts member is 8 bytes (u64 or double), so a field
// missing from (or duplicated in) GS_EVENT_COUNT_FIELDS breaks this.
static_assert(sizeof(double) == sizeof(std::uint64_t));
static_assert(kEventCountFields * sizeof(std::uint64_t) ==
                  sizeof(EventCounts),
              "GS_EVENT_COUNT_FIELDS is out of sync with EventCounts: "
              "register every new counter exactly once");

} // namespace gs

#endif // GSCALAR_COMMON_EVENTS_HPP
