/**
 * @file
 * Architecture modes evaluated in the paper: the baseline GPU, the
 * prior-work scalar and compression architectures, and the G-Scalar
 * variants (Figs. 11 and 12).
 */

#ifndef GSCALAR_COMMON_ARCH_MODE_HPP
#define GSCALAR_COMMON_ARCH_MODE_HPP

#include <string_view>

namespace gs
{

/**
 * Which micro-architecture a simulation models. A single run uses one
 * mode; the classification figures (1, 8, 9, 10) are mode-independent
 * because cross-lane value metadata is tracked canonically in every
 * run.
 */
enum class ArchMode
{
    /** Unmodified GTX 480-like GPU: no compression, no scalar exec. */
    Baseline,

    /**
     * Prior scalar architecture [Gilani et al., HPCA'13]: detected
     * non-divergent ALU scalar instructions use a separate single-bank
     * scalar register file and one execution lane.
     */
    AluScalar,

    /**
     * Prior register compression [Lee et al., ISCA'15]: BDI-based
     * register value compression, no scalar execution. Fig. 12's "W-C".
     */
    WarpedCompression,

    /** Our byte-mask register compression only (Fig. 12 "ours"). */
    GScalarCompressOnly,

    /**
     * G-Scalar without divergent/half-warp support: compression plus
     * full-warp scalar execution on ALU, SFU and MEM pipelines.
     */
    GScalarNoDiv,

    /** Full G-Scalar: adds half-warp and divergent scalar execution. */
    GScalarFull,
};

/** Short human-readable mode name for reports. */
constexpr std::string_view
archModeName(ArchMode m)
{
    switch (m) {
      case ArchMode::Baseline: return "baseline";
      case ArchMode::AluScalar: return "alu-scalar";
      case ArchMode::WarpedCompression: return "warped-compression";
      case ArchMode::GScalarCompressOnly: return "gscalar-compress";
      case ArchMode::GScalarNoDiv: return "gscalar-nodiv";
      case ArchMode::GScalarFull: return "gscalar";
    }
    return "?";
}

/** True when the mode stores registers in our byte-mask compressed form. */
constexpr bool
usesByteMaskCompression(ArchMode m)
{
    return m == ArchMode::GScalarCompressOnly ||
           m == ArchMode::GScalarNoDiv || m == ArchMode::GScalarFull;
}

/** True when the mode stores registers in BDI compressed form. */
constexpr bool
usesBdiCompression(ArchMode m)
{
    return m == ArchMode::WarpedCompression;
}

/** True when non-divergent full-warp ALU scalar execution is exploited. */
constexpr bool
exploitsAluScalar(ArchMode m)
{
    return m == ArchMode::AluScalar || m == ArchMode::GScalarNoDiv ||
           m == ArchMode::GScalarFull;
}

/** True when SFU and memory instructions may also execute scalar. */
constexpr bool
exploitsSfuMemScalar(ArchMode m)
{
    return m == ArchMode::GScalarNoDiv || m == ArchMode::GScalarFull;
}

/** True when half-warp scalar execution is exploited. */
constexpr bool
exploitsHalfScalar(ArchMode m)
{
    return m == ArchMode::GScalarFull;
}

/** True when divergent scalar execution is exploited. */
constexpr bool
exploitsDivergentScalar(ArchMode m)
{
    return m == ArchMode::GScalarFull;
}

/**
 * Extra pipeline depth in cycles relative to the baseline (§5.1): one
 * cycle each for reading the encoding bits before the RF, decompressing
 * a value, and compressing the write-back value. The BDI architecture
 * pays an equivalent pack/unpack latency.
 */
constexpr unsigned
extraPipelineCycles(ArchMode m)
{
    return (usesByteMaskCompression(m) || usesBdiCompression(m)) ? 3 : 0;
}

/**
 * True for the prior-work scalar architecture whose scalar values live
 * in a single-bank scalar RF (the §4.1 bottleneck).
 */
constexpr bool
usesSingleBankScalarRf(ArchMode m)
{
    return m == ArchMode::AluScalar;
}

} // namespace gs

#endif // GSCALAR_COMMON_ARCH_MODE_HPP
