#include "log.hpp"

#include <atomic>
#include <iostream>

namespace gs
{

namespace
{
std::atomic<bool> g_quiet{false};
} // namespace

void
setQuiet(bool q)
{
    g_quiet.store(q);
}

bool
quiet()
{
    return g_quiet.load();
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet())
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!quiet())
        std::cout << "info: " << msg << std::endl;
}

} // namespace detail

} // namespace gs
