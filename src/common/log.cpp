#include "log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace gs
{

namespace
{
std::atomic<bool> g_quiet{false};

/** Serialises stream output so concurrent harness workers never
 *  interleave message fragments. */
std::mutex g_log_mutex;
} // namespace

void
setQuiet(bool q)
{
    g_quiet.store(q);
}

bool
quiet()
{
    return g_quiet.load();
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(g_log_mutex);
        std::cerr << "panic: " << msg << " @ " << file << ":" << line
                  << std::endl;
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(g_log_mutex);
        std::cerr << "fatal: " << msg << " @ " << file << ":" << line
                  << std::endl;
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet()) {
        std::lock_guard<std::mutex> lock(g_log_mutex);
        std::cerr << "warn: " << msg << std::endl;
    }
}

void
informImpl(const std::string &msg)
{
    if (!quiet()) {
        std::lock_guard<std::mutex> lock(g_log_mutex);
        std::cout << "info: " << msg << std::endl;
    }
}

} // namespace detail

} // namespace gs
