#include "codec_id.hpp"

#include <atomic>
#include <cstdlib>

#include "log.hpp"

namespace gs
{

namespace
{

struct CodecName
{
    CodecId id;
    const char *name;
};

constexpr CodecName kCodecNames[] = {
    {CodecId::ByteMask, "byte-mask"},
    {CodecId::Bdi, "bdi"},
    {CodecId::StaticProfile, "static-profile"},
    {CodecId::Rrcd, "rrcd"},
};

static_assert(sizeof(kCodecNames) / sizeof(kCodecNames[0]) == kNumCodecs,
              "kCodecNames is out of sync with CodecId");

constexpr int kNoOverride = -1;

std::atomic<int> g_override{kNoOverride};

/** Resolve $GS_CODEC once; the environment cannot change. */
CodecId
resolveEnv()
{
    if (const char *env = std::getenv("GS_CODEC")) {
        const std::optional<CodecId> v = parseCodecId(env);
        if (!v)
            GS_FATAL("GS_CODEC='", env,
                     "' is not a registered codec (want ",
                     codecIdList(), ")");
        return *v;
    }
    return CodecId::ByteMask;
}

} // namespace

const char *
codecIdName(CodecId id)
{
    for (const CodecName &cn : kCodecNames)
        if (cn.id == id)
            return cn.name;
    return "?";
}

std::optional<CodecId>
parseCodecId(std::string_view name)
{
    for (const CodecName &cn : kCodecNames)
        if (name == cn.name)
            return cn.id;
    return std::nullopt;
}

std::string
codecIdList()
{
    std::string out;
    for (const CodecName &cn : kCodecNames) {
        if (!out.empty())
            out += ", ";
        out += cn.name;
    }
    return out;
}

CodecId
defaultCodecId()
{
    const int ov = g_override.load(std::memory_order_relaxed);
    if (ov != kNoOverride)
        return CodecId(ov);
    static const CodecId resolved = resolveEnv();
    return resolved;
}

void
setDefaultCodecId(CodecId id)
{
    g_override.store(int(id), std::memory_order_relaxed);
}

void
clearDefaultCodecIdOverride()
{
    g_override.store(kNoOverride, std::memory_order_relaxed);
}

} // namespace gs
