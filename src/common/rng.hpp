/**
 * @file
 * Deterministic xorshift-based random number generator. All workload
 * data generation goes through this so every bench run is bit-for-bit
 * reproducible.
 */

#ifndef GSCALAR_COMMON_RNG_HPP
#define GSCALAR_COMMON_RNG_HPP

#include <cstdint>

namespace gs
{

/**
 * xorshift128+ generator. Small, fast, and good enough for workload
 * synthesis; not for cryptography.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding to avoid correlated low-entropy states.
        auto next = [&seed]() {
            seed += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            return z ^ (z >> 31);
        };
        s0_ = next();
        s1_ = next();
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next 64 uniformly random bits. */
    std::uint64_t
    next64()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Next 32 uniformly random bits. */
    std::uint32_t next32() { return static_cast<std::uint32_t>(next64()); }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next64() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace gs

#endif // GSCALAR_COMMON_RNG_HPP
