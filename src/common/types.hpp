/**
 * @file
 * Fundamental fixed-width types and architectural constants shared by
 * every module in the G-Scalar reproduction.
 */

#ifndef GSCALAR_COMMON_TYPES_HPP
#define GSCALAR_COMMON_TYPES_HPP

#include <cstdint>

namespace gs
{

/** A 4-byte GPU machine word (one lane's view of a vector register). */
using Word = std::uint32_t;

/** A byte-granular device memory address. */
using Addr = std::uint64_t;

/**
 * A warp-wide lane mask. Bit i is set when lane i is active. 64 bits so
 * warp sizes up to 64 (AMD GCN wavefronts, Fig. 10) are representable.
 */
using LaneMask = std::uint64_t;

/** Simulation time in SM core cycles. */
using Cycle = std::uint64_t;

/** Number of bytes in one machine word. */
inline constexpr unsigned kBytesPerWord = 4;

/** Largest warp size any configuration may request. */
inline constexpr unsigned kMaxWarpSize = 64;

/** Sentinel for "no register". */
inline constexpr int kNoReg = -1;

/** Build a mask with the low @p n lanes set. */
constexpr LaneMask
laneMaskLow(unsigned n)
{
    return n >= 64 ? ~LaneMask{0} : ((LaneMask{1} << n) - 1);
}

} // namespace gs

#endif // GSCALAR_COMMON_TYPES_HPP
