#include "config.hpp"

#include "bit_utils.hpp"
#include "log.hpp"
#include "table.hpp"

namespace gs
{

std::string
ArchConfig::check() const
{
    using detail::formatMsg;

    if (warpSize == 0 || warpSize > kMaxWarpSize)
        return formatMsg("warp size ", warpSize, " out of range [1, ",
                         kMaxWarpSize, "]");
    if (!isPow2(warpSize))
        return formatMsg("warp size must be a power of two, got ",
                         warpSize);
    if (simtWidth == 0 || simtWidth > warpSize)
        return formatMsg("SIMT width ", simtWidth,
                         " must be in [1, warp size]");
    if (checkGranularity == 0 || warpSize % checkGranularity != 0)
        return formatMsg("check granularity ", checkGranularity,
                         " must divide warp size ", warpSize);
    if (numBanks == 0 || numCollectors == 0 || numSchedulers == 0)
        return formatMsg("banks, collectors and schedulers must be "
                         "nonzero");
    if (numVregsPerSm % numBanks != 0)
        return formatMsg("vector registers (", numVregsPerSm,
                         ") must divide evenly over ", numBanks,
                         " banks");
    if (!isPow2(lineBytes) || lineBytes < kBytesPerWord)
        return formatMsg("cache line size must be a power-of-two >= 4");
    if (l1Assoc == 0 || l1Bytes % (lineBytes * l1Assoc) != 0)
        return formatMsg("L1 geometry does not divide into sets");
    if (l2Assoc == 0 || l2Bytes % (lineBytes * l2Assoc) != 0)
        return formatMsg("L2 geometry does not divide into sets");
    if (scalarRfBanks == 0)
        return formatMsg("scalar RF needs at least one bank");
    if (sharedBanks == 0 || sharedBanks > kMaxWarpSize)
        return formatMsg("shared memory banks must be in [1, ",
                         kMaxWarpSize, "]");
    if (maxThreadsPerSm % warpSize != 0)
        return formatMsg("threads per SM must be a whole number of "
                         "warps");
    if (numSms == 0 || numAluPipes == 0 || sfuWidth == 0)
        return formatMsg("SMs, ALU pipes and SFU width must be nonzero");
    if (maxCycles == 0)
        return formatMsg("maxCycles watchdog must be nonzero");
    if (!(dramRequestsPerCycle > 0) || !(coreClockGhz > 0))
        return formatMsg("DRAM requests/cycle and core clock must be "
                         "positive");
    if (static_cast<std::uint32_t>(codec) >= kNumCodecs)
        return formatMsg("codec id ",
                         static_cast<std::uint32_t>(codec),
                         " is not a registered codec");
    return {};
}

void
ArchConfig::validate() const
{
    const std::string err = check();
    if (!err.empty())
        GS_FATAL(err);
}

namespace
{

/** FNV-1a over the raw bytes of a trivially-copyable value. */
template <typename T>
void
mixField(std::uint64_t &h, const T &v)
{
    unsigned char bytes[sizeof(T)];
    __builtin_memcpy(bytes, &v, sizeof(T));
    for (unsigned i = 0; i < sizeof(T); ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ull;
    }
}

} // namespace

std::uint64_t
ArchConfig::fingerprint() const
{
    std::uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis

    mixField(h, static_cast<std::uint32_t>(mode));
    mixField(h, numSms);
    mixField(h, warpSize);
    mixField(h, simtWidth);
    mixField(h, sfuWidth);
    mixField(h, numAluPipes);
    mixField(h, maxThreadsPerSm);
    mixField(h, maxCtasPerSm);
    mixField(h, numVregsPerSm);
    mixField(h, numBanks);
    mixField(h, arraysPerBank);
    mixField(h, numCollectors);
    mixField(h, numSchedulers);
    mixField(h, static_cast<std::uint32_t>(schedPolicy));
    mixField(h, checkGranularity);
    mixField(h, halfRegisterCompression);
    mixField(h, scalarRfBanks);
    mixField(h, insertSpecialMoves);
    mixField(h, compilerAssistedSmov);
    mixField(h, scalarShortensOccupancy);
    mixField(h, aluLatency);
    mixField(h, mulLatency);
    mixField(h, divLatency);
    mixField(h, sfuLatency);
    mixField(h, lineBytes);
    mixField(h, l1Bytes);
    mixField(h, l1Assoc);
    mixField(h, l1Latency);
    mixField(h, l1MshrEntries);
    mixField(h, l2Bytes);
    mixField(h, l2Assoc);
    mixField(h, l2Latency);
    mixField(h, dramLatency);
    mixField(h, memChannels);
    mixField(h, dramRequestsPerCycle);
    mixField(h, sharedLatency);
    mixField(h, sharedBanks);
    mixField(h, coreClockGhz);
    mixField(h, maxCycles);
    mixField(h, seed);
    mixField(h, static_cast<std::uint32_t>(codec));
    return h;
}

std::string
ArchConfig::describe() const
{
    Table t("Simulator configuration (Table 1)");
    t.row({"parameter", "value"});
    t.row({"# of SMs", std::to_string(numSms)});
    t.row({"Registers per SM",
           std::to_string(numVregsPerSm * warpSize * kBytesPerWord / 1024) +
               "KB"});
    t.row({"SM frequency", Table::num(coreClockGhz, 1) + "GHz"});
    t.row({"Register file banks", std::to_string(numBanks)});
    t.row({"Operand collectors per SM", std::to_string(numCollectors)});
    t.row({"Warp size", std::to_string(warpSize)});
    t.row({"Schedulers per SM", std::to_string(numSchedulers)});
    t.row({"SIMT EXE width", std::to_string(simtWidth)});
    t.row({"L1$ per SM", std::to_string(l1Bytes / 1024) + "KB"});
    t.row({"Threads per SM", std::to_string(maxThreadsPerSm)});
    t.row({"Memory channels", std::to_string(memChannels)});
    t.row({"CTAs per SM", std::to_string(maxCtasPerSm)});
    t.row({"L2$ size", std::to_string(l2Bytes / 1024) + "KB"});
    t.row({"Mode", std::string(archModeName(mode))});
    return t.str();
}

} // namespace gs
