/**
 * @file
 * Error/status reporting in the gem5 idiom: panic() for internal
 * invariant violations, fatal() for user/configuration errors, warn()
 * and inform() for non-fatal status.
 */

#ifndef GSCALAR_COMMON_LOG_HPP
#define GSCALAR_COMMON_LOG_HPP

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gs
{

namespace detail
{

/** Format a message from stream-style arguments. */
template <typename... Args>
std::string
formatMsg(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Silence warn()/inform() output (used by tests and benches). */
void setQuiet(bool quiet);

/** @return whether warn()/inform() output is suppressed. */
bool quiet();

} // namespace gs

/**
 * Abort on a simulator bug: a condition that should never happen
 * regardless of user input. Dumps core via abort().
 */
#define GS_PANIC(...)                                                        \
    ::gs::detail::panicImpl(__FILE__, __LINE__,                              \
                            ::gs::detail::formatMsg(__VA_ARGS__))

/**
 * Exit on a user error: bad configuration or arguments. Normal exit(1).
 */
#define GS_FATAL(...)                                                        \
    ::gs::detail::fatalImpl(__FILE__, __LINE__,                              \
                            ::gs::detail::formatMsg(__VA_ARGS__))

/** Warn about behaviour that may be imprecise but lets the run go on. */
#define GS_WARN(...)                                                         \
    ::gs::detail::warnImpl(::gs::detail::formatMsg(__VA_ARGS__))

/** Informative status message. */
#define GS_INFORM(...)                                                       \
    ::gs::detail::informImpl(::gs::detail::formatMsg(__VA_ARGS__))

/** Panic when @p cond is false (always checked, release builds too). */
#define GS_ASSERT(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            GS_PANIC("assertion failed: " #cond " ",                        \
                     ::gs::detail::formatMsg(__VA_ARGS__));                  \
        }                                                                    \
    } while (0)

#endif // GSCALAR_COMMON_LOG_HPP
