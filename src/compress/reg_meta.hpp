/**
 * @file
 * Per-vector-register compression metadata: the encoding-bit register
 * (EBR), base-value register (BVR), divergence bit D and full-scalar
 * bit FS of §3.2-§4.3, plus the shadow BDI encoding used to compare
 * against Warped-Compression on the same value stream.
 */

#ifndef GSCALAR_COMPRESS_REG_META_HPP
#define GSCALAR_COMPRESS_REG_META_HPP

#include <array>
#include <span>

#include "bdi_codec.hpp"
#include "common/types.hpp"

namespace gs
{

/** Maximum scalar-check groups per warp (64 lanes / 16). */
inline constexpr unsigned kMaxGroups = 4;

/**
 * Metadata for one vector register of one warp. Mirrors the hardware
 * state: enc[3:0] + base per check group, a D bit, and — when D is set
 * — the active mask of the writing instruction stored in the BVR
 * (§4.2). The full-warp encoding is tracked separately because Fig. 8
 * classifies at whole-register granularity and full-warp scalar
 * execution checks it directly.
 */
struct RegMeta
{
    /** Register written at least once (metadata meaningful). */
    bool valid = false;

    /** D bit: last write was divergent; stored uncompressed. */
    bool divergent = false;

    /** Common most-significant bytes across all compared lanes (0..4). */
    std::uint8_t fullEnc = 0;
    /** Base value (first active lane) of the last write. */
    Word fullBase = 0;

    /** Per-16-lane-group encodings (half-register compression, §3.2). */
    std::array<std::uint8_t, kMaxGroups> groupEnc = {};
    std::array<Word, kMaxGroups> groupBase = {};

    /** Active mask of the writing instruction (valid when divergent). */
    LaneMask writeMask = 0;

    /** Shadow BDI encoding of the same stored values (Fig. 12 "W-C"). */
    BdiMode bdiMode = BdiMode::Uncompressed;
    std::uint16_t bdiBytes = 0;

    /** Shadow affine classification (related-work comparison, §6). */
    bool affine = false;
    Word affineStride = 0;

    /**
     * Frozen per-register encoding of the static-profile codec
     * (compress/static_profile_codec.cpp): the common-MSB count its
     * offline profile fixed for this register, 0xFF while unset.
     * Carried across writes by Codec::updateMeta(); ignored by every
     * other codec.
     */
    std::uint8_t profileEnc = 0xFF;

    /** FS bit: every group scalar with the same value (== fullEnc==4). */
    bool fullScalar() const { return valid && !divergent && fullEnc == 4; }

    /** Group @p g holds a scalar value (meaning only when !divergent). */
    bool
    groupScalar(unsigned g) const
    {
        return valid && !divergent && groupEnc[g] == 4;
    }
};

/**
 * Write-back comparison + compression decision (§3.1-§3.3). Computes
 * the new metadata of a register after an instruction writes @p values
 * in the lanes of @p mask.
 *
 * @param values       post-write register contents, one word per lane
 * @param mask         lanes written by the instruction
 * @param full_mask    all lanes the warp owns (mask == full_mask means
 *                     a non-divergent write, which compresses)
 * @param granularity  lanes per check group (16)
 */
RegMeta analyzeWrite(std::span<const Word> values, LaneMask mask,
                     LaneMask full_mask, unsigned granularity);

} // namespace gs

#endif // GSCALAR_COMPRESS_REG_META_HPP
