/**
 * @file
 * Static profile-guided register compression, after Angerd, Sintorn
 * and Stenström (arxiv 2006.05693). The original proposal profiles a
 * workload offline and compiles a fixed per-register encoding table
 * into the binary, removing every dynamic comparator from the write
 * path: hardware only checks whether a written value still fits the
 * profiled encoding and escapes to raw storage when it does not.
 *
 * The reproduction models that deterministically online: the first
 * non-divergent write of a register freezes its encoding
 * (RegMeta::profileEnc, carried forward by updateMeta()) — exactly the
 * value an oracle-free profile run over the same seeded input would
 * produce. Later writes fit while their dynamic common-MSB count is at
 * least the frozen one (stored at the profiled width); otherwise the
 * register escapes to uncompressed storage. Encoding is per register,
 * never per check group, so the half-register tier is unavailable;
 * the payoff is one fewer pipeline stage (no dynamic EBR lookup) and
 * a compressor that is mostly wires.
 */

#include "byte_mask_codec.hpp"
#include "codec_impl.hpp"

namespace gs
{
namespace compress
{

namespace
{

/**
 * Effective stored encoding of a register under the frozen profile:
 * the profiled width when the value still fits, raw (0) when it
 * escaped, the dynamic width before any profile exists.
 */
unsigned
profiledEnc(const RegMeta &meta)
{
    if (meta.profileEnc == 0xFF)
        return meta.fullEnc;
    return meta.fullEnc >= meta.profileEnc ? meta.profileEnc : 0;
}

/** Meta as the storage sees it: full-register, profile-clamped. */
RegMeta
profiledMeta(const RegMeta &meta)
{
    RegMeta m = meta;
    m.fullEnc = std::uint8_t(profiledEnc(meta));
    return m;
}

class StaticProfileCodec : public ByteMaskCodec
{
  public:
    CodecId id() const override { return CodecId::StaticProfile; }

    CodecCaps
    caps() const override
    {
        CodecCaps c = ByteMaskCodec::caps();
        c.halfScalar = false;      // one encoding per register
        c.divergentScalar = false; // no dynamic write-mask metadata
        // No dynamic encoding lookup in front of the operand
        // collectors: one pipeline stage instead of two.
        c.extraFrontCycles = 1;
        c.simdDispatch = false; // the comparators profiling replaced
        return c;
    }

    CodecEnergyScale
    energyScale() const override
    {
        // The write path shrinks to a fits-the-profile check; the
        // static EBR halves the metadata array's switching and the
        // codec's leakage share.
        return {0.15, 1.0, 0.5, 0.5};
    }

    CodecAreaScale
    areaScale() const override
    {
        return {0.20, 1.0, 0.6};
    }

    bool
    regScalar(const RegMeta &meta) const override
    {
        return meta.valid && !meta.divergent && profiledEnc(meta) == 4;
    }

    bool
    regCompressed(const RegMeta &meta) const override
    {
        return meta.valid && !meta.divergent && profiledEnc(meta) > 0;
    }

    void
    updateMeta(const RegMeta &before, RegMeta &after) const override
    {
        if (before.profileEnc != 0xFF)
            after.profileEnc = before.profileEnc; // profile is frozen
        else if (after.valid && !after.divergent)
            after.profileEnc = after.fullEnc; // first profiled write
    }

    AccessCost
    readCost(const RfGeometry &geo, const RegMeta &meta, LaneMask reader,
             bool half_reg, bool scalar_from_meta) const override
    {
        (void)half_reg;
        return ByteMaskCodec::readCost(geo, profiledMeta(meta), reader,
                                       false, scalar_from_meta);
    }

    AccessCost
    writeCost(const RfGeometry &geo, const RegMeta &meta, bool half_reg,
              bool scalar_to_meta) const override
    {
        (void)half_reg;
        return ByteMaskCodec::writeCost(geo, profiledMeta(meta), false,
                                        scalar_to_meta);
    }

    unsigned
    regStoredBytes(const RfGeometry &geo, const RegMeta &meta,
                   bool half_reg) const override
    {
        (void)half_reg;
        return ByteMaskCodec::regStoredBytes(geo, profiledMeta(meta),
                                             false);
    }

    unsigned
    metadataBitsPerReg(const RfGeometry &geo, bool half_reg) const override
    {
        (void)geo;
        (void)half_reg;
        // The encoding lives in the compiled profile table; the RF
        // keeps one base plus the D/FS flags.
        return 32 + 2;
    }

    // encode()/decode() inherit the byte-mask stored format: the
    // blob's enc byte is the profile-table entry feeding the fixed
    // encoder, so a profile round-trips through the same payload.
};

} // namespace

const Codec &
staticProfileCodec()
{
    static const StaticProfileCodec codec;
    return codec;
}

} // namespace compress
} // namespace gs
