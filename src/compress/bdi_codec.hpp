/**
 * @file
 * Base-Delta-Immediate compression of a vector register, as used by the
 * Warped-Compression architecture [Lee et al., ISCA'15] that Fig. 12
 * compares against. Base is the first lane's word; deltas are signed
 * offsets of 1 or 2 bytes.
 */

#ifndef GSCALAR_COMPRESS_BDI_CODEC_HPP
#define GSCALAR_COMPRESS_BDI_CODEC_HPP

#include <span>

#include "common/types.hpp"

namespace gs
{

/** BDI encodings applicable to a vector register of 4-byte words. */
enum class BdiMode : std::uint8_t
{
    Zero,         ///< all lanes zero: store nothing but the mode
    Scalar,       ///< all lanes identical: store the 4-byte base
    BaseDelta1,   ///< 4-byte base + 1-byte signed delta per lane
    BaseDelta2,   ///< 4-byte base + 2-byte signed delta per lane
    Uncompressed, ///< store all lanes raw
};

/** Chosen encoding plus its stored size. */
struct BdiEncoding
{
    BdiMode mode = BdiMode::Uncompressed;
    Word base = 0;
    unsigned storedBytes = 0;

    bool isScalar() const
    {
        return mode == BdiMode::Scalar || mode == BdiMode::Zero;
    }
};

/**
 * Pick the cheapest BDI encoding for the (active) lanes of a register.
 * Inactive lanes are ignored, mirroring the byte-mask codec so the two
 * schemes are compared on the same stream.
 */
BdiEncoding analyzeBdi(std::span<const Word> values, LaneMask active);

/** Stored bytes for a full register of @p lanes lanes in @p mode. */
unsigned bdiStoredBytes(BdiMode mode, unsigned lanes);

} // namespace gs

#endif // GSCALAR_COMPRESS_BDI_CODEC_HPP
