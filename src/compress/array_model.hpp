/**
 * @file
 * SRAM-array activation model for register file accesses. The baseline
 * bank stores registers word-sliced (one array = four consecutive
 * lanes' words); the compression micro-architecture stores them
 * byte-sliced (one array = byte[i] of a 16-lane group), which is what
 * lets a compressed access activate fewer arrays (§3.2, Fig. 3).
 */

#ifndef GSCALAR_COMPRESS_ARRAY_MODEL_HPP
#define GSCALAR_COMPRESS_ARRAY_MODEL_HPP

#include "common/types.hpp"
#include "reg_meta.hpp"

namespace gs
{

/** Register-file slice geometry derived from the warp size. */
struct RfGeometry
{
    unsigned warpSize = 32;
    unsigned granularity = 16; ///< lanes per check group / byte array

    unsigned groups() const { return warpSize / granularity; }
    /** Byte-sliced arrays covering one vector register (4 per group). */
    unsigned byteArrays() const { return kBytesPerWord * groups(); }
    /** Word-sliced baseline arrays (4 lanes each). */
    unsigned wordArrays() const { return warpSize / 4; }
    /** Bytes of a full uncompressed register. */
    unsigned regBytes() const { return warpSize * kBytesPerWord; }
};

/**
 * Cost of one register-file access: 128-bit SRAM array activations,
 * small BVR/EBR array accesses, and operand bytes moved through the
 * crossbar.
 */
struct AccessCost
{
    unsigned arrays = 0;
    unsigned bvr = 0;
    unsigned bytes = 0;
};

// ---- baseline (word-sliced) ------------------------------------------------

/** Baseline full-register read: every array activates. */
AccessCost baselineRead(const RfGeometry &geo);

/**
 * Baseline write: per-word write enables let the bank activate only the
 * arrays whose 4-lane groups contain written lanes (§3.3).
 */
AccessCost baselineWrite(const RfGeometry &geo, LaneMask mask);

// ---- byte-sliced + byte-mask compression -----------------------------------

/**
 * Read of a register stored by the compression micro-architecture.
 *
 * @param meta      stored metadata of the register
 * @param reader    active mask of the reading instruction (uncompressed
 *                  registers only activate groups it touches)
 * @param half_reg  per-group encodings in use (§3.2); otherwise the
 *                  full-warp encoding gates every group
 * @param scalar_from_bvr  the access is a scalar read served entirely
 *                  from the base-value register (§4.1): no data arrays
 */
AccessCost compressedRead(const RfGeometry &geo, const RegMeta &meta,
                          LaneMask reader, bool half_reg,
                          bool scalar_from_bvr);

/**
 * Write through the compression micro-architecture. @p meta is the
 * metadata computed from this write (analyzeWrite). Divergent writes
 * store uncompressed and must activate all byte slices of the touched
 * groups (§3.3). A full-warp scalar write with scalar execution only
 * touches the BVR.
 */
AccessCost compressedWrite(const RfGeometry &geo, const RegMeta &meta,
                           bool half_reg, bool scalar_to_bvr);

// ---- BDI (Warped-Compression) -----------------------------------------------

/** Read of a BDI-stored register: arrays covering the packed bytes. */
AccessCost bdiRead(const RfGeometry &geo, const RegMeta &meta,
                   LaneMask reader);

/** Write of a BDI-stored register. */
AccessCost bdiWrite(const RfGeometry &geo, const RegMeta &meta);

/** Stored bytes of a register under our codec (ratio accounting). */
unsigned byteMaskRegStoredBytes(const RfGeometry &geo, const RegMeta &meta,
                                bool half_reg);

} // namespace gs

#endif // GSCALAR_COMPRESS_ARRAY_MODEL_HPP
