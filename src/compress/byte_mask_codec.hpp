/**
 * @file
 * The paper's byte-mask register-value compression (§3.1). All lanes'
 * 4-byte values are compared byte-by-byte; when the @e n most
 * significant bytes agree across every (active) lane, those bytes are
 * stored once as a base value and only the differing low bytes are kept
 * per lane. The encoding bits enc[3:0] record which byte positions are
 * common: 0000, 1000, 1100, 1110 or 1111 — i.e. a prefix count.
 */

#ifndef GSCALAR_COMPRESS_BYTE_MASK_CODEC_HPP
#define GSCALAR_COMPRESS_BYTE_MASK_CODEC_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace gs
{

/**
 * Result of the write-back comparison logic (Fig. 3 (2), adapted for
 * divergence per Fig. 7 (a)).
 */
struct ByteMaskEncoding
{
    /**
     * Number of most-significant bytes common to all compared lanes
     * (0..4). 4 means the register (group) holds a scalar value.
     * Equivalent to enc[3:0] = 1111 >> (4 - commonMsbs) << (4 - ...).
     */
    unsigned commonMsbs = 0;

    /** Base value: the first active lane's word (op[0] in the paper). */
    Word base = 0;

    /** enc[3:0] as a literal bit pattern (bit 3 = byte[3] common). */
    unsigned encBits() const;

    bool isScalar() const { return commonMsbs == 4; }
};

/**
 * Compare lanes' values byte-wise and produce the encoding. Inactive
 * lanes are skipped by broadcasting an active lane's value over them
 * (§4.2's adapted comparison logic), so only active lanes must agree.
 *
 * @param values one word per lane (values.size() = warp size)
 * @param active lanes participating in the comparison; must be nonzero
 *        within [0, values.size())
 */
ByteMaskEncoding analyzeByteMask(std::span<const Word> values,
                                 LaneMask active);

/** enc[3:0] literal pattern for a common-MSB prefix count. */
unsigned encBitsFor(unsigned common_msbs);

/**
 * Stored size in bytes of a lane group compressed with this codec:
 * base bytes (kept once in the BVR) plus the differing low bytes of
 * every lane.
 */
unsigned byteMaskStoredBytes(unsigned common_msbs, unsigned lanes);

/**
 * Software compressor: produce the stored byte stream (base bytes then
 * per-lane low bytes). Used by codec unit tests and the micro-bench;
 * the simulator itself only tracks metadata.
 */
std::vector<std::uint8_t> byteMaskCompress(std::span<const Word> values);

/**
 * Software decompressor: inverse of byteMaskCompress.
 *
 * @param stored   compressed stream
 * @param common_msbs the encoding the stream was produced with
 * @param lanes    lane count to reconstruct
 */
std::vector<Word> byteMaskDecompress(std::span<const std::uint8_t> stored,
                                     unsigned common_msbs, unsigned lanes);

} // namespace gs

#endif // GSCALAR_COMPRESS_BYTE_MASK_CODEC_HPP
