#include "affine.hpp"

#include "common/bit_utils.hpp"
#include "common/log.hpp"

namespace gs
{

AffineInfo
analyzeAffine(std::span<const Word> values, LaneMask active)
{
    GS_ASSERT(active != 0, "affine analysis needs an active lane");

    const unsigned first = firstLane(active);
    GS_ASSERT(first < values.size(), "active mask exceeds lane count");

    AffineInfo info;
    const LaneMask rest = active & ~(LaneMask{1} << first);
    if (rest == 0) {
        info.affine = true;
        info.base = values[first]; // lone lane: stride unknowable, use 0
        return info;
    }

    const unsigned second = firstLane(rest);
    const Word diff = values[second] - values[first];
    const unsigned gap = second - first;
    // Stride must evenly explain the gap between the first two lanes.
    if (gap > 1 && diff % gap != 0)
        return info;
    const Word stride = gap > 1 ? diff / gap : diff;
    const Word base = values[first] - stride * first;

    for (unsigned lane = 0; lane < values.size(); ++lane) {
        if (!(active & (LaneMask{1} << lane)))
            continue;
        if (values[lane] != base + stride * lane)
            return info;
    }
    info.affine = true;
    info.base = base;
    info.stride = stride;
    return info;
}

} // namespace gs
