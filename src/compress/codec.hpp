/**
 * @file
 * First-class register-file compression codec interface. Everything
 * the rest of the system wants from a compression scheme sits behind
 * gs::compress::Codec:
 *
 *   - access costs     readCost()/writeCost()/regStoredBytes() price a
 *                      register access in SRAM-array activations,
 *                      metadata-array accesses and crossbar bytes
 *                      (array_model.hpp units), from the RegMeta the
 *                      simulator tracks per register
 *   - capabilities     caps() tells the SIMT dispatcher which scalar-
 *                      execution tiers the scheme can serve and how
 *                      much pipeline depth it adds; activeSimd() folds
 *                      the GS_SIMD dispatch seam into the same query
 *   - power/area hooks energyScale()/areaScale() scale the calibrated
 *                      byte-mask constants of power/{energy_model,
 *                      hardware_cost} (the byte-mask codec returns 1.0
 *                      everywhere, keeping default-codec power output
 *                      bit-identical)
 *   - software codec   encode()/decode() produce and parse a
 *                      self-describing compressed blob (format below),
 *                      used by conformance tests and the micro bench
 *
 * Codecs register by CodecId in a string-keyed registry mirroring the
 * experiment registry (harness/experiments.hpp): codecFor() resolves
 * an id, findCodec() a --codec spelling, allCodecs() enumerates in
 * stable id order. To add a codec: add its CodecId + name to
 * common/codec_id.*, implement the interface (usually by delegating to
 * the array-model helpers), and add one line to the registry table in
 * codec_registry.cpp — the conformance suite (test_codec_registry.cpp)
 * and the fig_codec_shootout bench pick it up automatically.
 *
 * Blob format of encode()/decode() (all codecs):
 *
 *   [0]    CodecId of the producer
 *   [1]    lane count (1..kMaxWarpSize)
 *   [2]    codec-specific encoding byte (byte-mask: common-MSB count;
 *          BDI: BdiMode)
 *   [3..6] FNV-1a-32 of the payload, little endian
 *   [7..]  payload (codec-specific stored bytes)
 *
 * decode() validates every field and the checksum before touching the
 * payload: truncated, bit-flipped or wrong-codec blobs return an error
 * string, never undefined behaviour.
 */

#ifndef GSCALAR_COMPRESS_CODEC_HPP
#define GSCALAR_COMPRESS_CODEC_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "array_model.hpp"
#include "common/codec_id.hpp"
#include "common/types.hpp"
#include "reg_meta.hpp"
#include "simd.hpp"

namespace gs
{
namespace compress
{

/**
 * What the SIMT dispatcher may ask of a codec. Scalar execution (§4)
 * piggybacks on the compression metadata, so each tier is only
 * available when the scheme actually exposes the state it needs.
 */
struct CodecCaps
{
    /** Full-warp scalar tier: metadata reveals an all-lanes-equal
     *  register (§4.1). */
    bool fullScalar = false;
    /** Half-register tier: per-check-group encodings exist (§4.3). */
    bool halfScalar = false;
    /** Divergent tier: the writing mask is recoverable from the
     *  metadata array (§4.2). */
    bool divergentScalar = false;
    /** Scalar accesses can be served by the metadata (BVR) array
     *  alone, without touching the data arrays (§4.1). */
    bool scalarFromMeta = false;
    /** Partial writes to compressed registers need the special
     *  decompress-in-place move (§3.3). */
    bool insertsSpecialMoves = false;
    /** Spare capacity of compressed registers can absorb stuck SRAM
     *  arrays (RRCD, arxiv 2105.03859). */
    bool absorbsStuckFaults = false;
    /** Pipeline cycles the (de)compression stages add (§4.4). */
    unsigned extraFrontCycles = 0;
    /** The software model's inner loops honor GS_SIMD dispatch. */
    bool simdDispatch = false;
};

/**
 * Dimensionless scale factors over the calibrated byte-mask energy
 * constants of EnergyParams. The byte-mask codec is 1.0 everywhere,
 * which keeps the default power report bit-identical (x * 1.0 == x in
 * IEEE arithmetic).
 */
struct CodecEnergyScale
{
    double compressor = 1.0;   ///< x eCompressorUsePj
    double decompressor = 1.0; ///< x eDecompressorUsePj
    double metadata = 1.0;     ///< x eBvrAccessPj
    double staticPower = 1.0;  ///< x codecStaticPerSmW
};

/** Scale factors over the Table 3 block costs (hardware_cost.hpp). */
struct CodecAreaScale
{
    double compressor = 1.0;   ///< x compressorCost()
    double decompressor = 1.0; ///< x decompressorCost()
    double rfOverhead = 1.0;   ///< x the BVR/EBR RF area overhead
};

/** Abstract register-file compression codec. */
class Codec
{
  public:
    virtual ~Codec() = default;

    virtual CodecId id() const = 0;
    const char *name() const { return codecIdName(id()); }

    virtual CodecCaps caps() const = 0;
    virtual CodecEnergyScale energyScale() const = 0;
    virtual CodecAreaScale areaScale() const = 0;

    /**
     * The SIMD level this codec's inner loops dispatch to: the
     * process-wide GS_SIMD level for codecs whose kernels have SWAR/
     * AVX2 paths, Off otherwise. This folds GS_SIMD into the
     * capability query so --codec and GS_SIMD compose in one seam.
     */
    SimdLevel activeSimd() const
    {
        return caps().simdDispatch ? activeSimdLevel() : SimdLevel::Off;
    }

    /** The whole register holds one scalar value per this codec. */
    virtual bool regScalar(const RegMeta &meta) const = 0;

    /** The register is stored compressed (special-move relevance). */
    virtual bool regCompressed(const RegMeta &meta) const = 0;

    /**
     * Post-write metadata hook: carry codec-private state (e.g. the
     * static-profile frozen encoding) from the previous metadata of
     * the register into the freshly analyzed one. Default: nothing.
     */
    virtual void
    updateMeta(const RegMeta &before, RegMeta &after) const
    {
        (void)before;
        (void)after;
    }

    /**
     * Cost of reading a register stored by this codec.
     * @p scalar_from_meta marks a scalar read served from the metadata
     * array (only when caps().scalarFromMeta).
     */
    virtual AccessCost readCost(const RfGeometry &geo, const RegMeta &meta,
                                LaneMask reader, bool half_reg,
                                bool scalar_from_meta) const = 0;

    /** Cost of writing a register through this codec. */
    virtual AccessCost writeCost(const RfGeometry &geo, const RegMeta &meta,
                                 bool half_reg,
                                 bool scalar_to_meta) const = 0;

    /** Stored bytes of the register (compression-ratio accounting). */
    virtual unsigned regStoredBytes(const RfGeometry &geo,
                                    const RegMeta &meta,
                                    bool half_reg) const = 0;

    /** Per-register metadata bits the scheme adds to the RF. */
    virtual unsigned metadataBitsPerReg(const RfGeometry &geo,
                                        bool half_reg) const = 0;

    /** Software compressor: self-describing blob (format above). */
    virtual std::vector<std::uint8_t>
    encode(std::span<const Word> values) const = 0;

    /**
     * Software decompressor: inverse of encode(). Empty optional (and
     * a one-line reason) on any malformed input — wrong codec,
     * truncated blob, corrupt payload, inconsistent sizes.
     */
    virtual std::optional<std::vector<Word>>
    decode(std::span<const std::uint8_t> blob,
           std::string *error = nullptr) const = 0;
};

/** The registered codec for @p id (every CodecId is registered). */
const Codec &codecFor(CodecId id);

/** Resolve a --codec/GS_CODEC spelling; nullptr on unknown names. */
const Codec *findCodec(std::string_view name);

/** Every registered codec, in stable CodecId order. */
const std::vector<const Codec *> &allCodecs();

} // namespace compress
} // namespace gs

#endif // GSCALAR_COMPRESS_CODEC_HPP
