#include "reg_meta.hpp"

#include "affine.hpp"
#include "byte_mask_codec.hpp"
#include "common/bit_utils.hpp"
#include "common/log.hpp"

namespace gs
{

RegMeta
analyzeWrite(std::span<const Word> values, LaneMask mask,
             LaneMask full_mask, unsigned granularity)
{
    GS_ASSERT(mask != 0, "write with empty mask");
    GS_ASSERT((mask & ~full_mask) == 0, "write mask outside warp");
    GS_ASSERT(granularity > 0 && values.size() % granularity == 0,
              "granularity must divide warp size");

    RegMeta m;
    m.valid = true;
    m.divergent = (mask != full_mask);
    m.writeMask = mask;

    // Full-warp comparison over the written lanes (broadcast over
    // inactive lanes, Fig. 7 (a)).
    const ByteMaskEncoding full = analyzeByteMask(values, mask);
    m.fullEnc = static_cast<std::uint8_t>(full.commonMsbs);
    m.fullBase = full.base;

    // Per-group comparison, only meaningful for non-divergent writes
    // (half-warp scalar execution is restricted to them, §4.3).
    const unsigned groups = unsigned(values.size()) / granularity;
    GS_ASSERT(groups <= kMaxGroups, "too many check groups");
    if (!m.divergent) {
        const LaneMask group_mask = laneMaskLow(granularity);
        for (unsigned g = 0; g < groups; ++g) {
            const auto sub = values.subspan(g * granularity, granularity);
            const ByteMaskEncoding e = analyzeByteMask(sub, group_mask);
            m.groupEnc[g] = static_cast<std::uint8_t>(e.commonMsbs);
            m.groupBase[g] = e.base;
        }
    }

    // Shadow BDI over the same lanes for the Fig. 12 comparison.
    const BdiEncoding bdi = analyzeBdi(values, mask);
    m.bdiMode = bdi.mode;
    m.bdiBytes = static_cast<std::uint16_t>(bdi.storedBytes);

    // Shadow affine classification (related-work opportunity, §6).
    const AffineInfo aff = analyzeAffine(values, mask);
    m.affine = aff.affine;
    m.affineStride = aff.stride;

    return m;
}

} // namespace gs
