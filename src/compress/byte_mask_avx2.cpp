#include "byte_mask_simd.hpp"

#include <cstring>

#include "common/log.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GS_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#else
#define GS_HAVE_AVX2_KERNELS 0
#endif

namespace gs
{
namespace detail
{

#if GS_HAVE_AVX2_KERNELS

bool
cpuHasAvx2()
{
    return __builtin_cpu_supports("avx2") != 0;
}

namespace
{

/** OR all four 32-bit elements of the accumulated diff together. */
__attribute__((target("avx2"))) std::uint32_t
horizontalOr(__m256i acc)
{
    __m128i h = _mm_or_si128(_mm256_castsi256_si128(acc),
                             _mm256_extracti128_si256(acc, 1));
    h = _mm_or_si128(h, _mm_shuffle_epi32(h, 0x4E));
    h = _mm_or_si128(h, _mm_shuffle_epi32(h, 0xB1));
    return std::uint32_t(_mm_cvtsi128_si32(h));
}

/**
 * Per-prefix-count shuffle masks (the classic compress mask-table
 * idiom): for common-MSB count c, each dword of a 16-byte group keeps
 * its low 4-c bytes emitted most-significant-first; 0x80 lanes clear
 * the rest. kPackBytesPerQuad[c] bytes of output per 4 input words.
 */
alignas(16) constexpr std::uint8_t kPackShuffle[4][16] = {
    {3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12}, // c = 0
    {2, 1, 0, 6, 5, 4, 10, 9, 8, 14, 13, 12,
     0x80, 0x80, 0x80, 0x80},                               // c = 1
    {1, 0, 5, 4, 9, 8, 13, 12, 0x80, 0x80, 0x80, 0x80,
     0x80, 0x80, 0x80, 0x80},                               // c = 2
    {0, 4, 8, 12, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
     0x80, 0x80, 0x80, 0x80, 0x80},                         // c = 3
};

constexpr unsigned kPackBytesPerQuad[4] = {16, 12, 8, 4};

} // namespace

__attribute__((target("avx2"))) std::uint32_t
diffAvx2(const Word *values, unsigned lanes, Word base)
{
    const __m256i vbase = _mm256_set1_epi32(int(base));
    const __m256i msb = _mm256_set1_epi32(int(0xFF00'0000u));
    __m256i acc = _mm256_setzero_si256();

    unsigned lane = 0;
    bool msbDiffers = false;
    for (; lane + 8 <= lanes; lane += 8) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(values + lane));
        acc = _mm256_or_si256(acc, _mm256_xor_si256(v, vbase));
        // Same early exit as the SWAR sweep: once any MSB byte
        // differs the common count is 0 whatever the rest holds.
        if (!_mm256_testz_si256(acc, msb)) {
            msbDiffers = true;
            break;
        }
    }
    std::uint32_t diff = horizontalOr(acc);
    if (!msbDiffers)
        for (; lane < lanes; ++lane)
            diff |= values[lane] ^ base;
    return diff;
}

__attribute__((target("avx2"))) std::uint32_t
diffMaskedAvx2(const Word *values, unsigned lanes, LaneMask active,
               Word base)
{
    const __m256i vbase = _mm256_set1_epi32(int(base));
    const __m256i msb = _mm256_set1_epi32(int(0xFF00'0000u));
    const __m256i vbits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    __m256i acc = _mm256_setzero_si256();

    unsigned lane = 0;
    bool msbDiffers = false;
    for (; lane + 8 <= lanes; lane += 8) {
        const unsigned bits = unsigned((active >> lane) & 0xFFu);
        if (bits == 0)
            continue;
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(values + lane));
        const __m256i m = _mm256_cmpeq_epi32(
            _mm256_and_si256(_mm256_set1_epi32(int(bits)), vbits), vbits);
        acc = _mm256_or_si256(
            acc, _mm256_and_si256(_mm256_xor_si256(v, vbase), m));
        if (!_mm256_testz_si256(acc, msb)) {
            msbDiffers = true;
            break;
        }
    }
    std::uint32_t diff = horizontalOr(acc);
    if (!msbDiffers)
        for (; lane < lanes; ++lane)
            if (active & (LaneMask{1} << lane))
                diff |= values[lane] ^ base;
    return diff;
}

__attribute__((target("avx2"))) void
packAvx2(const Word *values, unsigned lanes, unsigned commonMsbs,
         std::uint8_t *out)
{
    GS_ASSERT(commonMsbs <= 4, "bad prefix count");
    if (commonMsbs == 4)
        return; // scalar value: no per-lane bytes
    const __m128i shuf = _mm_load_si128(
        reinterpret_cast<const __m128i *>(kPackShuffle[commonMsbs]));
    const unsigned quadBytes = kPackBytesPerQuad[commonMsbs];

    unsigned lane = 0;
    for (; lane + 4 <= lanes; lane += 4) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(values + lane));
        alignas(16) std::uint8_t staged[16];
        _mm_store_si128(reinterpret_cast<__m128i *>(staged),
                        _mm_shuffle_epi8(v, shuf));
        std::memcpy(out, staged, quadBytes);
        out += quadBytes;
    }
    for (; lane < lanes; ++lane)
        for (unsigned b = commonMsbs; b < 4; ++b)
            *out++ = std::uint8_t(values[lane] >> (8 * (3 - b)));
}

#else // !GS_HAVE_AVX2_KERNELS

bool
cpuHasAvx2()
{
    return false;
}

std::uint32_t
diffAvx2(const Word *, unsigned, Word)
{
    GS_PANIC("avx2 kernel called on a non-x86 build");
}

std::uint32_t
diffMaskedAvx2(const Word *, unsigned, LaneMask, Word)
{
    GS_PANIC("avx2 kernel called on a non-x86 build");
}

void
packAvx2(const Word *, unsigned, unsigned, std::uint8_t *)
{
    GS_PANIC("avx2 kernel called on a non-x86 build");
}

#endif // GS_HAVE_AVX2_KERNELS

} // namespace detail
} // namespace gs
