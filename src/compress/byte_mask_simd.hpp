/**
 * @file
 * AVX2 kernels behind the codec dispatch seam (simd.hpp). Each kernel
 * mirrors one scalar/SWAR inner loop of byte_mask_codec.cpp exactly;
 * callers pick a level, never semantics. Compiled for x86-64 via
 * per-function target attributes so the rest of the library needs no
 * special flags; on other architectures the functions exist but
 * cpuHasAvx2() is false and they are never reached.
 */

#ifndef GSCALAR_COMPRESS_BYTE_MASK_SIMD_HPP
#define GSCALAR_COMPRESS_BYTE_MASK_SIMD_HPP

#include <cstdint>

#include "common/types.hpp"

namespace gs
{
namespace detail
{

/** AVX2 available at compile time and on this CPU. */
bool cpuHasAvx2();

/**
 * OR of (values[lane] ^ base) over all @p lanes lanes.
 * Early-exits once an MSB byte difference is certain, like the SWAR
 * sweep; the resulting diff differs only in bits that cannot change
 * the common-MSB count.
 */
std::uint32_t diffAvx2(const Word *values, unsigned lanes, Word base);

/** Masked variant: inactive lanes contribute nothing. */
std::uint32_t diffMaskedAvx2(const Word *values, unsigned lanes,
                             LaneMask active, Word base);

/**
 * Pack the per-lane differing low bytes: for each lane emit bytes
 * [3-commonMsbs .. 0] of values[lane], most significant first —
 * byte-identical to byteMaskCompress()'s per-lane loop. Writes
 * exactly (4 - commonMsbs) * lanes bytes at @p out.
 */
void packAvx2(const Word *values, unsigned lanes, unsigned commonMsbs,
              std::uint8_t *out);

} // namespace detail
} // namespace gs

#endif // GSCALAR_COMPRESS_BYTE_MASK_SIMD_HPP
