/**
 * @file
 * Codec registry plus the two ported codecs: the paper's byte-mask
 * scheme and Warped-Compression's BDI. The related-work codecs
 * (static-profile, RRCD) live in their own translation units and hook
 * in through the factory functions of codec_impl.hpp.
 */

#include "codec_impl.hpp"

#include "bdi_codec.hpp"
#include "byte_mask_codec.hpp"
#include "common/bit_utils.hpp"
#include "common/log.hpp"

namespace gs
{
namespace compress
{

namespace detail
{

std::uint32_t
fnv1a32(const std::uint8_t *data, std::size_t n)
{
    std::uint32_t h = 0x811c9dc5u;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x01000193u;
    }
    return h;
}

std::vector<std::uint8_t>
packBlob(CodecId id, unsigned lanes, std::uint8_t enc,
         std::span<const std::uint8_t> payload)
{
    GS_ASSERT(lanes >= 1 && lanes <= kMaxWarpSize, "bad lane count");
    std::vector<std::uint8_t> out;
    out.reserve(kBlobHeaderBytes + payload.size());
    out.push_back(std::uint8_t(id));
    out.push_back(std::uint8_t(lanes));
    out.push_back(enc);
    const std::uint32_t sum = fnv1a32(payload.data(), payload.size());
    out.push_back(std::uint8_t(sum));
    out.push_back(std::uint8_t(sum >> 8));
    out.push_back(std::uint8_t(sum >> 16));
    out.push_back(std::uint8_t(sum >> 24));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

std::optional<BlobView>
unpackBlob(CodecId id, std::span<const std::uint8_t> blob,
           std::string *error)
{
    auto fail = [&](const std::string &why) -> std::optional<BlobView> {
        if (error)
            *error = why;
        return std::nullopt;
    };

    if (blob.size() < kBlobHeaderBytes)
        return fail("blob truncated: " + std::to_string(blob.size()) +
                    " byte(s), header needs " +
                    std::to_string(kBlobHeaderBytes));
    if (blob[0] != std::uint8_t(id))
        return fail(std::string("blob was produced by codec id ") +
                    std::to_string(blob[0]) + ", not " +
                    codecIdName(id));
    const unsigned lanes = blob[1];
    if (lanes < 1 || lanes > kMaxWarpSize)
        return fail("lane count " + std::to_string(lanes) +
                    " out of range [1, " + std::to_string(kMaxWarpSize) +
                    "]");

    BlobView v;
    v.lanes = lanes;
    v.enc = blob[2];
    v.payload = blob.subspan(kBlobHeaderBytes);
    const std::uint32_t want = std::uint32_t(blob[3]) |
                               (std::uint32_t(blob[4]) << 8) |
                               (std::uint32_t(blob[5]) << 16) |
                               (std::uint32_t(blob[6]) << 24);
    if (fnv1a32(v.payload.data(), v.payload.size()) != want)
        return fail("payload checksum mismatch: blob corrupted");
    return v;
}

std::optional<std::vector<Word>>
decodeFail(std::string *error, const std::string &why)
{
    if (error)
        *error = why;
    return std::nullopt;
}

} // namespace detail

// ----------------------------------------------------------- byte-mask

CodecCaps
ByteMaskCodec::caps() const
{
    CodecCaps c;
    c.fullScalar = true;
    c.halfScalar = true;
    c.divergentScalar = true;
    c.scalarFromMeta = true;
    c.insertsSpecialMoves = true;
    c.absorbsStuckFaults = false;
    c.extraFrontCycles = 2;
    c.simdDispatch = true;
    return c;
}

bool
ByteMaskCodec::regScalar(const RegMeta &meta) const
{
    return meta.fullScalar();
}

bool
ByteMaskCodec::regCompressed(const RegMeta &meta) const
{
    return meta.valid && !meta.divergent && meta.fullEnc > 0;
}

AccessCost
ByteMaskCodec::readCost(const RfGeometry &geo, const RegMeta &meta,
                        LaneMask reader, bool half_reg,
                        bool scalar_from_meta) const
{
    return compressedRead(geo, meta, reader, half_reg, scalar_from_meta);
}

AccessCost
ByteMaskCodec::writeCost(const RfGeometry &geo, const RegMeta &meta,
                         bool half_reg, bool scalar_to_meta) const
{
    return compressedWrite(geo, meta, half_reg, scalar_to_meta);
}

unsigned
ByteMaskCodec::regStoredBytes(const RfGeometry &geo, const RegMeta &meta,
                              bool half_reg) const
{
    return byteMaskRegStoredBytes(geo, meta, half_reg);
}

unsigned
ByteMaskCodec::metadataBitsPerReg(const RfGeometry &geo,
                                  bool half_reg) const
{
    // enc[3:0] + a 32-bit base per encoding granule, plus D and FS.
    const unsigned granules = half_reg ? geo.groups() : 1;
    return granules * (4 + 32) + 2;
}

std::vector<std::uint8_t>
ByteMaskCodec::encode(std::span<const Word> values) const
{
    const ByteMaskEncoding e =
        analyzeByteMask(values, laneMaskLow(unsigned(values.size())));
    return detail::packBlob(id(), unsigned(values.size()),
                            std::uint8_t(e.commonMsbs),
                            byteMaskCompress(values));
}

std::optional<std::vector<Word>>
ByteMaskCodec::decode(std::span<const std::uint8_t> blob,
                      std::string *error) const
{
    const auto v = detail::unpackBlob(id(), blob, error);
    if (!v)
        return std::nullopt;
    if (v->enc > kBytesPerWord)
        return detail::decodeFail(error, "encoding byte " +
                                             std::to_string(v->enc) +
                                             " exceeds the word size");
    const unsigned want = byteMaskStoredBytes(v->enc, v->lanes);
    if (v->payload.size() != want)
        return detail::decodeFail(
            error, "payload is " + std::to_string(v->payload.size()) +
                       " byte(s), encoding implies " +
                       std::to_string(want));
    return byteMaskDecompress(v->payload, v->enc, v->lanes);
}

// ----------------------------------------------------------------- BDI

namespace
{

/** Warped-Compression's base-delta-immediate behind the interface. */
class BdiCodec : public Codec
{
  public:
    CodecId id() const override { return CodecId::Bdi; }

    CodecCaps
    caps() const override
    {
        CodecCaps c;
        // A Zero/Scalar-mode register is detectably uniform, so the
        // full-warp tier works; there is no per-group metadata and no
        // stored write mask, so the finer tiers do not.
        c.fullScalar = true;
        c.halfScalar = false;
        c.divergentScalar = false;
        c.scalarFromMeta = true;
        // W-C decompresses the whole register on partial writes and
        // re-compresses at write-back instead of inserting a move.
        c.insertsSpecialMoves = false;
        c.absorbsStuckFaults = false;
        c.extraFrontCycles = 2;
        c.simdDispatch = false; // subtractor loops have no SIMD path
        return c;
    }

    CodecEnergyScale
    energyScale() const override
    {
        // Subtractor banks + the diverse-size packing network switch
        // more than byte comparators; the W-C interconnect roughly
        // doubles the codec's leakage share (bdiStaticPerSmW /
        // codecStaticPerSmW = 2.25).
        return {1.40, 1.20, 1.0, 2.25};
    }

    CodecAreaScale
    areaScale() const override
    {
        // Table 3: our compressor is ~52 % of the BDI compressor.
        return {1.92, 1.15, 1.0};
    }

    bool
    regScalar(const RegMeta &meta) const override
    {
        return meta.valid && !meta.divergent &&
               (meta.bdiMode == BdiMode::Zero ||
                meta.bdiMode == BdiMode::Scalar);
    }

    bool
    regCompressed(const RegMeta &meta) const override
    {
        return meta.valid && !meta.divergent &&
               meta.bdiMode != BdiMode::Uncompressed;
    }

    AccessCost
    readCost(const RfGeometry &geo, const RegMeta &meta, LaneMask reader,
             bool half_reg, bool scalar_from_meta) const override
    {
        (void)half_reg; // no per-group encodings
        if (scalar_from_meta)
            return {0, 1, kBytesPerWord};
        return bdiRead(geo, meta, reader);
    }

    AccessCost
    writeCost(const RfGeometry &geo, const RegMeta &meta, bool half_reg,
              bool scalar_to_meta) const override
    {
        (void)half_reg;
        if (scalar_to_meta)
            return {0, 1, kBytesPerWord};
        return bdiWrite(geo, meta);
    }

    unsigned
    regStoredBytes(const RfGeometry &geo, const RegMeta &meta,
                   bool half_reg) const override
    {
        (void)half_reg;
        if (!meta.valid || meta.divergent)
            return geo.regBytes();
        return meta.bdiBytes;
    }

    unsigned
    metadataBitsPerReg(const RfGeometry &geo, bool half_reg) const override
    {
        (void)geo;
        (void)half_reg;
        // 3-bit mode tag + the 32-bit base.
        return 3 + 32;
    }

    std::vector<std::uint8_t>
    encode(std::span<const Word> values) const override
    {
        const unsigned lanes = unsigned(values.size());
        const BdiEncoding e =
            analyzeBdi(values, laneMaskLow(lanes));

        std::vector<std::uint8_t> payload;
        payload.reserve(e.storedBytes);
        auto push_base = [&] {
            for (unsigned i = 0; i < kBytesPerWord; ++i)
                payload.push_back(byteOf(e.base, 3 - i));
        };
        switch (e.mode) {
          case BdiMode::Zero:
            break;
          case BdiMode::Scalar:
            push_base();
            break;
          case BdiMode::BaseDelta1:
            push_base();
            for (const Word v : values)
                payload.push_back(std::uint8_t(v - e.base));
            break;
          case BdiMode::BaseDelta2:
            push_base();
            for (const Word v : values) {
                const std::uint16_t d = std::uint16_t(v - e.base);
                payload.push_back(std::uint8_t(d >> 8));
                payload.push_back(std::uint8_t(d));
            }
            break;
          case BdiMode::Uncompressed:
            for (const Word v : values)
                for (unsigned i = 0; i < kBytesPerWord; ++i)
                    payload.push_back(byteOf(v, 3 - i));
            break;
        }
        return detail::packBlob(id(), lanes, std::uint8_t(e.mode),
                                payload);
    }

    std::optional<std::vector<Word>>
    decode(std::span<const std::uint8_t> blob,
           std::string *error) const override
    {
        const auto v = detail::unpackBlob(id(), blob, error);
        if (!v)
            return std::nullopt;
        if (v->enc > std::uint8_t(BdiMode::Uncompressed))
            return detail::decodeFail(error,
                                      "unknown BDI mode " +
                                          std::to_string(v->enc));
        const BdiMode mode = BdiMode(v->enc);
        const unsigned want = bdiStoredBytes(mode, v->lanes);
        if (v->payload.size() != want)
            return detail::decodeFail(
                error, "payload is " +
                           std::to_string(v->payload.size()) +
                           " byte(s), mode implies " +
                           std::to_string(want));

        const std::uint8_t *p = v->payload.data();
        auto read_base = [&] {
            Word base = 0;
            for (unsigned i = 0; i < kBytesPerWord; ++i)
                base = withByte(base, 3 - i, *p++);
            return base;
        };
        std::vector<Word> out(v->lanes, 0);
        switch (mode) {
          case BdiMode::Zero:
            break;
          case BdiMode::Scalar: {
            const Word base = read_base();
            for (Word &w : out)
                w = base;
            break;
          }
          case BdiMode::BaseDelta1: {
            const Word base = read_base();
            for (Word &w : out)
                w = base + Word(std::int32_t(std::int8_t(*p++)));
            break;
          }
          case BdiMode::BaseDelta2: {
            const Word base = read_base();
            for (Word &w : out) {
                const std::uint16_t d =
                    std::uint16_t((std::uint16_t(p[0]) << 8) | p[1]);
                p += 2;
                w = base + Word(std::int32_t(std::int16_t(d)));
            }
            break;
          }
          case BdiMode::Uncompressed:
            for (Word &w : out)
                for (unsigned i = 0; i < kBytesPerWord; ++i)
                    w = withByte(w, 3 - i, *p++);
            break;
        }
        return out;
    }
};

} // namespace

// ------------------------------------------------------------ registry

const Codec &
codecFor(CodecId id)
{
    static const ByteMaskCodec byte_mask;
    static const BdiCodec bdi;
    switch (id) {
      case CodecId::ByteMask: return byte_mask;
      case CodecId::Bdi: return bdi;
      case CodecId::StaticProfile: return staticProfileCodec();
      case CodecId::Rrcd: return rrcdCodec();
    }
    GS_FATAL("codec id ", unsigned(id), " is not registered");
}

const Codec *
findCodec(std::string_view name)
{
    const std::optional<CodecId> id = parseCodecId(name);
    return id ? &codecFor(*id) : nullptr;
}

const std::vector<const Codec *> &
allCodecs()
{
    static const std::vector<const Codec *> all = [] {
        std::vector<const Codec *> v;
        for (unsigned i = 0; i < kNumCodecs; ++i)
            v.push_back(&codecFor(CodecId(i)));
        return v;
    }();
    return all;
}

} // namespace compress
} // namespace gs
