#include "bdi_codec.hpp"

#include <cstdlib>

#include "common/bit_utils.hpp"
#include "common/log.hpp"

namespace gs
{

unsigned
bdiStoredBytes(BdiMode mode, unsigned lanes)
{
    switch (mode) {
      case BdiMode::Zero: return 0;
      case BdiMode::Scalar: return kBytesPerWord;
      case BdiMode::BaseDelta1: return kBytesPerWord + lanes;
      case BdiMode::BaseDelta2: return kBytesPerWord + 2 * lanes;
      case BdiMode::Uncompressed: return kBytesPerWord * lanes;
    }
    return kBytesPerWord * lanes;
}

BdiEncoding
analyzeBdi(std::span<const Word> values, LaneMask active)
{
    GS_ASSERT(active != 0, "BDI comparison needs an active lane");

    const unsigned base_lane = firstLane(active);
    GS_ASSERT(base_lane < values.size(), "active mask exceeds lane count");
    const Word base = values[base_lane];

    bool all_zero = true;
    bool all_same = true;
    std::int64_t max_abs_delta = 0;

    for (unsigned lane = 0; lane < values.size(); ++lane) {
        if (!(active & (LaneMask{1} << lane)))
            continue;
        const Word v = values[lane];
        all_zero &= (v == 0);
        all_same &= (v == base);
        const std::int64_t delta = std::int64_t(std::int32_t(v - base));
        max_abs_delta =
            std::max(max_abs_delta, std::int64_t(std::llabs(delta)));
    }

    BdiEncoding e;
    e.base = base;
    const unsigned lanes = unsigned(values.size());
    if (all_zero) {
        e.mode = BdiMode::Zero;
    } else if (all_same) {
        e.mode = BdiMode::Scalar;
    } else if (max_abs_delta < 128) {
        e.mode = BdiMode::BaseDelta1;
    } else if (max_abs_delta < 32768) {
        e.mode = BdiMode::BaseDelta2;
    } else {
        e.mode = BdiMode::Uncompressed;
    }
    e.storedBytes = bdiStoredBytes(e.mode, lanes);
    return e;
}

} // namespace gs
