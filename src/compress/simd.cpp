#include "simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "byte_mask_simd.hpp"
#include "common/log.hpp"

namespace gs
{

namespace
{

constexpr int kNoOverride = -1;

std::atomic<int> g_override{kNoOverride};

/** Resolve $GS_SIMD / auto once; the environment cannot change. */
SimdLevel
resolveEnvOrAuto()
{
    if (const char *env = std::getenv("GS_SIMD")) {
        const std::optional<SimdLevel> v = parseSimdLevel(env);
        if (!v)
            GS_FATAL("GS_SIMD='", env,
                     "' is not a valid codec level (want off, swar or "
                     "avx2)");
        if (!simdLevelSupported(*v))
            GS_FATAL("GS_SIMD='", env,
                     "' is not supported on this CPU");
        return *v;
    }
    return simdLevelSupported(SimdLevel::Avx2) ? SimdLevel::Avx2
                                               : SimdLevel::Swar;
}

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Off: return "off";
      case SimdLevel::Swar: return "swar";
      case SimdLevel::Avx2: return "avx2";
    }
    return "?";
}

std::optional<SimdLevel>
parseSimdLevel(std::string_view name)
{
    if (name == "off")
        return SimdLevel::Off;
    if (name == "swar")
        return SimdLevel::Swar;
    if (name == "avx2")
        return SimdLevel::Avx2;
    return std::nullopt;
}

bool
simdLevelSupported(SimdLevel level)
{
    if (level == SimdLevel::Avx2)
        return detail::cpuHasAvx2();
    return true;
}

SimdLevel
activeSimdLevel()
{
    const int ov = g_override.load(std::memory_order_relaxed);
    if (ov != kNoOverride)
        return SimdLevel(ov);
    static const SimdLevel resolved = resolveEnvOrAuto();
    return resolved;
}

void
setSimdLevel(SimdLevel level)
{
    if (!simdLevelSupported(level))
        GS_FATAL("codec level '", simdLevelName(level),
                 "' is not supported on this CPU");
    g_override.store(int(level), std::memory_order_relaxed);
}

void
clearSimdLevelOverride()
{
    g_override.store(kNoOverride, std::memory_order_relaxed);
}

} // namespace gs
