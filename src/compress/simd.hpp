/**
 * @file
 * Runtime CPU-dispatch seam for the byte-mask codec. The classify and
 * pack inner loops exist at three levels:
 *
 *   off   plain per-lane scalar loops (the portable reference)
 *   swar  two-lanes-per-64-bit-word sweeps (common/bit_utils.hpp)
 *   avx2  8-lanes-per-YMM XOR/shuffle mask-table kernels
 *
 * Every level produces bit-identical ByteMaskEncoding results and
 * byte-identical compressed streams; only throughput differs. The
 * active level defaults to the best one the CPU supports and can be
 * pinned with GS_SIMD=off|swar|avx2 (strictly validated, in the
 * GS_JOBS idiom) or setSimdLevel() from tests.
 */

#ifndef GSCALAR_COMPRESS_SIMD_HPP
#define GSCALAR_COMPRESS_SIMD_HPP

#include <cstdint>
#include <optional>
#include <string_view>

namespace gs
{

/** Instruction-set level of the codec inner loops. */
enum class SimdLevel : std::uint8_t
{
    Off,  ///< scalar reference loops
    Swar, ///< 64-bit SWAR sweeps
    Avx2, ///< AVX2 kernels (x86-64 with AVX2 only)
};

/** Spec name of a level ("off", "swar", "avx2"). */
const char *simdLevelName(SimdLevel level);

/** Parse a GS_SIMD value; empty optional on anything unknown. */
std::optional<SimdLevel> parseSimdLevel(std::string_view name);

/** Whether this process can execute @p level (compile + CPU check). */
bool simdLevelSupported(SimdLevel level);

/**
 * The level the codec dispatches to: the setSimdLevel() override if
 * present, else a validated $GS_SIMD (unknown names and unsupported
 * levels are fatal), else the best supported level.
 */
SimdLevel activeSimdLevel();

/**
 * Pin the dispatch level, overriding $GS_SIMD (tests sweep levels this
 * way). Fatal if @p level is not supported on this host.
 */
void setSimdLevel(SimdLevel level);

/** Drop the setSimdLevel() override ($GS_SIMD/auto applies again). */
void clearSimdLevelOverride();

} // namespace gs

#endif // GSCALAR_COMPRESS_SIMD_HPP
