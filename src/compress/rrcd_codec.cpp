/**
 * @file
 * RRCD-style compression-based register redirection (arxiv
 * 2105.03859): the byte-mask codec plus tolerance of *permanent*
 * stuck SRAM arrays. A register compressed to fewer byte slices than
 * the bank provides has spare arrays; a small redirection table per
 * bank remaps the slices of a register that would land on a stuck
 * array into that spare capacity, so manufacturing faults cost a
 * redirection-table lookup instead of correctness.
 *
 * The stuck arrays themselves are injected deterministically through
 * the `rf:stuck-array` fault site (src/fault); the simulator (sm.cpp)
 * consults caps().absorbsStuckFaults to absorb them. Architectural
 * results are byte-identical to the byte-mask codec under no faults
 * and under absorbed faults — only the health counters and the
 * redirection-table energy differ.
 */

#include "codec_impl.hpp"

namespace gs
{
namespace compress
{

namespace
{

class RrcdCodec : public ByteMaskCodec
{
  public:
    CodecId id() const override { return CodecId::Rrcd; }

    CodecCaps
    caps() const override
    {
        CodecCaps c = ByteMaskCodec::caps();
        c.absorbsStuckFaults = true;
        return c;
    }

    CodecEnergyScale
    energyScale() const override
    {
        // Redirection-table lookups ride on the metadata arrays; the
        // table and its comparators add leakage and a touch of
        // decompressor muxing.
        return {1.0, 1.05, 1.25, 1.25};
    }

    CodecAreaScale
    areaScale() const override
    {
        return {1.0, 1.05, 1.15};
    }

    AccessCost
    readCost(const RfGeometry &geo, const RegMeta &meta, LaneMask reader,
             bool half_reg, bool scalar_from_meta) const override
    {
        AccessCost c = ByteMaskCodec::readCost(geo, meta, reader,
                                               half_reg, scalar_from_meta);
        ++c.bvr; // redirection-table lookup alongside the EBR
        return c;
    }

    AccessCost
    writeCost(const RfGeometry &geo, const RegMeta &meta, bool half_reg,
              bool scalar_to_meta) const override
    {
        AccessCost c = ByteMaskCodec::writeCost(geo, meta, half_reg,
                                                scalar_to_meta);
        ++c.bvr;
        return c;
    }

    unsigned
    metadataBitsPerReg(const RfGeometry &geo, bool half_reg) const override
    {
        // Byte-mask metadata plus one redirection entry: a spare-array
        // index and a valid bit.
        return ByteMaskCodec::metadataBitsPerReg(geo, half_reg) + 6;
    }

    // Stored bytes and encode()/decode() inherit the byte-mask format:
    // redirection changes where slices live, not what they hold.
};

} // namespace

const Codec &
rrcdCodec()
{
    static const RrcdCodec codec;
    return codec;
}

} // namespace compress
} // namespace gs
