#include "array_model.hpp"

#include <algorithm>

#include "common/bit_utils.hpp"
#include "common/log.hpp"

namespace gs
{

namespace
{

/** Number of @p lanes_per_array-lane groups of @p mask that are nonempty. */
unsigned
touchedGroups(LaneMask mask, unsigned lanes_per_array, unsigned total_lanes)
{
    unsigned n = 0;
    const LaneMask group = laneMaskLow(lanes_per_array);
    for (unsigned base = 0; base < total_lanes; base += lanes_per_array)
        if (mask & (group << base))
            ++n;
    return n;
}

} // namespace

AccessCost
baselineRead(const RfGeometry &geo)
{
    return {geo.wordArrays(), 0, geo.regBytes()};
}

AccessCost
baselineWrite(const RfGeometry &geo, LaneMask mask)
{
    AccessCost c;
    c.arrays = touchedGroups(mask, 4, geo.warpSize);
    c.bytes = popCount(mask) * kBytesPerWord;
    return c;
}

AccessCost
compressedRead(const RfGeometry &geo, const RegMeta &meta, LaneMask reader,
               bool half_reg, bool scalar_from_bvr)
{
    AccessCost c;
    c.bvr = half_reg ? geo.groups() : 1;

    if (scalar_from_bvr) {
        // §4.1: the base value register effectively is a scalar
        // register; only the small array is touched.
        c.bytes = kBytesPerWord;
        return c;
    }

    if (!meta.valid) {
        // Never written: architecturally undefined; model a full read.
        c.arrays = geo.byteArrays();
        c.bytes = geo.regBytes();
        return c;
    }

    if (meta.divergent) {
        // Stored uncompressed: all four byte slices of every group the
        // reader touches.
        const unsigned g = touchedGroups(reader, geo.granularity,
                                         geo.warpSize);
        c.arrays = g * kBytesPerWord;
        c.bytes = g * geo.granularity * kBytesPerWord;
        return c;
    }

    // Compressed: per group, only the arrays holding non-common bytes;
    // common bytes come from the BVR and never cross the crossbar.
    const LaneMask gmask = laneMaskLow(geo.granularity);
    for (unsigned g = 0; g < geo.groups(); ++g) {
        if (!(reader & (gmask << (g * geo.granularity))))
            continue;
        const unsigned enc = half_reg ? meta.groupEnc[g] : meta.fullEnc;
        c.arrays += kBytesPerWord - enc;
        c.bytes += (kBytesPerWord - enc) * geo.granularity;
    }
    return c;
}

AccessCost
compressedWrite(const RfGeometry &geo, const RegMeta &meta, bool half_reg,
                bool scalar_to_bvr)
{
    AccessCost c;
    c.bvr = half_reg ? geo.groups() : 1;

    if (scalar_to_bvr) {
        // Scalar execution write-back: value goes to the BVR alone and
        // enc is set to 1111 (§4.1).
        c.bytes = kBytesPerWord;
        return c;
    }

    if (meta.divergent) {
        // §3.3: partial updates go to decoded (uncompressed) storage;
        // every byte slice of a touched group activates, relying on the
        // per-byte write enables.
        const unsigned g = touchedGroups(meta.writeMask, geo.granularity,
                                         geo.warpSize);
        c.arrays = g * kBytesPerWord;
        c.bytes = popCount(meta.writeMask) * kBytesPerWord;
        return c;
    }

    for (unsigned g = 0; g < geo.groups(); ++g) {
        const unsigned enc = half_reg ? meta.groupEnc[g] : meta.fullEnc;
        c.arrays += kBytesPerWord - enc;
        c.bytes += (kBytesPerWord - enc) * geo.granularity;
    }
    return c;
}

AccessCost
bdiRead(const RfGeometry &geo, const RegMeta &meta, LaneMask reader)
{
    AccessCost c;
    c.bvr = 1; // BDI metadata (mode tag + per-register bookkeeping)
    if (!meta.valid) {
        c.arrays = geo.byteArrays();
        c.bytes = geo.regBytes();
        return c;
    }
    if (meta.divergent) {
        // Warped-Compression also stores divergent writes raw.
        const unsigned g = touchedGroups(reader, geo.granularity,
                                         geo.warpSize);
        c.arrays = g * kBytesPerWord;
        c.bytes = g * geo.granularity * kBytesPerWord;
        return c;
    }
    // Packed layout: compressed bytes fill 16-byte arrays contiguously,
    // plus one extra array activation on average from the misalignment
    // of the diverse delta sizes (§3.2's interconnect complexity makes
    // aligned slicing impractical for BDI).
    c.arrays = unsigned(ceilDiv(meta.bdiBytes, 16));
    if (meta.bdiMode == BdiMode::BaseDelta1 ||
        meta.bdiMode == BdiMode::BaseDelta2) {
        ++c.arrays;
    }
    c.arrays = std::min(c.arrays, geo.byteArrays());
    c.bytes = meta.bdiBytes;
    return c;
}

AccessCost
bdiWrite(const RfGeometry &geo, const RegMeta &meta)
{
    AccessCost c;
    c.bvr = 1;
    if (meta.divergent) {
        const unsigned g = touchedGroups(meta.writeMask, geo.granularity,
                                         geo.warpSize);
        c.arrays = g * kBytesPerWord;
        c.bytes = popCount(meta.writeMask) * kBytesPerWord;
        return c;
    }
    c.arrays = unsigned(ceilDiv(meta.bdiBytes, 16));
    if (meta.bdiMode == BdiMode::BaseDelta1 ||
        meta.bdiMode == BdiMode::BaseDelta2) {
        ++c.arrays;
    }
    c.arrays = std::min(c.arrays, geo.byteArrays());
    c.bytes = meta.bdiBytes;
    return c;
}

unsigned
byteMaskRegStoredBytes(const RfGeometry &geo, const RegMeta &meta,
                       bool half_reg)
{
    if (!meta.valid)
        return geo.regBytes();
    if (meta.divergent)
        return geo.regBytes();
    unsigned bytes = 0;
    for (unsigned g = 0; g < geo.groups(); ++g) {
        const unsigned enc = half_reg ? meta.groupEnc[g] : meta.fullEnc;
        bytes += enc + (kBytesPerWord - enc) * geo.granularity;
    }
    return bytes;
}

} // namespace gs
