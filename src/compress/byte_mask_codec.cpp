#include "byte_mask_codec.hpp"

#include "byte_mask_simd.hpp"
#include "common/bit_utils.hpp"
#include "common/log.hpp"
#include "simd.hpp"

namespace gs
{

namespace
{

/** Portable reference sweep: one lane at a time, no SWAR tricks. */
std::uint32_t
diffScalar(std::span<const Word> values, LaneMask active, Word base)
{
    std::uint32_t diff = 0;
    for (unsigned lane = 0; lane < unsigned(values.size()); ++lane) {
        if (active & (LaneMask{1} << lane))
            diff |= values[lane] ^ base;
        if (diff & 0xFF00'0000u)
            break; // common count is already 0
    }
    return diff;
}

} // namespace

unsigned
encBitsFor(unsigned common_msbs)
{
    GS_ASSERT(common_msbs <= 4, "bad prefix count ", common_msbs);
    // 0 -> 0000, 1 -> 1000, 2 -> 1100, 3 -> 1110, 4 -> 1111.
    return (0xfu << (4 - common_msbs)) & 0xfu;
}

unsigned
ByteMaskEncoding::encBits() const
{
    return encBitsFor(commonMsbs);
}

ByteMaskEncoding
analyzeByteMask(std::span<const Word> values, LaneMask active)
{
    GS_ASSERT(active != 0, "byte-mask comparison needs an active lane");
    GS_ASSERT(!values.empty(), "empty value span");

    const unsigned base_lane = firstLane(active);
    GS_ASSERT(base_lane < values.size(), "active mask exceeds lane count");
    const Word base = values[base_lane];

    // Hardware compares neighbours with inactive lanes overridden by a
    // broadcast of an active lane's value (Fig. 7 (a)). Comparing every
    // active lane against the first active lane is equivalent, and the
    // common-MSB count across lanes equals the leading-zero-byte count
    // of the OR of all per-lane XORs against the base — which lets the
    // software model reduce two lanes per 64-bit word instead of
    // looping over bytes.
    const unsigned lanes = unsigned(values.size());
    const bool allActive =
        (active & laneMaskLow(lanes)) == laneMaskLow(lanes);
    // Dispatch to the fastest enabled inner loop (simd.hpp). Every
    // level's diff agrees in the bits that decide the common-MSB
    // count: an early exit only ever happens once an MSB byte differs,
    // which pins the count to 0 regardless of the skipped lanes.
    SimdLevel level = activeSimdLevel();
    if (level == SimdLevel::Avx2 && lanes < 8)
        level = SimdLevel::Swar; // narrow groups: vector setup loses

    std::uint32_t diff = 0;
    if (level == SimdLevel::Avx2) {
        diff = allActive
                   ? detail::diffAvx2(values.data(), lanes, base)
                   : detail::diffMaskedAvx2(values.data(), lanes,
                                            active, base);
    } else if (level == SimdLevel::Swar && allActive) {
        // All lanes active: SWAR sweep, two lanes per iteration. Once
        // either half's most-significant byte differs no byte can be
        // common, so stop early (incompressible values are the hot
        // case in divergent workloads).
        constexpr std::uint64_t kMsbBytes = 0xFF00'0000'FF00'0000ull;
        std::uint64_t acc = 0;
        const std::uint64_t base2 = broadcastWord(base);
        unsigned lane = 0;
        for (; lane + 2 <= lanes; lane += 2) {
            acc |= loadWordPair(&values[lane]) ^ base2;
            if (acc & kMsbBytes)
                break;
        }
        diff = foldWordPair(acc);
        if (lane + 1 == lanes) // odd tail lane
            diff |= values[lane] ^ base;
    } else {
        diff = diffScalar(values, active, base);
    }

    ByteMaskEncoding e;
    e.commonMsbs = commonMsbBytes(diff);
    e.base = base;
    return e;
}

unsigned
byteMaskStoredBytes(unsigned common_msbs, unsigned lanes)
{
    GS_ASSERT(common_msbs <= 4, "bad prefix count");
    return common_msbs + (4 - common_msbs) * lanes;
}

std::vector<std::uint8_t>
byteMaskCompress(std::span<const Word> values)
{
    const auto enc =
        analyzeByteMask(values, laneMaskLow(unsigned(values.size())));

    std::vector<std::uint8_t> out;
    out.reserve(byteMaskStoredBytes(enc.commonMsbs, unsigned(values.size())));

    // Base bytes, most significant first (the BVR contents).
    for (unsigned i = 0; i < enc.commonMsbs; ++i)
        out.push_back(byteOf(enc.base, 3 - i));

    // Per-lane differing low bytes, lane-major, most significant first.
    const unsigned lanes = unsigned(values.size());
    if (activeSimdLevel() == SimdLevel::Avx2 && lanes >= 4 &&
        enc.commonMsbs < 4) {
        const std::size_t at = out.size();
        out.resize(at + std::size_t(4 - enc.commonMsbs) * lanes);
        detail::packAvx2(values.data(), lanes, enc.commonMsbs,
                         out.data() + at);
    } else {
        for (const Word v : values)
            for (unsigned b = enc.commonMsbs; b < 4; ++b)
                out.push_back(byteOf(v, 3 - b));
    }

    return out;
}

std::vector<Word>
byteMaskDecompress(std::span<const std::uint8_t> stored,
                   unsigned common_msbs, unsigned lanes)
{
    GS_ASSERT(stored.size() == byteMaskStoredBytes(common_msbs, lanes),
              "stored stream size mismatch");

    Word base_part = 0;
    for (unsigned i = 0; i < common_msbs; ++i)
        base_part = withByte(base_part, 3 - i, stored[i]);

    std::vector<Word> out(lanes, base_part);
    std::size_t pos = common_msbs;
    for (unsigned lane = 0; lane < lanes; ++lane)
        for (unsigned b = common_msbs; b < 4; ++b)
            out[lane] = withByte(out[lane], 3 - b, stored[pos++]);

    return out;
}

} // namespace gs
