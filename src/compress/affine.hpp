/**
 * @file
 * Affine vector detection (related work §6: Collange et al. [32], Kim
 * et al. [33]). A register is affine when lane i holds base + i*stride
 * — the dominant pattern of address ramps. Affine registers could be
 * stored as (base, stride) pairs and operated on by one lane plus a
 * stride unit; this module quantifies that opportunity *beyond* what
 * G-Scalar's scalar execution already covers (an affine register with
 * stride 0 is simply a scalar one).
 */

#ifndef GSCALAR_COMPRESS_AFFINE_HPP
#define GSCALAR_COMPRESS_AFFINE_HPP

#include <span>

#include "common/types.hpp"

namespace gs
{

/** Result of affine analysis of one register's lanes. */
struct AffineInfo
{
    bool affine = false;
    Word base = 0;   ///< value of lane 0 (extrapolated when inactive)
    Word stride = 0; ///< per-lane increment; 0 means scalar

    bool isScalar() const { return affine && stride == 0; }
};

/**
 * Check whether every active lane i holds base + i*stride (mod 2^32).
 * Needs at least two active lanes to establish a nonzero stride; a
 * single active lane is reported as affine with stride 0.
 */
AffineInfo analyzeAffine(std::span<const Word> values, LaneMask active);

} // namespace gs

#endif // GSCALAR_COMPRESS_AFFINE_HPP
