/**
 * @file
 * Internal plumbing shared by the codec implementations: the blob
 * envelope of Codec::encode()/decode() and the ByteMaskCodec base
 * class the byte-mask-family codecs (static-profile, RRCD) derive
 * from. Not installed into any public seam — include codec.hpp.
 */

#ifndef GSCALAR_COMPRESS_CODEC_IMPL_HPP
#define GSCALAR_COMPRESS_CODEC_IMPL_HPP

#include "codec.hpp"

namespace gs
{
namespace compress
{
namespace detail
{

/** Bytes before the payload: id, lanes, enc, FNV-1a-32 checksum. */
inline constexpr std::size_t kBlobHeaderBytes = 7;

/** FNV-1a-32 (the envelope checksum; serial.cpp uses the 64-bit kin). */
std::uint32_t fnv1a32(const std::uint8_t *data, std::size_t n);

/** Wrap a payload in the self-describing codec envelope. */
std::vector<std::uint8_t> packBlob(CodecId id, unsigned lanes,
                                   std::uint8_t enc,
                                   std::span<const std::uint8_t> payload);

/** Parsed envelope of a well-formed blob. */
struct BlobView
{
    unsigned lanes = 0;
    std::uint8_t enc = 0;
    std::span<const std::uint8_t> payload;
};

/**
 * Validate the envelope of @p blob for codec @p id: length, producer
 * id, lane range and payload checksum. Empty optional + reason on any
 * violation; codec-specific enc/payload-size checks are the caller's.
 */
std::optional<BlobView> unpackBlob(CodecId id,
                                   std::span<const std::uint8_t> blob,
                                   std::string *error);

/** Set @p error (when non-null) and return an empty optional. */
std::optional<std::vector<Word>> decodeFail(std::string *error,
                                            const std::string &why);

} // namespace detail

/**
 * The paper's byte-mask codec behind the Codec interface. Every cost
 * method delegates to the exact array-model helpers the simulator
 * called before the interface existed, so default-codec simulations
 * are bit-identical by construction. Also the base class of the
 * byte-mask-family codecs (static-profile, RRCD), which share its
 * stored-byte format.
 */
class ByteMaskCodec : public Codec
{
  public:
    CodecId id() const override { return CodecId::ByteMask; }
    CodecCaps caps() const override;
    CodecEnergyScale energyScale() const override { return {}; }
    CodecAreaScale areaScale() const override { return {}; }

    bool regScalar(const RegMeta &meta) const override;
    bool regCompressed(const RegMeta &meta) const override;

    AccessCost readCost(const RfGeometry &geo, const RegMeta &meta,
                        LaneMask reader, bool half_reg,
                        bool scalar_from_meta) const override;
    AccessCost writeCost(const RfGeometry &geo, const RegMeta &meta,
                         bool half_reg, bool scalar_to_meta) const override;
    unsigned regStoredBytes(const RfGeometry &geo, const RegMeta &meta,
                            bool half_reg) const override;
    unsigned metadataBitsPerReg(const RfGeometry &geo,
                                bool half_reg) const override;

    std::vector<std::uint8_t>
    encode(std::span<const Word> values) const override;
    std::optional<std::vector<Word>>
    decode(std::span<const std::uint8_t> blob,
           std::string *error = nullptr) const override;
};

/** Factory singletons (registry table in codec_registry.cpp). */
const Codec &staticProfileCodec();
const Codec &rrcdCodec();

} // namespace compress
} // namespace gs

#endif // GSCALAR_COMPRESS_CODEC_IMPL_HPP
