/**
 * @file
 * The campaign journal: an append-only JSONL file
 * (`<campaign>/journal.jsonl`) recording every completed sweep point,
 * so `gscalar sweep --resume` after a crash — including SIGKILL —
 * replays finished points instead of recomputing them.
 *
 * One record per line, fixed key order:
 *
 *   {"v":1,"point":N,"fp":"<hex16>","result":"<hex>","crc":"<hex16>"}
 *
 * `result` is a hex-encoded serial.hpp result blob (itself magic- and
 * checksum-framed); `crc` is FNV-1a over every byte of the line before
 * the crc field. The double framing means any torn tail, bit flip or
 * truncation is detected at load: the bad line is quarantined to
 * `journal.quarantine` (post-mortem, like the run cache's quarantine
 * directory), counted in the sweep_journal_recoveries health counter,
 * and its point simply recomputed — the journal may lose work, it must
 * never lie.
 *
 * Crash safety: each append is a single O_APPEND write(). A crash can
 * tear at most the final line; appends first repair a missing trailing
 * newline so a torn tail can never splice into the next record. After
 * a load that dropped anything, the journal is compacted — surviving
 * lines rewritten to a temp file and atomically renamed over the
 * original — so corruption never accumulates.
 */

#ifndef GSCALAR_SWEEP_JOURNAL_HPP
#define GSCALAR_SWEEP_JOURNAL_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/runner.hpp"
#include "manifest.hpp"

namespace gs
{

/** Counters of one journal load/append lifetime. */
struct SweepJournalStats
{
    std::uint64_t appended = 0;    ///< records written by this process
    std::uint64_t replayed = 0;    ///< valid records returned by load()
    std::uint64_t quarantined = 0; ///< corrupt/foreign lines moved aside
    std::uint64_t compactions = 0; ///< atomic rewrites after a dirty load
};

class SweepJournal
{
  public:
    /** Journal of the campaign at @p campaignDir (created by the
     *  campaign runner; the journal only creates its own files). */
    explicit SweepJournal(std::string campaignDir);
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /** `<campaignDir>/journal.jsonl`. */
    const std::string &path() const { return path_; }

    /** Where rejected lines go: `<campaignDir>/journal.quarantine`. */
    std::string quarantinePath() const;

    /**
     * Append the completed @p result for @p point: one write(), crash
     * tears at most this line. Thread-safe. False on I/O error — the
     * campaign carries on and the point is recomputed on resume.
     * Consults the sweep:journal-torn-write and sweep:journal-bit-flip
     * fault sites.
     */
    bool append(const SweepPoint &point, const RunResult &result);

    /**
     * Load every valid record, keyed by point index. @p points (the
     * manifest expansion) provides the fingerprints records must
     * match; anything corrupt, torn, foreign or stale is quarantined
     * and counted, duplicates are dropped, and a dirtied journal is
     * compacted in place (atomic rename). Never throws on hostile
     * input.
     */
    std::unordered_map<std::uint64_t, RunResult>
    load(const std::vector<SweepPoint> &points);

    /** Truncate the journal (a fresh run without --resume). */
    bool reset();

    SweepJournalStats stats() const;

  private:
    bool writeLine(const std::string &line);
    void quarantineLine(const std::string &line, const std::string &why);

    std::string dir_;
    std::string path_;
    mutable std::mutex mutex_; ///< serializes appends and stats_
    SweepJournalStats stats_;
    int fd_ = -1;
};

} // namespace gs

#endif // GSCALAR_SWEEP_JOURNAL_HPP
