/**
 * @file
 * The campaign runner behind `gscalar sweep`: expands a SweepManifest,
 * schedules every point through the ExperimentEngine (or a gscalard
 * daemon), journals each completion (journal.hpp), streams per-point
 * JSONL plus running-percentile progress while the campaign is in
 * flight, and renders a deterministic final aggregate.
 *
 * Determinism contract: the final aggregate is computed in point-index
 * order from counters only (never wall clock), so it is byte-identical
 * at any --jobs / --sim-threads, across daemon vs in-process
 * scheduling, and across a --resume after SIGKILL versus an
 * uninterrupted run.
 *
 * Hardening ladder, mirroring the engine's (PR 4):
 *  - each point gets bounded retries with backoff, the retry under a
 *    fault-injection Suppress guard (sweep_point_retries);
 *  - daemon scheduling degrades permanently to the in-process engine
 *    after kDaemonDegradeThreshold consecutive submit failures, and
 *    any point the daemon cannot serve is computed locally
 *    (sweep_daemon_fallbacks) — a lost fleet slows a campaign down,
 *    it never fails one;
 *  - the sweep:point-crash fault site kills the process (SIGKILL
 *    semantics, no flushing) right after a point commits, rehearsing
 *    the resume path deterministically;
 *  - sweep:daemon-lost deterministically fails daemon submits to
 *    rehearse the degradation ladder.
 */

#ifndef GSCALAR_SWEEP_CAMPAIGN_HPP
#define GSCALAR_SWEEP_CAMPAIGN_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "obs/result.hpp"
#include "serve/protocol.hpp"
#include "manifest.hpp"

namespace gs
{

/** How `gscalar sweep` should run one campaign. */
struct SweepOptions
{
    /** Campaign root; campaigns live at `<sweepDir>/<campaign-id>/`.
     *  Empty selects defaultSweepDir(). */
    std::string sweepDir;

    /** Replay journaled points instead of truncating the journal. */
    bool resume = false;

    /** Schedule through the daemon at this unix socket when set. */
    std::string socketPath;

    /** Schedule through the daemon at this TCP target when set. */
    std::optional<ConnectTarget> tcp;

    /** Total attempts per point (1 = no retries). */
    unsigned pointAttempts = 3;

    /** Progress line cadence in completed points; 0 picks ~10 lines
     *  per campaign. */
    std::uint64_t progressEvery = 0;
};

/** Outcome of one campaign run. */
struct SweepOutcome
{
    std::uint64_t points = 0;   ///< manifest expansion size
    std::uint64_t replayed = 0; ///< answered by the journal (--resume)
    std::uint64_t computed = 0; ///< scheduled this run
    std::uint64_t failed = 0;   ///< still failing after every retry
    std::uint64_t daemonFallbacks = 0; ///< computed locally instead
    std::string campaignDir;
    SuiteResult aggregate; ///< deterministic final table

    bool ok() const { return failed == 0; }
};

/** Consecutive failed daemon submits before degrading to the
 *  in-process engine for the rest of the campaign. */
inline constexpr unsigned kDaemonDegradeThreshold = 3;

/** `$GS_SWEEP_DIR`, else `<cache dir>/sweeps`. */
std::string defaultSweepDir();

/**
 * Run @p manifest under @p opts. Creates the campaign directory,
 * writes `manifest.json` (canonical text, atomic publish), appends
 * per-point records to `results.jsonl`, and maintains
 * `journal.jsonl`. Fatal only on unusable inputs (unexpandable
 * manifest); per-point failures are carried in the outcome.
 */
SweepOutcome runSweepCampaign(const SweepManifest &manifest,
                              const SweepOptions &opts);

} // namespace gs

#endif // GSCALAR_SWEEP_CAMPAIGN_HPP
