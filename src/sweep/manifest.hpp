/**
 * @file
 * Campaign manifests: a declarative JSON description of a
 * multi-dimensional parameter sweep — named axes over ArchConfig /
 * codec / workload / GenSpec knobs — expanded deterministically into
 * fingerprinted points. The manifest is content-addressed like the run
 * cache: its campaign hash names the on-disk campaign directory
 * (`GS_SWEEP_DIR/<hash>/`), so re-running the same manifest resumes
 * the same campaign and an edited manifest can never collide with an
 * old journal.
 *
 * Manifest shape (schema gscalar.sweep.v1):
 *
 *   {
 *     "schema": "gscalar.sweep.v1",
 *     "name": "codec-shootout",
 *     "base": {"mode": "gscalar", "seed": 1},
 *     "axes": [
 *       {"knob": "workload", "values": ["BT", "BP", "gen:seed=7"]},
 *       {"knob": "codec",    "values": ["byte-mask", "bdi"]}
 *     ]
 *   }
 *
 * `base` pins knobs shared by every point; each `axes` entry sweeps
 * one knob. Expansion is an odometer over the axes in declaration
 * order with the last axis varying fastest, so point index i maps to
 * the same configuration in every process forever. The environment
 * (GS_CODEC and friends) deliberately does NOT leak into points: a
 * manifest fully describes its campaign, or resume could silently
 * recompute everything under a different configuration.
 *
 * Parsing is hostile-input-safe in the serial.hpp tradition: the
 * embedded JSON reader is bounds-checked, depth-capped and strict —
 * unknown keys, unknown knobs, malformed values, duplicate axis
 * values and oversized expansions are errors, never silent defaults.
 */

#ifndef GSCALAR_SWEEP_MANIFEST_HPP
#define GSCALAR_SWEEP_MANIFEST_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"

namespace gs
{

/** One expanded sweep point: a (workload, config) pair plus the axis
 *  labels that selected it. */
struct SweepPoint
{
    std::uint64_t index = 0; ///< position in expansion order
    std::string workload;    ///< Table 2 abbreviation or gen: spec
    ArchConfig cfg;
    /** The axis (knob, value) pairs of this point, in axis order. */
    std::vector<std::pair<std::string, std::string>> labels;

    /**
     * Stable content hash over (workload, cfg.fingerprint()). Journal
     * records carry it so a record can never be replayed against a
     * point it does not describe. Like ArchConfig::fingerprint() it is
     * stable within a build, not a serialization format.
     */
    std::uint64_t fingerprint() const;

    /** Space-separated "knob=value" axis labels for reports. */
    std::string label() const;
};

/**
 * Apply one manifest knob to a point under construction; returns an
 * empty string on success, the reason otherwise. Exposed so tests can
 * pin the knob vocabulary. Knobs: workload, mode, codec, warp, sms,
 * seed, check-granularity, scalar-banks, half-reg, smov,
 * compiler-smov, scalar-occupancy, max-cycles.
 */
std::string applySweepKnob(ArchConfig &cfg, std::string &workload,
                           const std::string &knob,
                           const std::string &value);

class SweepManifest
{
  public:
    /** One swept dimension. */
    struct Axis
    {
        std::string knob;
        std::vector<std::string> values;
    };

    /** Expansions above this are a manifest error, not an OOM. */
    static constexpr std::uint64_t kMaxPoints = 1'000'000;

    /**
     * Parse and validate manifest JSON. Empty optional (with a
     * one-line reason) on any structural or semantic problem. Workload
     * names are validated against the registry, so resolvers
     * (registerGenWorkloads()) must be registered first.
     */
    static std::optional<SweepManifest> parse(const std::string &text,
                                              std::string *error);

    /** Read @p path and parse() it. */
    static std::optional<SweepManifest> load(const std::string &path,
                                             std::string *error);

    const std::string &name() const { return name_; }
    const std::vector<std::pair<std::string, std::string>> &base() const
    {
        return base_;
    }
    const std::vector<Axis> &axes() const { return axes_; }

    /** Product of the axis sizes. */
    std::uint64_t pointCount() const;

    /**
     * Content address of this campaign: FNV-1a over canonicalText().
     * Two byte-different manifests describing the same sweep (key
     * order, whitespace) share a hash; any semantic change gets a new
     * one.
     */
    std::uint64_t campaignHash() const;

    /** campaignHash() as a fixed-width hex directory name. */
    std::string campaignId() const;

    /** Canonical one-line-per-element rendering the hash covers. */
    std::string canonicalText() const;

    /**
     * Expand every point in deterministic order. Empty optional (with
     * the offending point named in *error) when a knob combination
     * fails ArchConfig::check() — per-combination problems are only
     * decidable here, not per axis value.
     */
    std::optional<std::vector<SweepPoint>>
    expand(std::string *error) const;

  private:
    std::string name_;
    std::vector<std::pair<std::string, std::string>> base_;
    std::vector<Axis> axes_;
};

} // namespace gs

#endif // GSCALAR_SWEEP_MANIFEST_HPP
