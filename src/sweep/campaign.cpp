#include "campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/log.hpp"
#include "common/table.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "harness/engine.hpp"
#include "journal.hpp"
#include "serve/client.hpp"
#include "store/run_cache.hpp"

namespace fs = std::filesystem;

namespace gs
{

namespace
{

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Backoff before per-point retry @p attempt: 1ms << attempt, capped.
 *  No jitter — sweep retries are serial per point, and determinism of
 *  the firing sequence matters more than decorrelation here. */
void
pointBackoff(unsigned attempt)
{
    const unsigned shift = attempt < 7 ? attempt : 7;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1u << shift));
}

/** Reconstruct the canonical manifest JSON for the campaign dir. */
std::string
manifestJson(const SweepManifest &m)
{
    std::ostringstream out;
    out << "{\"schema\":\"gscalar.sweep.v1\",\"name\":\""
        << jsonEscape(m.name()) << "\"";
    if (!m.base().empty()) {
        out << ",\"base\":{";
        bool first = true;
        for (const auto &[knob, value] : m.base()) {
            out << (first ? "" : ",") << "\"" << jsonEscape(knob)
                << "\":\"" << jsonEscape(value) << "\"";
            first = false;
        }
        out << "}";
    }
    out << ",\"axes\":[";
    for (std::size_t a = 0; a < m.axes().size(); ++a) {
        const SweepManifest::Axis &axis = m.axes()[a];
        out << (a ? "," : "") << "{\"knob\":\"" << jsonEscape(axis.knob)
            << "\",\"values\":[";
        for (std::size_t v = 0; v < axis.values.size(); ++v)
            out << (v ? "," : "") << "\""
                << jsonEscape(axis.values[v]) << "\"";
        out << "]}";
    }
    out << "]}\n";
    return out.str();
}

/** Publish @p content at @p path via tmp + atomic rename, first write
 *  wins (concurrent campaigns of the same manifest are identical). */
void
publishOnce(const std::string &path, const std::string &content)
{
    std::error_code ec;
    if (fs::exists(path, ec))
        return;
    const std::string tmp =
        path + ".tmp-" + std::to_string(::getpid());
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << content;
    out.flush();
    if (!out.good()) {
        fs::remove(tmp, ec);
        return;
    }
    out.close();
    fs::rename(tmp, path, ec);
    if (ec)
        fs::remove(tmp, ec);
}

/**
 * runResultJson() pretty-printed for humans; results.jsonl needs one
 * record per line. Raw newlines only ever come from that formatting
 * (string values escape theirs), so stripping them (and the indent
 * that follows) yields the same document, compact.
 */
std::string
compactRunJson(const RunResult &r)
{
    const std::string pretty = runResultJson(r);
    std::string flat;
    flat.reserve(pretty.size());
    for (std::size_t i = 0; i < pretty.size(); ++i) {
        if (pretty[i] == '\n') {
            while (i + 1 < pretty.size() && pretty[i + 1] == ' ')
                ++i;
            continue;
        }
        flat.push_back(pretty[i]);
    }
    return flat;
}

/** One per-point line of the streaming results.jsonl sink. */
std::string
pointJsonLine(const std::string &campaignId, const std::string &name,
              const SweepPoint &p, const RunResult &r)
{
    std::ostringstream out;
    out << "{\"schema\":\"gscalar.bench.v1\",\"experiment\":\"sweep\","
        << "\"tag\":\"" << jsonEscape(campaignId) << "\",\"title\":\""
        << jsonEscape(name) << "\",\"point\":" << p.index
        << ",\"fp\":\"" << hex16(p.fingerprint()) << "\",\"workload\":\""
        << jsonEscape(p.workload) << "\",\"labels\":{";
    for (std::size_t i = 0; i < p.labels.size(); ++i)
        out << (i ? "," : "") << "\"" << jsonEscape(p.labels[i].first)
            << "\":\"" << jsonEscape(p.labels[i].second) << "\"";
    out << "},\"run\":" << compactRunJson(r) << "}";
    return out.str();
}

std::uint64_t
percentile(std::vector<std::uint64_t> sorted, double q)
{
    if (sorted.empty())
        return 0;
    const std::size_t at = std::min(
        sorted.size() - 1,
        std::size_t(q * double(sorted.size() - 1) + 0.5));
    return sorted[at];
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0;
    double logSum = 0;
    for (const double x : xs)
        logSum += std::log(x > 0 ? x : 1e-12);
    return std::exp(logSum / double(xs.size()));
}

/** Running-percentile progress line over the points completed so far
 *  (streamed to stderr; stdout stays reserved for the deterministic
 *  final aggregate). */
void
progressLine(const std::string &name, std::uint64_t done,
             std::uint64_t total, std::uint64_t replayed,
             std::uint64_t failed,
             const std::vector<std::uint64_t> &cycles)
{
    std::vector<std::uint64_t> sorted = cycles;
    std::sort(sorted.begin(), sorted.end());
    std::cerr << "sweep " << name << ": " << done << "/" << total
              << " points";
    if (replayed)
        std::cerr << " (" << replayed << " replayed)";
    if (failed)
        std::cerr << " [" << failed << " FAILED]";
    std::cerr << ", cycles p50=" << percentile(sorted, 0.50)
              << " p90=" << percentile(sorted, 0.90)
              << " p99=" << percentile(sorted, 0.99) << "\n";
}

/** Shared state of the daemon-scheduling degradation ladder. */
struct DaemonState
{
    std::atomic<unsigned> consecutiveFailures{0};
    std::atomic<bool> degraded{false};
    std::atomic<std::uint64_t> fallbacks{0};
};

/**
 * Compute one point via the daemon, with bounded retries and a
 * permanent in-process fallback after kDaemonDegradeThreshold
 * consecutive submit failures — the PR 4 serial-degradation shape at
 * campaign scope. The result is identical either way (the daemon runs
 * the same simulator), so the schedule never leaks into the output.
 */
RunResult
runPointViaDaemon(const SweepPoint &p, const SweepOptions &opts,
                  DaemonState &st)
{
    std::string lastErr = "daemon scheduling degraded";
    for (unsigned attempt = 0;
         attempt < opts.pointAttempts && !st.degraded.load();
         ++attempt) {
        if (attempt > 0) {
            healthCounters().sweepPointRetries.fetch_add(
                1, std::memory_order_relaxed);
            pointBackoff(attempt);
        }
        std::optional<RunResult> r;
        std::string err;
        if (injectFault("sweep", FaultKind::DaemonLost)) {
            err = "injected daemon-lost";
        } else if (opts.tcp) {
            GscalarClient client(*opts.tcp);
            r = client.run(p.workload, p.cfg, &err);
        } else {
            GscalarClient client(opts.socketPath);
            r = client.run(p.workload, p.cfg, &err);
        }
        if (r && r->ok()) {
            st.consecutiveFailures.store(0, std::memory_order_relaxed);
            return *r;
        }
        lastErr = !err.empty() ? err
                  : r          ? r->error
                               : "daemon submit failed";
        const unsigned failures =
            st.consecutiveFailures.fetch_add(
                1, std::memory_order_relaxed) +
            1;
        if (failures >= kDaemonDegradeThreshold &&
            !st.degraded.exchange(true))
            GS_WARN("sweep: ", kDaemonDegradeThreshold,
                    " consecutive daemon submit failures (last: ",
                    lastErr,
                    "); degrading to the in-process engine for the "
                    "rest of the campaign");
    }

    st.fallbacks.fetch_add(1, std::memory_order_relaxed);
    healthCounters().sweepDaemonFallbacks.fetch_add(
        1, std::memory_order_relaxed);
    return defaultEngine().run(p.workload, p.cfg);
}

} // namespace

std::string
defaultSweepDir()
{
    if (const char *env = std::getenv("GS_SWEEP_DIR"); env && *env)
        return env;
    return (fs::path(DiskRunCache::defaultCacheDir()) / "sweeps")
        .string();
}

SweepOutcome
runSweepCampaign(const SweepManifest &manifest, const SweepOptions &opts)
{
    std::string err;
    std::optional<std::vector<SweepPoint>> expanded =
        manifest.expand(&err);
    if (!expanded)
        GS_FATAL("sweep manifest '", manifest.name(),
                 "' does not expand: ", err);
    const std::vector<SweepPoint> &points = *expanded;

    SweepOutcome outcome;
    outcome.points = points.size();

    const std::string root =
        opts.sweepDir.empty() ? defaultSweepDir() : opts.sweepDir;
    const std::string campaignId = manifest.campaignId();
    outcome.campaignDir = (fs::path(root) / campaignId).string();
    std::error_code ec;
    fs::create_directories(outcome.campaignDir, ec);
    if (ec)
        GS_FATAL("cannot create campaign directory ",
                 outcome.campaignDir, ": ", ec.message());
    publishOnce((fs::path(outcome.campaignDir) / "manifest.json")
                    .string(),
                manifestJson(manifest));

    SweepJournal journal(outcome.campaignDir);
    std::unordered_map<std::uint64_t, RunResult> replayed;
    if (opts.resume) {
        replayed = journal.load(points);
        if (!replayed.empty())
            healthCounters().sweepResumedPoints.fetch_add(
                replayed.size(), std::memory_order_relaxed);
    } else {
        journal.reset();
    }

    const std::string resultsPath =
        (fs::path(outcome.campaignDir) / "results.jsonl").string();
    std::ofstream stream(resultsPath,
                         std::ios::binary | (opts.resume
                                                 ? std::ios::app
                                                 : std::ios::trunc));
    if (!stream)
        GS_WARN("cannot open ", resultsPath,
                " (per-point streaming disabled)");

    // ---- schedule every pending point ------------------------------------
    const bool viaDaemon = opts.tcp || !opts.socketPath.empty();
    ExperimentEngine &engine = defaultEngine();
    std::vector<std::shared_future<RunResult>> futures(points.size());
    DaemonState daemonState;
    std::optional<WorkerPool> pool;
    if (viaDaemon)
        pool.emplace(engine.jobs());
    for (const SweepPoint &p : points) {
        if (replayed.count(p.index))
            continue;
        if (viaDaemon) {
            auto promise = std::make_shared<std::promise<RunResult>>();
            futures[p.index] = promise->get_future().share();
            pool->submit([&p, &opts, &daemonState, promise] {
                promise->set_value(
                    runPointViaDaemon(p, opts, daemonState));
            });
        } else {
            futures[p.index] = engine.submit(p.workload, p.cfg);
        }
    }

    // ---- drain in point-index order --------------------------------------
    // Index order (not completion order) keeps the journal, the
    // streaming sink and the point-crash firing sequence deterministic
    // at any --jobs; the futures above still complete concurrently.
    const std::uint64_t progressEvery =
        opts.progressEvery
            ? opts.progressEvery
            : std::max<std::uint64_t>(1, points.size() / 10);
    std::vector<RunResult> results(points.size());
    std::vector<std::uint64_t> doneCycles;
    doneCycles.reserve(points.size());
    std::uint64_t done = 0;
    for (const SweepPoint &p : points) {
        const auto it = replayed.find(p.index);
        if (it != replayed.end()) {
            results[p.index] = it->second;
            ++outcome.replayed;
        } else {
            RunResult r = futures[p.index].get();
            for (unsigned attempt = 1;
                 !r.ok() && attempt < opts.pointAttempts && !viaDaemon;
                 ++attempt) {
                // The engine already retried once internally; these are
                // the sweep's own bounded retries, under Suppress so an
                // armed transient class cannot re-fail the recovery.
                healthCounters().sweepPointRetries.fetch_add(
                    1, std::memory_order_relaxed);
                pointBackoff(attempt);
                FaultInjector::Suppress suppress;
                try {
                    r = runWorkload(p.workload, p.cfg);
                } catch (const std::exception &e) {
                    r = RunResult{};
                    r.workload = p.workload;
                    r.mode = p.cfg.mode;
                    r.error = e.what();
                }
            }
            results[p.index] = r;
            ++outcome.computed;
            if (!r.ok()) {
                ++outcome.failed;
            } else {
                journal.append(p, r);
                if (stream) {
                    stream << pointJsonLine(campaignId,
                                            manifest.name(), p, r)
                           << "\n";
                    stream.flush(); // a crash must not hold back lines
                }
            }
            if (r.ok() &&
                injectFault("sweep", FaultKind::PointCrash)) {
                // SIGKILL semantics: no destructors, no flushing — the
                // strongest crash --resume must recover from, made
                // deterministic (fires after the journal append, in
                // index order, at any --jobs).
                std::cerr << "sweep: injected point-crash after point "
                          << p.index << "\n";
                std::_Exit(137);
            }
        }
        ++done;
        if (results[p.index].ok())
            doneCycles.push_back(results[p.index].ev.cycles);
        if (done % progressEvery == 0 && done != points.size())
            progressLine(manifest.name(), done, points.size(),
                         outcome.replayed, outcome.failed, doneCycles);
    }
    outcome.daemonFallbacks =
        daemonState.fallbacks.load(std::memory_order_relaxed);

    // ---- deterministic final aggregate -----------------------------------
    // Counters only — wall clock and scheduling must never reach
    // stdout, or resume/jobs/daemon would break byte-identity.
    Table t("Sweep " + manifest.name() + ": " +
            std::to_string(points.size()) + " points over " +
            std::to_string(manifest.axes().size()) +
            " axes (campaign " + campaignId + ")");
    t.row({"point", "workload", "config", "cycles", "IPC", "IPC/W"});
    std::vector<double> ipcs, ipcPerWatts;
    for (const SweepPoint &p : points) {
        const RunResult &r = results[p.index];
        if (!r.ok()) {
            t.row({std::to_string(p.index), p.workload, p.label(),
                   "FAILED", "-", "-"});
            continue;
        }
        t.row({std::to_string(p.index), p.workload, p.label(),
               std::to_string(r.ev.cycles), Table::num(r.ev.ipc(), 3),
               Table::num(r.power.ipcPerWatt(), 3)});
        ipcs.push_back(r.ev.ipc());
        ipcPerWatts.push_back(r.power.ipcPerWatt());
    }
    std::vector<std::uint64_t> sortedCycles = doneCycles;
    std::sort(sortedCycles.begin(), sortedCycles.end());
    t.row({"-", "geomean", "-", "-", Table::num(geomean(ipcs), 3),
           Table::num(geomean(ipcPerWatts), 3)});
    t.row({"-", "cycles p50", "-",
           std::to_string(percentile(sortedCycles, 0.50)), "-", "-"});
    t.row({"-", "cycles p90", "-",
           std::to_string(percentile(sortedCycles, 0.90)), "-", "-"});
    t.row({"-", "cycles p99", "-",
           std::to_string(percentile(sortedCycles, 0.99)), "-", "-"});
    outcome.aggregate =
        makeSuiteResult("sweep", manifest.name(), t, results);

    // One grep-stable summary line: the resume tests and the CI smoke
    // job assert replay/compute counts from it.
    std::cerr << "sweep " << manifest.name() << " " << campaignId
              << ": points=" << outcome.points
              << " replayed=" << outcome.replayed
              << " computed=" << outcome.computed
              << " failed=" << outcome.failed
              << " daemon-fallbacks=" << outcome.daemonFallbacks
              << "\n";
    return outcome;
}

} // namespace gs
