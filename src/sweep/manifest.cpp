#include "manifest.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/arch_mode.hpp"
#include "common/codec_id.hpp"
#include "store/serial.hpp"
#include "workloads/workload.hpp"

namespace gs
{

namespace
{

// ---- minimal strict JSON reader ------------------------------------------
// The repo renders JSON in several places but never consumed it before
// the sweep manifest; this reader covers exactly the subset manifests
// need (objects, arrays, strings, integers, booleans), is
// bounds-checked everywhere, caps nesting depth, and reports the byte
// offset of the first problem. Object key order is preserved so the
// canonical rendering matches the author's declaration order.

struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Int,
        String,
        Array,
        Object
    };
    Type type = Type::Null;
    bool boolean = false;
    long long integer = 0;
    std::string str;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    const JsonValue *find(const std::string &key) const
    {
        for (const auto &[k, v] : members)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonReader
{
  public:
    JsonReader(const std::string &text) : text_(text) {}

    std::optional<JsonValue> parse(std::string *error)
    {
        std::optional<JsonValue> v = value(0);
        if (v) {
            skipWs();
            if (pos_ != text_.size())
                v = fail("trailing data after the JSON document");
        }
        if (!v && error)
            *error = "JSON error at byte " + std::to_string(pos_) +
                     ": " + err_;
        return v;
    }

  private:
    static constexpr int kMaxDepth = 16;

    std::optional<JsonValue> fail(const std::string &why)
    {
        if (err_.empty())
            err_ = why;
        return std::nullopt;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool eat(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::optional<std::string> string()
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != '"') {
            fail("expected a string");
            return std::nullopt;
        }
        ++pos_;
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
                return std::nullopt;
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              default:
                fail(std::string("unsupported escape '\\") + e +
                     "' in string");
                return std::nullopt;
            }
        }
        fail("unterminated string");
        return std::nullopt;
    }

    std::optional<JsonValue> value(int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return object(depth);
        if (c == '[')
            return array(depth);
        if (c == '"') {
            std::optional<std::string> s = string();
            if (!s)
                return std::nullopt;
            JsonValue v;
            v.type = JsonValue::Type::String;
            v.str = std::move(*s);
            return v;
        }
        if (c == 't' || c == 'f')
            return boolean();
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return integer();
        return fail("unexpected character");
    }

    std::optional<JsonValue> boolean()
    {
        for (const auto &[word, val] :
             {std::pair<const char *, bool>{"true", true},
              std::pair<const char *, bool>{"false", false}}) {
            const std::size_t n = std::string(word).size();
            if (text_.compare(pos_, n, word) == 0) {
                pos_ += n;
                JsonValue v;
                v.type = JsonValue::Type::Bool;
                v.boolean = val;
                return v;
            }
        }
        return fail("unexpected token");
    }

    std::optional<JsonValue> integer()
    {
        // Manifest numbers are knob values: whole integers only.
        // Fractions and exponents are rejected with a clear message
        // rather than rounded.
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '.' || text_[pos_] == 'e' ||
             text_[pos_] == 'E'))
            return fail("manifest numbers must be whole integers");
        const std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        errno = 0;
        const long long v = std::strtoll(tok.c_str(), &end, 10);
        if (tok.empty() || tok == "-" || !end || *end != '\0' ||
            errno == ERANGE)
            return fail("malformed number");
        JsonValue out;
        out.type = JsonValue::Type::Int;
        out.integer = v;
        return out;
    }

    std::optional<JsonValue> array(int depth)
    {
        eat('[');
        JsonValue out;
        out.type = JsonValue::Type::Array;
        if (eat(']'))
            return out;
        for (;;) {
            std::optional<JsonValue> v = value(depth + 1);
            if (!v)
                return std::nullopt;
            out.items.push_back(std::move(*v));
            if (eat(']'))
                return out;
            if (!eat(','))
                return fail("expected ',' or ']' in array");
        }
    }

    std::optional<JsonValue> object(int depth)
    {
        eat('{');
        JsonValue out;
        out.type = JsonValue::Type::Object;
        if (eat('}'))
            return out;
        for (;;) {
            std::optional<std::string> key = string();
            if (!key)
                return std::nullopt;
            if (!eat(':'))
                return fail("expected ':' after object key");
            std::optional<JsonValue> v = value(depth + 1);
            if (!v)
                return std::nullopt;
            for (const auto &[k, old] : out.members)
                if (k == *key)
                    return fail("duplicate object key '" + *key + "'");
            out.members.emplace_back(std::move(*key), std::move(*v));
            if (eat('}'))
                return out;
            if (!eat(','))
                return fail("expected ',' or '}' in object");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string err_;
};

/** Render a scalar JSON value as its canonical knob-value string. */
std::optional<std::string>
knobValueString(const JsonValue &v)
{
    switch (v.type) {
      case JsonValue::Type::String: return v.str;
      case JsonValue::Type::Int: return std::to_string(v.integer);
      case JsonValue::Type::Bool:
        return std::string(v.boolean ? "true" : "false");
      default: return std::nullopt;
    }
}

std::string
parseUnsigned(const std::string &value, unsigned lo, unsigned hi,
              unsigned &out)
{
    const bool digits =
        !value.empty() &&
        value.find_first_not_of("0123456789") == std::string::npos;
    char *end = nullptr;
    const unsigned long long v =
        digits ? std::strtoull(value.c_str(), &end, 10) : 0;
    if (!digits || !end || *end != '\0' || v < lo || v > hi)
        return "'" + value + "' wants an integer in [" +
               std::to_string(lo) + ", " + std::to_string(hi) + "]";
    out = unsigned(v);
    return {};
}

std::string
parseU64(const std::string &value, std::uint64_t &out)
{
    const bool digits =
        !value.empty() &&
        value.find_first_not_of("0123456789") == std::string::npos;
    char *end = nullptr;
    const unsigned long long v =
        digits ? std::strtoull(value.c_str(), &end, 10) : 0;
    if (!digits || !end || *end != '\0')
        return "'" + value + "' wants a non-negative integer";
    out = v;
    return {};
}

std::string
parseBool(const std::string &value, bool &out)
{
    if (value == "true" || value == "false") {
        out = value == "true";
        return {};
    }
    return "'" + value + "' wants true or false";
}

bool
validName(const std::string &s)
{
    if (s.empty() || s.size() > 64)
        return false;
    for (const char c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
            c != '_' && c != '.')
            return false;
    return true;
}

} // namespace

std::string
applySweepKnob(ArchConfig &cfg, std::string &workload,
               const std::string &knob, const std::string &value)
{
    auto prefix = [&](const std::string &why) {
        return why.empty() ? why : "knob " + knob + ": " + why;
    };

    if (knob == "workload") {
        if (!workloadResolvable(value))
            return "knob workload: unknown workload '" + value + "'";
        workload = value;
        return {};
    }
    if (knob == "mode") {
        for (const ArchMode m :
             {ArchMode::Baseline, ArchMode::AluScalar,
              ArchMode::WarpedCompression, ArchMode::GScalarCompressOnly,
              ArchMode::GScalarNoDiv, ArchMode::GScalarFull}) {
            if (value == archModeName(m)) {
                cfg.mode = m;
                return {};
            }
        }
        return "knob mode: unknown mode '" + value + "'";
    }
    if (knob == "codec") {
        const std::optional<CodecId> id = parseCodecId(value);
        if (!id)
            return "knob codec: unknown codec '" + value + "' (want " +
                   codecIdList() + ")";
        cfg.codec = *id;
        return {};
    }
    if (knob == "warp")
        return prefix(parseUnsigned(value, 1, 1024, cfg.warpSize));
    if (knob == "sms")
        return prefix(parseUnsigned(value, 1, 4096, cfg.numSms));
    if (knob == "seed")
        return prefix(parseU64(value, cfg.seed));
    if (knob == "check-granularity")
        return prefix(parseUnsigned(value, 1, 1024,
                                    cfg.checkGranularity));
    if (knob == "scalar-banks")
        return prefix(parseUnsigned(value, 1, 64, cfg.scalarRfBanks));
    if (knob == "half-reg")
        return prefix(parseBool(value, cfg.halfRegisterCompression));
    if (knob == "smov")
        return prefix(parseBool(value, cfg.insertSpecialMoves));
    if (knob == "compiler-smov")
        return prefix(parseBool(value, cfg.compilerAssistedSmov));
    if (knob == "scalar-occupancy")
        return prefix(parseBool(value, cfg.scalarShortensOccupancy));
    if (knob == "max-cycles")
        return prefix(parseU64(value, cfg.maxCycles));
    return "unknown sweep knob '" + knob +
           "' (want workload, mode, codec, warp, sms, seed, "
           "check-granularity, scalar-banks, half-reg, smov, "
           "compiler-smov, scalar-occupancy or max-cycles)";
}

std::uint64_t
SweepPoint::fingerprint() const
{
    std::uint64_t h = fnv1a(workload.data(), workload.size());
    h ^= cfg.fingerprint() + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
    return h;
}

std::string
SweepPoint::label() const
{
    std::string out;
    for (const auto &[knob, value] : labels) {
        if (!out.empty())
            out += ' ';
        out += knob + "=" + value;
    }
    return out.empty() ? std::string("-") : out;
}

std::optional<SweepManifest>
SweepManifest::parse(const std::string &text, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return std::optional<SweepManifest>();
    };

    std::optional<JsonValue> doc = JsonReader(text).parse(error);
    if (!doc)
        return std::nullopt;
    if (doc->type != JsonValue::Type::Object)
        return fail("manifest wants a top-level JSON object");

    for (const auto &[key, v] : doc->members)
        if (key != "schema" && key != "name" && key != "base" &&
            key != "axes")
            return fail("unknown manifest key '" + key +
                        "' (want schema, name, base, axes)");

    const JsonValue *schema = doc->find("schema");
    if (!schema || schema->type != JsonValue::Type::String ||
        schema->str != "gscalar.sweep.v1")
        return fail("manifest schema must be \"gscalar.sweep.v1\"");

    SweepManifest m;
    const JsonValue *name = doc->find("name");
    if (!name || name->type != JsonValue::Type::String ||
        !validName(name->str))
        return fail("manifest name wants 1-64 characters of "
                    "[A-Za-z0-9._-]");
    m.name_ = name->str;

    // Scratch state to validate knob values eagerly: a typo'd codec
    // name fails at parse, not 40 minutes into a campaign.
    ArchConfig scratchCfg;
    std::string scratchWorkload;
    std::vector<std::string> seenKnobs;
    auto knownKnob = [&](const std::string &k) {
        for (const std::string &s : seenKnobs)
            if (s == k)
                return true;
        return false;
    };

    if (const JsonValue *base = doc->find("base")) {
        if (base->type != JsonValue::Type::Object)
            return fail("manifest base wants an object of knob: value");
        for (const auto &[knob, raw] : base->members) {
            const std::optional<std::string> value =
                knobValueString(raw);
            if (!value)
                return fail("base knob '" + knob +
                            "' wants a string, integer or boolean");
            if (const std::string why = applySweepKnob(
                    scratchCfg, scratchWorkload, knob, *value);
                !why.empty())
                return fail("base: " + why);
            seenKnobs.push_back(knob);
            m.base_.emplace_back(knob, *value);
        }
    }

    const JsonValue *axes = doc->find("axes");
    if (!axes || axes->type != JsonValue::Type::Array ||
        axes->items.empty())
        return fail("manifest axes wants a non-empty array");
    for (const JsonValue &axisVal : axes->items) {
        if (axisVal.type != JsonValue::Type::Object)
            return fail("each axis wants an object with knob and "
                        "values");
        for (const auto &[key, v] : axisVal.members)
            if (key != "knob" && key != "values")
                return fail("unknown axis key '" + key +
                            "' (want knob, values)");
        const JsonValue *knob = axisVal.find("knob");
        const JsonValue *values = axisVal.find("values");
        if (!knob || knob->type != JsonValue::Type::String)
            return fail("axis knob wants a string");
        if (!values || values->type != JsonValue::Type::Array ||
            values->items.empty())
            return fail("axis '" + knob->str +
                        "' wants a non-empty values array");
        if (knownKnob(knob->str))
            return fail("knob '" + knob->str +
                        "' appears more than once across base and "
                        "axes");
        seenKnobs.push_back(knob->str);

        Axis axis;
        axis.knob = knob->str;
        for (const JsonValue &raw : values->items) {
            const std::optional<std::string> value =
                knobValueString(raw);
            if (!value)
                return fail("axis '" + axis.knob +
                            "' values want strings, integers or "
                            "booleans");
            for (const std::string &prev : axis.values)
                if (prev == *value)
                    return fail("axis '" + axis.knob +
                                "' repeats value '" + *value + "'");
            if (const std::string why = applySweepKnob(
                    scratchCfg, scratchWorkload, axis.knob, *value);
                !why.empty())
                return fail("axis '" + axis.knob + "': " + why);
            axis.values.push_back(*value);
        }
        m.axes_.push_back(std::move(axis));
    }

    if (!knownKnob("workload"))
        return fail("manifest must pin or sweep the workload knob");

    if (m.pointCount() > kMaxPoints)
        return fail("manifest expands to " +
                    std::to_string(m.pointCount()) +
                    " points (cap: " + std::to_string(kMaxPoints) +
                    ")");
    return m;
}

std::optional<SweepManifest>
SweepManifest::load(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot read manifest " + path;
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str(), error);
}

std::uint64_t
SweepManifest::pointCount() const
{
    std::uint64_t n = 1;
    for (const Axis &a : axes_) {
        // Saturate instead of overflowing: the parse cap rejects
        // anything bigger than kMaxPoints anyway.
        if (n > kMaxPoints * 2)
            return n;
        n *= a.values.size();
    }
    return n;
}

std::string
SweepManifest::canonicalText() const
{
    // Tab-separated fields, one element per line: none of the legal
    // knob names or values contain tabs or newlines, so the rendering
    // is injective and the hash collision-free across manifests.
    std::string out = "gscalar.sweep.v1\nname\t" + name_ + "\n";
    for (const auto &[knob, value] : base_)
        out += "base\t" + knob + "\t" + value + "\n";
    for (const Axis &a : axes_) {
        out += "axis\t" + a.knob;
        for (const std::string &v : a.values)
            out += "\t" + v;
        out += "\n";
    }
    return out;
}

std::uint64_t
SweepManifest::campaignHash() const
{
    const std::string text = canonicalText();
    return fnv1a(text.data(), text.size());
}

std::string
SweepManifest::campaignId() const
{
    std::ostringstream out;
    out << std::hex << std::setfill('0') << std::setw(16)
        << campaignHash();
    return out.str();
}

std::optional<std::vector<SweepPoint>>
SweepManifest::expand(std::string *error) const
{
    const std::uint64_t n = pointCount();
    std::vector<SweepPoint> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        SweepPoint p;
        p.index = i;
        for (const auto &[knob, value] : base_)
            applySweepKnob(p.cfg, p.workload, knob, value); // validated
        // Odometer in axis declaration order, last axis fastest.
        std::uint64_t stride = n;
        for (const Axis &a : axes_) {
            stride /= a.values.size();
            const std::string &value =
                a.values[(i / stride) % a.values.size()];
            applySweepKnob(p.cfg, p.workload, a.knob, value);
            p.labels.emplace_back(a.knob, value);
        }
        if (const std::string why = p.cfg.check(); !why.empty()) {
            if (error)
                *error = "point " + std::to_string(i) + " (" +
                         p.label() + "): " + why;
            return std::nullopt;
        }
        out.push_back(std::move(p));
    }
    return out;
}

} // namespace gs
