#include "journal.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/log.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "store/serial.hpp"

namespace fs = std::filesystem;

namespace gs
{

namespace
{

std::string
hexEncode(const std::uint8_t *data, std::size_t n)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(n * 2);
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(digits[data[i] >> 4]);
        out.push_back(digits[data[i] & 0xf]);
    }
    return out;
}

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    return -1;
}

bool
hexDecode(const std::string &hex, std::vector<std::uint8_t> &out)
{
    if (hex.size() % 2 != 0)
        return false;
    out.clear();
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hexNibble(hex[i]);
        const int lo = hexNibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(std::uint8_t((hi << 4) | lo));
    }
    return true;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Parse the digits of @p s starting at @p pos; false on none. */
bool
parseDigits(const std::string &s, std::size_t &pos, std::uint64_t &out)
{
    const std::size_t start = pos;
    std::uint64_t v = 0;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
        if (v > (UINT64_MAX - 9) / 10)
            return false;
        v = v * 10 + std::uint64_t(s[pos] - '0');
        ++pos;
    }
    if (pos == start)
        return false;
    out = v;
    return true;
}

constexpr char kBodyPrefix[] = "{\"v\":1,\"point\":";
constexpr char kFpKey[] = ",\"fp\":\"";
constexpr char kResultKey[] = "\",\"result\":\"";
constexpr char kCrcKey[] = "\",\"crc\":\"";
constexpr char kLineSuffix[] = "\"}";

} // namespace

SweepJournal::SweepJournal(std::string campaignDir)
    : dir_(std::move(campaignDir))
{
    path_ = (fs::path(dir_) / "journal.jsonl").string();
}

SweepJournal::~SweepJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::string
SweepJournal::quarantinePath() const
{
    return (fs::path(dir_) / "journal.quarantine").string();
}

bool
SweepJournal::writeLine(const std::string &line)
{
    if (fd_ < 0) {
        fd_ = ::open(path_.c_str(), O_CREAT | O_RDWR | O_APPEND, 0644);
        if (fd_ < 0) {
            GS_WARN("cannot open sweep journal ", path_, ": ",
                    std::strerror(errno));
            return false;
        }
    }
    // Repair a torn tail before appending: if the file does not end in
    // a newline (a previous process died mid-write), terminate that
    // line so it fails its crc in isolation instead of splicing into
    // this record.
    struct stat st{};
    if (::fstat(fd_, &st) == 0 && st.st_size > 0) {
        char last = '\n';
        if (::pread(fd_, &last, 1, st.st_size - 1) == 1 &&
            last != '\n') {
            if (::write(fd_, "\n", 1) != 1)
                return false;
        }
    }
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(fd_, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            GS_WARN("sweep journal append failed: ",
                    std::strerror(errno));
            return false;
        }
        off += std::size_t(n);
    }
    return true;
}

bool
SweepJournal::append(const SweepPoint &point, const RunResult &result)
{
    const std::vector<std::uint8_t> blob = serializeResult(result);
    std::string body = kBodyPrefix + std::to_string(point.index) +
                       kFpKey + hex16(point.fingerprint()) + kResultKey +
                       hexEncode(blob.data(), blob.size());
    std::string line = body + kCrcKey +
                       hex16(fnv1a(body.data(), body.size())) +
                       kLineSuffix + "\n";

    if (injectFault("sweep", FaultKind::JournalBitFlip)) {
        // One bit of on-disk rot in the middle of the record: the crc
        // must catch it at load and the point must be recomputed.
        line[line.size() / 2] ^= 0x01;
    }
    const bool torn = injectFault("sweep", FaultKind::JournalTornWrite);
    if (torn)
        line.resize(line.size() / 2); // crash mid-write: prefix only

    std::lock_guard<std::mutex> lock(mutex_);
    if (!writeLine(line))
        return false;
    ++stats_.appended;
    return true;
}

void
SweepJournal::quarantineLine(const std::string &line,
                             const std::string &why)
{
    std::ofstream out(quarantinePath(),
                      std::ios::binary | std::ios::app);
    if (out)
        out << line << '\n';
    GS_WARN("quarantined sweep journal record (", why, ")");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.quarantined;
    }
    healthCounters().sweepJournalRecoveries.fetch_add(
        1, std::memory_order_relaxed);
}

std::unordered_map<std::uint64_t, RunResult>
SweepJournal::load(const std::vector<SweepPoint> &points)
{
    std::unordered_map<std::uint64_t, RunResult> out;

    std::ifstream in(path_, std::ios::binary);
    if (!in)
        return out; // no journal yet: nothing to replay

    std::vector<std::string> keep;
    bool dirty = false;

    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    if (!content.empty() && content.back() != '\n')
        dirty = true; // torn tail: the final segment fails below

    std::size_t pos = 0;
    while (pos < content.size()) {
        std::size_t nl = content.find('\n', pos);
        if (nl == std::string::npos)
            nl = content.size();
        const std::string line = content.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty())
            continue;

        auto bad = [&](const std::string &why) {
            quarantineLine(line, why);
            dirty = true;
        };

        // Checksum first: everything else assumes an intact line.
        const std::size_t crcAt = line.rfind(kCrcKey);
        const std::size_t crcKeyLen = std::strlen(kCrcKey);
        const std::size_t suffixLen = std::strlen(kLineSuffix);
        if (crcAt == std::string::npos ||
            line.size() != crcAt + crcKeyLen + 16 + suffixLen ||
            line.compare(line.size() - suffixLen, suffixLen,
                         kLineSuffix) != 0) {
            bad("torn or malformed record");
            continue;
        }
        const std::string crcHex = line.substr(crcAt + crcKeyLen, 16);
        std::vector<std::uint8_t> crcBytes;
        if (!hexDecode(crcHex, crcBytes)) {
            bad("malformed crc");
            continue;
        }
        if (hex16(fnv1a(line.data(), crcAt)) != crcHex) {
            bad("crc mismatch");
            continue;
        }

        // The crc held, so the writer's fixed field layout applies.
        const std::size_t prefixLen = std::strlen(kBodyPrefix);
        if (line.compare(0, prefixLen, kBodyPrefix) != 0) {
            bad("unknown record version");
            continue;
        }
        std::size_t at = prefixLen;
        std::uint64_t index = 0;
        if (!parseDigits(line, at, index) ||
            line.compare(at, std::strlen(kFpKey), kFpKey) != 0) {
            bad("malformed point index");
            continue;
        }
        at += std::strlen(kFpKey);
        const std::string fpHex = line.substr(at, 16);
        at += 16;
        if (line.compare(at, std::strlen(kResultKey), kResultKey) !=
            0) {
            bad("malformed fingerprint field");
            continue;
        }
        at += std::strlen(kResultKey);
        const std::string resultHex = line.substr(at, crcAt - at);

        if (index >= points.size()) {
            bad("point index " + std::to_string(index) +
                " outside the campaign");
            continue;
        }
        if (fpHex != hex16(points[index].fingerprint())) {
            bad("fingerprint mismatch for point " +
                std::to_string(index) + " (stale or foreign record)");
            continue;
        }
        std::vector<std::uint8_t> blob;
        if (!hexDecode(resultHex, blob)) {
            bad("malformed result payload");
            continue;
        }
        std::string err;
        const std::optional<RunResult> result =
            deserializeResult(blob, &err);
        if (!result) {
            bad("result blob rejected: " + err);
            continue;
        }
        if (out.count(index)) {
            dirty = true; // duplicate: keep the first, drop the line
            continue;
        }
        out.emplace(index, *result);
        keep.push_back(line);
    }
    in.close();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.replayed += out.size();
    }

    if (dirty) {
        // Compact: surviving lines to a temp file, atomic rename. The
        // rewrite runs under Suppress so the recovery path cannot be
        // re-failed by the same armed fault class it is absorbing.
        FaultInjector::Suppress suppress;
        const std::string tmp =
            (fs::path(dir_) /
             (".journal.tmp-" + std::to_string(::getpid())))
                .string();
        std::ofstream rw(tmp, std::ios::binary | std::ios::trunc);
        for (const std::string &line : keep)
            rw << line << '\n';
        rw.flush();
        std::error_code ec;
        if (!rw.good()) {
            fs::remove(tmp, ec);
            GS_WARN("sweep journal compaction failed (write)");
        } else {
            rw.close();
            fs::rename(tmp, path_, ec);
            if (ec) {
                std::error_code rmEc;
                fs::remove(tmp, rmEc);
                GS_WARN("sweep journal compaction failed: ",
                        ec.message());
            } else {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.compactions;
                if (fd_ >= 0) {
                    // Reopen on next append: the old fd points at the
                    // unlinked pre-compaction file.
                    ::close(fd_);
                    fd_ = -1;
                }
            }
        }
    }
    return out;
}

bool
SweepJournal::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    std::error_code ec;
    fs::remove(path_, ec);
    return !ec;
}

SweepJournalStats
SweepJournal::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace gs
