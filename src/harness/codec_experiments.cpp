/**
 * @file
 * Codec-framework experiments: the software encode/decode
 * micro-benchmark ("micro", driver micro_codec) and the codec
 * shootout ("shootout", driver fig_codec_shootout). Both register
 * with inDefaultRun = false, so the default `gscalar bench` text
 * keeps reproducing docs/bench_reference_output.txt byte for byte
 * while `--only micro` / `--only shootout` (or the driver binaries)
 * run them on demand.
 */

#include "experiments.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "compress/codec.hpp"
#include "runner.hpp"

namespace gs
{

namespace
{

/**
 * Canonical 32-lane register-value patterns, one per compressibility
 * family the byte-mask scheme distinguishes (§3.2): uniform scalar,
 * common 3-byte prefix, common 2-byte prefix, and incompressible
 * random words.
 */
std::vector<Word>
codecPattern(unsigned family)
{
    Rng rng(family + 1);
    std::vector<Word> v(32);
    for (unsigned i = 0; i < 32; ++i) {
        switch (family) {
          case 0: v[i] = 0xC04039C0; break;            // scalar
          case 1: v[i] = 0xC04039C0 + i * 8; break;    // 3-byte
          case 2: v[i] = 0xC0400000 + i * 1024; break; // 2-byte
          default: v[i] = rng.next32(); break;         // random
        }
    }
    return v;
}

const char *const kPatternNames[4] = {"scalar", "3-byte", "2-byte",
                                      "random"};

/** Geometric mean of @p xs (0 on empty input). */
double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0;
    double log_sum = 0;
    for (const double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / double(xs.size()));
}

double
ratioOr1(double num, double den)
{
    return den > 0 ? num / den : 1.0;
}

} // namespace

SuiteResult
buildMicroCodec(ExperimentEngine &, const ArchConfig &)
{
    using clock = std::chrono::steady_clock;
    constexpr unsigned kIters = 2000;
    constexpr double kRegBytes = 32.0 * 4.0; // one 32-lane register

    Table t("Codec micro-benchmark: software encode/decode over one "
            "32-lane register (GB/s columns are wall-clock; the rest "
            "is deterministic)");
    t.row({"codec", "pattern", "blob B", "ratio", "enc GB/s",
           "dec GB/s", "round-trip"});
    // Defeat dead-code elimination of the timed loops without
    // dragging in a benchmark framework.
    std::size_t guard = 0;
    for (const compress::Codec *codec : compress::allCodecs()) {
        for (unsigned family = 0; family < 4; ++family) {
            const std::vector<Word> values = codecPattern(family);
            const std::vector<std::uint8_t> blob = codec->encode(values);
            const std::optional<std::vector<Word>> back =
                codec->decode(blob);
            const bool ok = back && *back == values;

            const auto enc0 = clock::now();
            for (unsigned i = 0; i < kIters; ++i)
                guard += codec->encode(values).size();
            const auto enc1 = clock::now();
            for (unsigned i = 0; i < kIters; ++i) {
                const auto out = codec->decode(blob);
                guard += out ? out->size() : 0;
            }
            const auto dec1 = clock::now();

            const double enc_s =
                std::chrono::duration<double>(enc1 - enc0).count();
            const double dec_s =
                std::chrono::duration<double>(dec1 - enc1).count();
            const double bytes = double(kIters) * kRegBytes;
            t.row({codec->name(), kPatternNames[family],
                   std::to_string(blob.size()),
                   Table::num(kRegBytes / double(blob.size()), 2),
                   Table::num(enc_s > 0 ? bytes / enc_s / 1e9 : 0, 2),
                   Table::num(dec_s > 0 ? bytes / dec_s / 1e9 : 0, 2),
                   ok ? "ok" : "FAIL"});
        }
    }
    volatile std::size_t sink = guard;
    (void)sink;
    return makeSuiteResult("micro", "Sec 3.2", t);
}

SuiteResult
buildCodecShootout(ExperimentEngine &eng, const ArchConfig &base)
{
    // Fan out every run before joining anything: the Baseline
    // reference suite plus one full-suite sweep per registered codec.
    // Results join in registry x Table 2 order, so the table is
    // byte-identical at any --jobs / --sim-threads level.
    ArchConfig bcfg = base;
    bcfg.mode = ArchMode::Baseline;
    std::vector<std::shared_future<RunResult>> baseline =
        eng.submitSuite(bcfg);

    const std::vector<const compress::Codec *> &codecs =
        compress::allCodecs();
    std::vector<std::vector<std::shared_future<RunResult>>> sweeps;
    for (const compress::Codec *codec : codecs) {
        ArchConfig cfg = base;
        cfg.mode = ArchMode::GScalarFull;
        cfg.codec = codec->id();
        sweeps.push_back(eng.submitSuite(cfg));
    }

    std::vector<RunResult> runs;
    std::vector<RunResult> base_runs;
    for (auto &f : baseline) {
        base_runs.push_back(f.get());
        runs.push_back(base_runs.back());
    }

    struct Entry
    {
        const compress::Codec *codec;
        double ratio;  ///< geomean stored-bytes compression ratio
        double energy; ///< geomean RF+codec energy vs Baseline RF
        double ipc;    ///< geomean IPC vs Baseline
        double eff;    ///< geomean IPC/W vs Baseline (the ranking key)
    };
    std::vector<Entry> entries;
    for (std::size_t c = 0; c < codecs.size(); ++c) {
        std::vector<double> ratio, energy, ipc, eff;
        for (std::size_t w = 0; w < base_runs.size(); ++w) {
            const RunResult r = sweeps[c][w].get();
            runs.push_back(r);
            const RunResult &b = base_runs[w];
            if (!r.ok() || !b.ok())
                continue;
            ratio.push_back(ratioOr1(double(r.ev.compBytesUncompressed),
                                     double(r.ev.compBytesCompressed)));
            energy.push_back(
                ratioOr1((r.power.regFileW + r.power.codecW) *
                             r.power.seconds,
                         b.power.regFileW * b.power.seconds));
            ipc.push_back(ratioOr1(r.power.ipc, b.power.ipc));
            eff.push_back(
                ratioOr1(r.power.ipcPerWatt(), b.power.ipcPerWatt()));
        }
        entries.push_back({codecs[c], geomean(ratio), geomean(energy),
                           geomean(ipc), geomean(eff)});
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry &a, const Entry &b) {
                         return a.eff > b.eff;
                     });

    Table t("Codec shootout: geomean over the Table 2 suite, "
            "normalized to the Baseline GPU (ranked by IPC/W)");
    t.row({"rank", "codec", "ratio", "RF energy", "IPC", "IPC/W"});
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        t.row({std::to_string(i + 1), e.codec->name(),
               Table::num(e.ratio, 3), Table::num(e.energy, 3),
               Table::num(e.ipc, 3), Table::num(e.eff, 3)});
    }
    return makeSuiteResult("shootout", "Sec 5.2/5.3", t,
                           std::move(runs));
}

} // namespace gs
