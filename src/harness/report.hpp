/**
 * @file
 * Structured result export: enumerate every event counter and power
 * component of a run as name/value pairs, and render them as CSV or
 * JSON for downstream analysis scripts.
 */

#ifndef GSCALAR_HARNESS_REPORT_HPP
#define GSCALAR_HARNESS_REPORT_HPP

#include <string>
#include <utility>
#include <vector>

#include "runner.hpp"

namespace gs
{

/** All counters of a run, in a stable order. */
std::vector<std::pair<std::string, double>>
eventFields(const EventCounts &ev);

/** Power components of a run, in a stable order. */
std::vector<std::pair<std::string, double>>
powerFields(const PowerReport &p);

/** CSV header matching csvRow(). */
std::string csvHeader();

/** One CSV row: workload, mode, every event field, every power field. */
std::string csvRow(const RunResult &r);

/** Whole result set as CSV (header + rows). */
std::string toCsv(const std::vector<RunResult> &results);

/** One run as a flat JSON object. */
std::string toJson(const RunResult &r);

/**
 * One-line simulator-throughput report over a result set: summed
 * wall-clock, sim-cycles/sec and warp-insts/sec. Reports print this on
 * stderr (wall-clock varies run to run, so it must never land in the
 * deterministic stdout tables).
 */
std::string throughputSummary(const std::vector<RunResult> &results);

} // namespace gs

#endif // GSCALAR_HARNESS_REPORT_HPP
