/**
 * @file
 * One experiment per paper table/figure, behind a single registry.
 * Each experiment runs the needed simulations through an
 * ExperimentEngine and produces a SuiteResult — the ASCII table with
 * the paper's reference numbers beside the measured ones, plus the
 * structured rows and per-run counters behind it — which a ResultSink
 * renders as text, JSON or CSV. The registry is what `gscalar bench`
 * (--list/--only/--format) and the per-experiment bench binaries
 * enumerate; the legacy runX() string functions remain as thin
 * wrappers over it.
 */

#ifndef GSCALAR_HARNESS_EXPERIMENTS_HPP
#define GSCALAR_HARNESS_EXPERIMENTS_HPP

#include <string>
#include <vector>

#include "common/config.hpp"
#include "engine.hpp"
#include "obs/result.hpp"

namespace gs
{

/** Baseline GTX 480 configuration used by all experiments (Table 1). */
ArchConfig experimentConfig();

/** One registered experiment (a paper figure, table or ablation). */
struct Experiment
{
    const char *name;        ///< CLI name, e.g. "fig8"
    const char *tag;         ///< paper artefact, e.g. "Fig. 8"
    const char *driver;      ///< bench binary, e.g. "fig08_rf_distribution"
    const char *description; ///< one line for --list

    /** Simulate (through @p eng) and assemble the structured result. */
    SuiteResult (*build)(ExperimentEngine &eng, const ArchConfig &base);

    /**
     * Part of the default `gscalar bench` run (and `gscalar
     * experiment all`)? Opt-out entries — the codec micro-benchmark
     * and the codec shootout — still appear in --list and run under
     * --only/by name, but stay out of the golden reference output.
     */
    bool inDefaultRun = true;

    /** Build and hand the result to @p sink. */
    void
    run(ExperimentEngine &eng, const ArchConfig &base,
        ResultSink &sink) const
    {
        sink.emit(build(eng, base));
    }
};

/**
 * Every experiment, in bench-driver (golden reference output) order.
 * `gscalar bench` with no --only runs exactly this sequence, so its
 * text output reproduces docs/bench_reference_output.txt byte for
 * byte.
 */
const std::vector<Experiment> &experiments();

/** Registry entry by CLI name, or nullptr. */
const Experiment *findExperiment(const std::string &name);

// ---- codec experiments (src/harness/codec_experiments.cpp) ---------------

/**
 * Software encode/decode micro-benchmark: every registered codec over
 * four canonical register-value patterns (scalar, 3-byte, 2-byte,
 * random). Blob size, compression ratio and round-trip verdict are
 * deterministic; the GB/s timing columns are wall-clock and therefore
 * excluded from the default bench run (inDefaultRun = false).
 */
SuiteResult buildMicroCodec(ExperimentEngine &eng, const ArchConfig &base);

/**
 * Codec shootout: runs the full Table 2 suite once per registered
 * codec (mode GScalarFull) plus a Baseline reference, and ranks the
 * codecs on geomean compression ratio, RF+codec energy and IPC.
 * Deterministic at any --jobs/--sim-threads level.
 */
SuiteResult buildCodecShootout(ExperimentEngine &eng,
                               const ArchConfig &base);

// ---- legacy string drivers (wrappers over the registry) ------------------
// Each runs through defaultEngine() and returns the rendered table.

/** Fig. 1: divergent / divergent-scalar instruction percentages. */
std::string runFig1(const ArchConfig &base);

/** Fig. 8: register-file access distribution by value similarity. */
std::string runFig8(const ArchConfig &base);

/** Fig. 9: instructions eligible for scalar execution, per tier. */
std::string runFig9(const ArchConfig &base);

/** Fig. 10: half-/quarter-scalar share for warp sizes 32 and 64. */
std::string runFig10(const ArchConfig &base);

/** Fig. 11: normalized IPC/W for the four architectures + IPC impact. */
std::string runFig11(const ArchConfig &base);

/** Fig. 12: normalized RF dynamic power for the four RF schemes. */
std::string runFig12(const ArchConfig &base);

/** Table 3 + §5.1 overheads from the hardware cost model. */
std::string runTable3();

/** §5.3: compression ratios (ours vs BDI) over the same streams. */
std::string runCompressionRatio(const ArchConfig &base);

/** §3.3: special-move dynamic-instruction overhead. */
std::string runSpecialMoveOverhead(const ArchConfig &base);

/** §4.1 ablation: scalar-RF bank count vs G-Scalar's BVR banklets. */
std::string runScalarBankAblation(const ArchConfig &base);

/**
 * §6 comparison: scalar coverage of a static scalarizing compiler vs
 * G-Scalar's dynamic detection (the paper reports the compiler captured
 * 24 % fewer scalar instructions on an AMD in-house workload set).
 */
std::string runCompilerScalarComparison(const ArchConfig &base);

/** §3.3 ablation: special-move overhead, hardware-only vs
 *  compiler-assisted liveness elision. */
std::string runSmovCompilerAblation(const ArchConfig &base);

/**
 * §6 ablation: what if scalar execution also compressed the multi-cycle
 * dispatch of a warp to one cycle (the performance opportunity the
 * paper attributes to scalar execution in related work)?
 */
std::string runOccupancyAblation(const ArchConfig &base);

/**
 * §3.2/§4.3 ablation: half-register compression (per-half enc/base,
 * +7 % RF area) vs whole-register encoding (+3 % RF area) — RF energy
 * and half-scalar coverage trade-off.
 */
std::string runHalfRegisterAblation(const ArchConfig &base);

/**
 * §6 related-work comparison: affine (base + lane*stride) register
 * writes vs scalar ones — the additional opportunity an affine
 * execution unit (Kim et al. [33]) would capture on top of G-Scalar.
 */
std::string runAffineOpportunity(const ArchConfig &base);

/**
 * §4.1 scaling argument: future GPUs have more register banks; the
 * prior-work single scalar bank does not scale while G-Scalar's
 * per-bank BVR arrays do. Sweeps the bank count.
 */
std::string runBankCountAblation(const ArchConfig &base);

/**
 * §4.3/§6 scaling argument: wider warps (AMD-style 64) erode full-warp
 * scalar opportunity, but half-warp scalar execution preserves the
 * benefit. Compares G-Scalar efficiency at warp 32 vs 64, with and
 * without half-warp support.
 */
std::string runWarpWidthAblation(const ArchConfig &base);

} // namespace gs

#endif // GSCALAR_HARNESS_EXPERIMENTS_HPP
