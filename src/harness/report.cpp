#include "report.hpp"

#include <sstream>

namespace gs
{

std::vector<std::pair<std::string, double>>
eventFields(const EventCounts &e)
{
    std::vector<std::pair<std::string, double>> f;
    auto add = [&f](const char *n, double v) { f.emplace_back(n, v); };

    add("cycles", double(e.cycles));
    add("warp_insts", double(e.warpInsts));
    add("thread_insts", double(e.threadInsts));
    add("issued_insts", double(e.issuedInsts));
    add("ipc", e.ipc());

    add("alu_warp_insts", double(e.aluWarpInsts));
    add("sfu_warp_insts", double(e.sfuWarpInsts));
    add("mem_warp_insts", double(e.memWarpInsts));
    add("ctrl_warp_insts", double(e.ctrlWarpInsts));
    add("alu_lane_ops", double(e.aluLaneOps));
    add("sfu_lane_ops", double(e.sfuLaneOps));
    add("mem_lane_ops", double(e.memLaneOps));
    add("alu_energy_units", e.aluEnergyUnits);
    add("sfu_energy_units", e.sfuEnergyUnits);

    add("divergent_warp_insts", double(e.divergentWarpInsts));
    add("divergent_scalar_eligible", double(e.divergentScalarEligible));
    add("scalar_alu_eligible", double(e.scalarAluEligible));
    add("scalar_sfu_eligible", double(e.scalarSfuEligible));
    add("scalar_mem_eligible", double(e.scalarMemEligible));
    add("half_scalar_eligible", double(e.halfScalarEligible));
    add("scalar_executed", double(e.scalarExecuted));
    add("half_scalar_executed", double(e.halfScalarExecuted));
    add("special_move_insts", double(e.specialMoveInsts));
    add("static_scalar_insts", double(e.staticScalarInsts));

    add("rf_reads", double(e.rfReads));
    add("rf_writes", double(e.rfWrites));
    add("rf_array_reads", double(e.rfArrayReads));
    add("rf_array_writes", double(e.rfArrayWrites));
    add("bvr_accesses", double(e.bvrAccesses));
    add("scalar_rf_accesses", double(e.scalarRfAccesses));
    add("crossbar_bytes", double(e.crossbarBytes));
    add("oc_allocations", double(e.ocAllocations));

    add("rf_acc_scalar", double(e.rfAccScalar));
    add("rf_acc_3byte", double(e.rfAcc3Byte));
    add("rf_acc_2byte", double(e.rfAcc2Byte));
    add("rf_acc_1byte", double(e.rfAcc1Byte));
    add("rf_acc_divergent", double(e.rfAccDivergent));
    add("rf_acc_other", double(e.rfAccOther));

    add("compressor_uses", double(e.compressorUses));
    add("decompressor_uses", double(e.decompressorUses));
    add("affine_writes", double(e.affineWrites));
    add("affine_nonscalar_writes", double(e.affineNonScalarWrites));
    add("compression_ratio", e.compressionRatio());
    add("bdi_compression_ratio", e.bdiCompressionRatio());

    add("l1_accesses", double(e.l1Accesses));
    add("l1_misses", double(e.l1Misses));
    add("l2_accesses", double(e.l2Accesses));
    add("l2_misses", double(e.l2Misses));
    add("dram_accesses", double(e.dramAccesses));
    add("shared_accesses", double(e.sharedAccesses));
    add("shared_bank_conflicts", double(e.sharedBankConflicts));
    add("mem_requests", double(e.memRequests));
    add("mshr_stall_cycles", double(e.mshrStallCycles));

    add("sched_idle_cycles", double(e.schedIdleCycles));
    add("scoreboard_stalls", double(e.scoreboardStalls));
    add("oc_full_stalls", double(e.ocFullStalls));
    add("scalar_bank_stalls", double(e.scalarBankStalls));
    add("pipe_busy_stalls", double(e.pipeBusyStalls));
    return f;
}

std::vector<std::pair<std::string, double>>
powerFields(const PowerReport &p)
{
    return {
        {"power_frontend_w", p.frontendW},
        {"power_execute_w", p.executeW},
        {"power_sfu_w", p.sfuW},
        {"power_regfile_w", p.regFileW},
        {"power_codec_w", p.codecW},
        {"power_memory_w", p.memoryW},
        {"power_static_w", p.staticW},
        {"power_total_w", p.totalW},
        {"ipc_per_watt", p.ipcPerWatt()},
    };
}

std::string
csvHeader()
{
    std::ostringstream os;
    os << "workload,mode";
    for (const auto &[name, value] : eventFields(EventCounts{}))
        os << "," << name;
    for (const auto &[name, value] : powerFields(PowerReport{}))
        os << "," << name;
    return os.str();
}

std::string
csvRow(const RunResult &r)
{
    std::ostringstream os;
    os << r.workload << "," << archModeName(r.mode);
    for (const auto &[name, value] : eventFields(r.ev))
        os << "," << value;
    for (const auto &[name, value] : powerFields(r.power))
        os << "," << value;
    return os.str();
}

std::string
toCsv(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    os << csvHeader() << "\n";
    for (const RunResult &r : results)
        os << csvRow(r) << "\n";
    return os.str();
}

std::string
throughputSummary(const std::vector<RunResult> &results)
{
    double wall = 0;
    double cycles = 0;
    double insts = 0;
    for (const RunResult &r : results) {
        wall += r.wallSeconds;
        cycles += double(r.ev.cycles);
        insts += double(r.ev.warpInsts);
    }
    std::ostringstream os;
    os << "throughput: " << results.size() << " run(s) in ";
    os.precision(3);
    os << std::fixed << wall << "s CPU";
    if (wall > 0) {
        os << " (" << cycles / wall / 1e6 << "M sim-cycles/s, "
           << insts / wall / 1e6 << "M warp-insts/s)";
    }
    return os.str();
}

std::string
toJson(const RunResult &r)
{
    std::ostringstream os;
    os << "{\n  \"workload\": \"" << r.workload << "\",\n  \"mode\": \""
       << archModeName(r.mode) << "\"";
    for (const auto &[name, value] : eventFields(r.ev))
        os << ",\n  \"" << name << "\": " << value;
    for (const auto &[name, value] : powerFields(r.power))
        os << ",\n  \"" << name << "\": " << value;
    os << ",\n  \"wall_seconds\": " << r.wallSeconds;
    os << ",\n  \"sim_cycles_per_sec\": " << r.simCyclesPerSec();
    os << ",\n  \"warp_insts_per_sec\": " << r.warpInstsPerSec();
    os << "\n}\n";
    return os.str();
}

} // namespace gs
