#include "report.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/result.hpp"

namespace gs
{

std::vector<std::pair<std::string, double>>
eventFields(const EventCounts &e)
{
    // Enumerated from the obs metric registry (every EventCounts field
    // exactly once, declaration order), then the derived ratios.
    std::vector<std::pair<std::string, double>> f;
    f.reserve(eventMetrics().size() + derivedEventMetrics().size());
    for (const MetricDef &m : eventMetrics())
        f.emplace_back(m.name, m.value(e));
    for (const DerivedMetricDef &m : derivedEventMetrics())
        f.emplace_back(m.name, m.value(e));
    return f;
}

std::vector<std::pair<std::string, double>>
powerFields(const PowerReport &p)
{
    std::vector<std::pair<std::string, double>> f;
    f.reserve(powerMetrics().size());
    for (const PowerMetricDef &m : powerMetrics())
        f.emplace_back(m.name, m.value(p));
    return f;
}

std::string
csvHeader()
{
    return runCsvHeader();
}

std::string
csvRow(const RunResult &r)
{
    return runCsvRow(r);
}

std::string
toCsv(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    os << csvHeader() << "\n";
    for (const RunResult &r : results)
        os << csvRow(r) << "\n";
    return os.str();
}

std::string
throughputSummary(const std::vector<RunResult> &results)
{
    double wall = 0;
    double cycles = 0;
    double insts = 0;
    for (const RunResult &r : results) {
        wall += r.wallSeconds;
        cycles += double(r.ev.cycles);
        insts += double(r.ev.warpInsts);
    }
    std::ostringstream os;
    os << "throughput: " << results.size() << " run(s) in ";
    os.precision(3);
    os << std::fixed << wall << "s CPU";
    if (wall > 0) {
        os << " (" << cycles / wall / 1e6 << "M sim-cycles/s, "
           << insts / wall / 1e6 << "M warp-insts/s)";
    }
    return os.str();
}

std::string
toJson(const RunResult &r)
{
    return runResultJson(r);
}

} // namespace gs
