#include "bench.hpp"

#include <iostream>
#include <string>

#include "common/log.hpp"
#include "engine.hpp"
#include "experiments.hpp"
#include "obs/result.hpp"

namespace gs
{

int
benchDriverMain(const char *experimentName, int argc, char **argv)
{
    initHarness(argc, argv);

    ResultFormat format = ResultFormat::Text;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        std::string value;
        if (a.rfind("--format=", 0) == 0)
            value = a.substr(9);
        else if (a == "--format") {
            if (i + 1 >= argc)
                GS_FATAL("--format needs a value (text|json|csv)");
            value = argv[++i];
        } else {
            continue;
        }
        const std::optional<ResultFormat> f = parseResultFormat(value);
        if (!f)
            GS_FATAL("unknown --format '", value,
                     "' (want text, json or csv)");
        format = *f;
    }

    const Experiment *exp = findExperiment(experimentName);
    if (!exp)
        GS_PANIC("bench driver built for unregistered experiment '",
                 experimentName, "'");

    const auto sink = makeResultSink(format, std::cout);
    exp->run(defaultEngine(), experimentConfig(), *sink);
    stderrSink().writeLine(defaultEngine().statsSummary());
    return 0;
}

} // namespace gs
