/**
 * @file
 * Shared main() body for the per-experiment bench binaries. Every
 * driver under bench/ is three lines: include this, forward to
 * benchDriverMain() with its experiment name. The driver output
 * contract is unchanged from the historical hand-written mains —
 * result on stdout (text by default, --format=json|csv for machines),
 * engine statistics on stderr.
 */

#ifndef GSCALAR_HARNESS_BENCH_HPP
#define GSCALAR_HARNESS_BENCH_HPP

namespace gs
{

/**
 * Run one registered experiment as a bench binary: initHarness()
 * (--jobs/-j/--cache), --format=text|json|csv selection, the
 * experiment through the default engine with the Table 1
 * configuration, and the engine stats summary on stderr.
 * @return process exit code.
 */
int benchDriverMain(const char *experimentName, int argc, char **argv);

} // namespace gs

#endif // GSCALAR_HARNESS_BENCH_HPP
