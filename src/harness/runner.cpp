#include "runner.hpp"

#include <chrono>

#include "common/log.hpp"
#include "sim/gpu.hpp"

namespace gs
{

RunResult
runWorkload(const Workload &w, const ArchConfig &cfg,
            const EnergyParams &ep)
{
    RunResult r;
    r.workload = w.name;
    r.mode = cfg.mode;

    const auto t0 = std::chrono::steady_clock::now();
    Gpu gpu(cfg);
    if (w.setup)
        w.setup(gpu.memory(), cfg.seed);

    bool first = true;
    for (const WorkloadLaunch &launch : w.launches) {
        EventCounts ev = gpu.launch(launch.kernel, launch.dims);
        if (first) {
            r.ev = ev;
            first = false;
        } else {
            // Sequential kernels: cycles accumulate rather than max.
            const auto prev_cycles = r.ev.cycles;
            r.ev += ev;
            r.ev.cycles = prev_cycles + ev.cycles;
        }
    }
    if (first)
        GS_FATAL("workload '", w.name, "' has no launches");

    r.power = computePower(r.ev, cfg, ep);
    r.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    return r;
}

RunResult
runWorkload(const std::string &abbr, const ArchConfig &cfg,
            const EnergyParams &ep)
{
    return runWorkload(makeWorkload(abbr), cfg, ep);
}

} // namespace gs
