#include "runner.hpp"

#include <chrono>

#include "common/log.hpp"
#include "obs/jsonl_tracer.hpp"
#include "sim/gpu.hpp"
#include "sim/trace.hpp"

namespace gs
{

namespace
{

/** Fans events out to two tracers (request tracer + GS_TRACE tracer). */
class TeeTracer : public Tracer
{
  public:
    TeeTracer(Tracer &a, Tracer &b) : a_(a), b_(b) {}

    void
    onIssue(const IssueEvent &e) override
    {
        a_.onIssue(e);
        b_.onIssue(e);
    }
    void
    onCtaLaunch(unsigned sm, unsigned cta, Cycle now) override
    {
        a_.onCtaLaunch(sm, cta, now);
        b_.onCtaLaunch(sm, cta, now);
    }
    void
    onCtaRetire(unsigned sm, unsigned cta, Cycle now) override
    {
        a_.onCtaRetire(sm, cta, now);
        b_.onCtaRetire(sm, cta, now);
    }
    void
    onRunBegin(const std::string &w, ArchMode m) override
    {
        a_.onRunBegin(w, m);
        b_.onRunBegin(w, m);
    }
    void
    onRunEnd(const std::string &w) override
    {
        a_.onRunEnd(w);
        b_.onRunEnd(w);
    }

  private:
    Tracer &a_;
    Tracer &b_;
};

RunResult
runWorkloadImpl(const Workload &w, const ArchConfig &cfg,
                const EnergyParams &ep, Tracer *extra)
{
    RunResult r;
    r.workload = w.name;
    r.mode = cfg.mode;

    // Attach the request tracer and/or the process-wide GS_TRACE
    // tracer; fan out through a tee when both are present.
    Tracer *env = envTracer();
    std::optional<TeeTracer> tee;
    Tracer *active = extra ? extra : env;
    if (extra && env) {
        tee.emplace(*extra, *env);
        active = &*tee;
    }

    if (active)
        active->onRunBegin(w.name, cfg.mode);

    const auto t0 = std::chrono::steady_clock::now();
    Gpu gpu(cfg);
    gpu.setTracer(active);
    if (w.setup)
        w.setup(gpu.memory(), cfg.seed);

    bool first = true;
    for (const WorkloadLaunch &launch : w.launches) {
        EventCounts ev = gpu.launch(launch.kernel, launch.dims);
        if (first) {
            r.ev = ev;
            first = false;
        } else {
            // Sequential kernels: cycles accumulate rather than max.
            const auto prev_cycles = r.ev.cycles;
            r.ev += ev;
            r.ev.cycles = prev_cycles + ev.cycles;
        }
    }
    if (first)
        GS_FATAL("workload '", w.name, "' has no launches");

    r.power = computePower(r.ev, cfg, ep);
    r.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    if (active)
        active->onRunEnd(w.name);
    return r;
}

} // namespace

RunResult
runWorkload(const RunRequest &req)
{
    ArchConfig cfg = req.cfg;
    if (req.seed)
        cfg.seed = *req.seed;
    return runWorkloadImpl(makeWorkload(req.workload), cfg, req.energy,
                           req.tracer);
}

RunResult
runWorkload(const Workload &w, const ArchConfig &cfg,
            const EnergyParams &ep)
{
    return runWorkloadImpl(w, cfg, ep, nullptr);
}

RunResult
runWorkload(const std::string &abbr, const ArchConfig &cfg,
            const EnergyParams &ep)
{
    return runWorkloadImpl(makeWorkload(abbr), cfg, ep, nullptr);
}

} // namespace gs
