#include "experiments.hpp"

#include <array>
#include <future>
#include <map>
#include <sstream>

#include "common/table.hpp"
#include "power/hardware_cost.hpp"
#include "runner.hpp"

namespace gs
{

ArchConfig
experimentConfig()
{
    ArchConfig cfg; // defaults are the Table 1 GTX 480 model
    cfg.codec = defaultCodecId(); // --codec / $GS_CODEC selection
    return cfg;
}

namespace
{

double
pctDiv(double num, double den)
{
    return den > 0 ? num / den : 0;
}

SuiteResult
buildFig1(ExperimentEngine &eng, const ArchConfig &base)
{
    ArchConfig cfg = base;
    cfg.mode = ArchMode::Baseline; // classification is mode-independent

    Table t("Figure 1: divergent and divergent-scalar instructions");
    t.row({"bench", "divergent", "divergent-scalar"});
    double div_sum = 0, dsc_sum = 0;
    const auto results = eng.runSuite(cfg);
    for (const RunResult &r : results) {
        const double div =
            pctDiv(double(r.ev.divergentWarpInsts), double(r.ev.warpInsts));
        const double dsc = pctDiv(double(r.ev.divergentScalarEligible),
                                  double(r.ev.warpInsts));
        div_sum += div;
        dsc_sum += dsc;
        t.row({r.workload, Table::pct(div), Table::pct(dsc)});
    }
    const double n = double(results.size());
    t.row({"AVG", Table::pct(div_sum / n), Table::pct(dsc_sum / n)});
    t.row({"paper-AVG", "28.0%", "12.6% (45% of divergent)"});
    return makeSuiteResult("fig1", "Fig. 1", t, results);
}

SuiteResult
buildFig8(ExperimentEngine &eng, const ArchConfig &base)
{
    ArchConfig cfg = base;
    cfg.mode = ArchMode::Baseline;

    Table t("Figure 8: RF access distribution for operand values");
    t.row({"bench", "scalar", "3-byte", "2-byte", "1-byte", "divergent",
           "other"});
    double sums[6] = {};
    const auto results = eng.runSuite(cfg);
    for (const RunResult &r : results) {
        const double reads = double(r.ev.rfReads);
        const double vals[6] = {
            pctDiv(double(r.ev.rfAccScalar), reads),
            pctDiv(double(r.ev.rfAcc3Byte), reads),
            pctDiv(double(r.ev.rfAcc2Byte), reads),
            pctDiv(double(r.ev.rfAcc1Byte), reads),
            pctDiv(double(r.ev.rfAccDivergent), reads),
            pctDiv(double(r.ev.rfAccOther), reads)};
        for (int i = 0; i < 6; ++i)
            sums[i] += vals[i];
        t.row({r.workload, Table::pct(vals[0]), Table::pct(vals[1]),
               Table::pct(vals[2]), Table::pct(vals[3]),
               Table::pct(vals[4]), Table::pct(vals[5])});
    }
    const double n = double(results.size());
    t.row({"AVG", Table::pct(sums[0] / n), Table::pct(sums[1] / n),
           Table::pct(sums[2] / n), Table::pct(sums[3] / n),
           Table::pct(sums[4] / n), Table::pct(sums[5] / n)});
    t.row({"paper-AVG", "36%", "17%", "4%", "7%", "-", "-"});
    return makeSuiteResult("fig8", "Fig. 8", t, results);
}

SuiteResult
buildFig9(ExperimentEngine &eng, const ArchConfig &base)
{
    ArchConfig cfg = base;
    cfg.mode = ArchMode::Baseline;

    Table t("Figure 9: instructions eligible for scalar execution");
    t.row({"bench", "ALU-scalar", "+SFU", "+MEM", "+half", "+divergent",
           "total"});
    double sums[6] = {};
    const auto results = eng.runSuite(cfg);
    for (const RunResult &r : results) {
        const double wi = double(r.ev.warpInsts);
        const double alu = pctDiv(double(r.ev.scalarAluEligible), wi);
        const double sfu = pctDiv(double(r.ev.scalarSfuEligible), wi);
        const double mem = pctDiv(double(r.ev.scalarMemEligible), wi);
        const double half = pctDiv(double(r.ev.halfScalarEligible), wi);
        const double dsc =
            pctDiv(double(r.ev.divergentScalarEligible), wi);
        const double total = alu + sfu + mem + half + dsc;
        const double vals[6] = {alu, sfu, mem, half, dsc, total};
        for (int i = 0; i < 6; ++i)
            sums[i] += vals[i];
        t.row({r.workload, Table::pct(alu), Table::pct(sfu),
               Table::pct(mem), Table::pct(half), Table::pct(dsc),
               Table::pct(total)});
    }
    const double n = double(results.size());
    t.row({"AVG", Table::pct(sums[0] / n), Table::pct(sums[1] / n),
           Table::pct(sums[2] / n), Table::pct(sums[3] / n),
           Table::pct(sums[4] / n), Table::pct(sums[5] / n)});
    t.row({"paper-AVG", "22%", "+7% (SFU+MEM)", "", "+2%", "+9%",
           "40%"});
    return makeSuiteResult("fig9", "Fig. 9", t, results);
}

SuiteResult
buildFig10(ExperimentEngine &eng, const ArchConfig &base)
{
    Table t("Figure 10: half-scalar eligible share vs warp size");
    t.row({"bench", "warp 32 (half)", "warp 64 (quarter)"});

    ArchConfig cfg32 = base;
    cfg32.mode = ArchMode::Baseline;
    ArchConfig cfg64 = cfg32;
    cfg64.warpSize = 64;

    // Fan both warp sizes out together before joining either.
    auto f32 = eng.submitSuite(cfg32);
    auto f64 = eng.submitSuite(cfg64);
    std::vector<RunResult> r32, r64;
    for (auto &f : f32)
        r32.push_back(f.get());
    for (auto &f : f64)
        r64.push_back(f.get());
    double s32 = 0, s64 = 0;
    for (std::size_t i = 0; i < r32.size(); ++i) {
        const double h32 = pctDiv(double(r32[i].ev.halfScalarEligible),
                                  double(r32[i].ev.warpInsts));
        const double h64 = pctDiv(double(r64[i].ev.halfScalarEligible),
                                  double(r64[i].ev.warpInsts));
        s32 += h32;
        s64 += h64;
        t.row({r32[i].workload, Table::pct(h32), Table::pct(h64)});
    }
    const double n = double(r32.size());
    t.row({"AVG", Table::pct(s32 / n), Table::pct(s64 / n)});
    t.row({"paper-AVG", "2%", "5%"});

    std::vector<RunResult> runs = std::move(r32);
    runs.insert(runs.end(), r64.begin(), r64.end());
    return makeSuiteResult("fig10", "Fig. 10", t, std::move(runs));
}

SuiteResult
buildFig11(ExperimentEngine &eng, const ArchConfig &base)
{
    Table t("Figure 11: normalized power efficiency (IPC/W) and IPC");
    t.row({"bench", "ALU-scalar", "G-Scalar w/o div", "G-Scalar",
           "G-Scalar (IPC)"});

    const ArchMode modes[] = {ArchMode::Baseline, ArchMode::AluScalar,
                              ArchMode::GScalarNoDiv,
                              ArchMode::GScalarFull};
    // Fan all four modes out (17 benchmarks x 4 configs) before joining.
    std::map<ArchMode, std::vector<std::shared_future<RunResult>>> futures;
    for (const ArchMode m : modes) {
        ArchConfig cfg = base;
        cfg.mode = m;
        futures[m] = eng.submitSuite(cfg);
    }
    std::map<ArchMode, std::vector<RunResult>> results;
    for (const ArchMode m : modes)
        for (auto &f : futures[m])
            results[m].push_back(f.get());

    double sums[4] = {};
    const std::size_t n = results[ArchMode::Baseline].size();
    for (std::size_t i = 0; i < n; ++i) {
        const auto &b = results[ArchMode::Baseline][i];
        const double base_eff = b.power.ipcPerWatt();
        const double e1 =
            results[ArchMode::AluScalar][i].power.ipcPerWatt() / base_eff;
        const double e2 =
            results[ArchMode::GScalarNoDiv][i].power.ipcPerWatt() /
            base_eff;
        const double e3 =
            results[ArchMode::GScalarFull][i].power.ipcPerWatt() /
            base_eff;
        const double ipc =
            results[ArchMode::GScalarFull][i].power.ipc / b.power.ipc;
        sums[0] += e1;
        sums[1] += e2;
        sums[2] += e3;
        sums[3] += ipc;
        t.row({b.workload, Table::num(e1, 3), Table::num(e2, 3),
               Table::num(e3, 3), Table::num(ipc, 3)});
    }
    t.row({"AVG", Table::num(sums[0] / double(n), 3),
           Table::num(sums[1] / double(n), 3),
           Table::num(sums[2] / double(n), 3),
           Table::num(sums[3] / double(n), 3)});
    t.row({"paper-AVG", "~1.08", "-", "1.24 (1.15 vs ALU-scalar)",
           "0.983"});

    std::vector<RunResult> runs;
    for (const ArchMode m : modes)
        runs.insert(runs.end(), results[m].begin(), results[m].end());
    return makeSuiteResult("fig11", "Fig. 11", t, std::move(runs));
}

SuiteResult
buildFig12(ExperimentEngine &eng, const ArchConfig &base)
{
    ArchConfig cfg = base;
    cfg.mode = ArchMode::Baseline; // shadow counters carry all schemes

    Table t("Figure 12: normalized RF dynamic power");
    t.row({"bench", "scalar only [3]", "W-C (BDI) [4]", "ours"});
    double sums[3] = {};
    const auto results = eng.runSuite(cfg);
    for (const RunResult &r : results) {
        const RfEnergyBreakdown b = computeRfEnergy(r.ev);
        const double s = b.scalarOnlyJ / b.baselineJ;
        const double wc = b.bdiJ / b.baselineJ;
        const double ours = b.oursJ / b.baselineJ;
        sums[0] += s;
        sums[1] += wc;
        sums[2] += ours;
        t.row({r.workload, Table::num(s, 3), Table::num(wc, 3),
               Table::num(ours, 3)});
    }
    const double n = double(results.size());
    t.row({"AVG", Table::num(sums[0] / n, 3), Table::num(sums[1] / n, 3),
           Table::num(sums[2] / n, 3)});
    t.row({"paper-AVG", "0.63", "~0.55", "0.46"});
    return makeSuiteResult("fig12", "Fig. 12", t, results);
}

SuiteResult
buildTable3(ExperimentEngine &, const ArchConfig &)
{
    // Pure cost model: no simulations behind this one.
    SuiteResult r;
    r.experiment = "table3";
    r.tag = "Table 3";
    r.title = "Hardware cost model (Table 3 + Sec 5.1)";
    r.text = describeHardwareCost();
    return r;
}

SuiteResult
buildCompressionRatio(ExperimentEngine &eng, const ArchConfig &base)
{
    ArchConfig cfg = base;
    cfg.mode = ArchMode::Baseline;

    Table t("Compression ratio over the register write stream (Sec 5.3)");
    t.row({"bench", "ours", "BDI"});
    double so = 0, sb = 0;
    const auto results = eng.runSuite(cfg);
    for (const RunResult &r : results) {
        const double ours = r.ev.compressionRatio();
        const double bdi = r.ev.bdiCompressionRatio();
        so += ours;
        sb += bdi;
        t.row({r.workload, Table::num(ours, 2), Table::num(bdi, 2)});
    }
    const double n = double(results.size());
    t.row({"AVG", Table::num(so / n, 2), Table::num(sb / n, 2)});
    t.row({"paper-AVG", "2.17", "2.13"});
    return makeSuiteResult("ratio", "Sec 5.3", t, results);
}

SuiteResult
buildSpecialMoveOverhead(ExperimentEngine &eng, const ArchConfig &base)
{
    ArchConfig cfg = base;
    cfg.mode = ArchMode::GScalarFull;

    Table t("Special-move dynamic instruction overhead (Sec 3.3)");
    t.row({"bench", "special moves / instructions"});
    double sum = 0;
    const auto results = eng.runSuite(cfg);
    for (const RunResult &r : results) {
        const double o = pctDiv(double(r.ev.specialMoveInsts),
                                double(r.ev.warpInsts));
        sum += o;
        t.row({r.workload, Table::pct(o, 2)});
    }
    t.row({"AVG", Table::pct(sum / double(results.size()), 2)});
    t.row({"paper", "~2% (hardware-assisted)"});
    return makeSuiteResult("smov", "Sec 3.3", t, results);
}

SuiteResult
buildCompilerScalarComparison(ExperimentEngine &eng,
                              const ArchConfig &base)
{
    ArchConfig cfg = base;
    cfg.mode = ArchMode::Baseline;

    Table t("Static compiler scalarization vs dynamic G-Scalar (Sec 6)");
    t.row({"bench", "compiler", "G-Scalar", "compiler/G-Scalar"});
    double sc = 0, sg = 0;
    const auto results = eng.runSuite(cfg);
    for (const RunResult &r : results) {
        const double wi = double(r.ev.warpInsts);
        const double stat = pctDiv(double(r.ev.staticScalarInsts), wi);
        const double dyn =
            pctDiv(double(r.ev.scalarAluEligible + r.ev.scalarSfuEligible +
                          r.ev.scalarMemEligible +
                          r.ev.halfScalarEligible +
                          r.ev.divergentScalarEligible),
                   wi);
        sc += stat;
        sg += dyn;
        t.row({r.workload, Table::pct(stat), Table::pct(dyn),
               dyn > 0 ? Table::num(stat / dyn, 2) : "-"});
    }
    const double n = double(results.size());
    t.row({"AVG", Table::pct(sc / n), Table::pct(sg / n),
           Table::num((sc / n) / (sg / n), 2)});
    t.row({"paper", "captures ~24% fewer than G-Scalar", "", "~0.76"});
    return makeSuiteResult("compiler", "Sec 6", t, results);
}

SuiteResult
buildSmovCompilerAblation(ExperimentEngine &eng, const ArchConfig &base)
{
    Table t("Special-move overhead: hardware vs compiler-assisted "
            "(Sec 3.3)");
    t.row({"bench", "hardware", "compiler-assisted", "eliminated"});

    ArchConfig hw = base;
    hw.mode = ArchMode::GScalarFull;
    ArchConfig ca = hw;
    ca.compilerAssistedSmov = true;

    auto fh = eng.submitSuite(hw);
    auto fc = eng.submitSuite(ca);

    std::vector<RunResult> runs;
    double sh = 0, sc = 0;
    unsigned n = 0;
    for (std::size_t i = 0; i < fh.size(); ++i) {
        const RunResult rh = fh[i].get();
        const RunResult rc = fc[i].get();

        const double oh = pctDiv(double(rh.ev.specialMoveInsts),
                                 double(rh.ev.warpInsts));
        const double oc = pctDiv(double(rc.ev.specialMoveInsts),
                                 double(rc.ev.warpInsts));
        sh += oh;
        sc += oc;
        ++n;
        t.row({rh.workload, Table::pct(oh, 2), Table::pct(oc, 2),
               oh > 0 ? Table::pct(1.0 - oc / oh, 0) : "-"});
        runs.push_back(rh);
        runs.push_back(rc);
    }
    t.row({"AVG", Table::pct(sh / n, 2), Table::pct(sc / n, 2), ""});
    t.row({"paper", "~2%", "<2% (lifetime analysis)", ""});
    return makeSuiteResult("smovcompiler", "Sec 3.3", t,
                           std::move(runs));
}

SuiteResult
buildOccupancyAblation(ExperimentEngine &eng, const ArchConfig &base)
{
    Table t("Ablation: scalar execution shortening dispatch occupancy "
            "(Sec 6)");
    t.row({"bench", "G-Scalar IPC", "+1-cycle scalar dispatch IPC",
           "speedup"});

    ArchConfig plain = base;
    plain.mode = ArchMode::GScalarFull;
    ArchConfig fast = plain;
    fast.scalarShortensOccupancy = true;

    auto fa = eng.submitSuite(plain);
    auto fb = eng.submitSuite(fast);

    std::vector<RunResult> runs;
    double s = 0;
    unsigned n = 0;
    for (std::size_t i = 0; i < fa.size(); ++i) {
        const RunResult a = fa[i].get();
        const RunResult b = fb[i].get();

        const double speedup = b.power.ipc / a.power.ipc;
        s += speedup;
        ++n;
        t.row({a.workload, Table::num(a.power.ipc, 2),
               Table::num(b.power.ipc, 2), Table::num(speedup, 3)});
        runs.push_back(a);
        runs.push_back(b);
    }
    t.row({"AVG", "", "", Table::num(s / n, 3)});
    return makeSuiteResult("occupancy", "Sec 6", t, std::move(runs));
}

SuiteResult
buildAffineOpportunity(ExperimentEngine &eng, const ArchConfig &base)
{
    ArchConfig cfg = base;
    cfg.mode = ArchMode::Baseline;

    Table t("Affine register writes (related work, Sec 6)");
    t.row({"bench", "affine", "affine non-scalar (extra vs scalar)"});
    double sa = 0, sn = 0;
    const auto results = eng.runSuite(cfg);
    for (const RunResult &r : results) {
        const double wr = double(r.ev.rfWrites);
        const double aff = pctDiv(double(r.ev.affineWrites), wr);
        const double nsc =
            pctDiv(double(r.ev.affineNonScalarWrites), wr);
        sa += aff;
        sn += nsc;
        t.row({r.workload, Table::pct(aff), Table::pct(nsc)});
    }
    const double n = double(results.size());
    t.row({"AVG", Table::pct(sa / n), Table::pct(sn / n)});
    t.row({"paper", "affine units apply to limited instruction types",
           ""});
    return makeSuiteResult("affine", "Sec 6", t, results);
}

SuiteResult
buildBankCountAblation(ExperimentEngine &eng, const ArchConfig &base)
{
    Table t("Ablation: register-file bank count scaling (Sec 4.1)");
    t.row({"banks", "baseline IPC", "ALU-scalar IPC", "G-Scalar IPC",
           "G-Scalar IPC/W vs baseline"});

    const std::vector<std::string> benches = {"MM", "MQ", "ST"};
    const std::vector<unsigned> bankCounts = {8u, 16u, 32u};

    // Fan out every (banks x bench x mode) simulation, then join in
    // table order.
    std::map<std::pair<unsigned, std::string>,
             std::array<std::shared_future<RunResult>, 3>>
        futures;
    for (const unsigned banks : bankCounts) {
        for (const auto &name : benches) {
            ArchConfig b = base;
            b.numBanks = banks;
            b.mode = ArchMode::Baseline;
            auto fb = eng.submit(name, b);
            b.mode = ArchMode::AluScalar;
            auto fa = eng.submit(name, b);
            b.mode = ArchMode::GScalarFull;
            auto fg = eng.submit(name, b);
            futures[{banks, name}] = {fb, fa, fg};
        }
    }
    std::vector<RunResult> runs;
    for (const unsigned banks : bankCounts) {
        double ipc_base = 0, ipc_alu = 0, ipc_gs = 0, eff = 0;
        for (const auto &name : benches) {
            auto &[fb, fa, fg] = futures[{banks, name}];
            const RunResult rb = fb.get();
            const RunResult ra = fa.get();
            const RunResult rg = fg.get();
            ipc_base += rb.power.ipc;
            ipc_alu += ra.power.ipc;
            ipc_gs += rg.power.ipc;
            eff += rg.power.ipcPerWatt() / rb.power.ipcPerWatt();
            runs.push_back(rb);
            runs.push_back(ra);
            runs.push_back(rg);
        }
        const double n = double(benches.size());
        t.row({std::to_string(banks), Table::num(ipc_base / n, 2),
               Table::num(ipc_alu / n, 2), Table::num(ipc_gs / n, 2),
               Table::num(eff / n, 3)});
    }
    return makeSuiteResult("bankcount", "Sec 4.1", t, std::move(runs));
}

SuiteResult
buildWarpWidthAblation(ExperimentEngine &eng, const ArchConfig &base)
{
    Table t("Ablation: warp width vs scalar benefit (Sec 4.3/6)");
    t.row({"config", "full-warp eligible", "half/quarter eligible",
           "IPC/W vs same-width baseline"});

    std::vector<RunResult> runs;
    for (const unsigned warp : {32u, 64u}) {
        for (const bool half : {true, false}) {
            ArchConfig b = base;
            b.warpSize = warp;
            b.mode = ArchMode::Baseline;
            ArchConfig g = b;
            g.mode = ArchMode::GScalarFull;
            g.halfRegisterCompression = half;

            // The same-width baseline suite is a cache hit on the
            // second (half) iteration.
            auto fb = eng.submitSuite(b);
            auto fg = eng.submitSuite(g);

            double full_e = 0, half_e = 0, eff = 0;
            unsigned n = 0;
            for (std::size_t i = 0; i < fb.size(); ++i) {
                const RunResult rb = fb[i].get();
                const RunResult rg = fg[i].get();
                full_e += pctDiv(
                    double(rg.ev.scalarAluEligible +
                           rg.ev.scalarSfuEligible +
                           rg.ev.scalarMemEligible +
                           rg.ev.divergentScalarEligible),
                    double(rg.ev.warpInsts));
                half_e += pctDiv(double(rg.ev.halfScalarEligible),
                                 double(rg.ev.warpInsts));
                eff += rg.power.ipcPerWatt() / rb.power.ipcPerWatt();
                ++n;
                runs.push_back(rg);
            }
            t.row({"warp " + std::to_string(warp) +
                       (half ? " +half-scalar" : " full-warp only"),
                   Table::pct(full_e / n), Table::pct(half_e / n),
                   Table::num(eff / n, 3)});
        }
    }
    return makeSuiteResult("warpwidth", "Sec 4.3/6", t,
                           std::move(runs));
}

SuiteResult
buildHalfRegisterAblation(ExperimentEngine &eng, const ArchConfig &base)
{
    Table t("Ablation: half-register vs whole-register compression "
            "(Sec 3.2/4.3)");
    t.row({"bench", "RF energy (half)", "RF energy (whole)",
           "half-scalar exec (half)", "(whole)"});

    ArchConfig half = base;
    half.mode = ArchMode::GScalarFull;
    half.halfRegisterCompression = true;
    ArchConfig whole = half;
    whole.halfRegisterCompression = false;

    auto fh = eng.submitSuite(half);
    auto fw = eng.submitSuite(whole);

    std::vector<RunResult> runs;
    double s_half = 0, s_whole = 0;
    unsigned n = 0;
    for (std::size_t i = 0; i < fh.size(); ++i) {
        const RunResult rh = fh[i].get();
        const RunResult rw = fw[i].get();

        const RfEnergyBreakdown bh = computeRfEnergy(rh.ev);
        // The baseline shadow is identical across the two runs; use it
        // to normalise the *actual* RF activity of each.
        const EnergyParams p;
        auto actual_rf = [&p](const EventCounts &e) {
            return double(e.rfArrayReads + e.rfArrayWrites) *
                       p.eArrayAccessPj +
                   double(e.bvrAccesses) * p.eBvrAccessPj;
        };
        const double denom = bh.baselineJ * 1e12;
        const double eh = actual_rf(rh.ev) / denom;
        const double ew = actual_rf(rw.ev) / denom;
        s_half += eh;
        s_whole += ew;
        ++n;
        t.row({rh.workload, Table::num(eh, 3), Table::num(ew, 3),
               std::to_string(rh.ev.halfScalarExecuted),
               std::to_string(rw.ev.halfScalarExecuted)});
        runs.push_back(rh);
        runs.push_back(rw);
    }
    t.row({"AVG", Table::num(s_half / n, 3), Table::num(s_whole / n, 3),
           "", ""});
    t.row({"paper", "+7% RF area", "+3% RF area", "", ""});
    return makeSuiteResult("half", "Sec 3.2/4.3", t, std::move(runs));
}

SuiteResult
buildScalarBankAblation(ExperimentEngine &eng, const ArchConfig &base)
{
    Table t("Ablation: prior-work scalar RF bank count (Sec 4.1)");
    t.row({"bench", "1 bank IPC", "2 banks", "4 banks", "G-Scalar IPC",
           "1-bank stall cyc/kinst"});

    const std::vector<std::string> benches = {"MM", "MQ", "SR2", "ST"};

    // Fan out all (bench x bank-count) runs plus the G-Scalar
    // reference runs before joining anything.
    std::map<std::string, std::vector<std::shared_future<RunResult>>>
        bankFutures;
    std::map<std::string, std::shared_future<RunResult>> gsFutures;
    for (const auto &name : benches) {
        for (const unsigned banks : {1u, 2u, 4u}) {
            ArchConfig cfg = base;
            cfg.mode = ArchMode::AluScalar;
            cfg.scalarRfBanks = banks;
            bankFutures[name].push_back(eng.submit(name, cfg));
        }
        ArchConfig gcfg = base;
        gcfg.mode = ArchMode::GScalarFull;
        gsFutures[name] = eng.submit(name, gcfg);
    }
    std::vector<RunResult> runs;
    for (const auto &name : benches) {
        std::vector<double> ipc;
        double stalls_per_kinst = 0;
        bool first_bank = true;
        for (auto &f : bankFutures[name]) {
            const RunResult r = f.get();
            ipc.push_back(r.power.ipc);
            if (first_bank) {
                stalls_per_kinst = 1000.0 *
                                   double(r.ev.scalarBankStalls) /
                                   double(r.ev.warpInsts);
                first_bank = false;
            }
            runs.push_back(r);
        }
        const RunResult g = gsFutures[name].get();
        runs.push_back(g);
        t.row({name, Table::num(ipc[0], 3), Table::num(ipc[1], 3),
               Table::num(ipc[2], 3), Table::num(g.power.ipc, 3),
               Table::num(stalls_per_kinst, 1)});
    }
    return makeSuiteResult("banks", "Sec 4.1", t, std::move(runs));
}

} // namespace

const std::vector<Experiment> &
experiments()
{
    // Bench-driver (alphabetical binary name) order: this is exactly
    // the order tests/run_golden.cmake concatenates driver output in,
    // so `gscalar bench` reproduces the golden reference byte for
    // byte.
    static const std::vector<Experiment> registry = {
        {"bankcount", "Sec 4.1", "ablation_bank_count",
         "RF bank count scaling: single scalar bank vs per-bank BVRs",
         buildBankCountAblation},
        {"half", "Sec 3.2/4.3", "ablation_half_register",
         "half-register vs whole-register compression trade-off",
         buildHalfRegisterAblation},
        {"banks", "Sec 4.1", "ablation_scalar_banks",
         "prior-work scalar RF bank count vs G-Scalar",
         buildScalarBankAblation},
        {"occupancy", "Sec 6", "ablation_scalar_occupancy",
         "scalar execution shortening dispatch occupancy",
         buildOccupancyAblation},
        {"smovcompiler", "Sec 3.3", "ablation_smov_compiler",
         "special-move overhead: hardware vs compiler-assisted",
         buildSmovCompilerAblation},
        {"warpwidth", "Sec 4.3/6", "ablation_warp_width",
         "warp width (32 vs 64) vs scalar benefit",
         buildWarpWidthAblation},
        {"fig1", "Fig. 1", "fig01_divergence_mix",
         "divergent and divergent-scalar instruction mix", buildFig1},
        {"fig8", "Fig. 8", "fig08_rf_distribution",
         "RF access distribution for operand values", buildFig8},
        {"fig9", "Fig. 9", "fig09_scalar_eligibility",
         "instructions eligible for scalar execution", buildFig9},
        {"fig10", "Fig. 10", "fig10_warp_size",
         "half-scalar eligible share vs warp size", buildFig10},
        {"fig11", "Fig. 11", "fig11_power_efficiency",
         "normalized power efficiency (IPC/W) and IPC", buildFig11},
        {"fig12", "Fig. 12", "fig12_rf_power",
         "normalized RF dynamic power", buildFig12},
        {"shootout", "Sec 5.2/5.3", "fig_codec_shootout",
         "codec shootout: ratio, RF energy and IPC per codec",
         buildCodecShootout, /*inDefaultRun=*/false},
        {"micro", "Sec 3.2", "micro_codec",
         "software encode/decode micro-benchmark per codec",
         buildMicroCodec, /*inDefaultRun=*/false},
        {"affine", "Sec 6", "stat_affine_opportunity",
         "affine register writes vs scalar ones",
         buildAffineOpportunity},
        {"compiler", "Sec 6", "stat_compiler_scalar",
         "static compiler scalarization vs dynamic detection",
         buildCompilerScalarComparison},
        {"ratio", "Sec 5.3", "stat_compression_ratio",
         "compression ratio: byte-mask vs BDI",
         buildCompressionRatio},
        {"smov", "Sec 3.3", "stat_special_move_overhead",
         "special-move dynamic instruction overhead",
         buildSpecialMoveOverhead},
        {"table3", "Table 3", "table3_codec_cost",
         "hardware cost model (codec area/latency)", buildTable3},
    };
    return registry;
}

const Experiment *
findExperiment(const std::string &name)
{
    for (const Experiment &e : experiments())
        if (name == e.name)
            return &e;
    return nullptr;
}

// ---- legacy string wrappers ----------------------------------------------

std::string
runFig1(const ArchConfig &base)
{
    return buildFig1(defaultEngine(), base).text;
}

std::string
runFig8(const ArchConfig &base)
{
    return buildFig8(defaultEngine(), base).text;
}

std::string
runFig9(const ArchConfig &base)
{
    return buildFig9(defaultEngine(), base).text;
}

std::string
runFig10(const ArchConfig &base)
{
    return buildFig10(defaultEngine(), base).text;
}

std::string
runFig11(const ArchConfig &base)
{
    return buildFig11(defaultEngine(), base).text;
}

std::string
runFig12(const ArchConfig &base)
{
    return buildFig12(defaultEngine(), base).text;
}

std::string
runTable3()
{
    return describeHardwareCost();
}

std::string
runCompressionRatio(const ArchConfig &base)
{
    return buildCompressionRatio(defaultEngine(), base).text;
}

std::string
runSpecialMoveOverhead(const ArchConfig &base)
{
    return buildSpecialMoveOverhead(defaultEngine(), base).text;
}

std::string
runCompilerScalarComparison(const ArchConfig &base)
{
    return buildCompilerScalarComparison(defaultEngine(), base).text;
}

std::string
runSmovCompilerAblation(const ArchConfig &base)
{
    return buildSmovCompilerAblation(defaultEngine(), base).text;
}

std::string
runOccupancyAblation(const ArchConfig &base)
{
    return buildOccupancyAblation(defaultEngine(), base).text;
}

std::string
runAffineOpportunity(const ArchConfig &base)
{
    return buildAffineOpportunity(defaultEngine(), base).text;
}

std::string
runBankCountAblation(const ArchConfig &base)
{
    return buildBankCountAblation(defaultEngine(), base).text;
}

std::string
runWarpWidthAblation(const ArchConfig &base)
{
    return buildWarpWidthAblation(defaultEngine(), base).text;
}

std::string
runHalfRegisterAblation(const ArchConfig &base)
{
    return buildHalfRegisterAblation(defaultEngine(), base).text;
}

std::string
runScalarBankAblation(const ArchConfig &base)
{
    return buildScalarBankAblation(defaultEngine(), base).text;
}

} // namespace gs
