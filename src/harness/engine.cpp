#include "engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/codec_id.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "compress/simd.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "sim/parallel.hpp"

namespace gs
{

// ---------------------------------------------------------------- WorkerPool

WorkerPool::WorkerPool(unsigned jobs)
{
    if (jobs == 0)
        jobs = defaultJobs();
    threads_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
WorkerPool::submit(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        GS_ASSERT(!stop_, "submit() on a stopped worker pool");
        queue_.push_back(std::move(fn));
        peakDepth_ = std::max(peakDepth_, queue_.size());
    }
    cv_.notify_one();
}

std::size_t
WorkerPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

std::size_t
WorkerPool::peakQueueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return peakDepth_;
}

void
WorkerPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

unsigned
WorkerPool::defaultJobs()
{
    if (const char *env = std::getenv("GS_JOBS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return unsigned(v);
        GS_WARN("ignoring GS_JOBS='", env, "' (want a positive integer)");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

// ---------------------------------------------------------- ExperimentEngine

namespace
{

std::string
cacheKey(const std::string &abbr, const ArchConfig &cfg)
{
    std::ostringstream os;
    os << abbr << '#' << std::hex << cfg.fingerprint();
    return os.str();
}

} // namespace

ExperimentEngine::ExperimentEngine(unsigned jobs) : pool_(jobs)
{
    // GS_VERBOSE: emit one timing line per completed run. The lines go
    // through the mutexed obs sink so concurrent workers never
    // interleave fragments.
    const char *v = std::getenv("GS_VERBOSE");
    verbose_ = v && *v && std::string(v) != "0";
}

std::shared_future<RunResult>
ExperimentEngine::submit(const Workload &w, const ArchConfig &cfg)
{
    const std::string key = cacheKey(w.name, cfg);

    std::shared_ptr<std::promise<RunResult>> promise;
    std::shared_future<RunResult> future;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            ++stats_.hits;
            return it->second;
        }
        ++stats_.misses;

        promise = std::make_shared<std::promise<RunResult>>();
        future = promise->get_future().share();
        cache_.emplace(key, future);
    }

    if (degraded()) {
        // Last rung of the degradation ladder: the pool has produced
        // kDegradeThreshold consecutive failures, so run inline on the
        // caller thread — slower, but a suite still completes.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.serialFallbacks;
        }
        healthCounters().serialFallbacks.fetch_add(
            1, std::memory_order_relaxed);
        executeRun(w, cfg, promise);
    } else {
        pool_.submit([this, promise, w, cfg] {
            executeRun(w, cfg, promise);
        });
    }
    return future;
}

RunResult
ExperimentEngine::simulateOnce(const Workload &w, const ArchConfig &cfg)
{
    if (injectFault("engine", FaultKind::Slow))
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (injectFault("engine", FaultKind::Throw))
        throw std::runtime_error("injected engine fault");
    ScopedPhase phase(phases_, "simulate");
    return runWorkload(w, cfg);
}

void
ExperimentEngine::executeRun(
    const Workload &w, const ArchConfig &cfg,
    const std::shared_ptr<std::promise<RunResult>> &promise)
{
    // The persistent cache is consulted on the worker, off the submit
    // path; a hit skips the simulation entirely and returns the stored
    // counters bit-for-bit.
    if (disk_) {
        std::optional<RunResult> r;
        {
            ScopedPhase phase(phases_, "disk-cache-load");
            r = disk_->load(w.name, cfg);
        }
        if (r) {
            {
                std::lock_guard<std::mutex> statsLock(mutex_);
                ++stats_.diskHits;
            }
            if (verbose_)
                noteRun(w.name, cfg, r->wallSeconds, "disk-cache");
            promise->set_value(std::move(*r));
            return;
        }
    }

    auto attempt = [&](std::string *err) -> std::optional<RunResult> {
        try {
            return simulateOnce(w, cfg);
        } catch (const std::exception &e) {
            *err = e.what();
        } catch (...) {
            *err = "unknown exception";
        }
        return std::nullopt;
    };

    std::string err;
    std::optional<RunResult> r = attempt(&err);
    if (!r) {
        {
            std::lock_guard<std::mutex> statsLock(mutex_);
            ++stats_.runRetries;
        }
        healthCounters().runRetries.fetch_add(1,
                                              std::memory_order_relaxed);
        GS_WARN("run ", w.name, " failed (", err, "); retrying once");
        // Injected faults are transient by contract: the retry runs
        // exempt from injection so a single armed fault class is
        // absorbed deterministically. Real faults may well recur.
        FaultInjector::Suppress guard;
        r = attempt(&err);
    }

    if (!r) {
        // Capture per-run instead of poisoning the shared future: the
        // rest of the suite still completes, callers see ok()==false.
        {
            std::lock_guard<std::mutex> statsLock(mutex_);
            ++stats_.runFailures;
        }
        healthCounters().runFailures.fetch_add(1,
                                               std::memory_order_relaxed);
        const unsigned fails =
            consecutiveFailures_.fetch_add(1, std::memory_order_relaxed) +
            1;
        if (fails >= kDegradeThreshold &&
            !degraded_.exchange(true, std::memory_order_relaxed))
            GS_WARN("degrading to serial execution after ", fails,
                    " consecutive run failures");
        GS_WARN("run ", w.name, " failed after retry: ", err);
        RunResult failed;
        failed.workload = w.name;
        failed.mode = cfg.mode;
        failed.error = err;
        promise->set_value(std::move(failed));
        return;
    }
    consecutiveFailures_.store(0, std::memory_order_relaxed);

    bool stored = false;
    if (disk_) {
        ScopedPhase phase(phases_, "disk-cache-store");
        stored = disk_->store(w.name, cfg, *r);
    }
    {
        std::lock_guard<std::mutex> statsLock(mutex_);
        if (stored)
            ++stats_.diskStores;
        wallSumSeconds_ += r->wallSeconds;
        simCycles_ += r->ev.cycles;
        warpInsts_ += r->ev.warpInsts;
    }
    if (verbose_)
        noteRun(w.name, cfg, r->wallSeconds, "simulate");
    promise->set_value(std::move(*r));
}

std::shared_future<RunResult>
ExperimentEngine::submit(const std::string &abbr, const ArchConfig &cfg)
{
    return submit(makeWorkload(abbr), cfg);
}

RunResult
ExperimentEngine::run(const Workload &w, const ArchConfig &cfg)
{
    return submit(w, cfg).get();
}

RunResult
ExperimentEngine::run(const std::string &abbr, const ArchConfig &cfg)
{
    return submit(abbr, cfg).get();
}

std::vector<std::shared_future<RunResult>>
ExperimentEngine::submitSuite(const ArchConfig &cfg)
{
    std::vector<std::shared_future<RunResult>> futures;
    for (const Workload &w : makeSuite())
        futures.push_back(submit(w, cfg));
    return futures;
}

std::vector<RunResult>
ExperimentEngine::runSuite(const ArchConfig &cfg)
{
    std::vector<RunResult> out;
    for (auto &f : submitSuite(cfg))
        out.push_back(f.get());
    return out;
}

CacheStats
ExperimentEngine::cacheStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
ExperimentEngine::noteRun(const std::string &workload,
                          const ArchConfig &cfg, double seconds,
                          const char *how) const
{
    std::ostringstream os;
    os << "run " << workload << " " << archModeName(cfg.mode) << " "
       << Table::num(seconds, 3) << "s (" << how << ")";
    stderrSink().writeLine(os.str());
}

EngineSnapshot
ExperimentEngine::snapshot() const
{
    EngineSnapshot s;
    s.jobs = pool_.jobs();
    s.queueDepth = pool_.queueDepth();
    s.peakQueueDepth = pool_.peakQueueDepth();
    s.degraded = degraded();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        s.cache = stats_;
        s.wallSumSeconds = wallSumSeconds_;
        s.simCycles = simCycles_;
        s.warpInsts = warpInsts_;
    }
    s.phases = phases_.entries();
    return s;
}

void
ExperimentEngine::clearCache()
{
    // Wait for in-flight runs so nobody holds a future we forget about.
    std::vector<std::shared_future<RunResult>> pending;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &[key, future] : cache_)
            pending.push_back(future);
    }
    for (auto &f : pending)
        f.wait();
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
}

void
ExperimentEngine::setDiskCache(std::unique_ptr<DiskRunCache> cache)
{
    disk_ = std::move(cache);
}

std::string
ExperimentEngine::statsSummary() const
{
    const EngineSnapshot s = snapshot();
    std::ostringstream os;
    os << "engine: " << (s.cache.misses - s.cache.diskHits)
       << " simulations (+" << s.cache.hits << " cache hits) on "
       << s.jobs << " worker(s)";
    if (s.peakQueueDepth > 0)
        os << ", peak queue " << s.peakQueueDepth;
    if (disk_)
        os << "; disk cache: " << s.cache.diskHits << " hits, "
           << s.cache.diskStores << " stores (" << disk_->dir() << ")";
    if (s.wallSumSeconds > 0) {
        os << "; " << s.simCycles << " sim-cycles, " << s.warpInsts
           << " warp-insts in " << Table::num(s.wallSumSeconds, 2)
           << "s CPU ("
           << Table::num(double(s.simCycles) / s.wallSumSeconds / 1e6, 1)
           << "M sim-cycles/s, "
           << Table::num(double(s.warpInsts) / s.wallSumSeconds / 1e6, 2)
           << "M warp-insts/s)";
    }
    if (!s.phases.empty()) {
        os << "; phases: ";
        bool first = true;
        for (const PhaseTimers::Entry &e : s.phases) {
            os << (first ? "" : "  ") << e.name << " "
               << Table::num(e.seconds, 2) << "s/" << e.samples;
            first = false;
        }
    }
    if (s.cache.runRetries || s.cache.runFailures ||
        s.cache.serialFallbacks) {
        os << "; reliability: " << s.cache.runRetries << " retries, "
           << s.cache.runFailures << " failures, "
           << s.cache.serialFallbacks << " serial fallbacks";
        if (s.degraded)
            os << " (degraded)";
    }
    return os.str();
}

// -------------------------------------------------------------- global state

namespace
{
std::atomic<unsigned> g_default_jobs{0};
std::atomic<bool> g_default_cache{false};
} // namespace

ExperimentEngine &
defaultEngine()
{
    static ExperimentEngine &engine = []() -> ExperimentEngine & {
        static ExperimentEngine e(g_default_jobs.load());
        // Persistent caching is opt-in: GS_CACHE_DIR in the
        // environment, or the --cache flag (default directory).
        e.setDiskCache(DiskRunCache::fromEnv(g_default_cache.load()));
        return e;
    }();
    return engine;
}

void
setDefaultJobs(unsigned jobs)
{
    g_default_jobs.store(jobs);
}

void
setDefaultCacheEnabled(bool enabled)
{
    g_default_cache.store(enabled);
}

std::optional<unsigned>
parseJobsValue(const std::string &s)
{
    if (s.empty() || s.size() > 4)
        return std::nullopt;
    unsigned v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9')
            return std::nullopt;
        v = v * 10 + unsigned(c - '0');
    }
    if (v == 0 || v > 4096)
        return std::nullopt;
    return v;
}

void
initHarness(int argc, char **argv)
{
    setQuiet(true);
    if (const char *env = std::getenv("GS_JOBS")) {
        if (!parseJobsValue(env))
            GS_FATAL("GS_JOBS='", env,
                     "' is not a valid worker count (want an integer in "
                     "[1, 4096])");
    }
    if (const char *env = std::getenv("GS_SIM_THREADS")) {
        if (!parseSimThreadsValue(env))
            GS_FATAL("GS_SIM_THREADS='", env,
                     "' is not a valid thread count (want an integer in "
                     "[1, 4096])");
    }
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--jobs" || a == "-j") {
            if (i + 1 >= argc)
                GS_FATAL(a, " needs a value");
            const std::optional<unsigned> v = parseJobsValue(argv[++i]);
            if (!v)
                GS_FATAL(a, " wants an integer in [1, 4096], got '",
                         argv[i], "'");
            setDefaultJobs(*v);
        } else if (a == "--sim-threads") {
            if (i + 1 >= argc)
                GS_FATAL(a, " needs a value");
            const std::optional<unsigned> v =
                parseSimThreadsValue(argv[++i]);
            if (!v)
                GS_FATAL(a, " wants an integer in [1, 4096], got '",
                         argv[i], "'");
            setSimThreads(*v);
        } else if (a == "--codec") {
            if (i + 1 >= argc)
                GS_FATAL("--codec needs a value (", codecIdList(), ")");
            const std::optional<CodecId> c = parseCodecId(argv[++i]);
            if (!c)
                GS_FATAL("--codec wants one of ", codecIdList(),
                         ", got '", argv[i], "'");
            setDefaultCodecId(*c);
        } else if (a == "--cache") {
            setDefaultCacheEnabled(true);
        } else if (a == "--fault" || a.rfind("--fault=", 0) == 0) {
            std::string spec;
            if (a == "--fault") {
                if (i + 1 >= argc)
                    GS_FATAL("--fault needs site:kind:rate[:seed]");
                spec = argv[++i];
            } else {
                spec = a.substr(8);
            }
            std::string err;
            if (!faultInjector().configure(spec, &err))
                GS_FATAL("--fault='", spec, "': ", err);
        }
    }
    // Force GS_FAULT / GS_SIMD / GS_CODEC validation now, not at the
    // first injected seam or compressed write-back.
    faultInjector();
    activeSimdLevel();
    defaultCodecId();
}

} // namespace gs
