/**
 * @file
 * Parallel experiment engine: a fixed-size worker pool fanning out
 * (workload x ArchConfig) simulations, plus a memoizing run cache so
 * drivers sharing a configuration (Figs. 1/8/9/10 all consume the one
 * baseline classification run) simulate each benchmark once per
 * process. Results are returned in deterministic suite order
 * regardless of completion order: every simulation owns a private
 * `Gpu`, so a run's counters depend only on (workload, config), never
 * on scheduling.
 */

#ifndef GSCALAR_HARNESS_ENGINE_HPP
#define GSCALAR_HARNESS_ENGINE_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "obs/stats.hpp"
#include "runner.hpp"
#include "store/run_cache.hpp"

namespace gs
{

/**
 * Fixed-size worker pool: a task queue drained by `jobs` std::threads.
 * Tasks are plain closures; ordering across tasks is unspecified, so
 * anything submitted must be independent (each simulation is).
 */
class WorkerPool
{
  public:
    /** @param jobs worker threads; 0 selects defaultJobs(). */
    explicit WorkerPool(unsigned jobs = 0);

    /** Drains the queue, then joins every worker. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Enqueue @p fn for execution on some worker. */
    void submit(std::function<void()> fn);

    /** Number of worker threads. */
    unsigned jobs() const { return unsigned(threads_.size()); }

    /** Tasks currently queued (not yet picked up by a worker). */
    std::size_t queueDepth() const;

    /** Highest queue depth observed since construction. */
    std::size_t peakQueueDepth() const;

    /**
     * Pool size used when none is requested: the GS_JOBS environment
     * variable if set to a positive integer, else
     * std::thread::hardware_concurrency() (min 1).
     */
    static unsigned defaultJobs();

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::size_t peakDepth_ = 0;
    bool stop_ = false;
};

/** Hit/miss counters of the memoizing run cache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0; ///< i.e. tasks actually scheduled
    /** Of the misses, how many were answered by the persistent disk
     *  cache instead of a simulation. */
    std::uint64_t diskHits = 0;
    std::uint64_t diskStores = 0; ///< fresh results persisted to disk
    std::uint64_t runRetries = 0;  ///< runs retried after a failure
    std::uint64_t runFailures = 0; ///< runs failed even after the retry
    /** Runs executed inline on the caller after the pool degraded. */
    std::uint64_t serialFallbacks = 0;
};

/**
 * Point-in-time view of the engine's self-metrics: pool geometry,
 * cache counters, aggregate simulation throughput, and per-phase wall
 * clock. The daemon's `stats` response and the bench stderr summary
 * are both rendered from this.
 */
struct EngineSnapshot
{
    unsigned jobs = 0;
    std::size_t queueDepth = 0;
    std::size_t peakQueueDepth = 0;
    bool degraded = false; ///< pool bypassed after repeated failures
    CacheStats cache;
    double wallSumSeconds = 0; ///< summed per-run simulate wall clock
    std::uint64_t simCycles = 0;
    std::uint64_t warpInsts = 0;
    std::vector<PhaseTimers::Entry> phases;
};

/**
 * Worker pool + memoizing run cache. Simulations are keyed by
 * (workload abbreviation, ArchConfig::fingerprint()); a second request
 * for the same key joins the first run's future instead of
 * re-simulating — including while the first is still in flight.
 *
 * The cache assumes default EnergyParams (every experiment driver uses
 * them); runs needing custom energy parameters should call
 * runWorkload() directly.
 */
class ExperimentEngine
{
  public:
    /** Consecutive run failures before degrading to serial execution. */
    static constexpr unsigned kDegradeThreshold = 3;

    /** @param jobs worker threads; 0 selects WorkerPool::defaultJobs(). */
    explicit ExperimentEngine(unsigned jobs = 0);

    /** Schedule one run (or join the cached one); non-blocking. */
    std::shared_future<RunResult> submit(const Workload &w,
                                         const ArchConfig &cfg);

    /** Schedule by Table 2 abbreviation. */
    std::shared_future<RunResult> submit(const std::string &abbr,
                                         const ArchConfig &cfg);

    /** Blocking convenience: submit and wait. */
    RunResult run(const Workload &w, const ArchConfig &cfg);

    /** Blocking convenience by abbreviation. */
    RunResult run(const std::string &abbr, const ArchConfig &cfg);

    /** Fan out every suite workload under @p cfg; non-blocking. */
    std::vector<std::shared_future<RunResult>>
    submitSuite(const ArchConfig &cfg);

    /**
     * Run the whole suite under @p cfg and return results in Table 2
     * suite order (deterministic regardless of completion order).
     */
    std::vector<RunResult> runSuite(const ArchConfig &cfg);

    /** Cache hit/miss counters so far. */
    CacheStats cacheStats() const;

    /** Self-metrics snapshot (pool, cache, throughput, phases). */
    EngineSnapshot snapshot() const;

    /**
     * Wall-clock accounting per harness phase ("simulate",
     * "disk-cache-load", "disk-cache-store"); workers add to it, the
     * snapshot reports it.
     */
    PhaseTimers &phaseTimers() { return phases_; }

    /** Drop every in-memory cached result (tests use this); the
     *  persistent disk cache, when attached, is left untouched. */
    void clearCache();

    /**
     * Attach a persistent disk cache (store/run_cache.hpp): misses then
     * try the cache before simulating, and fresh results are written
     * back, so runs survive across processes. Pass nullptr to detach.
     * Call before submitting work — the engine does not lock around
     * the pointer swap itself.
     */
    void setDiskCache(std::unique_ptr<DiskRunCache> cache);

    /** Attached disk cache, or nullptr. */
    DiskRunCache *diskCache() const { return disk_.get(); }

    /** Worker thread count. */
    unsigned jobs() const { return pool_.jobs(); }

    /**
     * Whether the engine has degraded to serial execution: after
     * kDegradeThreshold consecutive run failures, new submissions run
     * inline on the caller thread instead of the pool for the rest of
     * the process (the last rung of the degradation ladder — prefer a
     * slow answer over a wedged pool).
     */
    bool degraded() const
    {
        return degraded_.load(std::memory_order_relaxed);
    }

    /**
     * One-line observability report: simulations run, cache hits,
     * aggregate simulated cycles and warp instructions, and the
     * throughput achieved (sim-cycles/sec and warp-insts/sec of CPU
     * time spent simulating). Harness binaries print this to stderr so
     * stdout tables stay byte-identical across -j levels.
     */
    std::string statsSummary() const;

  private:
    /** Emit one GS_VERBOSE timing line through the mutexed obs sink. */
    void noteRun(const std::string &workload, const ArchConfig &cfg,
                 double seconds, const char *how) const;

    /**
     * The whole lifecycle of one scheduled run: disk-cache probe,
     * simulation with retry-once (the retry under a fault-injection
     * Suppress guard — injected faults are transient by contract),
     * error capture into the RunResult, and write-back. Never lets an
     * exception escape into the promise: one bad run must not poison
     * the suite.
     */
    void executeRun(const Workload &w, const ArchConfig &cfg,
                    const std::shared_ptr<std::promise<RunResult>> &promise);

    /** One simulation attempt, with the engine fault hooks applied. */
    RunResult simulateOnce(const Workload &w, const ArchConfig &cfg);

    WorkerPool pool_;
    std::unique_ptr<DiskRunCache> disk_;
    std::atomic<unsigned> consecutiveFailures_{0};
    std::atomic<bool> degraded_{false};

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_future<RunResult>> cache_;
    CacheStats stats_;
    double wallSumSeconds_ = 0; ///< summed per-run wall clock
    std::uint64_t simCycles_ = 0;
    std::uint64_t warpInsts_ = 0;
    PhaseTimers phases_;
    bool verbose_ = false; ///< GS_VERBOSE: per-run timing lines
};

/**
 * Process-wide engine shared by every experiment driver, so separate
 * figures reuse each other's runs (e.g. Figs. 1/8/9/10 share the one
 * baseline classification sweep).
 */
ExperimentEngine &defaultEngine();

/**
 * Set the worker count used when defaultEngine() is first constructed.
 * Call before any driver runs (harness mains do this while parsing
 * --jobs/-j); ignored once the engine exists.
 */
void setDefaultJobs(unsigned jobs);

/**
 * Make defaultEngine() attach a persistent disk cache at its default
 * directory even when GS_CACHE_DIR is unset (the --cache flag).
 * Ignored once the engine exists.
 */
void setDefaultCacheEnabled(bool enabled);

/**
 * Strict positive-integer parse for --jobs/-j/GS_JOBS values: the whole
 * string must be digits and the value in [1, 4096]. Empty optional on
 * anything else — callers reject with a clear error instead of
 * silently falling back to a default.
 */
std::optional<unsigned> parseJobsValue(const std::string &s);

/**
 * Standard harness-binary prologue: silence warn()/inform(), validate
 * GS_JOBS / GS_SIM_THREADS / GS_SIMD / GS_FAULT / GS_CODEC, and honour
 * trailing `--jobs N` / `-j N` (worker-pool size), `--sim-threads N`
 * (intra-run SM threads; sim/parallel.hpp), `--codec NAME` (RF
 * compression codec; common/codec_id.hpp), `--cache` (persistent run
 * cache at $GS_CACHE_DIR or the default cache directory) and
 * `--fault SPEC` flags. Malformed values are fatal with a clear
 * message, never silently defaulted.
 */
void initHarness(int argc, char **argv);

} // namespace gs

#endif // GSCALAR_HARNESS_ENGINE_HPP
