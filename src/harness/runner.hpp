/**
 * @file
 * Experiment runner: executes one workload under one architecture
 * configuration and returns its event counters and power report. All
 * entry points funnel through one RunRequest struct — the same struct
 * the daemon protocol serializes — so local and remote runs describe
 * work identically.
 */

#ifndef GSCALAR_HARNESS_RUNNER_HPP
#define GSCALAR_HARNESS_RUNNER_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "common/config.hpp"
#include "common/events.hpp"
#include "power/energy_model.hpp"
#include "workloads/workload.hpp"

namespace gs
{

class Tracer;

/**
 * Everything needed to run one workload under one configuration. The
 * serve layer serializes the (workload, cfg) pair over the wire; the
 * tracer and seed override are local-only extras.
 */
struct RunRequest
{
    std::string workload; ///< Table 2 abbreviation (e.g. "BP")
    ArchConfig cfg;

    /**
     * Admission priority, 0 (shed first) .. 2 (shed last). Serialized
     * on the wire; the daemon's bounded per-priority queues shed the
     * lowest band first under load (serve/server.hpp).
     */
    std::uint32_t priority = 1;

    /** Extra tracer attached for this run (not serialized). */
    Tracer *tracer = nullptr;

    /** When set, overrides cfg.seed for input generation. */
    std::optional<std::uint64_t> seed;

    /** Energy parameters for the power report (defaults are §5's). */
    EnergyParams energy;
};

/** Result of one workload x configuration run. */
struct RunResult
{
    std::string workload;
    ArchMode mode = ArchMode::Baseline;
    EventCounts ev;
    PowerReport power;

    /** Host wall-clock seconds spent simulating (setup + launches). */
    double wallSeconds = 0;

    /**
     * Empty on success. A run that still failed after the engine's
     * retry carries the exception text here instead of aborting the
     * whole suite; counters and power are default-initialized then.
     */
    std::string error;

    /** Whether the run produced usable counters. */
    bool ok() const { return error.empty(); }

    /** Simulator throughput: simulated cycles per host second. */
    double simCyclesPerSec() const
    {
        return wallSeconds > 0 ? double(ev.cycles) / wallSeconds : 0;
    }

    /** Simulator throughput: warp instructions per host second. */
    double warpInstsPerSec() const
    {
        return wallSeconds > 0 ? double(ev.warpInsts) / wallSeconds : 0;
    }
};

/**
 * Run the workload described by @p req (input setup + every launch,
 * sequentially). A process-wide GS_TRACE tracer, when configured, is
 * attached in addition to req.tracer.
 */
RunResult runWorkload(const RunRequest &req);

/** Convenience wrapper building a RunRequest from @p w and @p cfg. */
RunResult runWorkload(const Workload &w, const ArchConfig &cfg,
                      const EnergyParams &ep = {});

/** Convenience overload resolving the workload by Table 2 name. */
RunResult runWorkload(const std::string &abbr, const ArchConfig &cfg,
                      const EnergyParams &ep = {});

} // namespace gs

#endif // GSCALAR_HARNESS_RUNNER_HPP
