/**
 * @file
 * Experiment runner: executes one workload under one architecture
 * configuration and returns its event counters and power report.
 */

#ifndef GSCALAR_HARNESS_RUNNER_HPP
#define GSCALAR_HARNESS_RUNNER_HPP

#include <string>

#include "common/config.hpp"
#include "common/events.hpp"
#include "power/energy_model.hpp"
#include "workloads/workload.hpp"

namespace gs
{

/** Result of one workload x configuration run. */
struct RunResult
{
    std::string workload;
    ArchMode mode = ArchMode::Baseline;
    EventCounts ev;
    PowerReport power;

    /** Host wall-clock seconds spent simulating (setup + launches). */
    double wallSeconds = 0;

    /** Simulator throughput: simulated cycles per host second. */
    double simCyclesPerSec() const
    {
        return wallSeconds > 0 ? double(ev.cycles) / wallSeconds : 0;
    }

    /** Simulator throughput: warp instructions per host second. */
    double warpInstsPerSec() const
    {
        return wallSeconds > 0 ? double(ev.warpInsts) / wallSeconds : 0;
    }
};

/** Run @p w under @p cfg (input setup + every launch, sequentially). */
RunResult runWorkload(const Workload &w, const ArchConfig &cfg,
                      const EnergyParams &ep = {});

/** Convenience overload resolving the workload by Table 2 name. */
RunResult runWorkload(const std::string &abbr, const ArchConfig &cfg,
                      const EnergyParams &ep = {});

} // namespace gs

#endif // GSCALAR_HARNESS_RUNNER_HPP
