#include "metrics.hpp"

namespace gs
{

namespace
{

MetricDef
make(const char *name, const char *unit, const char *doc,
     std::uint64_t EventCounts::*p)
{
    MetricDef d{name, unit, doc};
    d.u64 = p;
    return d;
}

MetricDef
make(const char *name, const char *unit, const char *doc,
     double EventCounts::*p)
{
    MetricDef d{name, unit, doc};
    d.f64 = p;
    return d;
}

} // namespace

const std::array<MetricDef, kEventCountFields> &
eventMetrics()
{
    // Expanded from the X-macro, so the registry tracks EventCounts by
    // construction; the overloaded make() picks u64 vs f64 per field.
    static const std::array<MetricDef, kEventCountFields> registry = {
#define GS_EVENT_METRIC(member, name, unit, doc)                             \
    make(name, unit, doc, &EventCounts::member),
        GS_EVENT_COUNT_FIELDS(GS_EVENT_METRIC)
#undef GS_EVENT_METRIC
    };
    return registry;
}

const MetricDef *
findEventMetric(const std::string &name)
{
    for (const MetricDef &m : eventMetrics())
        if (name == m.name)
            return &m;
    return nullptr;
}

const std::array<DerivedMetricDef, 3> &
derivedEventMetrics()
{
    static const std::array<DerivedMetricDef, 3> registry = {{
        {"ipc", "insts/cycle", "warp instructions per cycle",
         [](const EventCounts &e) { return e.ipc(); }},
        {"compression_ratio", "ratio",
         "raw / stored register write bytes (ours)",
         [](const EventCounts &e) { return e.compressionRatio(); }},
        {"bdi_compression_ratio", "ratio",
         "raw / stored register write bytes (shadow BDI)",
         [](const EventCounts &e) { return e.bdiCompressionRatio(); }},
    }};
    return registry;
}

const std::array<PowerMetricDef, 9> &
powerMetrics()
{
    static const std::array<PowerMetricDef, 9> registry = {{
        {"power_frontend_w", "W", "fetch + decode + schedule",
         &PowerReport::frontendW, nullptr},
        {"power_execute_w", "W", "ALU + SFU + MEM lanes",
         &PowerReport::executeW, nullptr},
        {"power_sfu_w", "W", "SFU share of execute (informational)",
         &PowerReport::sfuW, nullptr},
        {"power_regfile_w", "W", "arrays + BVR + scalar RF + crossbar",
         &PowerReport::regFileW, nullptr},
        {"power_codec_w", "W", "compressor/decompressor dynamic + static",
         &PowerReport::codecW, nullptr},
        {"power_memory_w", "W", "L1 + L2 + DRAM + shared",
         &PowerReport::memoryW, nullptr},
        {"power_static_w", "W", "static / background power",
         &PowerReport::staticW, nullptr},
        {"power_total_w", "W", "total chip power", &PowerReport::totalW,
         nullptr},
        {"ipc_per_watt", "insts/cycle/W",
         "the paper's efficiency metric (Fig. 11)", nullptr,
         [](const PowerReport &p) { return p.ipcPerWatt(); }},
    }};
    return registry;
}

const std::array<HealthMetricDef, kHealthCountFields> &
healthMetrics()
{
    // Expanded from GS_HEALTH_COUNT_FIELDS, so the registry tracks
    // HealthCounts by construction (static_assert in health.hpp).
    static const std::array<HealthMetricDef, kHealthCountFields>
        registry = {{
#define GS_HEALTH_METRIC(member, name, unit, doc)                            \
    {name, unit, doc, &HealthCounts::member},
            GS_HEALTH_COUNT_FIELDS(GS_HEALTH_METRIC)
#undef GS_HEALTH_METRIC
        }};
    return registry;
}

} // namespace gs
