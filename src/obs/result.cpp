#include "result.hpp"

#include <cstdio>
#include <sstream>

#include "common/arch_mode.hpp"
#include "metrics.hpp"

namespace gs
{

std::optional<ResultFormat>
parseResultFormat(const std::string &s)
{
    if (s == "text")
        return ResultFormat::Text;
    if (s == "json")
        return ResultFormat::Json;
    if (s == "csv")
        return ResultFormat::Csv;
    return std::nullopt;
}

const char *
resultFormatName(ResultFormat f)
{
    switch (f) {
      case ResultFormat::Text: return "text";
      case ResultFormat::Json: return "json";
      case ResultFormat::Csv: return "csv";
    }
    return "?";
}

SuiteResult
makeSuiteResult(std::string experiment, std::string tag, const Table &t,
                std::vector<RunResult> runs)
{
    SuiteResult r;
    r.experiment = std::move(experiment);
    r.tag = std::move(tag);
    r.title = t.title();
    r.text = t.str();
    const auto &rows = t.rows();
    if (!rows.empty()) {
        r.columns = rows.front();
        r.rows.assign(rows.begin() + 1, rows.end());
    }
    r.runs = std::move(runs);
    return r;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

/** Counter value as JSON: integers stay integral, doubles stream. */
void
appendMetricValue(std::ostream &os, const MetricDef &m,
                  const EventCounts &ev)
{
    if (m.isFloat())
        os << m.value(ev);
    else
        os << ev.*(m.u64);
}

void
appendStringArray(std::ostream &os, const std::vector<std::string> &v)
{
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i)
        os << (i ? ", " : "") << "\"" << jsonEscape(v[i]) << "\"";
    os << "]";
}

/** Nested run object of the suite document (2-level indent). */
void
appendRunObject(std::ostream &os, const RunResult &r,
                const std::string &pad)
{
    os << pad << "{\n";
    os << pad << "  \"workload\": \"" << jsonEscape(r.workload)
       << "\",\n";
    os << pad << "  \"mode\": \"" << archModeName(r.mode) << "\",\n";
    os << pad << "  \"wall_seconds\": " << r.wallSeconds << ",\n";
    os << pad << "  \"counters\": {";
    bool first = true;
    for (const MetricDef &m : eventMetrics()) {
        os << (first ? "" : ",") << "\n" << pad << "    \"" << m.name
           << "\": ";
        appendMetricValue(os, m, r.ev);
        first = false;
    }
    os << "\n" << pad << "  },\n";
    os << pad << "  \"derived\": {";
    first = true;
    for (const DerivedMetricDef &m : derivedEventMetrics()) {
        os << (first ? "" : ",") << "\n" << pad << "    \"" << m.name
           << "\": " << m.value(r.ev);
        first = false;
    }
    os << "\n" << pad << "  },\n";
    os << pad << "  \"power\": {";
    first = true;
    for (const PowerMetricDef &m : powerMetrics()) {
        os << (first ? "" : ",") << "\n" << pad << "    \"" << m.name
           << "\": " << m.value(r.power);
        first = false;
    }
    os << "\n" << pad << "  }\n";
    os << pad << "}";
}

} // namespace

void
TextSink::emit(const SuiteResult &r)
{
    // Byte-identical to the historical driver output: the rendered
    // table followed by one blank separator line.
    os_ << r.text << "\n";
}

void
JsonSink::emit(const SuiteResult &r)
{
    os_ << "{\n";
    os_ << "  \"schema\": \"gscalar.bench.v1\",\n";
    os_ << "  \"experiment\": \"" << jsonEscape(r.experiment) << "\",\n";
    os_ << "  \"tag\": \"" << jsonEscape(r.tag) << "\",\n";
    os_ << "  \"title\": \"" << jsonEscape(r.title) << "\",\n";
    os_ << "  \"columns\": ";
    appendStringArray(os_, r.columns);
    os_ << ",\n";
    os_ << "  \"rows\": [";
    for (std::size_t i = 0; i < r.rows.size(); ++i) {
        os_ << (i ? "," : "") << "\n    ";
        appendStringArray(os_, r.rows[i]);
    }
    os_ << (r.rows.empty() ? "" : "\n  ") << "],\n";
    os_ << "  \"runs\": [";
    for (std::size_t i = 0; i < r.runs.size(); ++i) {
        os_ << (i ? "," : "") << "\n";
        appendRunObject(os_, r.runs[i], "    ");
    }
    os_ << (r.runs.empty() ? "" : "\n  ") << "]\n";
    os_ << "}\n";
}

void
CsvSink::emit(const SuiteResult &r)
{
    os_ << "# " << r.experiment << " (" << r.tag << "): " << r.title
        << "\n";
    os_ << runCsvHeader() << "\n";
    for (const RunResult &run : r.runs)
        os_ << runCsvRow(run) << "\n";
}

std::unique_ptr<ResultSink>
makeResultSink(ResultFormat f, std::ostream &os)
{
    switch (f) {
      case ResultFormat::Text: return std::make_unique<TextSink>(os);
      case ResultFormat::Json: return std::make_unique<JsonSink>(os);
      case ResultFormat::Csv: return std::make_unique<CsvSink>(os);
    }
    return nullptr;
}

std::string
runCsvHeader()
{
    std::ostringstream os;
    os << "workload,mode";
    for (const MetricDef &m : eventMetrics())
        os << "," << m.name;
    for (const DerivedMetricDef &m : derivedEventMetrics())
        os << "," << m.name;
    for (const PowerMetricDef &m : powerMetrics())
        os << "," << m.name;
    return os.str();
}

std::string
runCsvRow(const RunResult &r)
{
    std::ostringstream os;
    os << r.workload << "," << archModeName(r.mode);
    for (const MetricDef &m : eventMetrics()) {
        os << ",";
        appendMetricValue(os, m, r.ev);
    }
    for (const DerivedMetricDef &m : derivedEventMetrics())
        os << "," << m.value(r.ev);
    for (const PowerMetricDef &m : powerMetrics())
        os << "," << m.value(r.power);
    return os.str();
}

std::string
runResultJson(const RunResult &r)
{
    std::ostringstream os;
    os << "{\n  \"workload\": \"" << jsonEscape(r.workload)
       << "\",\n  \"mode\": \"" << archModeName(r.mode) << "\"";
    for (const MetricDef &m : eventMetrics()) {
        os << ",\n  \"" << m.name << "\": ";
        appendMetricValue(os, m, r.ev);
    }
    for (const DerivedMetricDef &m : derivedEventMetrics())
        os << ",\n  \"" << m.name << "\": " << m.value(r.ev);
    for (const PowerMetricDef &m : powerMetrics())
        os << ",\n  \"" << m.name << "\": " << m.value(r.power);
    os << ",\n  \"wall_seconds\": " << r.wallSeconds;
    os << ",\n  \"sim_cycles_per_sec\": " << r.simCyclesPerSec();
    os << ",\n  \"warp_insts_per_sec\": " << r.warpInstsPerSec();
    os << "\n}\n";
    return os.str();
}

} // namespace gs
