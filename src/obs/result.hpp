/**
 * @file
 * Structured result model of the observability layer. Every experiment
 * driver produces a SuiteResult — the rendered ASCII table (golden,
 * byte-identical to docs/bench_reference_output.txt), the structured
 * table cells behind it, and the underlying per-run counters — and
 * hands it to a pluggable ResultSink. Three sinks ship: human text,
 * JSON (one document per experiment, stable key order) and CSV,
 * selected by --format= on `gscalar bench` and every bench driver.
 */

#ifndef GSCALAR_OBS_RESULT_HPP
#define GSCALAR_OBS_RESULT_HPP

#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness/runner.hpp"

namespace gs
{

/** Output format of a result stream. */
enum class ResultFormat
{
    Text, ///< rendered ASCII tables (the golden bench output)
    Json, ///< one JSON document per experiment, stable key order
    Csv,  ///< per-run counter rows (one header per experiment)
};

/** Parse a --format= value; empty optional on unknown names. */
std::optional<ResultFormat> parseResultFormat(const std::string &s);

/** Canonical name of a format ("text", "json", "csv"). */
const char *resultFormatName(ResultFormat f);

/** One experiment's complete output. */
struct SuiteResult
{
    std::string experiment; ///< registry name (e.g. "fig8")
    std::string tag;        ///< paper artefact tag (e.g. "Fig. 8")
    std::string title;      ///< table title
    std::vector<std::string> columns;           ///< header cells
    std::vector<std::vector<std::string>> rows; ///< body cells
    std::vector<RunResult> runs; ///< simulations behind the table
    std::string text;            ///< rendered ASCII table
};

/**
 * Build a SuiteResult from a rendered Table plus the runs behind it;
 * text/columns/rows are captured so every emitter agrees with the
 * golden rendering.
 */
SuiteResult makeSuiteResult(std::string experiment, std::string tag,
                            const Table &t,
                            std::vector<RunResult> runs = {});

/** Consumer of experiment results. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;
    virtual void emit(const SuiteResult &r) = 0;
};

/** Human text: r.text followed by a blank separator line. */
class TextSink : public ResultSink
{
  public:
    explicit TextSink(std::ostream &os) : os_(os) {}
    void emit(const SuiteResult &r) override;

  private:
    std::ostream &os_;
};

/** One JSON document per emit(), keys in a fixed documented order. */
class JsonSink : public ResultSink
{
  public:
    explicit JsonSink(std::ostream &os) : os_(os) {}
    void emit(const SuiteResult &r) override;

  private:
    std::ostream &os_;
};

/** Per-run counter rows as CSV, one commented header per experiment. */
class CsvSink : public ResultSink
{
  public:
    explicit CsvSink(std::ostream &os) : os_(os) {}
    void emit(const SuiteResult &r) override;

  private:
    std::ostream &os_;
};

/** Sink for @p f writing to @p os. */
std::unique_ptr<ResultSink> makeResultSink(ResultFormat f,
                                           std::ostream &os);

// ---- low-level export helpers (harness/report.hpp delegates here) ----

/** JSON string escaping (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/** CSV header: workload, mode, every counter, derived, power metric. */
std::string runCsvHeader();

/** One CSV row matching runCsvHeader(). */
std::string runCsvRow(const RunResult &r);

/**
 * One run as a flat JSON object (registry order: counters, derived
 * metrics, power components, throughput).
 */
std::string runResultJson(const RunResult &r);

} // namespace gs

#endif // GSCALAR_OBS_RESULT_HPP
