/**
 * @file
 * Sampling JSONL tracer: streams issue and CTA lifecycle events as one
 * JSON object per line, enabled via GS_TRACE=path[:1/N]. Sampling
 * applies to issue events only (every Nth is kept, counted with an
 * atomic so concurrent runs sample coherently); CTA and run-lifecycle
 * events are always recorded. Designed for offline analysis with
 * standard JSONL tooling rather than human reading — use the text
 * tracer (`gscalar trace`) for that.
 */

#ifndef GSCALAR_OBS_JSONL_TRACER_HPP
#define GSCALAR_OBS_JSONL_TRACER_HPP

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "sim/trace.hpp"

namespace gs
{

/** Parsed GS_TRACE specification. */
struct TraceSpec
{
    std::string path;          ///< output file (JSON Lines)
    std::uint64_t sampleN = 1; ///< keep every Nth issue event
};

/**
 * Parse "path" or "path:1/N" (N >= 1). Empty optional on malformed
 * specs such as a zero sample divisor.
 */
std::optional<TraceSpec> parseTraceSpec(const std::string &spec);

/** Tracer writing sampled events as JSON Lines. Thread-safe. */
class JsonlTracer : public Tracer
{
  public:
    /** Stream to @p os (owned elsewhere), keeping every Nth issue. */
    JsonlTracer(std::ostream &os, std::uint64_t sampleN = 1);

    void onIssue(const IssueEvent &e) override;
    void onCtaLaunch(unsigned sm_id, unsigned cta_id,
                     Cycle now) override;
    void onCtaRetire(unsigned sm_id, unsigned cta_id,
                     Cycle now) override;
    void onRunBegin(const std::string &workload, ArchMode mode) override;
    void onRunEnd(const std::string &workload) override;

    /** Events written (post-sampling). */
    std::uint64_t linesWritten() const { return lines_.load(); }

  private:
    void writeLine(const std::string &line);

    std::ostream &os_;
    std::uint64_t sampleN_;
    std::atomic<std::uint64_t> issueSeen_{0};
    std::atomic<std::uint64_t> lines_{0};
    std::mutex mutex_;
};

/**
 * Process-wide tracer configured from GS_TRACE, or nullptr when the
 * variable is unset. Created (and its file opened) on first use;
 * malformed specs or unopenable paths warn once and disable tracing.
 * Runners attach this tracer to every simulation they launch.
 */
JsonlTracer *envTracer();

} // namespace gs

#endif // GSCALAR_OBS_JSONL_TRACER_HPP
