#include "jsonl_tracer.hpp"

#include <cstdlib>
#include <sstream>

#include "common/log.hpp"
#include "result.hpp"

namespace gs
{

std::optional<TraceSpec>
parseTraceSpec(const std::string &spec)
{
    if (spec.empty())
        return std::nullopt;
    TraceSpec out;
    const auto colon = spec.rfind(":1/");
    if (colon == std::string::npos) {
        out.path = spec;
        return out;
    }
    out.path = spec.substr(0, colon);
    const std::string divisor = spec.substr(colon + 3);
    if (out.path.empty() || divisor.empty() ||
        divisor.find_first_not_of("0123456789") != std::string::npos)
        return std::nullopt;
    out.sampleN = std::strtoull(divisor.c_str(), nullptr, 10);
    if (out.sampleN == 0)
        return std::nullopt;
    return out;
}

JsonlTracer::JsonlTracer(std::ostream &os, std::uint64_t sampleN)
    : os_(os), sampleN_(sampleN ? sampleN : 1)
{}

void
JsonlTracer::writeLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mutex_);
    os_ << line << "\n";
    lines_.fetch_add(1, std::memory_order_relaxed);
}

void
JsonlTracer::onIssue(const IssueEvent &e)
{
    const auto seq = issueSeen_.fetch_add(1, std::memory_order_relaxed);
    if (seq % sampleN_ != 0)
        return;
    std::ostringstream os;
    os << "{\"ev\": \"issue\", \"sm\": " << e.smId
       << ", \"warp\": " << e.warp << ", \"cycle\": " << e.cycle
       << ", \"pc\": " << e.pc << ", \"op\": \""
       << (e.inst ? opcodeName(e.inst->op) : "?") << "\", \"mask\": "
       << (e.mask & 0xffffffffull) << ", \"tier\": \""
       << tierName(e.tier) << "\", \"scalar\": "
       << (e.execScalar ? "true" : "false") << ", \"smov\": "
       << (e.isSpecialMove ? "true" : "false") << "}";
    writeLine(os.str());
}

void
JsonlTracer::onCtaLaunch(unsigned sm_id, unsigned cta_id, Cycle now)
{
    std::ostringstream os;
    os << "{\"ev\": \"cta_launch\", \"sm\": " << sm_id
       << ", \"cta\": " << cta_id << ", \"cycle\": " << now << "}";
    writeLine(os.str());
}

void
JsonlTracer::onCtaRetire(unsigned sm_id, unsigned cta_id, Cycle now)
{
    std::ostringstream os;
    os << "{\"ev\": \"cta_retire\", \"sm\": " << sm_id
       << ", \"cta\": " << cta_id << ", \"cycle\": " << now << "}";
    writeLine(os.str());
}

void
JsonlTracer::onRunBegin(const std::string &workload, ArchMode mode)
{
    std::ostringstream os;
    os << "{\"ev\": \"run_begin\", \"workload\": \""
       << jsonEscape(workload) << "\", \"mode\": \""
       << archModeName(mode) << "\"}";
    writeLine(os.str());
}

void
JsonlTracer::onRunEnd(const std::string &workload)
{
    std::ostringstream os;
    os << "{\"ev\": \"run_end\", \"workload\": \""
       << jsonEscape(workload) << "\"}";
    writeLine(os.str());
}

namespace
{

/** File-backed singleton behind envTracer(). */
struct EnvTracerState
{
    std::ofstream file;
    std::unique_ptr<JsonlTracer> tracer;

    EnvTracerState()
    {
        const char *spec = std::getenv("GS_TRACE");
        if (!spec || !*spec)
            return;
        const auto parsed = parseTraceSpec(spec);
        if (!parsed) {
            GS_WARN("ignoring malformed GS_TRACE spec '", spec,
                    "' (expected path or path:1/N)");
            return;
        }
        file.open(parsed->path, std::ios::out | std::ios::trunc);
        if (!file) {
            GS_WARN("GS_TRACE: cannot open '", parsed->path,
                    "' for writing; tracing disabled");
            return;
        }
        tracer =
            std::make_unique<JsonlTracer>(file, parsed->sampleN);
    }
};

} // namespace

JsonlTracer *
envTracer()
{
    static EnvTracerState state;
    return state.tracer.get();
}

} // namespace gs
