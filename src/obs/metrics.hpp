/**
 * @file
 * Named-metric registry in the gem5 stats idiom: every EventCounts
 * field is registered once with a stable snake_case name, a unit and a
 * doc string, plus the derived ratios the reports print. The report
 * layer (CSV/JSON emitters) and any future regression dashboard
 * enumerate the registry instead of hand-listing struct fields, so a
 * counter added to EventCounts is exported everywhere by construction
 * (a static_assert in events.hpp enforces registration).
 */

#ifndef GSCALAR_OBS_METRICS_HPP
#define GSCALAR_OBS_METRICS_HPP

#include <array>
#include <cstdint>
#include <string>

#include "common/events.hpp"
#include "fault/health.hpp"
#include "power/energy_model.hpp"

namespace gs
{

/** One registered counter of EventCounts. */
struct MetricDef
{
    const char *name; ///< stable snake_case export name
    const char *unit; ///< e.g. "cycles", "insts", "bytes"
    const char *doc;  ///< one-line description

    /** Exactly one of the two member pointers is set. */
    std::uint64_t EventCounts::*u64 = nullptr;
    double EventCounts::*f64 = nullptr;

    /** Field value of @p ev as a double (u64 fields are converted). */
    double
    value(const EventCounts &ev) const
    {
        return u64 ? double(ev.*u64) : ev.*f64;
    }

    /** Whether the underlying field is floating point. */
    bool isFloat() const { return f64 != nullptr; }
};

/**
 * The full EventCounts registry, in struct declaration order. Exactly
 * kEventCountFields entries; names are unique (tested).
 */
const std::array<MetricDef, kEventCountFields> &eventMetrics();

/** Registry entry by name, or nullptr. */
const MetricDef *findEventMetric(const std::string &name);

/** A metric computed from counters rather than stored in them. */
struct DerivedMetricDef
{
    const char *name;
    const char *unit;
    const char *doc;
    double (*value)(const EventCounts &ev);
};

/** Derived ratios exported after the raw counters (ipc, ...). */
const std::array<DerivedMetricDef, 3> &derivedEventMetrics();

/** One registered component of a PowerReport. */
struct PowerMetricDef
{
    const char *name;
    const char *unit;
    const char *doc;
    double PowerReport::*field = nullptr;  ///< null for derived entries
    double (*derived)(const PowerReport &) = nullptr;

    double
    value(const PowerReport &p) const
    {
        return field ? p.*field : derived(p);
    }
};

/** Power components in report order (8 watt fields + ipc_per_watt). */
const std::array<PowerMetricDef, 9> &powerMetrics();

/** One registered reliability counter of fault/health.hpp. */
struct HealthMetricDef
{
    const char *name;
    const char *unit;
    const char *doc;
    std::uint64_t HealthCounts::*field = nullptr;

    std::uint64_t
    value(const HealthCounts &c) const
    {
        return c.*field;
    }
};

/**
 * The full reliability-counter registry, in HealthCounts declaration
 * order — exactly kHealthCountFields entries, so every retry/timeout/
 * quarantine counter the hardened request path bumps is enumerable
 * (the registry completeness test covers it like eventMetrics()).
 */
const std::array<HealthMetricDef, kHealthCountFields> &healthMetrics();

} // namespace gs

#endif // GSCALAR_OBS_METRICS_HPP
