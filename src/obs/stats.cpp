#include "stats.hpp"

#include <algorithm>
#include <iostream>
#include <limits>
#include <sstream>

namespace gs
{

void
PhaseTimers::add(const std::string &name, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Entry &e : entries_) {
        if (e.name == name) {
            e.seconds += seconds;
            ++e.samples;
            return;
        }
    }
    entries_.push_back({name, seconds, 1});
}

std::vector<PhaseTimers::Entry>
PhaseTimers::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_;
}

std::string
PhaseTimers::summary() const
{
    const auto snap = entries();
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(2);
    bool first = true;
    for (const Entry &e : snap) {
        os << (first ? "" : "  ") << e.name << " " << e.seconds << "s/"
           << e.samples;
        first = false;
    }
    return os.str();
}

namespace
{

constexpr std::array<double, LatencyHistogram::kBuckets - 1>
    kLatencyBounds = {0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0};

} // namespace

double
LatencyHistogram::bucketBound(std::size_t i)
{
    return i < kLatencyBounds.size()
               ? kLatencyBounds[i]
               : std::numeric_limits<double>::infinity();
}

std::string
LatencyHistogram::bucketLabel(std::size_t i)
{
    std::ostringstream os;
    if (i < kLatencyBounds.size())
        os << "<" << kLatencyBounds[i] << "s";
    else
        os << ">=" << kLatencyBounds.back() << "s";
    return os.str();
}

void
LatencyHistogram::record(double seconds)
{
    std::size_t i = 0;
    while (i < kLatencyBounds.size() && seconds >= kLatencyBounds[i])
        ++i;
    ++buckets_[i];
    ++count_;
    totalSeconds_ += seconds;
    maxSeconds_ = std::max(maxSeconds_, seconds);
}

void
LatencyHistogram::restore(
    const std::array<std::uint64_t, kBuckets> &buckets,
    std::uint64_t count, double totalSeconds, double maxSeconds)
{
    buckets_ = buckets;
    count_ = count;
    totalSeconds_ = totalSeconds;
    maxSeconds_ = maxSeconds;
}

std::string
LatencyHistogram::summary() const
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "n=" << count_ << " mean=" << meanSeconds()
       << "s max=" << maxSeconds_ << "s";
    return os.str();
}

void
LineSink::writeLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mutex_);
    os_ << line << "\n";
    os_.flush();
}

LineSink &
stderrSink()
{
    static LineSink sink(std::cerr);
    return sink;
}

} // namespace gs
