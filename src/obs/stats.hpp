/**
 * @file
 * Harness self-metrics: wall-clock phase timers, a fixed-bucket latency
 * histogram, and a mutexed line sink so concurrent worker threads never
 * interleave their progress lines. These instruments observe the
 * harness itself (simulate time, cache probes, daemon request
 * latencies) as opposed to the simulated GPU, which is covered by the
 * EventCounts registry in obs/metrics.hpp.
 */

#ifndef GSCALAR_OBS_STATS_HPP
#define GSCALAR_OBS_STATS_HPP

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace gs
{

/**
 * Accumulates wall-clock seconds per named phase. Thread-safe; workers
 * time their phases with ScopedPhase and the totals are reported on
 * bench stderr alongside the engine cache statistics.
 */
class PhaseTimers
{
  public:
    /** Add @p seconds to phase @p name (created on first use). */
    void add(const std::string &name, double seconds);

    /** Snapshot of (phase, total seconds, samples), insertion order. */
    struct Entry
    {
        std::string name;
        double seconds = 0;
        std::uint64_t samples = 0;
    };
    std::vector<Entry> entries() const;

    /** One-line summary, e.g. "simulate 12.3s/34  disk-cache 0.1s/2". */
    std::string summary() const;

  private:
    mutable std::mutex mutex_;
    std::vector<Entry> entries_;
};

/** RAII timer adding its lifetime to one phase of a PhaseTimers. */
class ScopedPhase
{
  public:
    ScopedPhase(PhaseTimers &timers, std::string name)
        : timers_(timers), name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {}

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

    ~ScopedPhase()
    {
        const auto dt = std::chrono::steady_clock::now() - start_;
        timers_.add(name_,
                    std::chrono::duration<double>(dt).count());
    }

  private:
    PhaseTimers &timers_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Fixed-bucket latency histogram (seconds). Buckets are chosen for
 * workload run times: sub-10ms cache hits through multi-second
 * simulations. Not internally locked — callers hold their own lock
 * (the daemon keeps one histogram per workload under its stats mutex).
 */
class LatencyHistogram
{
  public:
    static constexpr std::size_t kBuckets = 8;

    /** Upper bound of bucket @p i in seconds (last is +inf). */
    static double bucketBound(std::size_t i);

    /** Printable bucket label, e.g. "<0.1s" or ">=10s". */
    static std::string bucketLabel(std::size_t i);

    void record(double seconds);

    std::uint64_t count() const { return count_; }
    double totalSeconds() const { return totalSeconds_; }
    double maxSeconds() const { return maxSeconds_; }
    double
    meanSeconds() const
    {
        return count_ ? totalSeconds_ / double(count_) : 0;
    }
    const std::array<std::uint64_t, kBuckets> &
    buckets() const
    {
        return buckets_;
    }

    /** Rebuild from serialized state (daemon stats transport). */
    void restore(const std::array<std::uint64_t, kBuckets> &buckets,
                 std::uint64_t count, double totalSeconds,
                 double maxSeconds);

    /** Compact rendering: "n=12 mean=0.42s max=1.3s". */
    std::string summary() const;

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double totalSeconds_ = 0;
    double maxSeconds_ = 0;
};

/**
 * Mutexed line writer. Worker threads emitting per-run timing lines
 * under `-j` previously wrote to std::cerr directly, interleaving
 * fragments of different lines; all diagnostic lines now funnel
 * through here so each line lands atomically.
 */
class LineSink
{
  public:
    explicit LineSink(std::ostream &os) : os_(os) {}

    /** Write @p line plus '\n' atomically with respect to other lines. */
    void writeLine(const std::string &line);

  private:
    std::mutex mutex_;
    std::ostream &os_;
};

/** Process-wide sink for harness diagnostics (wraps std::cerr). */
LineSink &stderrSink();

} // namespace gs

#endif // GSCALAR_OBS_STATS_HPP
