/**
 * @file
 * Compression explorer: feed characteristic register-value patterns to
 * the byte-mask codec and the BDI baseline and compare stored sizes,
 * array activations and the cases where each scheme wins (§3.1's
 * trade-off discussion).
 */

#include <bit>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "compress/array_model.hpp"
#include "compress/byte_mask_codec.hpp"

using namespace gs;

namespace
{

struct Pattern
{
    const char *name;
    std::vector<Word> values;
};

std::vector<Pattern>
makePatterns()
{
    Rng rng(7);
    std::vector<Pattern> out;

    out.push_back({"scalar (uniform value)", std::vector<Word>(32, 0xC04039C0)});

    std::vector<Word> addresses;
    for (Word i = 0; i < 32; ++i)
        addresses.push_back(0xC04039C0 + i * 8);
    out.push_back({"paper Sec 3.1 example", addresses});

    std::vector<Word> floats;
    for (unsigned i = 0; i < 32; ++i)
        floats.push_back(std::bit_cast<Word>(
            1.5f + 0.001f * float(rng.below(100))));
    out.push_back({"clustered floats", floats});

    std::vector<Word> boundary;
    for (unsigned i = 0; i < 32; ++i)
        boundary.push_back(0x3FFFFF00 + i * 16); // crosses 0x40000000
    out.push_back({"hex-boundary ramp (BDI-friendly)", boundary});

    std::vector<Word> wide;
    for (unsigned i = 0; i < 32; ++i)
        wide.push_back(0x10000 * i);
    out.push_back({"wide strides", wide});

    std::vector<Word> random;
    for (unsigned i = 0; i < 32; ++i)
        random.push_back(rng.next32());
    out.push_back({"random (incompressible)", random});

    out.push_back({"zero", std::vector<Word>(32, 0)});

    std::vector<Word> halves(32, 0xAAAA0001);
    for (unsigned i = 16; i < 32; ++i)
        halves[i] = 0xBBBB0002;
    out.push_back({"two scalar halves (FS=0)", halves});

    return out;
}

} // namespace

int
main()
{
    const RfGeometry geo{32, 16};
    const LaneMask full = laneMaskLow(32);

    Table t("byte-mask codec vs BDI on characteristic patterns");
    t.row({"pattern", "enc", "ours B", "BDI B", "ours arrays",
           "BDI arrays", "winner"});

    for (const Pattern &p : makePatterns()) {
        const RegMeta meta = analyzeWrite(p.values, full, full, 16);
        const unsigned ours = byteMaskRegStoredBytes(geo, meta, true);
        const unsigned bdi = meta.bdiBytes;
        const AccessCost oc = compressedRead(geo, meta, full, true, false);
        const AccessCost bc = bdiRead(geo, meta, full);
        t.row({p.name, "enc=" + std::to_string(encBitsFor(meta.fullEnc)),
               std::to_string(ours), std::to_string(bdi),
               std::to_string(oc.arrays), std::to_string(bc.arrays),
               ours < bdi    ? "ours"
               : bdi < ours ? "BDI"
                            : "tie"});
    }
    t.print();

    std::cout << "\nRoundtrip check on the paper's example:\n";
    std::vector<Word> ex;
    for (Word b = 0xC0; b <= 0xF8; b += 8)
        ex.push_back(0xC0403900u | b);
    const auto enc = analyzeByteMask(ex, laneMaskLow(8));
    const auto stored = byteMaskCompress(ex);
    const auto back = byteMaskDecompress(stored, enc.commonMsbs, 8);
    std::cout << "  enc[3:0] = " << enc.encBits() << " (expected 14 = 1110b)"
              << ", stored " << stored.size() << " B of "
              << ex.size() * 4 << " B, roundtrip "
              << (back == ex ? "OK" : "FAILED") << "\n";
    return back == ex ? 0 : 1;
}
