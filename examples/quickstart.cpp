/**
 * @file
 * Quickstart: author a small kernel with the builder API, run it on the
 * simulated GPU in baseline and G-Scalar modes, and print the
 * configuration (Table 1), scalar statistics and power reports.
 */

#include <bit>
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "isa/kernel_builder.hpp"
#include "power/energy_model.hpp"
#include "sim/gpu.hpp"
#include "workloads/data_gen.hpp"

using namespace gs;

namespace
{

/** y[i] = a*x[i] + b with a warp-uniform a and b (classic saxpy-ish). */
Kernel
buildSaxpy()
{
    KernelBuilder kb("saxpy");

    const Reg tid = kb.reg();
    const Reg ctaid = kb.reg();
    const Reg ntid = kb.reg();
    const Reg gtid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    kb.s2r(ctaid, SReg::CtaId);
    kb.s2r(ntid, SReg::NTid);
    kb.imad(gtid, ctaid, ntid, tid);

    // Uniform coefficients: loads from the same address are scalar.
    const Reg paddr = kb.reg();
    kb.movi(paddr, Word(layout::kParams));
    const Reg a = kb.reg();
    const Reg b = kb.reg();
    kb.ldg(a, paddr, 0);
    kb.ldg(b, paddr, 4);

    const Reg xaddr = kb.reg();
    kb.shli(xaddr, gtid, 2);
    kb.iaddi(xaddr, xaddr, Word(layout::kArrayA));
    const Reg x = kb.reg();
    kb.ldg(x, xaddr);

    const Reg y = kb.reg();
    kb.ffma(y, a, x, b);

    const Reg oaddr = kb.reg();
    kb.shli(oaddr, gtid, 2);
    kb.iaddi(oaddr, oaddr, Word(layout::kOutput));
    kb.stg(oaddr, y);
    return kb.build();
}

void
runMode(const Kernel &kernel, ArchMode mode)
{
    ArchConfig cfg;
    cfg.mode = mode;

    Gpu gpu(cfg);
    Rng rng(7);
    gpu.memory().fillWords(layout::kParams,
                           {std::bit_cast<Word>(2.0f),
                            std::bit_cast<Word>(1.0f)});
    gpu.memory().fillWords(layout::kArrayA,
                           randomFloats(64 * 256, -1.0f, 1.0f, rng));

    const EventCounts ev = gpu.launch(kernel, {64, 256});
    const PowerReport power = computePower(ev, cfg);

    std::cout << "--- mode: " << archModeName(mode) << " ---\n";
    Table t("run summary");
    t.row({"metric", "value"});
    t.row({"cycles", std::to_string(ev.cycles)});
    t.row({"warp instructions", std::to_string(ev.warpInsts)});
    t.row({"IPC", Table::num(ev.ipc(), 2)});
    t.row({"scalar-eligible (ALU)",
           std::to_string(ev.scalarAluEligible)});
    t.row({"scalar-eligible (MEM)",
           std::to_string(ev.scalarMemEligible)});
    t.row({"scalar executed", std::to_string(ev.scalarExecuted)});
    t.row({"RF array reads", std::to_string(ev.rfArrayReads)});
    t.row({"BVR accesses", std::to_string(ev.bvrAccesses)});
    t.row({"compression ratio", Table::num(ev.compressionRatio(), 2)});
    t.print();
    std::cout << power.describe() << "\n";

    // Verify the computation: y = 2*x + 1.
    const Word x0 = gpu.memory().readWord(layout::kArrayA);
    const float expect = 2.0f * std::bit_cast<float>(x0) + 1.0f;
    const float got =
        std::bit_cast<float>(gpu.memory().readWord(layout::kOutput));
    std::cout << "check: y[0] = " << got << " (expected " << expect
              << ")\n\n";
}

} // namespace

int
main()
{
    ArchConfig cfg;
    std::cout << cfg.describe() << "\n";

    const Kernel kernel = buildSaxpy();
    std::cout << kernel.disassemble() << "\n";

    runMode(kernel, ArchMode::Baseline);
    runMode(kernel, ArchMode::GScalarFull);
    return 0;
}
