/**
 * @file
 * Divergence lab: build the paper's Fig. 7(b) scenario by hand — a
 * branch writes a (divergent) scalar on one path, then the other path
 * reads the same register under a different mask — and watch the
 * divergent-scalar detector accept the first and reject the second.
 */

#include <bit>
#include <iostream>

#include "common/table.hpp"
#include "isa/kernel_builder.hpp"
#include "sim/gpu.hpp"

using namespace gs;

namespace
{

/**
 * Mirrors Fig. 7(b):
 *   if (r1 == r2) { r2 = r2 * 2; r3 = r2 + c }   // path A (mask M)
 *   else          { r1 = abs(r2); r4 = r1 + r1 } // path B (mask ~M)
 * On path A, r2 = r2*2 writes a scalar w.r.t. M (r2 was uniform), so
 * the follow-up r3 = r2 + c executes scalar. On path B, r2's encoding
 * is valid only w.r.t. M, so r1 = abs(r2) must run as a vector op.
 */
Kernel
buildFig7b()
{
    KernelBuilder kb("fig7b");

    const Reg tid = kb.reg();
    kb.s2r(tid, SReg::Tid);

    // r1 is per-thread, r2 is uniform; the comparison diverges.
    const Reg r1 = kb.reg();
    const Reg r2 = kb.reg();
    kb.andi(r1, tid, 7);
    kb.movi(r2, 4);

    const Reg r3 = kb.reg();
    const Reg r4 = kb.reg();
    const Reg c = kb.reg();
    kb.movi(c, 100);

    const Pred eq = kb.pred();
    kb.isetp(eq, CmpOp::EQ, r1, r2);
    kb.ifElse(
        eq,
        [&] {
            kb.emit2i(Opcode::IMUL, r2, r2, 2); // divergent scalar write
            kb.iadd(r3, r2, c);                 // divergent scalar read
        },
        [&] {
            kb.emit1(Opcode::IABS, r1, r2); // mask mismatch: vector
            kb.iadd(r4, r1, r1);            // vector
        });

    const Reg addr = kb.reg();
    kb.shli(addr, tid, 2);
    kb.iaddi(addr, addr, 0x10000);
    kb.stg(addr, r3);
    return kb.build();
}

void
report(const char *title, const EventCounts &ev)
{
    Table t(title);
    t.row({"metric", "count"});
    t.row({"warp instructions", std::to_string(ev.warpInsts)});
    t.row({"divergent instructions",
           std::to_string(ev.divergentWarpInsts)});
    t.row({"divergent-scalar eligible",
           std::to_string(ev.divergentScalarEligible)});
    t.row({"scalar executed", std::to_string(ev.scalarExecuted)});
    t.row({"special moves", std::to_string(ev.specialMoveInsts)});
    t.print();
    std::cout << "\n";
}

} // namespace

int
main()
{
    const Kernel k = buildFig7b();
    std::cout << k.disassemble() << "\n";

    ArchConfig cfg;
    cfg.numSms = 1;

    cfg.mode = ArchMode::Baseline;
    {
        Gpu gpu(cfg);
        report("baseline (detection only)", gpu.launch(k, {1, 32}));
    }

    cfg.mode = ArchMode::GScalarFull;
    {
        Gpu gpu(cfg);
        report("G-Scalar (divergent scalar exploited)",
               gpu.launch(k, {1, 32}));
    }

    // The same code with divergent scalar support disabled shows what
    // prior scalar architectures leave on the table.
    cfg.mode = ArchMode::GScalarNoDiv;
    {
        Gpu gpu(cfg);
        report("G-Scalar w/o divergent support", gpu.launch(k, {1, 32}));
    }
    return 0;
}
