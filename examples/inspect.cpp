/**
 * @file
 * Workload inspector: run one Table 2 benchmark under a chosen
 * architecture mode and dump every event counter and the power report.
 *
 *   example_inspect <BENCH> [mode] [warpSize]
 *
 * Modes: baseline alu-scalar warped-compression gscalar-compress
 *        gscalar-nodiv gscalar
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/log.hpp"
#include "common/table.hpp"
#include "harness/runner.hpp"

using namespace gs;

namespace
{

ArchMode
parseMode(const std::string &s)
{
    for (const ArchMode m :
         {ArchMode::Baseline, ArchMode::AluScalar,
          ArchMode::WarpedCompression, ArchMode::GScalarCompressOnly,
          ArchMode::GScalarNoDiv, ArchMode::GScalarFull}) {
        if (s == archModeName(m))
            return m;
    }
    GS_FATAL("unknown mode '", s, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: " << argv[0]
                  << " <BENCH> [mode] [warpSize]\n  benches:";
        for (const auto &n : workloadNames())
            std::cerr << " " << n;
        std::cerr << "\n";
        return 1;
    }
    setQuiet(true);

    ArchConfig cfg;
    if (argc > 2)
        cfg.mode = parseMode(argv[2]);
    if (argc > 3)
        cfg.warpSize = unsigned(std::stoul(argv[3]));

    const RunResult r = runWorkload(argv[1], cfg);
    const EventCounts &e = r.ev;

    Table t(std::string(argv[1]) + " @ " +
            std::string(archModeName(cfg.mode)));
    t.row({"counter", "value"});
    auto add = [&](const char *n, std::uint64_t v) {
        t.row({n, std::to_string(v)});
    };
    add("cycles", e.cycles);
    add("warpInsts", e.warpInsts);
    add("issuedInsts", e.issuedInsts);
    add("threadInsts", e.threadInsts);
    add("aluWarpInsts", e.aluWarpInsts);
    add("sfuWarpInsts", e.sfuWarpInsts);
    add("memWarpInsts", e.memWarpInsts);
    add("ctrlWarpInsts", e.ctrlWarpInsts);
    add("divergentWarpInsts", e.divergentWarpInsts);
    add("scalarAluEligible", e.scalarAluEligible);
    add("scalarSfuEligible", e.scalarSfuEligible);
    add("scalarMemEligible", e.scalarMemEligible);
    add("halfScalarEligible", e.halfScalarEligible);
    add("divergentScalarEligible", e.divergentScalarEligible);
    add("scalarExecuted", e.scalarExecuted);
    add("halfScalarExecuted", e.halfScalarExecuted);
    add("specialMoveInsts", e.specialMoveInsts);
    add("rfReads", e.rfReads);
    add("rfWrites", e.rfWrites);
    add("rfArrayReads", e.rfArrayReads);
    add("rfArrayWrites", e.rfArrayWrites);
    add("bvrAccesses", e.bvrAccesses);
    add("scalarRfAccesses", e.scalarRfAccesses);
    add("crossbarBytes", e.crossbarBytes);
    add("l1Accesses", e.l1Accesses);
    add("l1Misses", e.l1Misses);
    add("l2Accesses", e.l2Accesses);
    add("l2Misses", e.l2Misses);
    add("dramAccesses", e.dramAccesses);
    add("sharedAccesses", e.sharedAccesses);
    add("memRequests", e.memRequests);
    add("schedIdleCycles", e.schedIdleCycles);
    add("scoreboardStalls", e.scoreboardStalls);
    add("ocFullStalls", e.ocFullStalls);
    add("scalarBankStalls", e.scalarBankStalls);
    add("pipeBusyStalls", e.pipeBusyStalls);
    t.row({"IPC", Table::num(e.ipc(), 3)});
    t.row({"compression ratio", Table::num(e.compressionRatio(), 2)});
    t.row({"BDI ratio", Table::num(e.bdiCompressionRatio(), 2)});
    t.print();

    std::cout << "\n" << r.power.describe() << std::endl;
    return 0;
}
