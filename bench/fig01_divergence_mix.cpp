/**
 * @file
 * Regenerates Figure 1: divergent and divergent-scalar instruction mix. Thin wrapper over the 'fig1' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("fig1", argc, argv);
}
