/**
 * @file
 * Regenerates Figure 12: normalized RF dynamic power. Thin wrapper over the 'fig12' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("fig12", argc, argv);
}
