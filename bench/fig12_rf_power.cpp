/**
 * @file
 * Regenerates Figure 12 of the paper. Prints measured series beside the
 * paper's reference numbers.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/experiments.hpp"

int
main()
{
    gs::setQuiet(true);
    std::cout << gs::runFig12(gs::experimentConfig()) << std::endl;
    return 0;
}
