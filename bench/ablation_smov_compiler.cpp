/**
 * @file
 * Regenerates the Section 3.3 compiler-assisted special-move ablation.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/experiments.hpp"

int
main()
{
    gs::setQuiet(true);
    std::cout << gs::runSmovCompilerAblation(gs::experimentConfig()) << std::endl;
    return 0;
}
