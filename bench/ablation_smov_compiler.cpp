/**
 * @file
 * Ablation: special-move overhead, hardware vs compiler-assisted (Sec 3.3). Thin wrapper over the 'smovcompiler' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("smovcompiler", argc, argv);
}
