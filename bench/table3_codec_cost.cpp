/**
 * @file
 * Regenerates Table 3 (codec area/delay/power) and the Section 5.1
 * per-SM overheads from the structural hardware cost model.
 */

#include <iostream>

#include "harness/experiments.hpp"

int
main()
{
    std::cout << gs::runTable3() << std::endl;
    return 0;
}
