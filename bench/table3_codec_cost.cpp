/**
 * @file
 * Regenerates Table 3 and the Sec 5.1 per-SM hardware overheads. Thin wrapper over the 'table3' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("table3", argc, argv);
}
