/**
 * @file
 * Software-codec micro-benchmark driver: encode/decode throughput and
 * compression ratio for every registered codec over the canonical
 * register-value patterns (registry entry "micro"; excluded from the
 * default `gscalar bench` run because the GB/s columns are
 * wall-clock).
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("micro", argc, argv);
}
