/**
 * @file
 * google-benchmark micro-benchmarks of the software codec
 * implementations: write-back comparison (compressor input path), BDI
 * analysis, and the full software compress/decompress pair.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "compress/bdi_codec.hpp"
#include "compress/byte_mask_codec.hpp"
#include "compress/reg_meta.hpp"

namespace
{

using namespace gs;

std::vector<Word>
pattern(unsigned family)
{
    Rng rng(family + 1);
    std::vector<Word> v(32);
    for (unsigned i = 0; i < 32; ++i) {
        switch (family) {
          case 0: v[i] = 0xC04039C0; break;                 // scalar
          case 1: v[i] = 0xC04039C0 + i * 8; break;         // 3-byte
          case 2: v[i] = 0xC0400000 + i * 1024; break;      // 2-byte
          default: v[i] = rng.next32(); break;              // random
        }
    }
    return v;
}

void
BM_AnalyzeByteMask(benchmark::State &state)
{
    const auto v = pattern(unsigned(state.range(0)));
    const LaneMask full = laneMaskLow(32);
    for (auto _ : state) {
        auto e = analyzeByteMask(v, full);
        benchmark::DoNotOptimize(e);
    }
}
BENCHMARK(BM_AnalyzeByteMask)->DenseRange(0, 3);

/**
 * Divergent-warp variant: half the lanes inactive, which routes
 * analyzeByteMask through its masked (non-SWAR) comparison path.
 */
void
BM_AnalyzeByteMaskPartial(benchmark::State &state)
{
    const auto v = pattern(unsigned(state.range(0)));
    const LaneMask odd = 0xAAAAAAAAull; // lanes 1,3,5,...
    for (auto _ : state) {
        auto e = analyzeByteMask(v, odd);
        benchmark::DoNotOptimize(e);
    }
}
BENCHMARK(BM_AnalyzeByteMaskPartial)->DenseRange(0, 3);

void
BM_AnalyzeBdi(benchmark::State &state)
{
    const auto v = pattern(unsigned(state.range(0)));
    const LaneMask full = laneMaskLow(32);
    for (auto _ : state) {
        auto e = analyzeBdi(v, full);
        benchmark::DoNotOptimize(e);
    }
}
BENCHMARK(BM_AnalyzeBdi)->DenseRange(0, 3);

void
BM_AnalyzeWriteFull(benchmark::State &state)
{
    const auto v = pattern(unsigned(state.range(0)));
    const LaneMask full = laneMaskLow(32);
    for (auto _ : state) {
        auto m = analyzeWrite(v, full, full, 16);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_AnalyzeWriteFull)->DenseRange(0, 3);

void
BM_CompressDecompress(benchmark::State &state)
{
    const auto v = pattern(unsigned(state.range(0)));
    for (auto _ : state) {
        const auto enc = analyzeByteMask(v, laneMaskLow(32));
        const auto stored = byteMaskCompress(v);
        auto out = byteMaskDecompress(stored, enc.commonMsbs, 32);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) * 128);
}
BENCHMARK(BM_CompressDecompress)->DenseRange(0, 3);

} // namespace

BENCHMARK_MAIN();
