/**
 * @file
 * Special-move dynamic instruction overhead (Sec 3.3). Thin wrapper over the 'smov' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("smov", argc, argv);
}
