/**
 * @file
 * Regenerates the Section 3.3 special-move overhead estimate of the paper. Prints measured series beside the
 * paper's reference numbers.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/experiments.hpp"

int
main()
{
    gs::setQuiet(true);
    std::cout << gs::runSpecialMoveOverhead(gs::experimentConfig()) << std::endl;
    return 0;
}
