/**
 * @file
 * Ablation: register-file bank count scaling (Sec 4.1). Thin wrapper over the 'bankcount' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("bankcount", argc, argv);
}
