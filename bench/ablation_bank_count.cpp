/**
 * @file
 * Regenerates the Section 4.1 bank-count scaling ablation.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/experiments.hpp"

int
main()
{
    gs::setQuiet(true);
    std::cout << gs::runBankCountAblation(gs::experimentConfig()) << std::endl;
    return 0;
}
