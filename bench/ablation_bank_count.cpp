/**
 * @file
 * Regenerates the Section 4.1 bank-count scaling ablation.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/engine.hpp"
#include "harness/experiments.hpp"

int
main(int argc, char **argv)
{
    gs::initHarness(argc, argv);
    std::cout << gs::runBankCountAblation(gs::experimentConfig()) << std::endl;
    std::cerr << gs::defaultEngine().statsSummary() << std::endl;
    return 0;
}
