/**
 * @file
 * Regenerates the Section 6 static-vs-dynamic scalar coverage comparison.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/experiments.hpp"

int
main()
{
    gs::setQuiet(true);
    std::cout << gs::runCompilerScalarComparison(gs::experimentConfig()) << std::endl;
    return 0;
}
