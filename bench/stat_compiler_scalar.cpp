/**
 * @file
 * Static compiler scalarization vs dynamic G-Scalar detection (Sec 6). Thin wrapper over the 'compiler' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("compiler", argc, argv);
}
