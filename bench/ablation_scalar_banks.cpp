/**
 * @file
 * Ablation: prior-work scalar RF bank count (Sec 4.1). Thin wrapper over the 'banks' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("banks", argc, argv);
}
