/**
 * @file
 * Regenerates the Section 4.1 scalar-RF bank ablation of the paper. Prints measured series beside the
 * paper's reference numbers.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/experiments.hpp"

int
main()
{
    gs::setQuiet(true);
    std::cout << gs::runScalarBankAblation(gs::experimentConfig()) << std::endl;
    return 0;
}
