/**
 * @file
 * Compression ratio over the register write stream (Sec 5.3). Thin wrapper over the 'ratio' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("ratio", argc, argv);
}
