/**
 * @file
 * Regenerates the Section 5.3 compression-ratio comparison of the paper. Prints measured series beside the
 * paper's reference numbers.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/experiments.hpp"

int
main()
{
    gs::setQuiet(true);
    std::cout << gs::runCompressionRatio(gs::experimentConfig()) << std::endl;
    return 0;
}
