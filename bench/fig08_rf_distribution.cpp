/**
 * @file
 * Regenerates Figure 8: RF access distribution for operand values. Thin wrapper over the 'fig8' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("fig8", argc, argv);
}
