/**
 * @file
 * Serving-tier performance baseline. Boots an in-process gscalard
 * reactor on a throwaway unix socket and drives it with N concurrent
 * clients at three duplicate-fingerprint ratios (0%, 50%, 90%),
 * measuring submits/s and client-observed p50/p99 latency. Like
 * perf_sim_core this is host-dependent wall clock, so it never joins
 * the golden byte-compare; CI validates the schema, not the numbers.
 *
 * The dup=90% row doubles as the coalescing acceptance gate: the
 * engine must compute at most 1.2x the unique-fingerprint count
 * (counter-verified against the engine's miss counter), i.e. the
 * coalescing/memo tier absorbs virtually every duplicate. Violations
 * abort with a nonzero exit so the check cannot rot silently.
 *
 * The committed baseline lives at BENCH_serve.json (repo root);
 * refresh it with:
 *
 *   perf_serve --json > BENCH_serve.json
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness/engine.hpp"
#include "obs/result.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace
{

using namespace gs;
using Clock = std::chrono::steady_clock;

/** Cheapest Table 2 member: keeps the 1-core baseline tolerable. */
const std::string kWorkload = "ST";

constexpr unsigned kClients = 8;   ///< concurrent client threads
constexpr unsigned kPerClient = 8; ///< submits per client

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Deterministic submit schedule: @p total seeds of which
 * `total * dupPct / 100` repeat earlier ones (round-robin over the
 * unique set), shuffled so duplicates interleave with fresh work the
 * way independent clients would produce them.
 */
std::vector<std::uint64_t>
schedule(unsigned total, unsigned dupPct, unsigned &uniqueOut)
{
    const unsigned dup = total * dupPct / 100;
    const unsigned unique = total - dup;
    uniqueOut = unique;
    std::vector<std::uint64_t> seeds;
    seeds.reserve(total);
    for (unsigned i = 0; i < unique; ++i)
        seeds.push_back(5000 + i);
    for (unsigned i = 0; i < dup; ++i)
        seeds.push_back(5000 + (i % unique));
    Rng rng(42 + dupPct);
    for (unsigned i = total - 1; i > 0; --i)
        std::swap(seeds[i], seeds[rng.next32() % (i + 1)]);
    return seeds;
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const std::size_t idx = std::size_t(
        p * double(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

/** One full client fleet pass at a duplicate ratio; emits one row. */
void
servePass(Table &t, const std::string &socketPath, unsigned dupPct)
{
    // A fresh engine and server per ratio keeps the counters (and the
    // memo cache) scoped to this pass.
    ExperimentEngine engine(0); // 0 = defaultJobs (GS_JOBS / --jobs)
    GscalarServer::Options o;
    o.socketPath = socketPath;
    GscalarServer server(engine, o);
    std::string err;
    if (!server.start(&err))
        GS_FATAL("cannot start the serve-bench daemon: ", err);

    const unsigned total = kClients * kPerClient;
    unsigned unique = 0;
    const std::vector<std::uint64_t> seeds =
        schedule(total, dupPct, unique);

    std::vector<std::vector<double>> latencies(kClients);
    std::atomic<unsigned> failures{0};
    std::vector<std::thread> fleet;
    const auto t0 = Clock::now();
    for (unsigned c = 0; c < kClients; ++c) {
        fleet.emplace_back([&, c] {
            GscalarClient client(socketPath);
            for (unsigned i = 0; i < kPerClient; ++i) {
                ArchConfig cfg;
                cfg.seed = seeds[i * kClients + c];
                const auto s = Clock::now();
                std::string rerr;
                if (!client.run(kWorkload, cfg, &rerr)) {
                    GS_WARN("serve bench submit failed: ", rerr);
                    failures.fetch_add(1);
                    continue;
                }
                latencies[c].push_back(secondsSince(s));
            }
        });
    }
    for (std::thread &th : fleet)
        th.join();
    const double wall = secondsSince(t0);
    server.stop();
    if (failures.load() != 0)
        GS_FATAL(failures.load(), " of ", total,
                 " submits failed; the baseline would lie");

    std::vector<double> all;
    for (const auto &v : latencies)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());

    const std::uint64_t computed = engine.cacheStats().misses;
    // Acceptance gate: duplicates must coalesce (in flight) or memoise
    // (after landing), never recompute. 1.2x leaves room for unlucky
    // schedules where a duplicate arrives while no flight is open yet.
    if (double(computed) > 1.2 * double(unique))
        GS_FATAL("coalescing regressed at dup=", dupPct, "%: ",
                 computed, " engine computations for ", unique,
                 " unique fingerprints (bound 1.2x)");

    std::ostringstream label;
    label << "dup=" << dupPct << "% clients=" << kClients;
    t.row({label.str(), Table::num(total / wall, 2),
           Table::num(percentile(all, 0.50) * 1e3, 1),
           Table::num(percentile(all, 0.99) * 1e3, 1),
           Table::num(double(computed), 0),
           Table::num(double(unique), 0),
           Table::num(double(server.coalesceFollowers()), 0),
           Table::num(wall, 3)});
}

} // namespace

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    ResultFormat format = ResultFormat::Text;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--json") {
            format = ResultFormat::Json;
        } else if (a.rfind("--format=", 0) == 0) {
            const auto f = parseResultFormat(a.substr(9));
            if (!f)
                GS_FATAL("unknown --format '", a.substr(9), "'");
            format = *f;
        } else if (a == "--jobs" || a == "-j" || a == "--fault" ||
                   a == "--sim-threads") {
            ++i; // value consumed by initHarness
        } else if (a == "--cache" || a.rfind("--fault=", 0) == 0) {
            // consumed by initHarness
        } else {
            GS_FATAL("unknown option '", a,
                     "' (perf_serve [--json|--format=F])");
        }
    }

    const std::string socketPath =
        (std::filesystem::temp_directory_path() /
         ("gs-perf-serve-" + std::to_string(::getpid()) + ".sock"))
            .string();

    Table t("Serving-tier performance baseline (host-dependent)");
    t.row({"case", "submits/s", "p50 ms", "p99 ms", "computed",
           "unique", "followers", "secs"});
    for (const unsigned dupPct : {0u, 50u, 90u})
        servePass(t, socketPath, dupPct);
    ::unlink(socketPath.c_str());

    const SuiteResult result = makeSuiteResult("perf_serve", "perf", t);
    makeResultSink(format, std::cout)->emit(result);
    return 0;
}
