/**
 * @file
 * Ablation: warp width (32 vs 64) vs scalar benefit (Sec 4.3/6). Thin wrapper over the 'warpwidth' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("warpwidth", argc, argv);
}
