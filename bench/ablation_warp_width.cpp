/**
 * @file
 * Regenerates the Section 4.3/6 warp-width scaling ablation.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/experiments.hpp"

int
main()
{
    gs::setQuiet(true);
    std::cout << gs::runWarpWidthAblation(gs::experimentConfig()) << std::endl;
    return 0;
}
