/**
 * @file
 * Regenerates the Section 6 scalar dispatch-occupancy ablation.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/experiments.hpp"

int
main()
{
    gs::setQuiet(true);
    std::cout << gs::runOccupancyAblation(gs::experimentConfig()) << std::endl;
    return 0;
}
