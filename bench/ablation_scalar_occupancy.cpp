/**
 * @file
 * Ablation: scalar execution shortening dispatch occupancy (Sec 6). Thin wrapper over the 'occupancy' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("occupancy", argc, argv);
}
