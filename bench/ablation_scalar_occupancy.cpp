/**
 * @file
 * Regenerates the Section 6 scalar dispatch-occupancy ablation.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/engine.hpp"
#include "harness/experiments.hpp"

int
main(int argc, char **argv)
{
    gs::initHarness(argc, argv);
    std::cout << gs::runOccupancyAblation(gs::experimentConfig()) << std::endl;
    std::cerr << gs::defaultEngine().statsSummary() << std::endl;
    return 0;
}
