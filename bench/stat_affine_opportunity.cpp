/**
 * @file
 * Regenerates the Section 6 affine-register opportunity comparison.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/engine.hpp"
#include "harness/experiments.hpp"

int
main(int argc, char **argv)
{
    gs::initHarness(argc, argv);
    std::cout << gs::runAffineOpportunity(gs::experimentConfig())
              << std::endl;
    std::cerr << gs::defaultEngine().statsSummary() << std::endl;
    return 0;
}
