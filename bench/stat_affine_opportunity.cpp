/**
 * @file
 * Regenerates the Section 6 affine-register opportunity comparison.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/experiments.hpp"

int
main()
{
    gs::setQuiet(true);
    std::cout << gs::runAffineOpportunity(gs::experimentConfig())
              << std::endl;
    return 0;
}
