/**
 * @file
 * Affine register writes vs scalar ones (related work, Sec 6). Thin wrapper over the 'affine' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("affine", argc, argv);
}
