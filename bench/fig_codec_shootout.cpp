/**
 * @file
 * Codec shootout driver: every registered codec over the full Table 2
 * suite, ranked on compression ratio, RF energy and IPC against the
 * Baseline GPU (registry entry "shootout"; excluded from the default
 * `gscalar bench` run).
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("shootout", argc, argv);
}
