/**
 * @file
 * Ablation: half-register vs whole-register compression (Sec 3.2/4.3). Thin wrapper over the 'half' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("half", argc, argv);
}
