/**
 * @file
 * Regenerates the Section 3.2/4.3 half-register compression ablation.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/experiments.hpp"

int
main()
{
    gs::setQuiet(true);
    std::cout << gs::runHalfRegisterAblation(gs::experimentConfig())
              << std::endl;
    return 0;
}
