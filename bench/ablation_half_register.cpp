/**
 * @file
 * Regenerates the Section 3.2/4.3 half-register compression ablation.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/engine.hpp"
#include "harness/experiments.hpp"

int
main(int argc, char **argv)
{
    gs::initHarness(argc, argv);
    std::cout << gs::runHalfRegisterAblation(gs::experimentConfig())
              << std::endl;
    std::cerr << gs::defaultEngine().statsSummary() << std::endl;
    return 0;
}
