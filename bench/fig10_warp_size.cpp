/**
 * @file
 * Regenerates Figure 10: half-scalar eligible share vs warp size. Thin wrapper over the 'fig10' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("fig10", argc, argv);
}
