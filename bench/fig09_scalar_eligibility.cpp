/**
 * @file
 * Regenerates Figure 9: instructions eligible for scalar execution. Thin wrapper over the 'fig9' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("fig9", argc, argv);
}
