/**
 * @file
 * Regenerates Figure 9 of the paper. Prints measured series beside the
 * paper's reference numbers.
 */

#include <iostream>

#include "common/log.hpp"
#include "harness/engine.hpp"
#include "harness/experiments.hpp"

int
main(int argc, char **argv)
{
    gs::initHarness(argc, argv);
    std::cout << gs::runFig9(gs::experimentConfig()) << std::endl;
    std::cerr << gs::defaultEngine().statsSummary() << std::endl;
    return 0;
}
