/**
 * @file
 * Simulator-core performance baseline. Unlike the figure/table drivers
 * this is deliberately NOT in the experiment registry: its numbers are
 * host-dependent wall-clock measurements, so it must never join the
 * golden byte-compare. It emits one gscalar.bench.v1 document with
 * three metric groups:
 *
 *   sim-cycles/s   a representative kernel mix simulated at
 *                  --sim-threads 1/2/4 (parallel rows also prove the
 *                  counters stay byte-identical to serial)
 *   runs/s         distinct-seed runs pushed through the experiment
 *                  engine's worker pool (the cross-run GS_JOBS axis)
 *   codec GB/s     classify + compress throughput of the byte-mask
 *                  codec at every supported GS_SIMD level
 *
 * The committed baseline lives at BENCH_sim_core.json (repo root);
 * refresh it with:
 *
 *   perf_sim_core --json > BENCH_sim_core.json
 *
 * Values are machine-dependent — CI validates the schema, never the
 * numbers.
 */

#include <chrono>
#include <cstring>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "compress/byte_mask_codec.hpp"
#include "compress/simd.hpp"
#include "harness/engine.hpp"
#include "harness/runner.hpp"
#include "obs/result.hpp"
#include "sim/parallel.hpp"

namespace
{

using namespace gs;
using Clock = std::chrono::steady_clock;

/** Representative kernel mix: compute-, divergence- and memory-heavy. */
const std::vector<std::string> kMix = {"BP", "HS", "MQ", "PF"};

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** micro_codec's value families: scalar, 3-byte, 2-byte, random. */
std::vector<Word>
pattern(unsigned family, unsigned lanes)
{
    Rng rng(family + 1);
    std::vector<Word> v(lanes);
    for (unsigned i = 0; i < lanes; ++i) {
        switch (family) {
          case 0: v[i] = 0xC04039C0; break;
          case 1: v[i] = 0xC04039C0 + i * 8; break;
          case 2: v[i] = 0xC0400000 + i * 1024; break;
          default: v[i] = rng.next32(); break;
        }
    }
    return v;
}

/** One kernel-mix pass at a given intra-run thread count. */
void
simMixRow(Table &t, unsigned threads, std::uint64_t &checksum)
{
    setSimThreads(threads);
    std::uint64_t cycles = 0;
    std::uint64_t sum = 0;
    const auto t0 = Clock::now();
    for (const std::string &w : kMix) {
        ArchConfig cfg;
        const RunResult r = runWorkload(w, cfg);
        cycles += r.ev.cycles;
        sum += r.ev.cycles * 31 + r.ev.warpInsts * 7 +
               r.ev.threadInsts;
    }
    const double secs = secondsSince(t0);
    if (checksum == 0)
        checksum = sum;
    else if (checksum != sum)
        GS_FATAL("kernel mix diverged at --sim-threads ", threads,
                 " (parallel ticking is supposed to be byte-identical)");
    std::ostringstream label;
    label << "sim-mix threads=" << threads;
    t.row({label.str(), "sim-cycles/s",
           Table::num(double(cycles) / secs, 0),
           Table::num(secs, 3)});
}

/** Distinct-seed fan-out through the engine's worker pool. */
void
engineRow(Table &t)
{
    setSimThreads(1);
    ExperimentEngine engine(0); // 0 = defaultJobs (GS_JOBS / --jobs)
    const unsigned kRuns = 8;
    std::vector<std::shared_future<RunResult>> futures;
    const auto t0 = Clock::now();
    for (unsigned i = 0; i < kRuns; ++i) {
        ArchConfig cfg;
        cfg.seed = 1000 + i; // distinct keys: no memoized shortcuts
        futures.push_back(engine.submit("BP", cfg));
    }
    for (auto &f : futures)
        f.get();
    const double secs = secondsSince(t0);
    std::ostringstream label;
    label << "engine jobs=" << engine.jobs();
    t.row({label.str(), "runs/s", Table::num(kRuns / secs, 2),
           Table::num(secs, 3)});
}

/** Classify + compress throughput for one SIMD level. */
void
codecRows(Table &t, SimdLevel level)
{
    setSimdLevel(level);
    constexpr unsigned kLanes = 32;
    constexpr unsigned kFamilies = 4;
    constexpr std::size_t kIters = 1'500'000;
    const LaneMask full = laneMaskLow(kLanes);

    std::vector<std::vector<Word>> inputs;
    for (unsigned f = 0; f < kFamilies; ++f)
        inputs.push_back(pattern(f, kLanes));
    const double bytesPerIter =
        double(kFamilies) * kLanes * sizeof(Word);

    // Classify (analyzeByteMask is the simulator's hot codec path).
    unsigned sink = 0;
    auto t0 = Clock::now();
    for (std::size_t i = 0; i < kIters; ++i)
        for (const auto &v : inputs)
            sink += analyzeByteMask(v, full).commonMsbs;
    double secs = secondsSince(t0);
    std::ostringstream l1;
    l1 << "codec classify simd=" << simdLevelName(level);
    t.row({l1.str(), "GB/s",
           Table::num(bytesPerIter * double(kIters) / secs / 1e9, 3),
           Table::num(secs, 3)});

    // Compress (the software packer of Table 3 / micro_codec).
    std::size_t bytes = 0;
    t0 = Clock::now();
    for (std::size_t i = 0; i < kIters / 4; ++i)
        for (const auto &v : inputs)
            bytes += byteMaskCompress(v).size();
    secs = secondsSince(t0);
    std::ostringstream l2;
    l2 << "codec compress simd=" << simdLevelName(level);
    t.row({l2.str(), "GB/s",
           Table::num(bytesPerIter * double(kIters / 4) / secs / 1e9,
                      3),
           Table::num(secs, 3)});
    if (sink == 0 && bytes == 0)
        std::cerr << ""; // keep the measured loops observable
    clearSimdLevelOverride();
}

} // namespace

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    ResultFormat format = ResultFormat::Text;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--json") {
            format = ResultFormat::Json;
        } else if (a.rfind("--format=", 0) == 0) {
            const auto f = parseResultFormat(a.substr(9));
            if (!f)
                GS_FATAL("unknown --format '", a.substr(9), "'");
            format = *f;
        } else if (a == "--jobs" || a == "-j" || a == "--fault" ||
                   a == "--sim-threads") {
            ++i; // value consumed by initHarness
        } else if (a == "--cache" || a.rfind("--fault=", 0) == 0) {
            // consumed by initHarness
        } else {
            GS_FATAL("unknown option '", a,
                     "' (perf_sim_core [--json|--format=F])");
        }
    }

    Table t("Simulator-core performance baseline (host-dependent)");
    t.row({"case", "metric", "value", "secs"});

    std::uint64_t checksum = 0;
    for (const unsigned threads : {1u, 2u, 4u})
        simMixRow(t, threads, checksum);
    engineRow(t);
    for (const SimdLevel level :
         {SimdLevel::Off, SimdLevel::Swar, SimdLevel::Avx2}) {
        if (!simdLevelSupported(level))
            continue; // e.g. avx2 on a non-AVX2 host
        codecRows(t, level);
    }

    const SuiteResult result = makeSuiteResult(
        "perf_sim_core", "perf", t);
    makeResultSink(format, std::cout)->emit(result);
    return 0;
}
