/**
 * @file
 * Regenerates Figure 11: normalized power efficiency and IPC. Thin wrapper over the 'fig11' entry of the experiment
 * registry; supports --format=text|json|csv and the shared
 * --jobs/--cache flags.
 */

#include "harness/bench.hpp"

int
main(int argc, char **argv)
{
    return gs::benchDriverMain("fig11", argc, argv);
}
