/**
 * @file
 * gscalard: standalone simulation daemon. Equivalent to
 * `gscalar serve` but as its own binary so deployments can ship the
 * service without the experiment drivers.
 *
 *   gscalard [--socket PATH] [--timeout SEC] [--jobs N] [--cache]
 */

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "common/log.hpp"
#include "harness/engine.hpp"
#include "serve/server.hpp"

#ifndef GS_VERSION
#define GS_VERSION "0.0.0-dev"
#endif

using namespace gs;

namespace
{

void
printUsage(std::ostream &os)
{
    os <<
        "usage: gscalard [--socket PATH] [--timeout SEC] [--jobs N]\n"
        "                [--cache]\n"
        "\n"
        "Serves simulation requests from gscalar submit /\n"
        "GscalarClient over a unix-domain socket, sharing one\n"
        "experiment engine (worker pool + run cache) across every\n"
        "client. `gscalar submit --stats` reports live counters\n"
        "(uptime, requests, cache state, per-workload latency).\n"
        "SIGINT/SIGTERM drain in-flight requests, then exit.\n"
        "\n"
        "  --socket PATH   listen here (default $GS_SOCKET, else\n"
        "                  $XDG_RUNTIME_DIR/gscalard.sock, else\n"
        "                  /tmp/gscalard-<uid>.sock)\n"
        "  --timeout SEC   per-request engine budget (default 600)\n"
        "  --jobs/-j N     worker pool size (or GS_JOBS=N)\n"
        "  --cache         persist runs at $GS_CACHE_DIR or the\n"
        "                  default cache directory\n";
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    GscalarServer::Options sopt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                GS_FATAL(what, " needs a value");
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            printUsage(std::cout);
            return 0;
        } else if (a == "--version" || a == "-V") {
            std::cout << "gscalard " << GS_VERSION << "\n";
            return 0;
        } else if (a == "--socket")
            sopt.socketPath = need("--socket");
        else if (a == "--timeout")
            sopt.requestTimeoutSec = std::stod(need("--timeout"));
        else if (a == "--cache")
            setDefaultCacheEnabled(true);
        else if (a == "--jobs" || a == "-j") {
            const std::string v = need("--jobs");
            const std::optional<unsigned> jobs = parseJobsValue(v);
            if (!jobs)
                GS_FATAL("invalid ", a, " value '", v,
                         "' (want an integer in [1, 4096])");
            setDefaultJobs(*jobs);
        } else {
            printUsage(std::cerr);
            return 2;
        }
    }
    if (const char *env = std::getenv("GS_JOBS")) {
        if (!parseJobsValue(env))
            GS_FATAL("GS_JOBS='", env,
                     "' is not a valid worker count "
                     "(want an integer in [1, 4096])");
    }

    GscalarServer server(defaultEngine(), sopt);
    std::string err;
    if (!server.installSignalHandlers(&err) || !server.start(&err)) {
        std::cerr << "gscalard: " << err << "\n";
        return 1;
    }
    std::cerr << "gscalard: listening on " << server.socketPath()
              << " (" << defaultEngine().jobs()
              << " worker(s); Ctrl-C to drain and exit)\n";
    server.wait();
    std::cerr << "gscalard: served " << server.requestsServed()
              << " request(s)\n"
              << defaultEngine().statsSummary() << "\n";
    return 0;
}
