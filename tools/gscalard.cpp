/**
 * @file
 * gscalard: standalone simulation daemon. Equivalent to
 * `gscalar serve` but as its own binary so deployments can ship the
 * service without the experiment drivers.
 *
 *   gscalard [--socket PATH] [--tcp HOST:PORT] [--timeout SEC]
 *            [--idle-timeout SEC] [--max-connections N]
 *            [--max-frame-bytes N] [--max-queued N]
 *            [--service-threads N] [--jobs N] [--codec NAME]
 *            [--cache] [--fault SPEC]
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "common/codec_id.hpp"
#include "common/log.hpp"
#include "compress/simd.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "gen/generator.hpp"
#include "harness/engine.hpp"
#include "serve/server.hpp"
#include "sim/parallel.hpp"

#ifndef GS_VERSION
#define GS_VERSION "0.0.0-dev"
#endif

using namespace gs;

namespace
{

void
printUsage(std::ostream &os)
{
    os <<
        "usage: gscalard [--socket PATH] [--tcp HOST:PORT]\n"
        "                [--timeout SEC] [--jobs N]\n"
        "                [--idle-timeout SEC] [--max-connections N]\n"
        "                [--max-frame-bytes N] [--max-queued N]\n"
        "                [--service-threads N] [--cache]\n"
        "                [--fault SPEC]\n"
        "\n"
        "Serves simulation requests from gscalar submit /\n"
        "GscalarClient over a unix-domain socket (and optionally TCP),\n"
        "sharing one experiment engine (worker pool + run cache)\n"
        "across every client. One epoll reactor thread owns every\n"
        "connection; duplicate in-flight requests coalesce into a\n"
        "single simulation whose response bytes fan out to every\n"
        "waiter. `gscalar submit --stats` reports live counters\n"
        "(uptime, requests, cache state, coalescing and admission\n"
        "tier, per-workload latency). SIGINT/SIGTERM drain in-flight\n"
        "requests, then exit.\n"
        "\n"
        "  --socket PATH        listen here (default $GS_SOCKET, else\n"
        "                       $XDG_RUNTIME_DIR/gscalard.sock, else\n"
        "                       /tmp/gscalard-<uid>.sock)\n"
        "  --tcp HOST:PORT      additionally listen on TCP (port 0\n"
        "                       binds an ephemeral port)\n"
        "  --timeout SEC        per-request engine budget (default\n"
        "                       600)\n"
        "  --idle-timeout SEC   close connections idle this long\n"
        "                       (default 300; <= 0 disables)\n"
        "  --max-connections N  shed further connections with an\n"
        "                       `overloaded` response (default 64;\n"
        "                       0 = unlimited)\n"
        "  --max-frame-bytes N  reject request frames above N bytes\n"
        "                       (default and ceiling 16 MiB)\n"
        "  --max-queued N       admission bound on queued flights\n"
        "                       (default 256; 0 = unbounded); overflow\n"
        "                       sheds the lowest priority band first\n"
        "  --service-threads N  threads bridging flights onto the\n"
        "                       engine (default: workers + 2)\n"
        "  --fault SPEC         inject deterministic faults\n"
        "                       (site:kind:rate[:seed], comma-\n"
        "                       separated; same as $GS_FAULT)\n"
        "  --jobs/-j N          worker pool size (or GS_JOBS=N)\n"
        "  --sim-threads N      intra-run SM threads per request\n"
        "                       (or GS_SIM_THREADS=N)\n"
        "  --codec NAME         default RF compression codec\n"
        "                       (byte-mask, bdi, static-profile,\n"
        "                       rrcd; or GS_CODEC=NAME)\n"
        "  --cache              persist runs at $GS_CACHE_DIR or the\n"
        "                       default cache directory\n";
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    GscalarServer::Options sopt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                GS_FATAL(what, " needs a value");
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            printUsage(std::cout);
            return 0;
        } else if (a == "--version" || a == "-V") {
            std::cout << "gscalard " << GS_VERSION << "\n";
            return 0;
        } else if (a == "--socket")
            sopt.socketPath = need("--socket");
        else if (a == "--tcp") {
            const std::string v = need("--tcp");
            std::string why;
            if (!parseConnectTarget(v, &why, /*allowPortZero=*/true))
                GS_FATAL("invalid --tcp value: ", why);
            sopt.tcpBind = v;
        } else if (a == "--timeout")
            sopt.requestTimeoutSec = std::stod(need("--timeout"));
        else if (a == "--idle-timeout")
            sopt.idleTimeoutSec = std::stod(need("--idle-timeout"));
        else if (a == "--max-connections")
            sopt.maxConnections =
                std::uint32_t(std::stoul(need("--max-connections")));
        else if (a == "--max-frame-bytes")
            sopt.maxFrameBytes =
                std::uint32_t(std::stoul(need("--max-frame-bytes")));
        else if (a == "--max-queued")
            sopt.maxQueuedFlights =
                std::uint32_t(std::stoul(need("--max-queued")));
        else if (a == "--service-threads")
            sopt.serviceThreads =
                unsigned(std::stoul(need("--service-threads")));
        else if (a == "--cache")
            setDefaultCacheEnabled(true);
        else if (a == "--codec") {
            const std::string v = need("--codec");
            const std::optional<CodecId> c = parseCodecId(v);
            if (!c)
                GS_FATAL("invalid --codec value '", v,
                         "' (want one of ", codecIdList(), ")");
            setDefaultCodecId(*c);
        } else if (a == "--fault" || a.rfind("--fault=", 0) == 0) {
            const std::string spec =
                a == "--fault" ? need("--fault") : a.substr(8);
            std::string ferr;
            if (!faultInjector().configure(spec, &ferr))
                GS_FATAL("--fault='", spec, "': ", ferr);
        } else if (a == "--jobs" || a == "-j") {
            const std::string v = need("--jobs");
            const std::optional<unsigned> jobs = parseJobsValue(v);
            if (!jobs)
                GS_FATAL("invalid ", a, " value '", v,
                         "' (want an integer in [1, 4096])");
            setDefaultJobs(*jobs);
        } else if (a == "--sim-threads") {
            const std::string v = need("--sim-threads");
            const std::optional<unsigned> threads =
                parseSimThreadsValue(v);
            if (!threads)
                GS_FATAL("invalid ", a, " value '", v,
                         "' (want an integer in [1, 4096])");
            setSimThreads(*threads);
        } else {
            printUsage(std::cerr);
            return 2;
        }
    }
    if (const char *env = std::getenv("GS_JOBS")) {
        if (!parseJobsValue(env))
            GS_FATAL("GS_JOBS='", env,
                     "' is not a valid worker count "
                     "(want an integer in [1, 4096])");
    }
    if (const char *env = std::getenv("GS_SIM_THREADS")) {
        if (!parseSimThreadsValue(env))
            GS_FATAL("GS_SIM_THREADS='", env,
                     "' is not a valid thread count "
                     "(want an integer in [1, 4096])");
    }
    // Validate $GS_FAULT / $GS_SIMD / $GS_CODEC now rather than at
    // the first injected seam or compressed write-back.
    faultInjector();
    activeSimdLevel();
    defaultCodecId();
    // "gen:..." workload names resolve in the standalone daemon just
    // as they do in `gscalar serve`.
    registerGenWorkloads();

    GscalarServer server(defaultEngine(), sopt);
    std::string err;
    if (!server.installSignalHandlers(&err) || !server.start(&err)) {
        std::cerr << "gscalard: " << err << "\n";
        return 1;
    }
    std::cerr << "gscalard: listening on " << server.socketPath();
    if (server.tcpPort() != 0)
        std::cerr << " and tcp port " << server.tcpPort();
    std::cerr << " (" << defaultEngine().jobs()
              << " worker(s); Ctrl-C to drain and exit)\n";
    server.wait();
    std::cerr << "gscalard: served " << server.requestsServed()
              << " request(s)\n"
              << defaultEngine().statsSummary() << "\n";
    const std::string health = healthSummary();
    if (!health.empty())
        std::cerr << health << "\n";
    return 0;
}
