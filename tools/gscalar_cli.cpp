/**
 * @file
 * Command-line driver for the G-Scalar simulator. Subcommands are
 * dispatched through a single command table (name, summary, detailed
 * help, handler) so `gscalar --help` and per-command `gscalar <cmd>
 * --help` are generated from one source of truth instead of an if/else
 * chain.
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/table.hpp"
#include "compress/simd.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "gen/fuzz.hpp"
#include "gen/generator.hpp"
#include "harness/engine.hpp"
#include "harness/experiments.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "obs/result.hpp"
#include "obs/stats.hpp"
#include "power/energy_model.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/gpu.hpp"
#include "sim/parallel.hpp"
#include "sim/trace.hpp"
#include "sweep/campaign.hpp"

#ifndef GS_VERSION
#define GS_VERSION "0.0.0-dev"
#endif

using namespace gs;

namespace
{

/** One CLI subcommand: the dispatch table entry. */
struct Command
{
    const char *name;
    const char *synopsis; ///< argument part of the usage line
    const char *summary;  ///< one line for the global usage listing
    const char *help;     ///< body of `gscalar <name> --help`
    int (*run)(int argc, char **argv);
};

const std::vector<Command> &commands();

const Command *
findCommand(const std::string &name)
{
    for (const Command &c : commands())
        if (name == c.name)
            return &c;
    return nullptr;
}

void
printUsage(std::ostream &os)
{
    os << "usage: gscalar <command> [options]\n\ncommands:\n";
    for (const Command &c : commands())
        os << "  " << std::left << std::setw(11) << c.name
           << c.summary << "\n";
    os << "\n"
          "  gscalar <command> --help shows the command's options.\n"
          "  --jobs/-j N (or GS_JOBS=N) sets the simulation worker\n"
          "  pool size; --sim-threads N (or GS_SIM_THREADS=N) ticks\n"
          "  one run's SMs on N threads (byte-identical to serial);\n"
          "  GS_SIMD=off|swar|avx2 pins the codec kernels;\n"
          "  --codec NAME (or GS_CODEC=NAME) selects the RF\n"
          "  compression codec (byte-mask, bdi, static-profile,\n"
          "  rrcd; default byte-mask); --cache\n"
          "  (or GS_CACHE_DIR=DIR) persists runs on disk;\n"
          "  GS_TRACE=path[:1/N] streams a sampled JSONL\n"
          "  event trace; GS_VERBOSE=1 prints per-run timing lines;\n"
          "  GS_FAULT=site:kind:rate[:seed] (or --fault) injects\n"
          "  deterministic faults (see docs/RELIABILITY.md and\n"
          "  docs/PERFORMANCE.md).\n"
          "modes: baseline alu-scalar warped-compression\n"
          "       gscalar-compress gscalar-nodiv gscalar\n"
          "experiments (see `gscalar bench --list`):";
    int col = 999;
    for (const Experiment &e : experiments()) {
        const int n = int(std::strlen(e.name)) + 1;
        if (col + n > 64) {
            os << "\n      ";
            col = 6;
        }
        os << " " << e.name;
        col += n;
    }
    os << "\n";
}

int
usage()
{
    printUsage(std::cerr);
    return 2;
}

void
printCommandHelp(const Command &c, std::ostream &os)
{
    os << "usage: gscalar " << c.name;
    if (c.synopsis[0] != '\0')
        os << " " << c.synopsis;
    os << "\n\n" << c.help;
}

ArchMode
parseMode(const std::string &s)
{
    for (const ArchMode m :
         {ArchMode::Baseline, ArchMode::AluScalar,
          ArchMode::WarpedCompression, ArchMode::GScalarCompressOnly,
          ArchMode::GScalarNoDiv, ArchMode::GScalarFull}) {
        if (s == archModeName(m))
            return m;
    }
    GS_FATAL("unknown mode '", s, "'");
}

struct Options
{
    /** Runs start from the --codec / $GS_CODEC selection (validated
     *  eagerly in main(); ArchConfig itself defaults to byte-mask). */
    Options() { cfg.codec = defaultCodecId(); }

    ArchConfig cfg;
    bool csv = false;
    bool json = false;
    bool power = false;
    bool stats = false;  ///< submit: query daemon counters instead
    std::string socket;  ///< submit: daemon socket path override
    std::string connect; ///< submit: TCP daemon target ("host:port")
    std::uint32_t priority = kDefaultPriority; ///< admission band
};

/** Parse trailing --flag [value] options into @p opt. */
void
parseFlags(int argc, char **argv, int first, Options &opt)
{
    for (int i = first; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                GS_FATAL(what, " needs a value");
            return argv[++i];
        };
        if (a == "--mode")
            opt.cfg.mode = parseMode(need("--mode"));
        else if (a == "--warp")
            opt.cfg.warpSize = unsigned(std::stoul(need("--warp")));
        else if (a == "--sms")
            opt.cfg.numSms = unsigned(std::stoul(need("--sms")));
        else if (a == "--seed")
            opt.cfg.seed = std::stoull(need("--seed"));
        else if (a == "--csv")
            opt.csv = true;
        else if (a == "--json")
            opt.json = true;
        else if (a == "--power")
            opt.power = true;
        else if (a == "--stats")
            opt.stats = true;
        else if (a == "--socket")
            opt.socket = need("--socket");
        else if (a == "--connect") {
            // GS_JOBS idiom: strict parse now, never a lazy failure
            // at connect time.
            const std::string v = need("--connect");
            std::string why;
            if (!parseConnectTarget(v, &why))
                GS_FATAL("invalid --connect value: ", why);
            opt.connect = v;
        } else if (a == "--priority") {
            const std::string v = need("--priority");
            char *end = nullptr;
            const unsigned long p = std::strtoul(v.c_str(), &end, 10);
            if (v.empty() || !end || *end != '\0' ||
                v.find_first_not_of("0123456789") != std::string::npos ||
                p >= kNumPriorities)
                GS_FATAL("invalid --priority value '", v,
                         "' (want an integer in [0, ",
                         kNumPriorities - 1, "])");
            opt.priority = std::uint32_t(p);
        } else if (a == "--cache")
            setDefaultCacheEnabled(true);
        else if (a == "--codec") {
            // GS_JOBS idiom: strict parse now, never a lazy failure
            // at the first compressed write-back.
            const std::string v = need("--codec");
            const std::optional<CodecId> c = parseCodecId(v);
            if (!c)
                GS_FATAL("invalid --codec value '", v,
                         "' (want one of ", codecIdList(), ")");
            opt.cfg.codec = *c;
            setDefaultCodecId(*c);
        } else if (a == "--fault" || a.rfind("--fault=", 0) == 0) {
            const std::string spec =
                a == "--fault" ? need("--fault") : a.substr(8);
            std::string ferr;
            if (!faultInjector().configure(spec, &ferr))
                GS_FATAL("--fault='", spec, "': ", ferr);
        } else if (a == "--jobs" || a == "-j") {
            const std::string v = need("--jobs");
            const std::optional<unsigned> jobs = parseJobsValue(v);
            if (!jobs)
                GS_FATAL("invalid ", a, " value '", v,
                         "' (want an integer in [1, 4096])");
            setDefaultJobs(*jobs);
        } else if (a == "--sim-threads") {
            const std::string v = need("--sim-threads");
            const std::optional<unsigned> threads =
                parseSimThreadsValue(v);
            if (!threads)
                GS_FATAL("invalid ", a, " value '", v,
                         "' (want an integer in [1, 4096])");
            setSimThreads(*threads);
        } else
            GS_FATAL("unknown option '", a, "'");
    }
}

/** Print the reliability counters to stderr when anything fired;
 *  stdout stays byte-identical to a fault-free run. */
void
printHealthSummary()
{
    const std::string h = healthSummary();
    if (!h.empty())
        stderrSink().writeLine(h);
}

/** Shared run/submit output: plain, --csv, --json, optional --power. */
void
printResult(const RunResult &r, const Options &opt)
{
    if (opt.csv) {
        std::cout << csvHeader() << "\n" << csvRow(r) << "\n";
    } else if (opt.json) {
        std::cout << toJson(r);
    } else {
        std::cout << r.workload << " @ " << archModeName(r.mode)
                  << ": cycles=" << r.ev.cycles
                  << " IPC=" << r.ev.ipc()
                  << " IPC/W=" << r.power.ipcPerWatt() << "\n";
    }
    if (opt.power)
        std::cout << r.power.describe();
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    Options opt;
    parseFlags(argc, argv, 3, opt);

    // Through the shared engine so --cache / GS_CACHE_DIR can answer
    // repeat invocations from disk instead of re-simulating.
    const RunResult r = defaultEngine().run(argv[2], opt.cfg);
    if (!r.ok())
        GS_FATAL("run ", r.workload, " failed: ", r.error);
    printResult(r, opt);
    std::cerr << throughputSummary({r}) << "\n"
              << defaultEngine().statsSummary() << "\n";
    printHealthSummary();
    return 0;
}

int
cmdSuite(int argc, char **argv)
{
    Options opt;
    parseFlags(argc, argv, 2, opt);

    const std::vector<RunResult> results =
        defaultEngine().runSuite(opt.cfg);

    if (opt.csv) {
        std::cout << toCsv(results);
    } else {
        for (const RunResult &r : results) {
            if (!r.ok()) {
                std::cout << r.workload << ": FAILED (" << r.error
                          << ")\n";
                continue;
            }
            std::cout << r.workload << ": cycles=" << r.ev.cycles
                      << " IPC=" << r.ev.ipc()
                      << " IPC/W=" << r.power.ipcPerWatt() << "\n";
        }
    }
    std::cerr << throughputSummary(results) << "\n"
              << defaultEngine().statsSummary() << "\n";
    printHealthSummary();
    return 0;
}

int
cmdBench(int argc, char **argv)
{
    initHarness(argc, argv); // --jobs/-j/--cache for the engine

    ResultFormat format = ResultFormat::Text;
    bool list = false;
    std::vector<std::string> only;
    auto addOnly = [&only](const std::string &csv) {
        std::istringstream in(csv);
        std::string name;
        while (std::getline(in, name, ','))
            if (!name.empty())
                only.push_back(name);
    };
    auto setFormat = [&format](const std::string &v) {
        const std::optional<ResultFormat> f = parseResultFormat(v);
        if (!f)
            GS_FATAL("unknown --format '", v,
                     "' (want text, json or csv)");
        format = *f;
    };
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                GS_FATAL(what, " needs a value");
            return argv[++i];
        };
        if (a == "--list")
            list = true;
        else if (a.rfind("--only=", 0) == 0)
            addOnly(a.substr(7));
        else if (a == "--only")
            addOnly(need("--only"));
        else if (a.rfind("--format=", 0) == 0)
            setFormat(a.substr(9));
        else if (a == "--format")
            setFormat(need("--format"));
        else if (a == "--cache")
            continue; // consumed by initHarness
        else if (a.rfind("--fault=", 0) == 0)
            continue; // consumed by initHarness
        else if (a == "--fault" || a == "--jobs" || a == "-j" ||
                 a == "--sim-threads" || a == "--codec")
            ++i; // value consumed by initHarness
        else
            GS_FATAL("unknown option '", a,
                     "' (see `gscalar bench --help`)");
    }

    if (list) {
        std::size_t nameW = 4, tagW = 3;
        for (const Experiment &e : experiments()) {
            nameW = std::max(nameW, std::strlen(e.name));
            tagW = std::max(tagW, std::strlen(e.tag));
        }
        for (const Experiment &e : experiments())
            std::cout << std::left << std::setw(int(nameW) + 2)
                      << e.name << std::setw(int(tagW) + 2) << e.tag
                      << e.description << "\n";
        return 0;
    }

    std::vector<const Experiment *> selected;
    if (only.empty()) {
        // The no-flag run is the golden reference sequence; opt-out
        // experiments (codec micro/shootout) need --only.
        for (const Experiment &e : experiments())
            if (e.inDefaultRun)
                selected.push_back(&e);
    } else {
        for (const std::string &name : only) {
            const Experiment *e = findExperiment(name);
            if (!e)
                GS_FATAL("unknown experiment '", name,
                         "' (see `gscalar bench --list`)");
            selected.push_back(e);
        }
    }

    const ArchConfig cfg = experimentConfig();
    const auto sink = makeResultSink(format, std::cout);
    for (const Experiment *e : selected)
        e->run(defaultEngine(), cfg, *sink);
    stderrSink().writeLine(defaultEngine().statsSummary());
    printHealthSummary();
    return 0;
}

int
cmdDisasm(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const Workload w = makeWorkload(argv[2]);
    for (const WorkloadLaunch &l : w.launches) {
        std::cout << l.kernel.disassemble() << "launch <<<" << l.dims.ctas
                  << ", " << l.dims.threadsPerCta << ">>>\n";
    }
    return 0;
}

int
cmdTrace(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    ArchConfig cfg;
    cfg.numSms = 1; // single SM keeps the interleaving readable
    unsigned lines = 120;
    for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--mode" && i + 1 < argc)
            cfg.mode = parseMode(argv[++i]);
        else if (a == "--lines" && i + 1 < argc)
            lines = unsigned(std::stoul(argv[++i]));
        else
            GS_FATAL("unknown option '", a, "'");
    }

    const Workload w = makeWorkload(argv[2]);
    Gpu gpu(cfg);
    if (w.setup)
        w.setup(gpu.memory(), cfg.seed);

    std::ostringstream os;
    TextTracer tracer(os);
    gpu.setTracer(&tracer);
    gpu.launch(w.launches.front().kernel, w.launches.front().dims);

    // Print the first N lines of the trace.
    std::istringstream in(os.str());
    std::string line;
    for (unsigned n = 0; n < lines && std::getline(in, line); ++n)
        std::cout << line << "\n";
    return 0;
}

int
cmdExperiment(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    initHarness(argc, argv); // --jobs/-j for the experiment engine
    const ArchConfig cfg = experimentConfig();

    // One process may run several experiments ("fig1 fig8 fig9 ..."
    // or "all"): the shared run cache then simulates each (workload,
    // config) once across all of them.
    std::vector<std::string> names;
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--jobs" || a == "-j" || a == "--fault" ||
            a == "--sim-threads" || a == "--codec") {
            ++i; // value consumed by initHarness
            continue;
        }
        if (a == "--cache" || a.rfind("--fault=", 0) == 0)
            continue;
        if (a == "all") {
            for (const Experiment &e : experiments())
                if (e.inDefaultRun)
                    names.push_back(e.name);
        } else {
            names.push_back(a);
        }
    }
    if (names.empty())
        return usage();
    for (const std::string &name : names) {
        const Experiment *e = findExperiment(name);
        if (!e)
            GS_FATAL("unknown experiment '", name,
                     "' (see `gscalar bench --list`)");
        std::cout << e->build(defaultEngine(), cfg).text << std::endl;
    }
    std::cerr << defaultEngine().statsSummary() << "\n";
    return 0;
}

int
cmdServe(int argc, char **argv)
{
    GscalarServer::Options sopt;
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                GS_FATAL(what, " needs a value");
            return argv[++i];
        };
        if (a == "--socket")
            sopt.socketPath = need("--socket");
        else if (a == "--tcp") {
            const std::string v = need("--tcp");
            std::string why;
            if (!parseConnectTarget(v, &why, /*allowPortZero=*/true))
                GS_FATAL("invalid --tcp value: ", why);
            sopt.tcpBind = v;
        } else if (a == "--timeout")
            sopt.requestTimeoutSec = std::stod(need("--timeout"));
        else if (a == "--idle-timeout")
            sopt.idleTimeoutSec = std::stod(need("--idle-timeout"));
        else if (a == "--max-connections")
            sopt.maxConnections =
                std::uint32_t(std::stoul(need("--max-connections")));
        else if (a == "--max-frame-bytes")
            sopt.maxFrameBytes =
                std::uint32_t(std::stoul(need("--max-frame-bytes")));
        else if (a == "--max-queued")
            sopt.maxQueuedFlights =
                std::uint32_t(std::stoul(need("--max-queued")));
        else if (a == "--service-threads")
            sopt.serviceThreads =
                unsigned(std::stoul(need("--service-threads")));
        else if (a == "--cache")
            setDefaultCacheEnabled(true);
        else if (a == "--codec") {
            // Daemon-side default for runs whose request predates the
            // codec field; validated at startup, never at admission.
            const std::string v = need("--codec");
            const std::optional<CodecId> c = parseCodecId(v);
            if (!c)
                GS_FATAL("invalid --codec value '", v,
                         "' (want one of ", codecIdList(), ")");
            setDefaultCodecId(*c);
        } else if (a == "--fault" || a.rfind("--fault=", 0) == 0) {
            const std::string spec =
                a == "--fault" ? need("--fault") : a.substr(8);
            std::string ferr;
            if (!faultInjector().configure(spec, &ferr))
                GS_FATAL("--fault='", spec, "': ", ferr);
        } else if (a == "--jobs" || a == "-j") {
            const std::string v = need("--jobs");
            const std::optional<unsigned> jobs = parseJobsValue(v);
            if (!jobs)
                GS_FATAL("invalid ", a, " value '", v,
                         "' (want an integer in [1, 4096])");
            setDefaultJobs(*jobs);
        } else if (a == "--sim-threads") {
            const std::string v = need("--sim-threads");
            const std::optional<unsigned> threads =
                parseSimThreadsValue(v);
            if (!threads)
                GS_FATAL("invalid ", a, " value '", v,
                         "' (want an integer in [1, 4096])");
            setSimThreads(*threads);
        } else
            GS_FATAL("unknown option '", a, "'");
    }

    GscalarServer server(defaultEngine(), sopt);
    std::string err;
    if (!server.installSignalHandlers(&err) || !server.start(&err)) {
        std::cerr << "gscalard: " << err << "\n";
        return 1;
    }
    std::cerr << "gscalard: listening on " << server.socketPath();
    if (server.tcpPort() != 0)
        std::cerr << " and tcp port " << server.tcpPort();
    std::cerr << " (" << defaultEngine().jobs()
              << " worker(s); Ctrl-C to drain and exit)\n";
    server.wait();
    std::cerr << "gscalard: served " << server.requestsServed()
              << " request(s)\n"
              << defaultEngine().statsSummary() << "\n";
    printHealthSummary();
    return 0;
}

/** Render `gscalar submit --stats` output (text or --json). */
void
printDaemonStats(const DaemonStats &s, bool json)
{
    if (json) {
        std::ostringstream os;
        os << "{\"schema\": \"gscalar.stats.v1\""
           << ", \"uptime_seconds\": " << s.uptimeSeconds
           << ", \"requests_served\": " << s.requestsServed
           << ", \"active_connections\": " << s.activeConnections
           << ", \"jobs\": " << s.jobs
           << ", \"queue_depth\": " << s.queueDepth
           << ", \"peak_queue_depth\": " << s.peakQueueDepth
           << ", \"cache_hits\": " << s.cacheHits
           << ", \"cache_misses\": " << s.cacheMisses
           << ", \"disk_cache_hits\": " << s.diskCacheHits
           << ", \"disk_cache_stores\": " << s.diskCacheStores
           << ", \"sim_wall_seconds\": " << s.simWallSeconds
           << ", \"sim_cycles\": " << s.simCycles
           << ", \"warp_insts\": " << s.warpInsts
           << ", \"overloads\": " << s.overloads
           << ", \"idle_closes\": " << s.idleCloses
           << ", \"frame_rejects\": " << s.frameRejects
           << ", \"coalesce_leaders\": " << s.coalesceLeaders
           << ", \"coalesce_followers\": " << s.coalesceFollowers
           << ", \"coalesce_promotions\": " << s.coalescePromotions
           << ", \"batches\": " << s.batches
           << ", \"batch_peak\": " << s.batchPeak
           << ", \"queue_sheds\": " << s.queueSheds
           << ", \"queue_depths\": [" << s.queueDepths[0] << ", "
           << s.queueDepths[1] << ", " << s.queueDepths[2] << "]"
           << ", \"queue_peaks\": [" << s.queuePeaks[0] << ", "
           << s.queuePeaks[1] << ", " << s.queuePeaks[2] << "]"
           << ", \"reactor_loop_count\": " << s.reactorLoop.count()
           << ", \"reactor_loop_mean_seconds\": "
           << s.reactorLoop.meanSeconds()
           << ", \"reactor_loop_max_seconds\": "
           << s.reactorLoop.maxSeconds()
           << ", \"workloads\": [";
        bool first = true;
        for (const WorkloadLatency &wl : s.workloads) {
            if (!first)
                os << ", ";
            first = false;
            os << "{\"workload\": \"" << jsonEscape(wl.workload)
               << "\", \"count\": " << wl.latency.count()
               << ", \"mean_seconds\": " << wl.latency.meanSeconds()
               << ", \"max_seconds\": " << wl.latency.maxSeconds()
               << "}";
        }
        os << "]}";
        std::cout << os.str() << "\n";
        return;
    }

    std::cout << "gscalard: up " << Table::num(s.uptimeSeconds, 1)
              << "s, served " << s.requestsServed << " request(s), "
              << s.activeConnections << " open connection(s)\n"
              << "engine: " << s.jobs << " worker(s), queue "
              << s.queueDepth << " (peak " << s.peakQueueDepth
              << "); memo cache " << s.cacheHits << " hit(s) / "
              << s.cacheMisses << " miss(es), disk " << s.diskCacheHits
              << " hit(s) / " << s.diskCacheStores << " store(s)\n"
              << "simulated " << s.simCycles << " cycles, "
              << s.warpInsts << " warp-insts in "
              << Table::num(s.simWallSeconds, 2)
              << "s of simulate time\n";
    std::cout << "coalescing: " << s.coalesceLeaders
              << " flight(s) computed, " << s.coalesceFollowers
              << " follower(s) shared one, " << s.coalescePromotions
              << " promotion(s); " << s.batches << " batch(es), peak "
              << s.batchPeak << " request(s)\n"
              << "admission: queued " << s.queueDepths[0] << "/"
              << s.queueDepths[1] << "/" << s.queueDepths[2]
              << " by band (peaks " << s.queuePeaks[0] << "/"
              << s.queuePeaks[1] << "/" << s.queuePeaks[2] << "), "
              << s.queueSheds << " queue shed(s)\n";
    if (s.reactorLoop.count() > 0)
        std::cout << "reactor loop: " << s.reactorLoop.summary()
                  << "\n";
    if (s.overloads || s.idleCloses || s.frameRejects)
        std::cout << "shed load: " << s.overloads
                  << " overloaded connection(s), " << s.idleCloses
                  << " idle close(s), " << s.frameRejects
                  << " oversized frame(s)\n";
    if (s.workloads.empty()) {
        std::cout << "request latency: (no requests served yet)\n";
        return;
    }
    std::cout << "request latency:\n";
    std::size_t w = 0;
    for (const WorkloadLatency &wl : s.workloads)
        w = std::max(w, wl.workload.size());
    for (const WorkloadLatency &wl : s.workloads)
        std::cout << "  " << std::left << std::setw(int(w) + 2)
                  << wl.workload << wl.latency.summary() << "\n";
}

int
cmdSubmit(int argc, char **argv)
{
    // `submit --stats` carries no workload argument; detect it before
    // deciding whether argv[2] is the benchmark name.
    const bool statsOnly =
        argc >= 3 && std::strcmp(argv[2], "--stats") == 0;
    if (!statsOnly && argc < 3)
        return usage();

    Options opt;
    parseFlags(argc, argv, statsOnly ? 2 : 3, opt);

    // Target resolution: explicit --connect beats $GS_CONNECT beats
    // the unix socket. The environment value is validated whenever it
    // is set (GS_JOBS idiom), even when --connect shadows it.
    std::optional<ConnectTarget> target;
    if (const char *env = std::getenv("GS_CONNECT"); env && *env) {
        std::string why;
        target = parseConnectTarget(env, &why);
        if (!target)
            GS_FATAL("GS_CONNECT: ", why);
    }
    if (!opt.connect.empty())
        target = parseConnectTarget(opt.connect);

    GscalarClient client =
        target ? GscalarClient(*target) : GscalarClient(opt.socket);
    std::string err;
    if (opt.stats) {
        const std::optional<DaemonStats> s = client.stats(&err);
        if (!s) {
            std::cerr << "gscalar submit: " << err << "\n";
            return 1;
        }
        printDaemonStats(*s, opt.json);
        return 0;
    }

    const std::optional<RunResult> r =
        client.run(argv[2], opt.cfg, &err, opt.priority);
    if (!r) {
        std::cerr << "gscalar submit: " << err << "\n";
        return 1;
    }
    printResult(*r, opt);
    return 0;
}

int
cmdFuzz(int argc, char **argv)
{
    initHarness(argc, argv); // --jobs/--sim-threads/--cache/--fault

    FuzzOptions opt;
    // Environment defaults are validated even when a flag overrides
    // them (GS_JOBS idiom: a malformed value is a configuration error,
    // never silently shadowed).
    if (const char *env = std::getenv("GS_FUZZ_COUNT")) {
        const std::optional<std::uint64_t> v = parseCountValue(env);
        if (!v)
            GS_FATAL("GS_FUZZ_COUNT='", env,
                     "' is not a valid kernel count "
                     "(want an integer in [1, 1000000])");
        opt.count = *v;
    }
    if (const char *env = std::getenv("GS_FUZZ_SEED")) {
        const std::optional<std::uint64_t> v = parseSeedValue(env);
        if (!v)
            GS_FATAL("GS_FUZZ_SEED='", env,
                     "' is not a valid campaign seed "
                     "(want a non-negative integer)");
        opt.seed = *v;
    }
    if (const char *env = std::getenv("GS_FUZZ_CORPUS"); env && *env)
        opt.corpusDir = env;

    std::string replayPath;
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                GS_FATAL(what, " needs a value");
            return argv[++i];
        };
        if (a == "--count") {
            const std::string v = need("--count");
            const std::optional<std::uint64_t> count =
                parseCountValue(v);
            if (!count)
                GS_FATAL("invalid --count value '", v,
                         "' (want an integer in [1, 1000000])");
            opt.count = *count;
        } else if (a == "--seed") {
            const std::string v = need("--seed");
            const std::optional<std::uint64_t> seed =
                parseSeedValue(v);
            if (!seed)
                GS_FATAL("invalid --seed value '", v,
                         "' (want a non-negative integer)");
            opt.seed = *seed;
        } else if (a == "--knob") {
            const std::string v = need("--knob");
            const std::size_t eq = v.find('=');
            if (eq == std::string::npos || eq == 0)
                GS_FATAL("--knob wants knob=value, got '", v, "'");
            const std::string knob = v.substr(0, eq);
            const std::string value = v.substr(eq + 1);
            // Validate name and value now; drawSpec re-applies the pin
            // per kernel.
            GenSpec scratch;
            std::string why;
            if (!setGenKnob(scratch, knob, value, &why))
                GS_FATAL("--knob '", v, "': ", why);
            opt.knobs.emplace_back(knob, value);
        } else if (a == "--corpus") {
            opt.corpusDir = need("--corpus");
        } else if (a == "--modes") {
            opt.diff.modes.clear();
            std::istringstream in(need("--modes"));
            std::string name;
            while (std::getline(in, name, ','))
                if (!name.empty())
                    opt.diff.modes.push_back(parseMode(name));
            if (opt.diff.modes.empty())
                GS_FATAL("--modes wants a comma-separated mode list");
        } else if (a == "--replay") {
            replayPath = need("--replay");
        } else if (a == "--no-engine") {
            opt.engineTraffic = false;
        } else if (a == "--cache" || a.rfind("--fault=", 0) == 0) {
            continue; // consumed by initHarness
        } else if (a == "--fault" || a == "--jobs" || a == "-j" ||
                   a == "--sim-threads" || a == "--codec") {
            ++i; // value consumed by initHarness
        } else {
            GS_FATAL("unknown option '", a,
                     "' (see `gscalar fuzz --help`)");
        }
    }

    if (!replayPath.empty()) {
        std::string detail;
        const bool reproduced =
            replayReproducer(replayPath, opt.diff, &detail);
        std::cout << (reproduced ? "replay: " : "replay FAILED: ")
                  << detail << "\n";
        printHealthSummary();
        return reproduced ? 0 : 1;
    }

    const FuzzCampaignResult result = runFuzzCampaign(opt);
    for (const std::string &line : result.reportLines)
        std::cout << line << "\n";
    std::cout << result.summaryText << "\n";
    std::cerr << defaultEngine().statsSummary() << "\n";
    printHealthSummary();
    return result.clean() ? 0 : 1;
}

int
cmdSweep(int argc, char **argv)
{
    initHarness(argc, argv); // --jobs/--sim-threads/--cache/--fault

    SweepOptions sopt;
    ResultFormat format = ResultFormat::Text;
    bool expandOnly = false;
    std::string manifestPath;
    auto setFormat = [&format](const std::string &v) {
        const std::optional<ResultFormat> f = parseResultFormat(v);
        if (!f)
            GS_FATAL("unknown --format '", v,
                     "' (want text, json or csv)");
        format = *f;
    };
    // Strict unsigned parse (GS_JOBS idiom): malformed cadence/retry
    // values are configuration errors, never silent defaults.
    auto parseUint = [](const std::string &v, const char *what,
                        std::uint64_t lo,
                        std::uint64_t hi) -> std::uint64_t {
        char *end = nullptr;
        errno = 0;
        const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
        if (v.empty() || !end || *end != '\0' || errno != 0 ||
            v.find_first_not_of("0123456789") != std::string::npos ||
            n < lo || n > hi)
            GS_FATAL("invalid ", what, " value '", v,
                     "' (want an integer in [", lo, ", ", hi, "])");
        return n;
    };
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                GS_FATAL(what, " needs a value");
            return argv[++i];
        };
        if (a == "--resume")
            sopt.resume = true;
        else if (a == "--expand")
            expandOnly = true;
        else if (a == "--dir")
            sopt.sweepDir = need("--dir");
        else if (a.rfind("--format=", 0) == 0)
            setFormat(a.substr(9));
        else if (a == "--format")
            setFormat(need("--format"));
        else if (a == "--socket")
            sopt.socketPath = need("--socket");
        else if (a == "--connect") {
            // GS_JOBS idiom: strict parse now, never a lazy failure
            // at the first submit.
            const std::string v = need("--connect");
            std::string why;
            const std::optional<ConnectTarget> t =
                parseConnectTarget(v, &why);
            if (!t)
                GS_FATAL("invalid --connect value: ", why);
            sopt.tcp = t;
        } else if (a == "--attempts")
            sopt.pointAttempts =
                unsigned(parseUint(need("--attempts"), "--attempts",
                                   1, 100));
        else if (a == "--progress")
            sopt.progressEvery =
                parseUint(need("--progress"), "--progress", 1,
                          std::numeric_limits<std::uint64_t>::max());
        else if (a == "--cache" || a.rfind("--fault=", 0) == 0)
            continue; // consumed by initHarness
        else if (a == "--fault" || a == "--jobs" || a == "-j" ||
                 a == "--sim-threads" || a == "--codec")
            ++i; // value consumed by initHarness
        else if (!a.empty() && a[0] == '-')
            GS_FATAL("unknown option '", a,
                     "' (see `gscalar sweep --help`)");
        else if (manifestPath.empty())
            manifestPath = a;
        else
            GS_FATAL("unexpected argument '", a,
                     "' (one manifest per sweep)");
    }
    if (manifestPath.empty())
        return usage();

    std::string err;
    const std::optional<SweepManifest> manifest =
        SweepManifest::load(manifestPath, &err);
    if (!manifest)
        GS_FATAL("sweep manifest ", manifestPath, ": ", err);

    if (expandOnly) {
        // Dry run: show what the campaign would simulate, never touch
        // the sweep directory.
        const std::optional<std::vector<SweepPoint>> points =
            manifest->expand(&err);
        if (!points)
            GS_FATAL("sweep manifest ", manifestPath, ": ", err);
        std::cout << "campaign " << manifest->campaignId() << ": "
                  << points->size() << " point(s)\n";
        for (const SweepPoint &p : *points) {
            std::ostringstream os;
            os << std::hex << std::setfill('0') << std::setw(16)
               << p.fingerprint();
            std::cout << p.index << "  " << os.str() << "  "
                      << p.workload << "  " << p.label() << "\n";
        }
        return 0;
    }

    const SweepOutcome outcome = runSweepCampaign(*manifest, sopt);
    makeResultSink(format, std::cout)->emit(outcome.aggregate);
    stderrSink().writeLine(defaultEngine().statsSummary());
    printHealthSummary();
    return outcome.ok() ? 0 : 1;
}

int
cmdConfig(int, char **)
{
    std::cout << experimentConfig().describe();
    return 0;
}

int
cmdList(int, char **)
{
    for (const auto &n : workloadNames())
        std::cout << n << "\n";
    return 0;
}

const std::vector<Command> &
commands()
{
    static const std::vector<Command> table = {
        {"run", "<BENCH> [options]",
         "simulate one benchmark and print its counters",
         "  --mode M     architecture (default baseline)\n"
         "  --warp N     warp size\n"
         "  --sms N      SM count\n"
         "  --seed S     input-data seed\n"
         "  --codec C    RF compression codec (byte-mask, bdi,\n"
         "               static-profile, rrcd; GS_CODEC)\n"
         "  --csv        per-run counter row (with header)\n"
         "  --json       flat JSON object of every metric\n"
         "  --power      append the power breakdown\n"
         "  --jobs/-j N  worker pool size\n"
         "  --sim-threads N  intra-run SM threads (GS_SIM_THREADS)\n"
         "  --cache      persist runs on disk (GS_CACHE_DIR)\n",
         cmdRun},
        {"suite", "[options]",
         "simulate the whole Table 2 suite",
         "  --mode M     architecture (default baseline)\n"
         "  --csv        full counter matrix as CSV\n"
         "  --jobs/-j N  worker pool size\n"
         "  --sim-threads N  intra-run SM threads (GS_SIM_THREADS)\n"
         "  --cache      persist runs on disk\n",
         cmdSuite},
        {"bench", "[--list] [--only=NAME[,NAME]] [--format=F]",
         "run registered experiments (all of them by default)",
         "  --list          show every experiment (name, paper tag,\n"
         "                  description) and exit\n"
         "  --only=N[,N]    run a subset by registry name\n"
         "  --format=F      text (default; golden reference bytes),\n"
         "                  json (one document per experiment) or csv\n"
         "  --jobs/-j N     worker pool size\n"
         "  --sim-threads N intra-run SM threads (GS_SIM_THREADS)\n"
         "  --codec C       RF compression codec (GS_CODEC)\n"
         "  --cache         persist runs on disk\n"
         "  --fault SPEC    inject faults (site:kind:rate[:seed],\n"
         "                  comma-separated; same as $GS_FAULT)\n"
         "\n"
         "  With no --only the full registry runs in reference order,\n"
         "  so `gscalar bench` reproduces docs/bench_reference_output\n"
         "  .txt byte for byte on stdout (engine stats go to stderr).\n",
         cmdBench},
        {"disasm", "<BENCH>",
         "disassemble a benchmark's kernels",
         "  Prints every kernel of the workload plus its launch\n"
         "  geometry.\n",
         cmdDisasm},
        {"trace", "<BENCH> [--mode M] [--lines N]",
         "print the first lines of an issue-level text trace",
         "  --mode M    architecture (default baseline)\n"
         "  --lines N   lines to print (default 120)\n"
         "\n"
         "  For machine-readable traces of full runs use\n"
         "  GS_TRACE=path[:1/N] (sampled JSONL) on any command.\n",
         cmdTrace},
        {"experiment", "<name>... | all",
         "print experiment tables (text; see bench for formats)",
         "  Runs one or more registry experiments in the order given\n"
         "  and prints their tables; `all` expands to the whole\n"
         "  registry. Names are listed by `gscalar bench --list`.\n"
         "  --jobs/-j N  worker pool size\n"
         "  --cache      persist runs on disk\n",
         cmdExperiment},
        {"serve", "[--socket PATH] [--tcp HOST:PORT] [limits]",
         "run the gscalard simulation daemon",
         "  --socket PATH          unix socket (default $GS_SOCKET or\n"
         "                         $XDG_RUNTIME_DIR/gscalard.sock)\n"
         "  --tcp HOST:PORT        additionally listen on TCP (port 0\n"
         "                         binds an ephemeral port)\n"
         "  --timeout SEC          per-request engine budget\n"
         "                         (default 600)\n"
         "  --idle-timeout SEC     close connections idle this long\n"
         "                         (default 300; <= 0 disables)\n"
         "  --max-connections N    shed further connections with an\n"
         "                         `overloaded` response (default 64;\n"
         "                         0 = unlimited)\n"
         "  --max-frame-bytes N    reject request frames above N bytes\n"
         "                         (default and ceiling 16 MiB)\n"
         "  --max-queued N         admission bound on queued flights\n"
         "                         across the priority bands (default\n"
         "                         256; 0 = unbounded); overflow sheds\n"
         "                         the lowest band first\n"
         "  --service-threads N    threads bridging flights onto the\n"
         "                         engine (default: workers + 2)\n"
         "  --fault SPEC           inject faults (same as $GS_FAULT)\n"
         "  --jobs/-j N            worker pool size\n"
         "  --sim-threads N        intra-run SM threads per request\n"
         "  --codec C              default RF codec (GS_CODEC)\n"
         "  --cache                persist runs on disk\n"
         "\n"
         "  One epoll reactor thread owns every connection; duplicate\n"
         "  in-flight requests coalesce into a single simulation.\n"
         "  Clients reach it with `gscalar submit`; `gscalar submit\n"
         "  --stats` reports its live counters.\n",
         cmdServe},
        {"submit", "<BENCH> [options] | --stats [--json]",
         "send a run (or a stats probe) to a gscalard",
         "  <BENCH> [run flags]  submit one run; accepts the same\n"
         "                       --mode/--warp/--sms/--seed/--csv/\n"
         "                       --json/--power flags as `run`\n"
         "  --stats              fetch the daemon's live counters:\n"
         "                       uptime, requests served, engine pool\n"
         "                       and cache state, coalescing/admission\n"
         "                       tier, per-workload request latency\n"
         "  --json               machine-readable stats document\n"
         "  --socket PATH        daemon socket path\n"
         "  --connect HOST:PORT  reach a TCP daemon instead of the\n"
         "                       unix socket (or $GS_CONNECT; the\n"
         "                       flag wins)\n"
         "  --priority N         admission band 0..2 (default 1);\n"
         "                       0 is shed first under overload\n",
         cmdSubmit},
        {"fuzz", "[--count N] [--seed S] [--knob k=v]... [options]",
         "differential-fuzz generated kernels across all modes",
         "  --count N       kernels to generate (default 100;\n"
         "                  GS_FUZZ_COUNT)\n"
         "  --seed S        campaign seed (default 1; GS_FUZZ_SEED)\n"
         "  --knob k=v      pin one generator knob for every kernel\n"
         "                  (knobs: seed ops ctas tpc div pred scalar\n"
         "                  affine stride ind sfu shared); repeatable\n"
         "  --corpus DIR    write minimized reproducer artifacts here\n"
         "                  (GS_FUZZ_CORPUS)\n"
         "  --modes M[,M]   architecture modes to diff (default all)\n"
         "  --replay PATH   replay one reproducer artifact instead of\n"
         "                  running a campaign; exit 0 iff the recorded\n"
         "                  mismatch reproduces\n"
         "  --no-engine     skip the ExperimentEngine traffic leg\n"
         "  --jobs/-j N     diff worker threads\n"
         "  --sim-threads N intra-run SM threads (GS_SIM_THREADS)\n"
         "  --codec C       RF codec for the compression modes\n"
         "                  (GS_CODEC)\n"
         "  --fault SPEC    inject faults (gen:miscompare exercises\n"
         "                  the minimize/artifact path end to end)\n"
         "\n"
         "  Every generated kernel runs through the cycle-level GPU in\n"
         "  each mode and the per-thread reference interpreter; any\n"
         "  disagreement is delta-debugged to a minimal reproducer.\n"
         "  Campaigns are deterministic: same seed and knobs, same\n"
         "  kernels and same stdout bytes, at any --jobs or\n"
         "  --sim-threads. Exit 0 iff no kernel miscompared.\n",
         cmdFuzz},
        {"sweep", "<MANIFEST.json> [--resume] [--expand] [options]",
         "run a journaled multi-point campaign from a manifest",
         "  <MANIFEST.json>  gscalar.sweep.v1 manifest: a `base` knob\n"
         "                   object plus `axes` (knob, values) swept\n"
         "                   as an odometer (last axis fastest)\n"
         "  --resume         replay journaled points and compute only\n"
         "                   the remainder; the final table is byte-\n"
         "                   identical to an uninterrupted run\n"
         "  --expand         print the expanded points (index,\n"
         "                   fingerprint, workload, labels) and exit\n"
         "                   without simulating\n"
         "  --dir DIR        campaign root (default $GS_SWEEP_DIR or\n"
         "                   <cache dir>/sweeps); campaigns live at\n"
         "                   DIR/<campaign-id>/\n"
         "  --socket PATH    schedule points through the gscalard at\n"
         "                   this unix socket\n"
         "  --connect H:P    schedule points through a TCP gscalard;\n"
         "                   after 3 consecutive submit failures the\n"
         "                   campaign degrades to in-process execution\n"
         "  --attempts N     attempts per point before it is reported\n"
         "                   FAILED (default 3)\n"
         "  --progress N     progress line every N completed points\n"
         "                   (default ~10 lines per campaign)\n"
         "  --format F       text (default), json or csv\n"
         "  --jobs/-j N      worker pool size\n"
         "  --sim-threads N  intra-run SM threads (GS_SIM_THREADS)\n"
         "  --cache          persist runs on disk (GS_CACHE_DIR)\n"
         "  --fault SPEC     inject faults; sweep sites:\n"
         "                   journal-torn-write, journal-bit-flip,\n"
         "                   point-crash, daemon-lost\n"
         "\n"
         "  Every completed point is appended to a checksummed journal\n"
         "  (journal.jsonl) under the campaign directory, so a campaign\n"
         "  killed mid-flight (even SIGKILL) resumes with --resume:\n"
         "  corrupt records are quarantined and recomputed, completed\n"
         "  points are never re-simulated. Knobs: workload, mode,\n"
         "  codec, warp, sms, seed, check-granularity, scalar-banks,\n"
         "  half-reg, smov, compiler-smov, scalar-occupancy,\n"
         "  max-cycles. See docs/RELIABILITY.md.\n",
         cmdSweep},
        {"config", "",
         "print the Table 1 experiment configuration",
         "  Prints the baseline GTX 480 configuration every\n"
         "  experiment starts from.\n",
         cmdConfig},
        {"list", "",
         "list benchmark abbreviations",
         "  Prints the Table 2 workload abbreviations accepted by\n"
         "  run/disasm/trace/submit.\n",
         cmdList},
    };
    return table;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        if (argc >= 3) {
            if (const Command *c = findCommand(argv[2])) {
                printCommandHelp(*c, std::cout);
                return 0;
            }
        }
        printUsage(std::cout);
        return 0;
    }
    if (cmd == "--version" || cmd == "-V" || cmd == "version") {
        std::cout << "gscalar " << GS_VERSION << "\n";
        return 0;
    }
    // Reject malformed GS_JOBS up front for every subcommand rather
    // than silently simulating on a default-sized pool.
    if (const char *env = std::getenv("GS_JOBS")) {
        if (!parseJobsValue(env))
            GS_FATAL("GS_JOBS='", env,
                     "' is not a valid worker count "
                     "(want an integer in [1, 4096])");
    }
    if (const char *env = std::getenv("GS_SIM_THREADS")) {
        if (!parseSimThreadsValue(env))
            GS_FATAL("GS_SIM_THREADS='", env,
                     "' is not a valid thread count "
                     "(want an integer in [1, 4096])");
    }
    // Likewise force GS_FAULT / GS_SIMD / GS_CODEC validation before
    // any work starts.
    faultInjector();
    activeSimdLevel();
    defaultCodecId();
    // "gen:..." workload names resolve everywhere (run, disasm,
    // submit, fuzz) once the generator's resolver is installed.
    registerGenWorkloads();
    const Command *c = findCommand(cmd);
    if (!c) {
        std::cerr << "gscalar: unknown command '" << cmd << "'\n\n";
        return usage();
    }
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            printCommandHelp(*c, std::cout);
            return 0;
        }
    }
    return c->run(argc, argv);
}
