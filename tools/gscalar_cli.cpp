/**
 * @file
 * Command-line driver for the G-Scalar simulator.
 *
 *   gscalar run <BENCH> [--mode M] [--warp N] [--sms N] [--seed S]
 *                        [--csv] [--json] [--power]
 *   gscalar suite [--mode M] [--csv]
 *   gscalar disasm <BENCH>
 *   gscalar experiment <fig1|fig8|fig9|fig10|fig11|fig12|table3|
 *                       ratio|smov|banks|compiler|occupancy|half|affine>
 *   gscalar serve [--socket PATH] [--timeout SEC]
 *   gscalar submit <BENCH> [--socket PATH] [run flags]
 *   gscalar config
 *   gscalar list
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <sstream>

#include "common/log.hpp"
#include "harness/engine.hpp"
#include "harness/experiments.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "power/energy_model.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/gpu.hpp"
#include "sim/trace.hpp"

#ifndef GS_VERSION
#define GS_VERSION "0.0.0-dev"
#endif

using namespace gs;

namespace
{

void
printUsage(std::ostream &os)
{
    os <<
        "usage:\n"
        "  gscalar run <BENCH> [--mode M] [--warp N] [--sms N]\n"
        "              [--seed S] [--csv] [--json] [--power]\n"
        "  gscalar suite [--mode M] [--csv] [--jobs N]\n"
        "  gscalar disasm <BENCH>\n"
        "  gscalar trace <BENCH> [--mode M] [--lines N]\n"
        "  gscalar experiment <name>... [--jobs N]   (or 'all')\n"
        "  gscalar serve [--socket PATH] [--timeout SEC] [--jobs N]\n"
        "  gscalar submit <BENCH> [--socket PATH] [run flags]\n"
        "  gscalar config\n"
        "  gscalar list\n"
        "  gscalar --help | --version\n"
        "\n"
        "  --jobs/-j N (or GS_JOBS=N) sets the simulation worker pool\n"
        "  size; default is the host's hardware concurrency.\n"
        "  --cache (or GS_CACHE_DIR=DIR) persists finished runs on disk\n"
        "  so later processes reuse them; gscalar serve exposes one\n"
        "  shared engine to many clients over a unix socket (submit\n"
        "  talks to it).\n"
        "modes: baseline alu-scalar warped-compression gscalar-compress\n"
        "       gscalar-nodiv gscalar\n"
        "experiments: fig1 fig8 fig9 fig10 fig11 fig12 table3 ratio\n"
        "             smov banks compiler occupancy half affine\n"
        "             bankcount warpwidth\n";
}

int
usage()
{
    printUsage(std::cerr);
    return 2;
}

ArchMode
parseMode(const std::string &s)
{
    for (const ArchMode m :
         {ArchMode::Baseline, ArchMode::AluScalar,
          ArchMode::WarpedCompression, ArchMode::GScalarCompressOnly,
          ArchMode::GScalarNoDiv, ArchMode::GScalarFull}) {
        if (s == archModeName(m))
            return m;
    }
    GS_FATAL("unknown mode '", s, "'");
}

struct Options
{
    ArchConfig cfg;
    bool csv = false;
    bool json = false;
    bool power = false;
    std::string socket; ///< submit: daemon socket path override
};

/** Parse trailing --flag [value] options into @p opt. */
void
parseFlags(int argc, char **argv, int first, Options &opt)
{
    for (int i = first; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                GS_FATAL(what, " needs a value");
            return argv[++i];
        };
        if (a == "--mode")
            opt.cfg.mode = parseMode(need("--mode"));
        else if (a == "--warp")
            opt.cfg.warpSize = unsigned(std::stoul(need("--warp")));
        else if (a == "--sms")
            opt.cfg.numSms = unsigned(std::stoul(need("--sms")));
        else if (a == "--seed")
            opt.cfg.seed = std::stoull(need("--seed"));
        else if (a == "--csv")
            opt.csv = true;
        else if (a == "--json")
            opt.json = true;
        else if (a == "--power")
            opt.power = true;
        else if (a == "--socket")
            opt.socket = need("--socket");
        else if (a == "--cache")
            setDefaultCacheEnabled(true);
        else if (a == "--jobs" || a == "-j") {
            const std::string v = need("--jobs");
            const std::optional<unsigned> jobs = parseJobsValue(v);
            if (!jobs)
                GS_FATAL("invalid ", a, " value '", v,
                         "' (want an integer in [1, 4096])");
            setDefaultJobs(*jobs);
        } else
            GS_FATAL("unknown option '", a, "'");
    }
}

/** Shared run/submit output: plain, --csv, --json, optional --power. */
void
printResult(const RunResult &r, const Options &opt)
{
    if (opt.csv) {
        std::cout << csvHeader() << "\n" << csvRow(r) << "\n";
    } else if (opt.json) {
        std::cout << toJson(r);
    } else {
        std::cout << r.workload << " @ " << archModeName(r.mode)
                  << ": cycles=" << r.ev.cycles
                  << " IPC=" << r.ev.ipc()
                  << " IPC/W=" << r.power.ipcPerWatt() << "\n";
    }
    if (opt.power)
        std::cout << r.power.describe();
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    Options opt;
    parseFlags(argc, argv, 3, opt);

    // Through the shared engine so --cache / GS_CACHE_DIR can answer
    // repeat invocations from disk instead of re-simulating.
    const RunResult r = defaultEngine().run(argv[2], opt.cfg);
    printResult(r, opt);
    std::cerr << throughputSummary({r}) << "\n"
              << defaultEngine().statsSummary() << "\n";
    return 0;
}

int
cmdSuite(int argc, char **argv)
{
    Options opt;
    parseFlags(argc, argv, 2, opt);

    const std::vector<RunResult> results =
        defaultEngine().runSuite(opt.cfg);

    if (opt.csv) {
        std::cout << toCsv(results);
    } else {
        for (const RunResult &r : results)
            std::cout << r.workload << ": cycles=" << r.ev.cycles
                      << " IPC=" << r.ev.ipc()
                      << " IPC/W=" << r.power.ipcPerWatt() << "\n";
    }
    std::cerr << throughputSummary(results) << "\n"
              << defaultEngine().statsSummary() << "\n";
    return 0;
}

int
cmdDisasm(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const Workload w = makeWorkload(argv[2]);
    for (const WorkloadLaunch &l : w.launches) {
        std::cout << l.kernel.disassemble() << "launch <<<" << l.dims.ctas
                  << ", " << l.dims.threadsPerCta << ">>>\n";
    }
    return 0;
}

int
cmdTrace(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    ArchConfig cfg;
    cfg.numSms = 1; // single SM keeps the interleaving readable
    unsigned lines = 120;
    for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--mode" && i + 1 < argc)
            cfg.mode = parseMode(argv[++i]);
        else if (a == "--lines" && i + 1 < argc)
            lines = unsigned(std::stoul(argv[++i]));
        else
            GS_FATAL("unknown option '", a, "'");
    }

    const Workload w = makeWorkload(argv[2]);
    Gpu gpu(cfg);
    if (w.setup)
        w.setup(gpu.memory(), cfg.seed);

    std::ostringstream os;
    TextTracer tracer(os);
    gpu.setTracer(&tracer);
    gpu.launch(w.launches.front().kernel, w.launches.front().dims);

    // Print the first N lines of the trace.
    std::istringstream in(os.str());
    std::string line;
    for (unsigned n = 0; n < lines && std::getline(in, line); ++n)
        std::cout << line << "\n";
    return 0;
}

int
cmdExperiment(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    initHarness(argc, argv); // --jobs/-j for the experiment engine
    const ArchConfig cfg = experimentConfig();
    const std::map<std::string, std::string (*)(const ArchConfig &)>
        table = {
            {"fig1", runFig1},
            {"fig8", runFig8},
            {"fig9", runFig9},
            {"fig10", runFig10},
            {"fig11", runFig11},
            {"fig12", runFig12},
            {"ratio", runCompressionRatio},
            {"smov", runSpecialMoveOverhead},
            {"banks", runScalarBankAblation},
            {"compiler", runCompilerScalarComparison},
            {"occupancy", runOccupancyAblation},
            {"half", runHalfRegisterAblation},
            {"affine", runAffineOpportunity},
            {"bankcount", runBankCountAblation},
            {"warpwidth", runWarpWidthAblation},
        };
    // One process may run several experiments ("fig1 fig8 fig9 ..."
    // or "all"): the shared run cache then simulates each (workload,
    // config) once across all of them.
    std::vector<std::string> names;
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--jobs" || a == "-j") {
            ++i; // value consumed by initHarness
            continue;
        }
        if (a == "all") {
            for (const auto &[n, fn] : table)
                names.push_back(n);
            names.push_back("table3");
        } else {
            names.push_back(a);
        }
    }
    if (names.empty())
        return usage();
    for (const std::string &name : names) {
        if (name == "table3") {
            std::cout << runTable3() << std::endl;
            continue;
        }
        const auto it = table.find(name);
        if (it == table.end())
            return usage();
        std::cout << it->second(cfg) << std::endl;
    }
    std::cerr << defaultEngine().statsSummary() << "\n";
    return 0;
}

int
cmdServe(int argc, char **argv)
{
    GscalarServer::Options sopt;
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                GS_FATAL(what, " needs a value");
            return argv[++i];
        };
        if (a == "--socket")
            sopt.socketPath = need("--socket");
        else if (a == "--timeout")
            sopt.requestTimeoutSec = std::stod(need("--timeout"));
        else if (a == "--cache")
            setDefaultCacheEnabled(true);
        else if (a == "--jobs" || a == "-j") {
            const std::string v = need("--jobs");
            const std::optional<unsigned> jobs = parseJobsValue(v);
            if (!jobs)
                GS_FATAL("invalid ", a, " value '", v,
                         "' (want an integer in [1, 4096])");
            setDefaultJobs(*jobs);
        } else
            GS_FATAL("unknown option '", a, "'");
    }

    GscalarServer server(defaultEngine(), sopt);
    std::string err;
    if (!server.installSignalHandlers(&err) || !server.start(&err)) {
        std::cerr << "gscalard: " << err << "\n";
        return 1;
    }
    std::cerr << "gscalard: listening on " << server.socketPath()
              << " (" << defaultEngine().jobs()
              << " worker(s); Ctrl-C to drain and exit)\n";
    server.wait();
    std::cerr << "gscalard: served " << server.requestsServed()
              << " request(s)\n"
              << defaultEngine().statsSummary() << "\n";
    return 0;
}

int
cmdSubmit(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    Options opt;
    parseFlags(argc, argv, 3, opt);

    GscalarClient client(opt.socket);
    std::string err;
    const std::optional<RunResult> r =
        client.run(argv[2], opt.cfg, &err);
    if (!r) {
        std::cerr << "gscalar submit: " << err << "\n";
        return 1;
    }
    printResult(*r, opt);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        printUsage(std::cout);
        return 0;
    }
    if (cmd == "--version" || cmd == "-V" || cmd == "version") {
        std::cout << "gscalar " << GS_VERSION << "\n";
        return 0;
    }
    // Reject malformed GS_JOBS up front for every subcommand rather
    // than silently simulating on a default-sized pool.
    if (const char *env = std::getenv("GS_JOBS")) {
        if (!parseJobsValue(env))
            GS_FATAL("GS_JOBS='", env,
                     "' is not a valid worker count "
                     "(want an integer in [1, 4096])");
    }
    if (cmd == "run")
        return cmdRun(argc, argv);
    if (cmd == "suite")
        return cmdSuite(argc, argv);
    if (cmd == "disasm")
        return cmdDisasm(argc, argv);
    if (cmd == "trace")
        return cmdTrace(argc, argv);
    if (cmd == "experiment")
        return cmdExperiment(argc, argv);
    if (cmd == "serve")
        return cmdServe(argc, argv);
    if (cmd == "submit")
        return cmdSubmit(argc, argv);
    if (cmd == "config") {
        std::cout << experimentConfig().describe();
        return 0;
    }
    if (cmd == "list") {
        for (const auto &n : workloadNames())
            std::cout << n << "\n";
        return 0;
    }
    return usage();
}
