#include <gtest/gtest.h>

#include "power/energy_model.hpp"

namespace gs
{
namespace
{

EventCounts
syntheticRun()
{
    // Roughly a 15-SM GPU sustaining ~12 warp instructions per cycle
    // on a compute-heavy mix.
    EventCounts e;
    e.cycles = 1'000'000;
    e.warpInsts = 12'000'000;
    e.issuedInsts = 12'000'000;
    e.aluLaneOps = 240'000'000;
    e.aluEnergyUnits = 240'000'000;
    e.sfuLaneOps = 8'000'000;
    e.sfuEnergyUnits = 96'000'000;
    e.memLaneOps = 32'000'000;
    e.rfArrayReads = 160'000'000;
    e.rfArrayWrites = 72'000'000;
    e.crossbarBytes = 2'400'000'000;
    e.ocAllocations = 9'600'000;
    e.l1Accesses = 4'000'000;
    e.l2Accesses = 800'000;
    e.dramAccesses = 320'000;
    return e;
}

TEST(EnergyModel, TotalIsSumOfComponents)
{
    ArchConfig cfg;
    const PowerReport r = computePower(syntheticRun(), cfg);
    EXPECT_NEAR(r.totalW,
                r.frontendW + r.executeW + r.regFileW + r.codecW +
                    r.memoryW + r.staticW,
                1e-9);
    EXPECT_GT(r.totalW, 0.0);
    EXPECT_GT(r.ipcPerWatt(), 0.0);
}

TEST(EnergyModel, SfuSubsetOfExecute)
{
    const PowerReport r = computePower(syntheticRun(), ArchConfig{});
    EXPECT_LE(r.sfuW, r.executeW);
    EXPECT_GT(r.sfuW, 0.0);
}

TEST(EnergyModel, ComponentSharesMatchGpuWattchBands)
{
    // On a compute-intensive mix, execution units and register file
    // should sit near GPUWattch's published shares (~24 % and ~16 %).
    const PowerReport r = computePower(syntheticRun(), ArchConfig{});
    const double exe = r.executeW / r.totalW;
    const double rf = r.regFileW / r.totalW;
    EXPECT_GT(exe, 0.15);
    EXPECT_LT(exe, 0.45);
    EXPECT_GT(rf, 0.10);
    EXPECT_LT(rf, 0.35);
}

TEST(EnergyModel, CodecPowerOnlyInCompressionModes)
{
    EventCounts e = syntheticRun();
    ArchConfig cfg;
    cfg.mode = ArchMode::Baseline;
    EXPECT_EQ(computePower(e, cfg).codecW, 0.0);

    e.compressorUses = 5'000'000;
    e.decompressorUses = 20'000'000;
    cfg.mode = ArchMode::GScalarFull;
    EXPECT_GT(computePower(e, cfg).codecW, 0.0);
}

TEST(EnergyModel, ZeroCyclesYieldsEmptyReport)
{
    const PowerReport r = computePower(EventCounts{}, ArchConfig{});
    EXPECT_EQ(r.totalW, 0.0);
    EXPECT_EQ(r.ipcPerWatt(), 0.0);
}

TEST(EnergyModel, MoreEventsMorePower)
{
    EventCounts a = syntheticRun();
    EventCounts b = a;
    b.aluEnergyUnits *= 2;
    b.rfArrayReads *= 2;
    const ArchConfig cfg;
    EXPECT_GT(computePower(b, cfg).totalW, computePower(a, cfg).totalW);
}

TEST(EnergyModel, RfBreakdownOrdering)
{
    // Over a scalar-rich stream: ours < scalar-only < baseline.
    EventCounts e;
    e.shadowBaseArrayReads = 8'000'000;
    e.shadowBaseArrayWrites = 4'000'000;
    e.shadowScalarArrayReads = 5'000'000;
    e.shadowScalarArrayWrites = 2'500'000;
    e.shadowScalarRfAccesses = 4'500'000;
    e.shadowOursArrayReads = 3'000'000;
    e.shadowOursArrayWrites = 1'500'000;
    e.shadowOursBvrAccesses = 6'000'000;
    e.bdiArrayReads = 4'000'000;
    e.bdiArrayWrites = 2'000'000;
    e.bdiMetaAccesses = 3'000'000;

    const RfEnergyBreakdown b = computeRfEnergy(e);
    EXPECT_LT(b.oursJ, b.scalarOnlyJ);
    EXPECT_LT(b.oursJ, b.bdiJ);
    EXPECT_LT(b.scalarOnlyJ, b.baselineJ);
    EXPECT_LT(b.bdiJ, b.baselineJ);
}

TEST(EnergyModel, DescribeMentionsComponents)
{
    const PowerReport r = computePower(syntheticRun(), ArchConfig{});
    const std::string s = r.describe();
    EXPECT_NE(s.find("register file"), std::string::npos);
    EXPECT_NE(s.find("IPC/W"), std::string::npos);
}

TEST(EnergyModel, BvrEnergyIsPaperFraction)
{
    // Section 5.1: a BVR/EBR access costs 5.2 % of a full 1024-bit
    // register access (8 arrays).
    const EnergyParams p;
    EXPECT_NEAR(p.eBvrAccessPj / (8 * p.eArrayAccessPj), 0.052, 1e-9);
}

} // namespace
} // namespace gs
