#include <gtest/gtest.h>

#include "sim/memory/cache.hpp"

namespace gs
{
namespace
{

TEST(Cache, ColdMissThenHit)
{
    Cache c(1024, 2, 128);
    EXPECT_FALSE(c.access(0x0, true));
    EXPECT_TRUE(c.access(0x0, true));
    EXPECT_TRUE(c.access(0x7c, true)); // same line
}

TEST(Cache, NoAllocateLeavesMiss)
{
    Cache c(1024, 2, 128);
    EXPECT_FALSE(c.access(0x0, false));
    EXPECT_FALSE(c.access(0x0, true));
}

TEST(Cache, SetGeometry)
{
    Cache c(1024, 2, 128); // 4 sets
    EXPECT_EQ(c.numSets(), 4u);
}

TEST(Cache, LruEviction)
{
    Cache c(1024, 2, 128); // 4 sets x 2 ways
    // Three lines mapping to set 0 (stride = sets*line = 512).
    c.access(0, true);
    c.access(512, true);
    c.access(0, true);     // touch line 0: line 512 becomes LRU
    c.access(1024, true);  // evicts 512
    EXPECT_TRUE(c.access(0, true));
    EXPECT_FALSE(c.access(512, true));
}

TEST(Cache, Clear)
{
    Cache c(1024, 2, 128);
    c.access(0, true);
    c.clear();
    EXPECT_FALSE(c.access(0, true));
}

TEST(Cache, DistinctSetsDoNotConflict)
{
    Cache c(1024, 2, 128);
    for (Addr a = 0; a < 1024; a += 128)
        c.access(a, true); // exactly fills the cache
    for (Addr a = 0; a < 1024; a += 128)
        EXPECT_TRUE(c.access(a, true)) << a;
}

} // namespace
} // namespace gs
