#include <gtest/gtest.h>

#include "sim/simt_stack.hpp"

namespace gs
{
namespace
{

TEST(SimtStack, LinearAdvance)
{
    SimtStack s;
    s.reset(0, 0xff);
    EXPECT_EQ(s.pc(), 0);
    EXPECT_EQ(s.activeMask(), 0xffu);
    s.advance(1);
    EXPECT_EQ(s.pc(), 1);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, NonDivergentBranchAllTaken)
{
    SimtStack s;
    s.reset(5, 0xff);
    s.branch(/*taken=*/0xff, /*target=*/20, /*fallthrough=*/6,
             /*reconv=*/30);
    EXPECT_EQ(s.pc(), 20);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, NonDivergentBranchNoneTaken)
{
    SimtStack s;
    s.reset(5, 0xff);
    s.branch(0, 20, 6, 30);
    EXPECT_EQ(s.pc(), 6);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, DivergentIfElseExecutesBothPathsThenReconverges)
{
    // if/else: taken lanes go to 20 (else block), fall-through at 6,
    // reconvergence at 30.
    SimtStack s;
    s.reset(5, 0xff);
    s.branch(0x0f, 20, 6, 30);

    // Taken path first.
    EXPECT_EQ(s.pc(), 20);
    EXPECT_EQ(s.activeMask(), 0x0fu);
    s.advance(21);
    s.advance(30); // reaches reconvergence -> pop

    // Fall-through path next.
    EXPECT_EQ(s.pc(), 6);
    EXPECT_EQ(s.activeMask(), 0xf0u);
    s.advance(30); // pop

    // Merged.
    EXPECT_EQ(s.pc(), 30);
    EXPECT_EQ(s.activeMask(), 0xffu);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, IfThenTakenEqualsReconv)
{
    // ifThen emits BRA whose target IS the reconvergence point: lanes
    // skipping the body wait in the merged entry.
    SimtStack s;
    s.reset(5, 0xff);
    s.branch(0xf0, /*target=*/10, /*fallthrough=*/6, /*reconv=*/10);
    EXPECT_EQ(s.pc(), 6);         // body path runs first
    EXPECT_EQ(s.activeMask(), 0x0fu);
    s.advance(10);                // body done -> pop
    EXPECT_EQ(s.pc(), 10);
    EXPECT_EQ(s.activeMask(), 0xffu);
}

TEST(SimtStack, NestedDivergence)
{
    SimtStack s;
    s.reset(0, 0xff);
    s.branch(0x0f, 10, 1, 20);     // outer split
    EXPECT_EQ(s.pc(), 10);
    s.branch(0x03, 15, 11, 18);    // inner split on the taken path
    EXPECT_EQ(s.pc(), 15);
    EXPECT_EQ(s.activeMask(), 0x03u);
    s.advance(18); // pop inner taken
    EXPECT_EQ(s.pc(), 11);
    EXPECT_EQ(s.activeMask(), 0x0cu);
    s.advance(18); // pop inner fall-through
    EXPECT_EQ(s.pc(), 18);
    EXPECT_EQ(s.activeMask(), 0x0fu);
    s.advance(20); // outer taken path reaches reconv
    EXPECT_EQ(s.pc(), 1);
    EXPECT_EQ(s.activeMask(), 0xf0u);
    s.advance(20);
    EXPECT_EQ(s.pc(), 20);
    EXPECT_EQ(s.activeMask(), 0xffu);
}

TEST(SimtStack, LoopLanesExitIncrementally)
{
    // Loop with exit branch at pc 2 (reconv/exit at 6), body 3..4,
    // back-jump at 5. Lanes exit one at a time.
    SimtStack s;
    s.reset(2, 0b111);

    // Iteration 1: lane 0 exits.
    s.branch(/*taken(exit)=*/0b001, /*target=*/6, /*fallthrough=*/3, 6);
    EXPECT_EQ(s.pc(), 3);
    EXPECT_EQ(s.activeMask(), 0b110u);
    s.advance(4);
    s.jump(2);

    // Iteration 2: lane 1 exits.
    s.branch(0b010, 6, 3, 6);
    EXPECT_EQ(s.pc(), 3);
    EXPECT_EQ(s.activeMask(), 0b100u);
    s.advance(4);
    s.jump(2);

    // Iteration 3: last lane exits; everyone reconverges at 6.
    s.branch(0b100, 6, 3, 6);
    EXPECT_EQ(s.pc(), 6);
    EXPECT_EQ(s.activeMask(), 0b111u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, ExitClearsStack)
{
    SimtStack s;
    s.reset(0, 0xff);
    EXPECT_FALSE(s.empty());
    s.exit();
    EXPECT_TRUE(s.empty());
}

} // namespace
} // namespace gs
